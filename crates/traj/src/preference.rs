//! Hidden driver preference models.
//!
//! The paper's central observation is that local drivers choose paths that
//! are neither shortest nor fastest. We reproduce that signal with a
//! per-driver routing cost over edges:
//!
//! ```text
//! cost(e) = (w_len · length(e) + w_time · time(e) · v̄)
//!           · affinity(category(e)) · familiarity(e)
//! ```
//!
//! * `w_len`, `w_time` — each driver's personal trade-off between distance
//!   and time (`v̄` is a speed scale that puts the two on comparable units);
//! * `affinity` — a per-category multiplier (some drivers avoid highways,
//!   some love them);
//! * `familiarity` — mild per-edge multiplicative noise, unique per driver
//!   (drivers take the streets *they* know).
//!
//! Routing on this cost with plain Dijkstra yields consistent,
//! driver-specific behaviour that a ranking model can learn, while the
//! shortest and fastest paths remain systematically different.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pathrank_spatial::graph::{Graph, RoadCategory};

/// A driver's hidden routing preference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverPreference {
    /// Weight on edge length (metres).
    pub w_len: f64,
    /// Weight on edge travel time (seconds, scaled by `speed_scale`).
    pub w_time: f64,
    /// Speed scale (m/s) that converts seconds into metre-comparable units.
    pub speed_scale: f64,
    /// Multiplier per road category, indexed by [`category_index`].
    pub affinity: [f64; 4],
    /// Extra cost multiplier applied to *unpopular* edges (0 disables the
    /// corridor pull; see [`DriverPreference::edge_costs_with_popularity`]).
    pub popularity_weight: f64,
    /// Standard deviation of the per-edge familiarity factor (log-scale).
    pub familiarity_sigma: f64,
    /// Seed for the driver's private familiarity noise.
    pub familiarity_seed: u64,
}

/// Stable index of a road category into [`DriverPreference::affinity`].
pub fn category_index(cat: RoadCategory) -> usize {
    match cat {
        RoadCategory::Highway => 0,
        RoadCategory::Arterial => 1,
        RoadCategory::Residential => 2,
        RoadCategory::Rural => 3,
    }
}

impl DriverPreference {
    /// Samples a driver.
    ///
    /// Preferences have two components, mirroring what route-choice studies
    /// find in real fleets:
    ///
    /// * a **shared population taste** — drivers like big fast roads beyond
    ///   their pure travel-time advantage and avoid cutting through
    ///   residential streets (this is the *learnable* signal PathRank
    ///   extracts from trajectories);
    /// * **individual variation** — each driver perturbs the shared taste
    ///   (±~15%) and carries private per-edge familiarity noise.
    pub fn sample(rng: &mut StdRng) -> Self {
        let w_len = rng.gen_range(0.3..0.9);
        let w_time = 1.0 - w_len;
        // Population means per category: Highway, Arterial, Residential,
        // Rural. Values below 1 make a category attractive.
        const POPULATION_TASTE: [f64; 4] = [0.72, 0.82, 1.35, 1.12];
        let mut affinity = [0.0; 4];
        for (a, base) in affinity.iter_mut().zip(POPULATION_TASTE) {
            *a = base * rng.gen_range(-0.15..0.15f64).exp();
        }
        DriverPreference {
            w_len,
            w_time,
            speed_scale: rng.gen_range(12.0..22.0),
            affinity,
            popularity_weight: rng.gen_range(0.2..0.45),
            familiarity_sigma: 0.15,
            familiarity_seed: rng.gen(),
        }
    }

    /// A neutral preference: pure shortest-distance routing, no noise.
    /// Useful as a control in tests.
    pub fn neutral() -> Self {
        DriverPreference {
            w_len: 1.0,
            w_time: 0.0,
            speed_scale: 15.0,
            affinity: [1.0; 4],
            popularity_weight: 0.0,
            familiarity_sigma: 0.0,
            familiarity_seed: 0,
        }
    }

    /// Materialises the preference into one positive cost per edge of `g`,
    /// suitable for `CostModel::Custom`.
    pub fn edge_costs(&self, g: &Graph) -> Vec<f64> {
        self.edge_costs_with_popularity(g, None)
    }

    /// Like [`DriverPreference::edge_costs`], additionally discounting
    /// popular corridors.
    ///
    /// `popularity` is a per-edge score in `[0, 1]` (see
    /// `pathrank_spatial::graph::edge_popularity`): drivers gravitate to the
    /// network's major corridors — paths everyone knows — which makes part
    /// of their behaviour *topologically* predictable (the signal a frozen
    /// node2vec embedding can capture).
    pub fn edge_costs_with_popularity(&self, g: &Graph, popularity: Option<&[f64]>) -> Vec<f64> {
        if let Some(pop) = popularity {
            assert_eq!(
                pop.len(),
                g.edge_count(),
                "popularity must cover every edge"
            );
        }
        let mut rng = StdRng::seed_from_u64(self.familiarity_seed);
        let mut costs = Vec::with_capacity(g.edge_count());
        for (i, e) in g.edges().enumerate() {
            let base = self.w_len * e.attrs.length_m
                + self.w_time * e.attrs.travel_time_s() * self.speed_scale;
            let aff = self.affinity[category_index(e.attrs.category)];
            // Log-normal-ish familiarity factor, strictly positive.
            let z = crate::gps::sample_standard_normal(&mut rng);
            let familiarity = (self.familiarity_sigma * z).exp();
            // Unpopular back streets cost up to `popularity_weight` more.
            let corridor = match popularity {
                Some(pop) => 1.0 + self.popularity_weight * (1.0 - pop[i]),
                None => 1.0,
            };
            costs.push((base * aff * familiarity * corridor).max(1e-6));
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrank_spatial::algo::dijkstra::shortest_path;
    use pathrank_spatial::generators::{region_network, RegionConfig};
    use pathrank_spatial::graph::{CostModel, VertexId};
    use pathrank_spatial::similarity::{weighted_jaccard, EdgeWeight};

    #[test]
    fn costs_are_positive_and_deterministic() {
        let g = region_network(&RegionConfig::small_test(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let pref = DriverPreference::sample(&mut rng);
        let a = pref.edge_costs(&g);
        let b = pref.edge_costs(&g);
        assert_eq!(a, b, "same driver, same costs");
        assert_eq!(a.len(), g.edge_count());
        assert!(a.iter().all(|&c| c > 0.0 && c.is_finite()));
    }

    #[test]
    fn neutral_preference_reduces_to_length() {
        let g = region_network(&RegionConfig::small_test(), 1);
        let costs = DriverPreference::neutral().edge_costs(&g);
        for (i, e) in g.edges().enumerate() {
            assert!((costs[i] - e.attrs.length_m).abs() < 1e-9);
        }
    }

    #[test]
    fn different_drivers_have_different_costs() {
        let g = region_network(&RegionConfig::small_test(), 1);
        let mut rng = StdRng::seed_from_u64(6);
        let a = DriverPreference::sample(&mut rng).edge_costs(&g);
        let b = DriverPreference::sample(&mut rng).edge_costs(&g);
        assert_ne!(a, b);
    }

    /// The point of the whole model: preferred paths must frequently differ
    /// from both the shortest and the fastest path, yet stay reasonable
    /// (bounded detour).
    #[test]
    fn preferred_paths_differ_from_shortest_and_fastest() {
        let g = region_network(&RegionConfig::small_test(), 3);
        let mut rng = StdRng::seed_from_u64(7);
        let n = g.vertex_count() as u32;
        let mut differs = 0usize;
        let mut total = 0usize;
        for driver in 0..6u64 {
            let pref = DriverPreference::sample(&mut StdRng::seed_from_u64(driver + 100));
            let costs = pref.edge_costs(&g);
            for _ in 0..5 {
                let s = VertexId(rng.gen_range(0..n));
                let t = VertexId(rng.gen_range(0..n));
                if s == t {
                    continue;
                }
                let preferred = shortest_path(&g, s, t, CostModel::Custom(&costs));
                let shortest = shortest_path(&g, s, t, CostModel::Length);
                let (Some(p), Some(sh)) = (preferred, shortest) else {
                    continue;
                };
                total += 1;
                // Bounded detour: drivers are biased, not crazy.
                assert!(
                    p.length_m(&g) <= sh.length_m(&g) * 2.5,
                    "preferred path detour factor too large"
                );
                if weighted_jaccard(&g, &p, &sh, EdgeWeight::Length) < 0.999 {
                    differs += 1;
                }
            }
        }
        assert!(total > 10, "need a meaningful sample");
        assert!(
            differs * 3 >= total,
            "at least a third of preferred paths should differ from the \
             shortest path (got {differs}/{total})"
        );
    }
}
