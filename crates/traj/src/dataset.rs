//! Trajectory dataset assembly: from simulated (or matched) trips to the
//! train/test trajectory path sets PathRank consumes.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use pathrank_spatial::graph::Graph;
use pathrank_spatial::path::Path;

use crate::mapmatch::{MapMatchConfig, MapMatcher};
use crate::simulator::Trip;

/// A set of trajectory paths ready for training-data generation.
#[derive(Debug, Clone)]
pub struct TrajectoryDataset {
    /// Ground-truth trajectory paths (one per usable trip).
    pub paths: Vec<Path>,
}

impl TrajectoryDataset {
    /// Builds the dataset from the drivers' true paths (fast; used by the
    /// experiment pipeline, where GPS recovery is not the variable under
    /// study).
    pub fn from_true_paths(trips: &[Trip]) -> Self {
        TrajectoryDataset {
            paths: trips.iter().map(|t| t.path.clone()).collect(),
        }
    }

    /// Builds the dataset by map-matching each trip's GPS trace (the full
    /// paper pipeline). Trips whose trace cannot be matched are dropped.
    /// One [`MapMatcher`] — a single spatial index plus a single query
    /// engine — serves every trace.
    pub fn from_map_matching(g: &Graph, trips: &[Trip], cfg: &MapMatchConfig) -> Self {
        Self::from_map_matching_with_stats(g, trips, cfg).0
    }

    /// Like [`TrajectoryDataset::from_map_matching`], but also hands back
    /// the matcher's probe-cache and m2m statistics
    /// ([`crate::mapmatch::MatchStats`]) for callers feeding a metrics
    /// registry.
    pub fn from_map_matching_with_stats(
        g: &Graph,
        trips: &[Trip],
        cfg: &MapMatchConfig,
    ) -> (Self, crate::mapmatch::MatchStats) {
        let mut matcher = MapMatcher::new(g, cfg.clone());
        let paths = trips
            .iter()
            .filter_map(|t| matcher.match_trace(&t.trace))
            .collect();
        (TrajectoryDataset { paths }, matcher.stats())
    }

    /// Number of trajectory paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Retains only paths with at least `min_hops` edges (very short trips
    /// carry no ranking signal).
    pub fn filter_min_hops(mut self, min_hops: usize) -> Self {
        self.paths.retain(|p| p.len() >= min_hops);
        self
    }

    /// Shuffles (seeded) and splits into train/test by `train_frac`.
    pub fn split(mut self, train_frac: f64, seed: u64) -> (Vec<Path>, Vec<Path>) {
        assert!(
            (0.0..=1.0).contains(&train_frac),
            "train_frac must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        self.paths.shuffle(&mut rng);
        let cut = (self.paths.len() as f64 * train_frac).round() as usize;
        let test = self.paths.split_off(cut.min(self.paths.len()));
        (self.paths, test)
    }
}

/// Convenience: splits raw trips (by their true paths) into train/test path
/// sets.
pub fn split_trips(trips: &[Trip], train_frac: f64, seed: u64) -> (Vec<Path>, Vec<Path>) {
    TrajectoryDataset::from_true_paths(trips).split(train_frac, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{simulate_fleet, SimulationConfig};
    use pathrank_spatial::generators::{region_network, RegionConfig};

    fn trips() -> (Graph, Vec<Trip>) {
        let g = region_network(&RegionConfig::small_test(), 31);
        let t = simulate_fleet(&g, &SimulationConfig::small_test(), 32);
        (g, t)
    }

    #[test]
    fn from_true_paths_keeps_everything() {
        let (_, trips) = trips();
        let ds = TrajectoryDataset::from_true_paths(&trips);
        assert_eq!(ds.len(), trips.len());
        assert!(!ds.is_empty());
    }

    #[test]
    fn filter_min_hops_drops_short_paths() {
        let (_, trips) = trips();
        let before = TrajectoryDataset::from_true_paths(&trips);
        let min_len_before = before.paths.iter().map(Path::len).min().unwrap();
        let ds = before.clone().filter_min_hops(min_len_before + 1);
        assert!(ds.len() < trips.len());
        assert!(ds.paths.iter().all(|p| p.len() > min_len_before));
    }

    #[test]
    fn split_is_seeded_and_partitioning() {
        let (_, trips) = trips();
        let n = trips.len();
        let (tr1, te1) = split_trips(&trips, 0.75, 5);
        let (tr2, te2) = split_trips(&trips, 0.75, 5);
        assert_eq!(tr1.len() + te1.len(), n);
        assert_eq!(tr1.len(), (n as f64 * 0.75).round() as usize);
        assert_eq!(tr1.len(), tr2.len());
        for (a, b) in tr1.iter().zip(tr2.iter()) {
            assert!(a.same_route(b), "same seed, same split");
        }
        assert_eq!(te1.len(), te2.len());
        // Different seed shuffles differently (overwhelmingly likely).
        let (tr3, _) = split_trips(&trips, 0.75, 6);
        let identical = tr1.iter().zip(tr3.iter()).all(|(a, b)| a.same_route(b));
        assert!(!identical, "different seeds should differ");
    }

    #[test]
    fn split_extremes() {
        let (_, trips) = trips();
        let (tr, te) = split_trips(&trips, 1.0, 1);
        assert_eq!(te.len(), 0);
        assert_eq!(tr.len(), trips.len());
        let (tr, te) = split_trips(&trips, 0.0, 1);
        assert_eq!(tr.len(), 0);
        assert_eq!(te.len(), trips.len());
    }

    #[test]
    fn map_matching_dataset_yields_valid_paths() {
        let (g, trips) = trips();
        let subset: Vec<Trip> = trips.into_iter().take(5).collect();
        let ds = TrajectoryDataset::from_map_matching(&g, &subset, &MapMatchConfig::default());
        assert!(!ds.is_empty(), "at least some traces must match");
        for p in &ds.paths {
            p.validate(&g).unwrap();
        }
    }
}
