//! Synthetic live-traffic congestion over a road network.
//!
//! The paper's advanced-routing module serves fastest paths on a network
//! whose travel times drift with traffic. This module supplies the drift:
//! a [`TrafficModel`] captures the free-flow speed of every edge once and
//! then, for any epoch number, deterministically slows a random subset of
//! edges by a random factor. Applying an epoch issues exactly one
//! [`Graph::set_edge_speeds`] call, so the graph's weights epoch advances
//! by (at most) one per traffic update and every epoch-gated index (ALT,
//! CH, CCH) notices the change. [`TrafficModel::apply_epoch_delta`]
//! additionally hands back the sparse changed-edge delta the mutation
//! actually produced — the input shape partial CCH customization
//! (`Cch::apply_delta`) consumes.
//!
//! Epochs are pure functions of `(seed, epoch)`: replaying epoch `k`
//! always produces the same speeds, which is what lets benchmarks assert
//! exactness against a fresh Dijkstra on the perturbed weights before
//! timing anything.

use pathrank_spatial::graph::{EdgeId, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic congestion process.
#[derive(Debug, Clone)]
pub struct CongestionConfig {
    /// Fraction of edges congested in any one epoch.
    pub congested_frac: f64,
    /// Strongest slow-down: a congested edge's speed is its free-flow
    /// speed times a factor drawn from `[min_factor, max_factor]`.
    pub min_factor: f64,
    /// Mildest slow-down (an upper bound on the drawn factor).
    pub max_factor: f64,
    /// Master seed; combined with the epoch number per update.
    pub seed: u64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            congested_frac: 0.15,
            min_factor: 0.25,
            max_factor: 0.9,
            seed: 2020,
        }
    }
}

/// A deterministic traffic generator bound to one road network.
///
/// Holds the free-flow (construction-time) speed of every edge, so
/// epochs never compound: each [`TrafficModel::apply_epoch`] rewrites
/// every edge to either its free-flow speed or a freshly drawn congested
/// speed for that epoch.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    base_speeds: Vec<f64>,
    cfg: CongestionConfig,
}

impl TrafficModel {
    /// Captures `g`'s current speeds as free-flow. Call before the first
    /// perturbation.
    pub fn new(g: &Graph, cfg: CongestionConfig) -> Self {
        assert!(
            cfg.min_factor.is_finite() && cfg.min_factor > 0.0,
            "min_factor must be positive and finite, got {}",
            cfg.min_factor
        );
        assert!(
            cfg.max_factor.is_finite() && cfg.max_factor >= cfg.min_factor,
            "max_factor must be finite and >= min_factor, got {}",
            cfg.max_factor
        );
        assert!(
            (0.0..=1.0).contains(&cfg.congested_frac),
            "congested_frac must lie in [0, 1], got {}",
            cfg.congested_frac
        );
        TrafficModel {
            base_speeds: g.edges().map(|e| e.attrs.speed_kmh).collect(),
            cfg,
        }
    }

    /// Number of edges the model was captured from.
    pub fn edge_count(&self) -> usize {
        self.base_speeds.len()
    }

    /// The captured free-flow speed of an edge, in km/h.
    pub fn base_speed(&self, e: EdgeId) -> f64 {
        self.base_speeds[e.index()]
    }

    /// The complete per-edge speed assignment for `epoch`, deterministic
    /// in `(seed, epoch)`. Uncongested edges carry their free-flow speed.
    pub fn epoch_speeds(&self, epoch: u64) -> Vec<(EdgeId, f64)> {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        self.base_speeds
            .iter()
            .enumerate()
            .map(|(i, &base)| {
                // Draw both values unconditionally so each edge consumes
                // a fixed amount of randomness regardless of outcome.
                let congested = rng.gen_range(0.0..1.0) < self.cfg.congested_frac;
                let factor = rng.gen_range(self.cfg.min_factor..=self.cfg.max_factor);
                let speed = if congested { base * factor } else { base };
                (EdgeId(i as u32), speed)
            })
            .collect()
    }

    /// Applies `epoch`'s speeds to `g` with a single
    /// [`Graph::set_edge_speeds`] call (at most one weights-epoch bump)
    /// and returns how many edges ended up congested.
    pub fn apply_epoch(&self, g: &mut Graph, epoch: u64) -> usize {
        let speeds = self.epoch_speeds(epoch);
        assert_eq!(
            speeds.len(),
            g.edge_count(),
            "traffic model was captured from a different graph"
        );
        let congested = speeds
            .iter()
            .filter(|&&(e, s)| s != self.base_speeds[e.index()])
            .count();
        g.set_edge_speeds(&speeds);
        congested
    }

    /// Like [`TrafficModel::apply_epoch`], but returns the sparse
    /// changed-edge delta (the `(edge, post-clamp speed)` pairs
    /// [`Graph::set_edge_speeds`] reports) instead of a congested count
    /// — the telemetry shape `Cch::apply_delta`-style partial
    /// customization consumes directly. Because epochs replace rather
    /// than compound, the delta between consecutive epochs is roughly
    /// the union of the two congested subsets: edges newly slowed plus
    /// edges restored to free flow.
    pub fn apply_epoch_delta(&self, g: &mut Graph, epoch: u64) -> Vec<(EdgeId, f64)> {
        let speeds = self.epoch_speeds(epoch);
        assert_eq!(
            speeds.len(),
            g.edge_count(),
            "traffic model was captured from a different graph"
        );
        g.set_edge_speeds(&speeds)
    }

    /// Restores every edge to its free-flow speed (at most one epoch
    /// bump).
    pub fn restore(&self, g: &mut Graph) {
        let updates: Vec<(EdgeId, f64)> = self
            .base_speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (EdgeId(i as u32), s))
            .collect();
        g.set_edge_speeds(&updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrank_spatial::generators::{region_network, RegionConfig};

    fn region() -> Graph {
        region_network(&RegionConfig::small_test(), 17)
    }

    #[test]
    fn epochs_are_deterministic_and_distinct() {
        let g = region();
        let model = TrafficModel::new(&g, CongestionConfig::default());
        let a = model.epoch_speeds(4);
        let b = model.epoch_speeds(4);
        assert_eq!(a, b, "same epoch must replay identically");
        let c = model.epoch_speeds(5);
        assert_ne!(a, c, "distinct epochs should differ");
        for &(e, s) in &a {
            assert!(s.is_finite() && s > 0.0);
            assert!(s <= model.base_speed(e) + 1e-12);
        }
    }

    #[test]
    fn apply_epoch_bumps_weights_epoch_once() {
        let mut g = region();
        let model = TrafficModel::new(&g, CongestionConfig::default());
        assert_eq!(g.weights_epoch(), 0);
        let congested = model.apply_epoch(&mut g, 1);
        assert_eq!(g.weights_epoch(), 1);
        assert!(congested > 0, "default config congests some edges");
        // A later epoch replaces — not compounds — the perturbation.
        model.apply_epoch(&mut g, 2);
        assert_eq!(g.weights_epoch(), 2);
        model.restore(&mut g);
        assert_eq!(g.weights_epoch(), 3);
        for (i, e) in g.edges().enumerate() {
            assert_eq!(
                e.attrs.speed_kmh.to_bits(),
                model.base_speed(EdgeId(i as u32)).to_bits(),
                "restore must reproduce free-flow speeds exactly"
            );
        }
    }

    #[test]
    fn zero_fraction_changes_nothing_and_leaves_the_epoch_alone() {
        let mut g = region();
        let model = TrafficModel::new(
            &g,
            CongestionConfig {
                congested_frac: 0.0,
                ..CongestionConfig::default()
            },
        );
        let before: Vec<f64> = g.edges().map(|e| e.attrs.speed_kmh).collect();
        let congested = model.apply_epoch(&mut g, 9);
        assert_eq!(congested, 0);
        // Regression (inverted): an all-echo epoch used to bump the
        // weights epoch anyway, invalidating every index for nothing.
        assert_eq!(g.weights_epoch(), 0, "a pure echo must not invalidate");
        assert!(model.apply_epoch_delta(&mut g, 9).is_empty());
        assert_eq!(g.weights_epoch(), 0);
        let after: Vec<f64> = g.edges().map(|e| e.attrs.speed_kmh).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn apply_epoch_delta_reports_exactly_the_moved_edges() {
        let mut g = region();
        let model = TrafficModel::new(&g, CongestionConfig::default());
        let planned = model.epoch_speeds(3);
        let delta = model.apply_epoch_delta(&mut g, 3);
        assert!(!delta.is_empty());
        assert_eq!(g.weights_epoch(), 1);
        // The delta is exactly the congested subset (speeds started at
        // free flow), carrying the stored post-clamp values.
        let expect: Vec<(EdgeId, f64)> = planned
            .iter()
            .filter(|&&(e, s)| s.to_bits() != model.base_speed(e).to_bits())
            .map(|&(e, s)| (e, s))
            .collect();
        assert_eq!(delta.len(), expect.len());
        for (&(e, s), &(ee, es)) in delta.iter().zip(&expect) {
            assert_eq!(e, ee);
            assert_eq!(s.to_bits(), g.edge(e).attrs.speed_kmh.to_bits());
            assert_eq!(s.to_bits(), es.to_bits());
        }
        // Replaying the same epoch is a pure echo: empty delta, no bump.
        assert!(model.apply_epoch_delta(&mut g, 3).is_empty());
        assert_eq!(g.weights_epoch(), 1);
    }
}
