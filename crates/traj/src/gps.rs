//! GPS records and traces.

use pathrank_spatial::geometry::Point;
use serde::{Deserialize, Serialize};

/// A single GPS fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    /// Measured position (planar metres, already noisy).
    pub pos: Point,
    /// Seconds since the start of the trip.
    pub t_s: f64,
}

/// A sequence of GPS fixes from one trip of one vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpsTrace {
    /// The vehicle that produced the trace.
    pub vehicle: u32,
    /// Fixes ordered by time.
    pub points: Vec<GpsPoint>,
}

impl GpsTrace {
    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace has no fixes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Duration of the trace in seconds (0 for traces with < 2 fixes).
    pub fn duration_s(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t_s - a.t_s,
            _ => 0.0,
        }
    }

    /// Sum of straight-line distances between consecutive fixes, in metres.
    pub fn measured_length_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.distance(&w[1].pos))
            .sum()
    }
}

/// Draws one standard normal variate via Box–Muller (the `rand` crate is
/// allowed but `rand_distr` is not, so we roll the two-liner ourselves).
pub fn sample_standard_normal(rng: &mut rand::rngs::StdRng) -> f64 {
    use rand::Rng;
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn trace_accessors() {
        let trace = GpsTrace {
            vehicle: 7,
            points: vec![
                GpsPoint {
                    pos: Point::new(0.0, 0.0),
                    t_s: 0.0,
                },
                GpsPoint {
                    pos: Point::new(3.0, 4.0),
                    t_s: 10.0,
                },
                GpsPoint {
                    pos: Point::new(3.0, 10.0),
                    t_s: 20.0,
                },
            ],
        };
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.duration_s(), 20.0);
        assert!((trace.measured_length_m() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let trace = GpsTrace {
            vehicle: 0,
            points: vec![],
        };
        assert!(trace.is_empty());
        assert_eq!(trace.duration_s(), 0.0);
        assert_eq!(trace.measured_length_m(), 0.0);
    }

    #[test]
    fn normal_samples_have_plausible_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
