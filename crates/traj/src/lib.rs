//! Trajectory substrate for the PathRank reproduction.
//!
//! The paper uses 180 million GPS records collected from 183 vehicles in
//! North Jutland — proprietary data we cannot obtain. This crate replaces it
//! with a simulator whose *statistical structure* matches what PathRank
//! learns from:
//!
//! * [`preference`] — every synthetic driver owns a hidden routing cost
//!   (a blend of distance, travel time, road-class affinity and per-edge
//!   familiarity noise), so drivers systematically prefer paths that are
//!   **neither shortest nor fastest** — the exact phenomenon motivating the
//!   paper;
//! * [`simulator`] — a fleet of such drivers makes trips between random
//!   origin/destination pairs; each trip emits a noisy GPS trace at a fixed
//!   sampling interval;
//! * [`mapmatch`] — an HMM map matcher (Newson & Krumm, 2009 style:
//!   Gaussian emission by projection distance, detour-penalising
//!   transitions, Viterbi decoding) recovers the driven path from the noisy
//!   trace;
//! * [`dataset`] — assembles matched trips into the train/test trajectory
//!   path sets PathRank consumes;
//! * [`congestion`] — a deterministic live-traffic generator: per-epoch
//!   speed perturbations driving the customizable contraction hierarchy's
//!   millisecond re-customization (congestion-aware matching and serving).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod congestion;
pub mod dataset;
pub mod gps;
pub mod mapmatch;
pub mod preference;
pub mod simulator;

pub use congestion::{CongestionConfig, TrafficModel};
pub use dataset::{split_trips, TrajectoryDataset};
pub use gps::{GpsPoint, GpsTrace};
pub use preference::DriverPreference;
pub use simulator::{simulate_fleet, SimulationConfig, Trip};
