//! HMM map matching (Newson & Krumm, 2009 style).
//!
//! Each GPS fix induces a layer of candidate road positions (projections
//! onto nearby edges). Emission likelihood is Gaussian in the projection
//! distance; transition likelihood penalises the difference between the
//! on-network route distance and the straight-line distance between
//! consecutive fixes (drivers rarely detour between two samples). Viterbi
//! decoding picks the most likely candidate sequence, which is then
//! stitched into a connected [`Path`] with shortest-path gap filling.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pathrank_spatial::algo::cch::Cch;
use pathrank_spatial::algo::ch::ContractionHierarchy;
use pathrank_spatial::algo::engine::QueryEngine;
use pathrank_spatial::algo::landmarks::LandmarkTable;
use pathrank_spatial::geometry::{project_onto_polyline, project_onto_segment, Point};
use pathrank_spatial::graph::{CostModel, EdgeId, Graph, VertexId};
use pathrank_spatial::osm::ImportedGraph;
use pathrank_spatial::path::Path;
use pathrank_spatial::rtree::RTree;

use crate::gps::GpsTrace;

/// Map matcher parameters.
#[derive(Debug, Clone)]
pub struct MapMatchConfig {
    /// Radius around each fix within which edges become candidates.
    pub candidate_radius_m: f64,
    /// GPS noise standard deviation (emission model), metres.
    pub sigma_m: f64,
    /// Transition scale β: larger tolerates bigger detours between fixes.
    pub beta_m: f64,
    /// Keep at most this many candidates per fix (closest first).
    pub max_candidates: usize,
    /// Weight of the heading-agreement emission term (0 disables it).
    pub heading_weight: f64,
    /// Lower bound on the [`EdgeIndex`] grid cell size, metres. The
    /// index is built with `candidate_radius_m.max(min_cell_m)` cells
    /// ([`MapMatchConfig::index_cell_m`]): cell size is a pure
    /// performance knob — [`EdgeIndex::edges_near`] returns a superset
    /// of the in-radius edges for *any* cell size — but tiny radii
    /// would otherwise build needlessly fine grids. This used to be a
    /// hidden `max(25.0)` deep in the index construction; it is a
    /// config field so the build and query sides can never silently
    /// disagree about which grid a radius is scanned against.
    pub min_cell_m: f64,
}

impl Default for MapMatchConfig {
    fn default() -> Self {
        MapMatchConfig {
            candidate_radius_m: 60.0,
            sigma_m: 10.0,
            beta_m: 12.0,
            max_candidates: 8,
            heading_weight: 3.0,
            min_cell_m: 25.0,
        }
    }
}

impl MapMatchConfig {
    /// The [`EdgeIndex`] cell size this configuration builds:
    /// `candidate_radius_m.max(min_cell_m)`.
    pub fn index_cell_m(&self) -> f64 {
        self.candidate_radius_m.max(self.min_cell_m)
    }
}

/// A uniform-grid spatial index over edges, for candidate lookup.
///
/// Contract: for **any** cell size, [`EdgeIndex::edges_near`] returns a
/// superset of every edge whose registered polyline passes within the
/// query radius of the query point — cell size trades memory against
/// over-scan, never correctness. Callers filter the superset by true
/// projection distance.
#[derive(Debug)]
pub struct EdgeIndex {
    cell_m: f64,
    cells: HashMap<(i32, i32), Vec<EdgeId>>,
}

impl EdgeIndex {
    /// Builds the index over straight endpoint chords; each edge is
    /// registered in every cell its endpoint bounding box touches.
    ///
    /// On graphs whose edges carry interior geometry (PR 5's degree-2
    /// chain contraction), the chord can lie arbitrarily far from the
    /// actual road — use [`EdgeIndex::build_with_geometry`] there, or a
    /// folded hairpin edge will never be returned near its apex.
    pub fn build(g: &Graph, cell_m: f64) -> Self {
        let mut cells: HashMap<(i32, i32), Vec<EdgeId>> = HashMap::new();
        let mut seen: HashSet<(i32, i32)> = HashSet::new();
        for (i, e) in g.edges().enumerate() {
            seen.clear();
            let a = g.coord(e.from);
            let b = g.coord(e.to);
            Self::register_segment(&mut cells, &mut seen, cell_m, &a, &b, EdgeId(i as u32));
        }
        EdgeIndex { cell_m, cells }
    }

    /// Builds the index over full edge polylines: every *segment* of
    /// `endpoint -> interior geometry -> endpoint` registers its
    /// bounding-box cells, so the grid covers the road where it actually
    /// runs. `geometry` is interior points per edge, aligned with edge
    /// ids (the [`ImportedGraph::edge_geometry`] layout); edges with
    /// empty geometry register exactly like [`EdgeIndex::build`].
    ///
    /// # Panics
    /// If `geometry.len() != g.edge_count()`.
    pub fn build_with_geometry(g: &Graph, geometry: &[Vec<Point>], cell_m: f64) -> Self {
        assert_eq!(
            geometry.len(),
            g.edge_count(),
            "interior geometry must be aligned with edge ids"
        );
        let mut cells: HashMap<(i32, i32), Vec<EdgeId>> = HashMap::new();
        let mut seen: HashSet<(i32, i32)> = HashSet::new();
        for (i, e) in g.edges().enumerate() {
            seen.clear();
            let id = EdgeId(i as u32);
            let end = g.coord(e.to);
            let mut prev = g.coord(e.from);
            for &p in geometry[i].iter().chain(std::iter::once(&end)) {
                Self::register_segment(&mut cells, &mut seen, cell_m, &prev, &p, id);
                prev = p;
            }
        }
        EdgeIndex { cell_m, cells }
    }

    /// Registers `id` in every cell the bounding box of `a -> b`
    /// touches; `seen` dedups cells across an edge's segments.
    fn register_segment(
        cells: &mut HashMap<(i32, i32), Vec<EdgeId>>,
        seen: &mut HashSet<(i32, i32)>,
        cell_m: f64,
        a: &Point,
        b: &Point,
        id: EdgeId,
    ) {
        let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
        let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
        let (cx0, cx1) = ((x0 / cell_m).floor() as i32, (x1 / cell_m).floor() as i32);
        let (cy0, cy1) = ((y0 / cell_m).floor() as i32, (y1 / cell_m).floor() as i32);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if seen.insert((cx, cy)) {
                    cells.entry((cx, cy)).or_default().push(id);
                }
            }
        }
    }

    /// The grid cell size this index was built with, metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Edges whose registered cells intersect the disc around `p` — a
    /// superset of all edges registered within `radius_m` of `p`,
    /// whatever cell size the index was built with (the scan covers
    /// `ceil(radius / cell)` cell rings, which always reaches every
    /// cell a within-radius point can fall in). Callers filter by true
    /// projection distance; a mismatched radius/cell pair only changes
    /// how many out-of-radius edges survive until that filter.
    pub fn edges_near(&self, p: &Point, radius_m: f64) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.edges_near_into(p, radius_m, &mut out);
        out
    }

    /// [`EdgeIndex::edges_near`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so a loop issuing many queries (one per GPS
    /// fix) reuses one allocation instead of building a fresh `Vec` per
    /// call. Results are identical to the allocating wrapper.
    pub fn edges_near_into(&self, p: &Point, radius_m: f64, out: &mut Vec<EdgeId>) {
        out.clear();
        let r_cells = (radius_m / self.cell_m).ceil() as i32;
        let (cx, cy) = (
            (p.x / self.cell_m).floor() as i32,
            (p.y / self.cell_m).floor() as i32,
        );
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(es) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(es);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// The matcher's candidate-snapping index: either the legacy uniform
/// [`EdgeIndex`] grid or the packed [`RTree`] over edge polyline
/// segments.
///
/// Both honour the same contract through [`SnapIndex::edges_near_into`]:
/// every edge whose registered geometry passes within the query radius is
/// returned, in ascending edge-id order, and the caller's true
/// projection-distance filter reduces either answer to the identical
/// candidate set (the grid over-approximates and relies on the filter;
/// the R-tree is already exact). `tests/rtree_exactness.rs` pins the two
/// to byte-identical match output.
#[derive(Debug)]
pub enum SnapIndex {
    /// Uniform grid over registered bounding-box cells; returns a
    /// superset of the in-radius edges.
    Grid(EdgeIndex),
    /// Packed STR-bulk-loaded R-tree; returns exactly the in-radius
    /// edges.
    RTree(RTree),
}

impl SnapIndex {
    /// Edges near `p`, written into a caller-owned buffer (cleared
    /// first): the grid's cell-ring superset or the R-tree's exact
    /// in-radius set, both sorted ascending and deduplicated.
    pub fn edges_near_into(&self, p: &Point, radius_m: f64, out: &mut Vec<EdgeId>) {
        match self {
            SnapIndex::Grid(ix) => ix.edges_near_into(p, radius_m, out),
            SnapIndex::RTree(rt) => rt.edges_within_into(p, radius_m, out),
        }
    }
}

/// Statistics of a matcher's shortest-path probe cache and its
/// many-to-many bulk fills ([`MapMatcher::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Route-distance probes issued by the HMM transition model.
    pub sp_probes: u64,
    /// Probes answered from the shared cache without a search.
    pub sp_cache_hits: u64,
    /// Many-to-many transition tables built (one per ping-to-ping block
    /// that still had uncached probe pairs; requires a CH-backed engine).
    pub m2m_tables: u64,
    /// Probe-cache entries bulk-filled by those tables — each is a
    /// pairwise shortest-path search the transition model no longer
    /// issues (the block's `S + T` upward sweeps replace them all).
    pub m2m_pairs: u64,
}

impl MatchStats {
    /// Fraction of probes served from the cache (`0.0` before any probe).
    pub fn hit_rate(&self) -> f64 {
        if self.sp_probes == 0 {
            0.0
        } else {
            self.sp_cache_hits as f64 / self.sp_probes as f64
        }
    }

    /// Pairwise probes avoided by the bucket-based many-to-many bulk
    /// fill: transition pairs whose route distance came out of a
    /// [`DistanceTable`](pathrank_spatial::algo::m2m::DistanceTable)
    /// instead of an individual engine search.
    pub fn probes_avoided_by_m2m(&self) -> u64 {
        self.m2m_pairs
    }

    /// Folds this snapshot into `registry`'s `pathrank_match_*` counter
    /// families. The counters are cumulative, so call this once per
    /// matcher lifetime (or with per-window deltas) — re-recording the
    /// same snapshot double-counts.
    pub fn record_into(&self, registry: &pathrank_obs::Registry) {
        let add = |name: &str, help: &str, n: u64| {
            registry.counter(name, help, &[]).add(n);
        };
        add(
            "pathrank_match_sp_probes_total",
            "Route-distance probes issued by the HMM transition model",
            self.sp_probes,
        );
        add(
            "pathrank_match_sp_cache_hits_total",
            "Probes answered from the shared fleet cache without a search",
            self.sp_cache_hits,
        );
        add(
            "pathrank_match_m2m_tables_total",
            "Many-to-many transition tables built during matching",
            self.m2m_tables,
        );
        add(
            "pathrank_match_m2m_pairs_total",
            "Probe-cache entries bulk-filled by m2m tables",
            self.m2m_pairs,
        );
    }
}

/// Shortest-path probe cache, keyed by `(source, target, metric)`.
///
/// Vehicles of one fleet drive the same corridors, so consecutive-fix
/// candidate pairs repeat heavily *across* traces — a [`MapMatcher`]
/// keeps one of these for its lifetime (the ROADMAP's fleet-level
/// sp-cache), while the one-shot entry points use a transient per-trace
/// one. Cached values are exactly what the engine would return, so the
/// cache can never change a match. `Custom` cost models bypass the cache
/// entirely (their per-edge costs may change between queries).
#[derive(Debug, Default)]
struct SpCache {
    map: HashMap<(u32, u32, u8), Option<f64>>,
    stats: MatchStats,
}

impl SpCache {
    /// Stable per-metric tag; `None` for uncacheable models.
    fn metric_tag(cost: &CostModel<'_>) -> Option<u8> {
        match cost {
            CostModel::Length => Some(0),
            CostModel::TravelTime => Some(1),
            CostModel::Custom(_) => None,
        }
    }

    /// `engine.shortest_path_cost(s, t, cost)` through the cache.
    fn probe(
        &mut self,
        engine: &mut QueryEngine<'_>,
        s: VertexId,
        t: VertexId,
        cost: CostModel<'_>,
    ) -> Option<f64> {
        let Some(tag) = Self::metric_tag(&cost) else {
            return engine.shortest_path_cost(s, t, cost);
        };
        self.stats.sp_probes += 1;
        match self.map.entry((s.0, t.0, tag)) {
            Entry::Occupied(e) => {
                self.stats.sp_cache_hits += 1;
                *e.get()
            }
            Entry::Vacant(e) => *e.insert(engine.shortest_path_cost(s, t, cost)),
        }
    }

    /// Bulk-fills the cache for one whole trace's transition blocks with
    /// a single bucket-based many-to-many table instead of one
    /// independent probe per candidate pair. Only pairs the transition
    /// model would actually probe ([`Transition::Probe`]) and that are
    /// not cached yet are gathered across every consecutive layer pair;
    /// trace-level batching is what makes the bucket algorithm pay off —
    /// a single ping-to-ping block has barely more pairs than distinct
    /// endpoints, but a trace revisits the same candidate endpoints over
    /// and over, so `S + T` upward sweeps replace several times that
    /// many searches. A break-even gate keeps warm-cache traces (where
    /// almost everything hits anyway) on the plain probe path, and only
    /// the gathered (previously uncached) pairs are written back — a
    /// cached answer is never overwritten. Filled values are the
    /// table's raw shortcut-weight sums: exact, and equal to what an
    /// engine probe would have cached up to float association
    /// (bit-identical on integer-weight graphs; a Viterbi decision
    /// could only differ on a score tie below that association error —
    /// the same class of tie-break caveat every backend switch in this
    /// workspace carries, locked in deterministically by
    /// `tests/m2m_exactness.rs`). A `None` from the engine (no CH
    /// covering the metric) leaves the cache untouched and the per-pair
    /// probes remain the fallback.
    fn bulk_fill(&mut self, engine: &mut QueryEngine<'_>, layers: &[Vec<Candidate>]) {
        let cost = CostModel::Length;
        let tag = Self::metric_tag(&cost).expect("length metric is cacheable");
        let g = engine.graph();
        let mut needed: Vec<(VertexId, VertexId)> = Vec::new();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for w in layers.windows(2) {
            for a in &w[0] {
                for b in &w[1] {
                    if let Transition::Probe(s, t, _) = transition_shape(g, a, b) {
                        if !self.map.contains_key(&(s.0, t.0, tag)) && seen.insert((s.0, t.0)) {
                            needed.push((s, t));
                        }
                    }
                }
            }
        }
        let mut sources: Vec<VertexId> = needed.iter().map(|&(s, _)| s).collect();
        sources.sort_unstable_by_key(|v| v.0);
        sources.dedup();
        let mut targets: Vec<VertexId> = needed.iter().map(|&(_, t)| t).collect();
        targets.sort_unstable_by_key(|v| v.0);
        targets.dedup();
        // Break-even gate: the fill costs ~one upward sweep per distinct
        // endpoint (about what one warm point-to-point probe costs), so
        // it must replace clearly more probes than it runs sweeps —
        // otherwise (e.g. a fleet-warmed cache) plain probing wins.
        if needed.is_empty() || 2 * needed.len() < 3 * (sources.len() + targets.len()) {
            return;
        }
        let Some(table) = engine.many_to_many(&sources, &targets, cost) else {
            return;
        };
        self.stats.m2m_tables += 1;
        for (s, t) in needed {
            let d = table.dist_between(s, t).expect("gathered endpoints");
            self.map.insert((s.0, t.0, tag), d.is_finite().then_some(d));
            self.stats.m2m_pairs += 1;
        }
    }
}

/// How one HMM transition is routed, shared by the per-pair probe path
/// and the many-to-many bulk fill so the two can never disagree about
/// which pairs need a network search.
enum Transition {
    /// Readable straight off the candidate geometry (same edge, or
    /// consecutive edges sharing a vertex): the on-network distance.
    Direct(f64),
    /// Needs the shortest-path distance `.0 -> .1`, to which the fixed
    /// partial-edge contribution `.2` (tail of the first edge + head of
    /// the second) is added.
    Probe(VertexId, VertexId, f64),
}

/// Classifies the transition from candidate `a` to candidate `b`.
fn transition_shape(g: &Graph, a: &Candidate, b: &Candidate) -> Transition {
    let (ea, eb) = (g.edge(a.edge), g.edge(b.edge));
    if a.edge == b.edge {
        let delta = (b.t - a.t) * ea.attrs.length_m;
        // Small backward jitter is GPS noise, not a loop around the
        // block; treat it as (almost) standing still.
        if delta >= -30.0 {
            return Transition::Direct(delta.abs());
        }
    }
    let tail = (1.0 - a.t) * ea.attrs.length_m;
    let head = b.t * eb.attrs.length_m;
    if ea.to == eb.from {
        Transition::Direct(tail + head)
    } else {
        Transition::Probe(ea.to, eb.from, tail + head)
    }
}

/// A reusable matcher: one [`SnapIndex`], one [`QueryEngine`] and one
/// shared shortest-path cache serving any number of traces.
///
/// [`map_match_with`] already reuses a caller's engine, but it still
/// rebuilds the `O(E)` spatial index per trace; batch callers (dataset
/// assembly, servers) hold a `MapMatcher` instead, which hoists the index
/// build out of the per-trace loop entirely and shares the probe cache
/// across a whole fleet ([`MapMatcher::stats`] reports its hit rate).
/// Snapping runs on the packed [`RTree`] by default; the
/// [`MapMatcher::new_with_grid`] constructors keep the uniform grid
/// available for comparison (matches are identical either way).
/// The engine can additionally carry ALT landmarks
/// ([`MapMatcher::with_landmarks`]) or a contraction hierarchy
/// ([`MapMatcher::with_ch`]) so every HMM transition probe and
/// gap-filling search takes the strongest available backend — probes are
/// exact either way, so matches are unaffected apart from equal-cost
/// tie-breaking.
pub struct MapMatcher<'g> {
    engine: QueryEngine<'g>,
    index: SnapIndex,
    cfg: MapMatchConfig,
    cache: SpCache,
    /// Interior edge geometry for imported graphs (aligned with edge
    /// ids); `None` on plain graphs, where every edge is its chord.
    /// Drives both the spatial index build and candidate projection,
    /// so the two always agree about where an edge runs.
    geometry: Option<&'g [Vec<Point>]>,
    /// Whether CH-backed matchers bulk-fill transition blocks through
    /// the bucket-based many-to-many tables (on by default; a no-op
    /// without a CH covering the probe metric).
    m2m: bool,
}

impl<'g> MapMatcher<'g> {
    /// Builds the matcher: bulk-loads the packed [`RTree`] over the
    /// graph's edge chords once and allocates the reusable engine.
    pub fn new(g: &'g Graph, cfg: MapMatchConfig) -> Self {
        let index = SnapIndex::RTree(RTree::build(g));
        MapMatcher {
            engine: QueryEngine::new(g),
            index,
            cfg,
            cache: SpCache::default(),
            geometry: None,
            m2m: true,
        }
    }

    /// [`MapMatcher::new`] for graphs whose edges carry interior
    /// geometry: the R-tree indexes full polylines
    /// ([`RTree::build_with_geometry`]) and candidates project onto
    /// them, so contracted chains — whose chord can be hundreds of
    /// metres from the actual road — still produce candidates near any
    /// point of the road. `geometry` is interior points per edge,
    /// aligned with edge ids.
    ///
    /// # Panics
    /// If `geometry.len() != g.edge_count()`.
    pub fn new_with_geometry(
        g: &'g Graph,
        geometry: &'g [Vec<Point>],
        cfg: MapMatchConfig,
    ) -> Self {
        let index = SnapIndex::RTree(RTree::build_with_geometry(g, geometry));
        MapMatcher {
            engine: QueryEngine::new(g),
            index,
            cfg,
            cache: SpCache::default(),
            geometry: Some(geometry),
            m2m: true,
        }
    }

    /// [`MapMatcher::new`] snapping against the uniform
    /// [`EdgeIndex`] grid (cell size [`MapMatchConfig::index_cell_m`])
    /// instead of the R-tree. Matches are identical — the grid's
    /// superset answer collapses to the same candidate set under the
    /// true-distance filter — so this exists for A/B measurement and as
    /// the reference the R-tree is pinned against.
    pub fn new_with_grid(g: &'g Graph, cfg: MapMatchConfig) -> Self {
        let index = SnapIndex::Grid(EdgeIndex::build(g, cfg.index_cell_m()));
        MapMatcher {
            engine: QueryEngine::new(g),
            index,
            cfg,
            cache: SpCache::default(),
            geometry: None,
            m2m: true,
        }
    }

    /// [`MapMatcher::new_with_geometry`] on the uniform grid
    /// ([`EdgeIndex::build_with_geometry`]) instead of the R-tree.
    ///
    /// # Panics
    /// If `geometry.len() != g.edge_count()`.
    pub fn new_with_grid_geometry(
        g: &'g Graph,
        geometry: &'g [Vec<Point>],
        cfg: MapMatchConfig,
    ) -> Self {
        let index = SnapIndex::Grid(EdgeIndex::build_with_geometry(
            g,
            geometry,
            cfg.index_cell_m(),
        ));
        MapMatcher {
            engine: QueryEngine::new(g),
            index,
            cfg,
            cache: SpCache::default(),
            geometry: Some(geometry),
            m2m: true,
        }
    }

    /// Convenience [`MapMatcher::new_with_geometry`] over an OSM
    /// [`ImportedGraph`] (graph plus its retained contraction
    /// geometry).
    pub fn for_imported(imported: &'g ImportedGraph, cfg: MapMatchConfig) -> Self {
        Self::new_with_geometry(&imported.graph, &imported.edge_geometry, cfg)
    }

    /// Attaches ALT landmarks to the matcher's engine (see
    /// [`QueryEngine::with_landmarks`]); transition probes fall back to
    /// plain searches automatically if the table's metric ever stops
    /// matching the probes' cost model.
    pub fn with_landmarks(mut self, table: Arc<LandmarkTable>) -> Self {
        self.engine = self.engine.with_landmarks(table);
        self
    }

    /// Attaches a contraction hierarchy (see [`QueryEngine::with_ch`]):
    /// the HMM transition probes and gap-filling searches are exactly the
    /// unconstrained point-to-point shape the CH backend accelerates.
    pub fn with_ch(mut self, ch: Arc<ContractionHierarchy>) -> Self {
        self.engine = self.engine.with_ch(ch);
        self
    }

    /// Attaches a customized CCH (see [`QueryEngine::with_cch`]): same
    /// acceleration shape as [`MapMatcher::with_ch`], but the index is
    /// re-customizable in milliseconds, so congestion-aware matching can
    /// follow live weight changes. The engine's weights-epoch gate drops
    /// the index automatically if the graph's weights mutate after it was
    /// customized.
    pub fn with_cch(mut self, cch: Arc<Cch>) -> Self {
        self.engine = self.engine.with_cch(cch);
        self
    }

    /// Enables or disables the many-to-many transition bulk fill
    /// (enabled by default). Exists for A/B measurement — the fill only
    /// changes how transition distances are computed, never the match
    /// (locked in by `tests/m2m_exactness.rs`).
    pub fn with_m2m(mut self, enabled: bool) -> Self {
        self.m2m = enabled;
        self
    }

    /// The matcher configuration.
    pub fn config(&self) -> &MapMatchConfig {
        &self.cfg
    }

    /// Cumulative probe-cache statistics across every trace this matcher
    /// has served.
    pub fn stats(&self) -> MatchStats {
        self.cache.stats
    }

    /// Clears the shared probe cache and its counters (e.g. between
    /// fleets whose traffic patterns differ).
    pub fn reset_cache(&mut self) {
        self.cache = SpCache::default();
    }

    /// The spatial index (built once in [`MapMatcher::new`]; exposed so
    /// tests can assert it is reused across traces).
    pub fn index(&self) -> &SnapIndex {
        &self.index
    }

    /// Matches one trace; equivalent to [`map_match`] but with the index,
    /// engine and probe cache shared across calls.
    pub fn match_trace(&mut self, trace: &GpsTrace) -> Option<Path> {
        match_on(
            &mut self.engine,
            &self.index,
            self.geometry,
            trace,
            &self.cfg,
            &mut self.cache,
            self.m2m,
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    edge: EdgeId,
    /// Fractional position of the projection along the edge, `[0, 1]` —
    /// segment fraction for straight edges, *arclength* fraction of the
    /// full polyline for edges with interior geometry.
    t: f64,
    /// Distance from the fix to the projection, metres.
    dist: f64,
    /// Cosine between the vehicle heading and the local road direction
    /// at the projection.
    heading_cos: f64,
    /// The projected road position itself. Computed from the same
    /// formula as `coord(from).lerp(coord(to), t)` on straight edges;
    /// on geometry edges it is the true polyline point, which the
    /// endpoint lerp cannot reconstruct.
    pos: Point,
}

/// Matches a GPS trace onto the network.
///
/// Returns `None` when the trace is too short or no consistent candidate
/// chain exists (e.g. every fix is far from any road).
///
/// One-shot convenience over [`map_match_with`], which reuses a
/// caller-provided [`QueryEngine`] across traces — the HMM transition
/// model probes a shortest path between every candidate pair of
/// consecutive GPS fixes, so matching is routing-query dominated.
pub fn map_match(g: &Graph, trace: &GpsTrace, cfg: &MapMatchConfig) -> Option<Path> {
    map_match_with(&mut QueryEngine::new(g), trace, cfg)
}

/// [`map_match`] on a caller-provided engine: all route-distance probes
/// (many per fix pair) and gap-filling searches reuse the engine's
/// search state instead of allocating per query. Still builds the
/// spatial index per call — batch callers hold a [`MapMatcher`], which
/// hoists that too.
pub fn map_match_with(
    engine: &mut QueryEngine<'_>,
    trace: &GpsTrace,
    cfg: &MapMatchConfig,
) -> Option<Path> {
    if trace.len() < 2 {
        return None;
    }
    let index = SnapIndex::RTree(RTree::build(engine.graph()));
    match_on(
        engine,
        &index,
        None,
        trace,
        cfg,
        &mut SpCache::default(),
        true,
    )
}

/// The matcher core: candidate layers from a prebuilt index (projecting
/// onto full polylines when `geometry` is given), Viterbi over
/// engine-probed route distances (through `sp_cache`, bulk-filled
/// block-by-block from many-to-many tables when `use_m2m` and the engine
/// carries a CH covering the probe metric), stitching.
#[allow(clippy::too_many_arguments)]
fn match_on(
    engine: &mut QueryEngine<'_>,
    index: &SnapIndex,
    geometry: Option<&[Vec<Point>]>,
    trace: &GpsTrace,
    cfg: &MapMatchConfig,
    sp_cache: &mut SpCache,
    use_m2m: bool,
) -> Option<Path> {
    let g = engine.graph();
    if trace.len() < 2 {
        return None;
    }

    // Movement heading at each fix (central difference), used to
    // disambiguate the two directed twins of a bidirectional street.
    let headings: Vec<Option<(f64, f64)>> = (0..trace.points.len())
        .map(|i| {
            let before = &trace.points[i.saturating_sub(1)].pos;
            let after = &trace.points[(i + 1).min(trace.points.len() - 1)].pos;
            let (dx, dy) = (after.x - before.x, after.y - before.y);
            let norm = (dx * dx + dy * dy).sqrt();
            (norm > 5.0).then_some((dx / norm, dy / norm))
        })
        .collect();

    // Candidate layers; fixes with no nearby road are skipped entirely.
    // `poly` is a scratch buffer assembling `from -> interior -> to`
    // polylines for geometry edges (reused across candidates); `near`
    // is the snapping buffer one index query per fix refills in place.
    let mut poly: Vec<Point> = Vec::new();
    let mut near: Vec<EdgeId> = Vec::new();
    let mut layers: Vec<Vec<Candidate>> = Vec::with_capacity(trace.len());
    for (fi, fix) in trace.points.iter().enumerate() {
        index.edges_near_into(&fix.pos, cfg.candidate_radius_m, &mut near);
        let mut cands: Vec<Candidate> = near
            .iter()
            .filter_map(|&e| {
                let rec = g.edge(e);
                let (a, b) = (g.coord(rec.from), g.coord(rec.to));
                let interior = geometry.map_or(&[][..], |gm| gm[e.index()].as_slice());
                // (t, distance, projected point, local road direction):
                // straight edges keep the segment projection bit-for-bit;
                // geometry edges project onto the true polyline, whose
                // local direction — not the chord's — feeds the heading
                // term (a hairpin's chord points nowhere useful).
                let (t, dist, pos, dir) = if interior.is_empty() {
                    let proj = project_onto_segment(&fix.pos, &a, &b);
                    (proj.t, proj.distance, proj.point, (b.x - a.x, b.y - a.y))
                } else {
                    poly.clear();
                    poly.push(a);
                    poly.extend_from_slice(interior);
                    poly.push(b);
                    let proj = project_onto_polyline(&fix.pos, &poly);
                    let (sa, sb) = (poly[proj.segment], poly[proj.segment + 1]);
                    (
                        proj.t,
                        proj.distance,
                        proj.point,
                        (sb.x - sa.x, sb.y - sa.y),
                    )
                };
                if dist > cfg.candidate_radius_m {
                    return None;
                }
                // Heading agreement in [-1, 1]; 1 when driving along the
                // road direction, -1 against it.
                let heading_cos = headings[fi].map_or(0.0, |(hx, hy)| {
                    let (ex, ey) = dir;
                    let en = (ex * ex + ey * ey).sqrt().max(1e-9);
                    hx * ex / en + hy * ey / en
                });
                Some(Candidate {
                    edge: e,
                    t,
                    dist,
                    heading_cos,
                    pos,
                })
            })
            .collect();
        cands.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        cands.truncate(cfg.max_candidates);
        if !cands.is_empty() {
            layers.push(cands);
        }
    }
    if layers.len() < 2 {
        return None;
    }

    // Viterbi: Gaussian emission on projection distance plus a heading
    // agreement bonus that separates direction twins.
    let emission = |c: &Candidate| {
        -(c.dist * c.dist) / (2.0 * cfg.sigma_m * cfg.sigma_m)
            + cfg.heading_weight * (c.heading_cos - 1.0)
    };
    let route_dist = |sp_cache: &mut SpCache,
                      engine: &mut QueryEngine<'_>,
                      a: &Candidate,
                      b: &Candidate|
     -> Option<f64> {
        match transition_shape(engine.graph(), a, b) {
            Transition::Direct(d) => Some(d),
            // The cost-only probe never materialises a path, so cache
            // misses allocate nothing on the reused engine; a
            // `MapMatcher` carries the cache across traces, so
            // fleet-repeated corridors hit it — and on a CH-backed
            // engine the whole block was bulk-filled beforehand.
            Transition::Probe(s, t, fixed) => sp_cache
                .probe(engine, s, t, CostModel::Length)
                .map(|d| fixed + d),
        }
    };

    let mut score: Vec<f64> = layers[0].iter().map(emission).collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(layers.len());
    // Road positions come straight off the candidates: for straight
    // edges `c.pos` is the same `coord(from) + t · (coord(to) -
    // coord(from))` expression the old endpoint lerp computed
    // (bit-identical); for geometry edges it is the true polyline point.
    let positions: Vec<Vec<Point>> = layers
        .iter()
        .map(|layer| layer.iter().map(|c| c.pos).collect())
        .collect();

    // One DistanceTable call per trace: every probe-shaped candidate
    // pair of every ping-to-ping block lands in the cache before the
    // Viterbi loop reads it (the loop itself is unchanged; see
    // `SpCache::bulk_fill` for the exactness contract).
    if use_m2m && engine.uses_ch(CostModel::Length) {
        sp_cache.bulk_fill(engine, &layers);
    }
    for li in 1..layers.len() {
        let mut next_score = vec![f64::NEG_INFINITY; layers[li].len()];
        let mut next_back = vec![0usize; layers[li].len()];
        for (j, cand) in layers[li].iter().enumerate() {
            let em = emission(cand);
            for (i, prev) in layers[li - 1].iter().enumerate() {
                if score[i] == f64::NEG_INFINITY {
                    continue;
                }
                let Some(route) = route_dist(sp_cache, engine, prev, cand) else {
                    continue;
                };
                let gc = positions[li - 1][i].distance(&positions[li][j]);
                // Severely detouring transitions are pruned outright.
                if route > 4.0 * gc + 400.0 {
                    continue;
                }
                let trans = -(route - gc).abs() / cfg.beta_m;
                let s = score[i] + trans + em;
                if s > next_score[j] {
                    next_score[j] = s;
                    next_back[j] = i;
                }
            }
        }
        // A fully disconnected layer would strand Viterbi; restart scores
        // from emissions (handles long GPS gaps gracefully).
        if next_score.iter().all(|&s| s == f64::NEG_INFINITY) {
            next_score = layers[li].iter().map(emission).collect();
        }
        score = next_score;
        back.push(next_back);
    }

    // Backtrack the best chain of candidates.
    let mut best = 0usize;
    for (i, &s) in score.iter().enumerate() {
        if s > score[best] {
            best = i;
        }
    }
    if score[best] == f64::NEG_INFINITY {
        return None;
    }
    let mut chain_rev = vec![best];
    for b in back.iter().rev() {
        chain_rev.push(b[*chain_rev.last().expect("non-empty")]);
    }
    chain_rev.reverse();
    let matched: Vec<Candidate> = chain_rev
        .iter()
        .enumerate()
        .map(|(li, &ci)| layers[li][ci])
        .collect();

    stitch(engine, &matched)
}

/// Stitches a candidate chain into a connected path, filling gaps between
/// consecutive matched edges with shortest paths.
fn stitch(engine: &mut QueryEngine<'_>, matched: &[Candidate]) -> Option<Path> {
    let g = engine.graph();
    let mut edges: Vec<EdgeId> = Vec::new();
    for c in matched {
        match edges.last() {
            None => edges.push(c.edge),
            Some(&last) if last == c.edge => {}
            Some(&last) => {
                let (prev, cur) = (g.edge(last), g.edge(c.edge));
                if prev.to != cur.from {
                    match engine.shortest_path(prev.to, cur.from, CostModel::Length) {
                        Some(gap) => edges.extend_from_slice(gap.edges()),
                        None => return None,
                    }
                }
                edges.push(c.edge);
            }
        }
    }
    // Remove immediate back-and-forth artifacts (e, reverse(e)) produced by
    // noisy fixes projecting onto both directions of the same street.
    let mut cleaned: Vec<EdgeId> = Vec::with_capacity(edges.len());
    for e in edges {
        if let Some(&last) = cleaned.last() {
            let (a, b) = (g.edge(last), g.edge(e));
            if a.from == b.to && a.to == b.from {
                cleaned.pop();
                continue;
            }
        }
        cleaned.push(e);
    }
    // Trim barely-touched terminal edges: a first candidate projecting at
    // the very end of its edge (t ≈ 1) means the vehicle only started
    // *after* that edge; symmetrically for the last candidate at t ≈ 0.
    if cleaned.len() >= 2 {
        if matched
            .first()
            .is_some_and(|c| c.t >= 0.9 && cleaned[0] == c.edge)
        {
            cleaned.remove(0);
        }
        if cleaned.len() >= 2
            && matched
                .last()
                .is_some_and(|c| c.t <= 0.1 && *cleaned.last().unwrap() == c.edge)
        {
            cleaned.pop();
        }
    }
    if cleaned.is_empty() {
        return None;
    }
    Path::from_edges(g, cleaned).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{simulate_fleet, SimulationConfig};
    use pathrank_spatial::generators::{region_network, RegionConfig};
    use pathrank_spatial::similarity::{weighted_jaccard, EdgeWeight};

    #[test]
    fn edge_index_finds_nearby_edges() {
        let g = region_network(&RegionConfig::small_test(), 2);
        let index = EdgeIndex::build(&g, 100.0);
        // A point on a known vertex must see that vertex's incident edges.
        let v = pathrank_spatial::graph::VertexId(0);
        let p = g.coord(v);
        let near = index.edges_near(&p, 60.0);
        for (_, e) in g.out_edges(v) {
            assert!(near.contains(&e), "index must return incident edge {e:?}");
        }
    }

    /// A contracted hairpin: endpoints 40 m apart on the baseline, but
    /// the road itself loops 300 m north through retained interior
    /// geometry, then continues east to `c`. Edge 0/1 are the two
    /// directions of the hairpin, edge 2/3 the straight continuation.
    fn hairpin_graph() -> (pathrank_spatial::graph::Graph, Vec<Vec<Point>>) {
        use pathrank_spatial::builder::GraphBuilder;
        use pathrank_spatial::graph::{EdgeAttrs, RoadCategory};
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(40.0, 0.0));
        let c = b.add_vertex(Point::new(240.0, 0.0));
        // Polyline a -> (0,300) -> (40,300) -> v: 300 + 40 + 300 m.
        b.add_bidirectional(
            a,
            v,
            EdgeAttrs::with_default_speed(640.0, RoadCategory::Residential),
        )
        .unwrap();
        b.add_bidirectional(
            v,
            c,
            EdgeAttrs::with_default_speed(200.0, RoadCategory::Residential),
        )
        .unwrap();
        let g = b.build();
        let up = vec![Point::new(0.0, 300.0), Point::new(40.0, 300.0)];
        let down = vec![Point::new(40.0, 300.0), Point::new(0.0, 300.0)];
        let geometry = vec![up, down, vec![], vec![]];
        (g, geometry)
    }

    #[test]
    fn hairpin_edge_is_invisible_to_the_endpoint_index() {
        // The regression this PR fixes: the endpoint-bbox index only
        // registers the 40 m chord at y = 0, so a fix at the hairpin's
        // apex — 300 m up, directly ON the road — returns nothing.
        let (g, geometry) = hairpin_graph();
        let apex = Point::new(20.0, 300.0);
        let old = EdgeIndex::build(&g, 60.0);
        assert!(
            old.edges_near(&apex, 60.0).is_empty(),
            "old endpoint index must provably miss the hairpin (the bug)"
        );
        let fixed = EdgeIndex::build_with_geometry(&g, &geometry, 60.0);
        let near = fixed.edges_near(&apex, 60.0);
        assert!(
            near.contains(&EdgeId(0)) && near.contains(&EdgeId(1)),
            "polyline index must return both hairpin directions, got {near:?}"
        );
        // Straight edges register identically in both indexes.
        let on_straight = Point::new(140.0, 10.0);
        assert_eq!(
            old.edges_near(&on_straight, 60.0),
            fixed.edges_near(&on_straight, 60.0)
        );
    }

    #[test]
    fn hairpin_trace_matches_through_the_geometry_matcher() {
        let (g, geometry) = hairpin_graph();
        let trace = GpsTrace {
            vehicle: 0,
            points: [
                Point::new(2.0, 80.0),
                Point::new(-3.0, 220.0),
                Point::new(18.0, 303.0),
                Point::new(43.0, 210.0),
                Point::new(38.0, 60.0),
                Point::new(110.0, 4.0),
                Point::new(210.0, -3.0),
            ]
            .iter()
            .enumerate()
            .map(|(i, &pos)| crate::gps::GpsPoint {
                pos,
                t_s: i as f64 * 5.0,
            })
            .collect(),
        };
        let cfg = MapMatchConfig::default();

        // A chord-built matcher (grid or R-tree alike) cannot see the
        // hairpin: every fix on the loop has no candidate, so the
        // matched route misses edge 0.
        let mut old = MapMatcher::new(&g, cfg.clone());
        let old_match = old.match_trace(&trace);
        assert!(
            !old_match.is_some_and(|p| p.edges().contains(&EdgeId(0))),
            "endpoint index must lose the hairpin edge (the bug)"
        );

        // The geometry matcher recovers the true route: around the
        // hairpin (edge 0), then the straight continuation (edge 2).
        let mut fixed = MapMatcher::new_with_geometry(&g, &geometry, cfg);
        let p = fixed
            .match_trace(&trace)
            .expect("geometry matcher must match the hairpin trace");
        assert!(
            p.edges().contains(&EdgeId(0)),
            "matched route must include the hairpin, got {:?}",
            p.edges()
        );
        assert!(
            p.edges().contains(&EdgeId(2)),
            "matched route must continue east, got {:?}",
            p.edges()
        );
    }

    #[test]
    fn edges_near_filtered_sets_are_stable_across_cell_sizes() {
        use pathrank_spatial::geometry::point_segment_distance;
        // The documented contract: whatever cell size the grid was
        // built with — including every historical radius/cell mismatch
        // — the superset survives the true-distance filter as exactly
        // the brute-force in-radius edge set.
        let g = region_network(&RegionConfig::small_test(), 2);
        let n = g.vertex_count() as u32;
        let probes: Vec<Point> = [0, n / 3, n / 2, n - 1]
            .iter()
            .map(|&v| {
                let p = g.coord(pathrank_spatial::graph::VertexId(v));
                Point::new(p.x + 3.0, p.y - 4.0)
            })
            .collect();
        let true_within = |p: &Point, r: f64| -> Vec<EdgeId> {
            g.edges()
                .enumerate()
                .filter(|(_, e)| point_segment_distance(p, &g.coord(e.from), &g.coord(e.to)) <= r)
                .map(|(i, _)| EdgeId(i as u32))
                .collect()
        };
        for &radius in &[5.0, 25.0, 60.0, 140.0] {
            for &cell in &[10.0, 25.0, 60.0, 200.0] {
                let index = EdgeIndex::build(&g, cell);
                assert_eq!(index.cell_m(), cell);
                for p in &probes {
                    let got: Vec<EdgeId> = index
                        .edges_near(p, radius)
                        .into_iter()
                        .filter(|&e| {
                            let rec = g.edge(e);
                            point_segment_distance(p, &g.coord(rec.from), &g.coord(rec.to))
                                <= radius
                        })
                        .collect();
                    let want = true_within(p, radius);
                    assert_eq!(got, want, "cell {cell} radius {radius} at {p:?}");
                }
            }
        }
    }

    #[test]
    fn edges_near_into_matches_wrapper_and_reuses_buffer() {
        let g = region_network(&RegionConfig::small_test(), 2);
        let index = EdgeIndex::build(&g, 60.0);
        let mut buf = vec![EdgeId(99)]; // stale content must be cleared
        for v in [0u32, 5, 11] {
            let p = g.coord(pathrank_spatial::graph::VertexId(v));
            index.edges_near_into(&p, 80.0, &mut buf);
            assert_eq!(buf, index.edges_near(&p, 80.0));
        }
    }

    #[test]
    fn grid_and_rtree_matchers_agree() {
        // The snapping index is a pure lookup structure: the R-tree
        // default and the grid reference must match every trace to the
        // same edge sequence (the full property harness lives in
        // `tests/rtree_exactness.rs`).
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let cfg = MapMatchConfig::default();
        let mut rtree = MapMatcher::new(&g, cfg.clone());
        let mut grid = MapMatcher::new_with_grid(&g, cfg);
        for trip in trips.iter().take(6) {
            let a = rtree.match_trace(&trip.trace);
            let b = grid.match_trace(&trip.trace);
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.edges(), b.edges()),
                (None, None) => {}
                (a, b) => panic!("snap index changed a match: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn index_cell_size_is_explicit() {
        // Small radii are floored by `min_cell_m`; large radii use the
        // radius itself. The matcher's index must agree with the config.
        let small = MapMatchConfig {
            candidate_radius_m: 10.0,
            ..Default::default()
        };
        assert_eq!(small.index_cell_m(), 25.0);
        let large = MapMatchConfig::default();
        assert_eq!(large.index_cell_m(), 60.0);
        let g = region_network(&RegionConfig::small_test(), 2);
        let matcher = MapMatcher::new_with_grid(&g, small.clone());
        match matcher.index() {
            SnapIndex::Grid(ix) => assert_eq!(ix.cell_m(), small.index_cell_m()),
            SnapIndex::RTree(_) => panic!("grid constructor must build a grid"),
        }
        // The default constructor snaps on the R-tree.
        let default = MapMatcher::new(&g, large);
        assert!(matches!(default.index(), SnapIndex::RTree(_)));
    }

    #[test]
    fn matches_low_noise_traces_accurately() {
        let g = region_network(&RegionConfig::small_test(), 4);
        let mut sim_cfg = SimulationConfig::small_test();
        sim_cfg.gps_noise_std_m = 4.0;
        sim_cfg.sampling_interval_s = 4.0;
        let trips = simulate_fleet(&g, &sim_cfg, 17);
        let mm = MapMatchConfig {
            sigma_m: 6.0,
            ..Default::default()
        };

        let mut total_sim = 0.0;
        let mut matched_count = 0usize;
        for trip in trips.iter().take(8) {
            let Some(matched) = map_match(&g, &trip.trace, &mm) else {
                continue;
            };
            matched.validate(&g).unwrap();
            total_sim += weighted_jaccard(&g, &matched, &trip.path, EdgeWeight::Length);
            matched_count += 1;
        }
        assert!(
            matched_count >= 6,
            "most traces must match ({matched_count}/8)"
        );
        let avg = total_sim / matched_count as f64;
        assert!(avg > 0.9, "average matched similarity too low: {avg:.3}");
    }

    #[test]
    fn reused_engine_matches_identically() {
        // One engine across all traces must reproduce the one-shot
        // matcher's output exactly — the map-matching face of the
        // stale-generation bug class.
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let cfg = MapMatchConfig::default();
        let mut engine = QueryEngine::new(&g);
        for trip in trips.iter().take(6) {
            let fresh = map_match(&g, &trip.trace, &cfg);
            let reused = map_match_with(&mut engine, &trip.trace, &cfg);
            match (fresh, reused) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.vertices(), b.vertices());
                    assert_eq!(a.edges(), b.edges());
                }
                (None, None) => {}
                (a, b) => panic!("match divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn matcher_reuses_one_index_across_traces() {
        // The ROADMAP fix: `map_match_with` rebuilt the spatial grid per
        // trace; a MapMatcher must hold one index for its lifetime and
        // still reproduce the one-shot matcher's output exactly.
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let cfg = MapMatchConfig::default();
        let mut matcher = MapMatcher::new(&g, cfg.clone());
        let index_ptr: *const SnapIndex = matcher.index();
        for trip in trips.iter().take(6) {
            let fresh = map_match(&g, &trip.trace, &cfg);
            let hoisted = matcher.match_trace(&trip.trace);
            match (fresh, hoisted) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.vertices(), b.vertices());
                    assert_eq!(a.edges(), b.edges());
                }
                (None, None) => {}
                (a, b) => panic!("match divergence: {a:?} vs {b:?}"),
            }
            assert!(
                std::ptr::eq(index_ptr, matcher.index()),
                "matcher must keep one index across traces"
            );
        }
    }

    #[test]
    fn alt_matcher_recovers_routes_like_plain_matcher() {
        use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
        use std::sync::Arc;
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let table = Arc::new(LandmarkTable::build(
            &g,
            LandmarkMetric::Length,
            &LandmarkConfig::default(),
        ));
        let cfg = MapMatchConfig::default();
        let mut plain = MapMatcher::new(&g, cfg.clone());
        let mut alt = MapMatcher::new(&g, cfg).with_landmarks(table);
        for trip in trips.iter().take(6) {
            // ALT probes return bit-identical route costs, so the Viterbi
            // decisions — and the matched routes — must agree.
            let a = plain.match_trace(&trip.trace);
            let b = alt.match_trace(&trip.trace);
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.edges(), b.edges()),
                (None, None) => {}
                (a, b) => panic!("ALT match divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn fleet_sp_cache_hits_across_traces_without_changing_matches() {
        // The ROADMAP's fleet-level sp-cache: corridors repeat across a
        // fleet's traces, so the shared cache must (a) actually hit and
        // (b) never change a match (cached values are exactly what the
        // engine would return).
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let cfg = MapMatchConfig::default();
        let mut matcher = MapMatcher::new(&g, cfg.clone());
        assert_eq!(matcher.stats(), MatchStats::default());
        for trip in trips.iter().take(8) {
            let fresh = map_match(&g, &trip.trace, &cfg);
            let cached = matcher.match_trace(&trip.trace);
            match (fresh, cached) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.vertices(), b.vertices());
                    assert_eq!(a.edges(), b.edges());
                }
                (None, None) => {}
                (a, b) => panic!("cache changed a match: {a:?} vs {b:?}"),
            }
        }
        let stats = matcher.stats();
        assert!(stats.sp_probes > 0, "HMM probes must go through the cache");
        assert!(
            stats.sp_cache_hits > 0,
            "fleet traces share corridors; the cache must hit"
        );
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() <= 1.0);
        // Without a CH there is nothing to bulk-fill from.
        assert_eq!(stats.m2m_tables, 0);
        assert_eq!(stats.probes_avoided_by_m2m(), 0);
        matcher.reset_cache();
        assert_eq!(matcher.stats(), MatchStats::default());

        // The CH-backed matcher serves the same fleet through bulk
        // many-to-many fills: the avoided-probe counter must move and
        // every remaining probe must hit the pre-filled cache.
        use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use std::sync::Arc;
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig::default(),
        ));
        let mut fast = MapMatcher::new(&g, cfg).with_ch(ch);
        for trip in trips.iter().take(8) {
            fast.match_trace(&trip.trace);
        }
        let stats = fast.stats();
        assert!(stats.m2m_tables > 0, "CH matcher must build m2m tables");
        assert!(
            stats.probes_avoided_by_m2m() > 0,
            "bulk fills must avoid pairwise probes"
        );
        // Bulk-filled traces turn former misses into hits; only traces
        // the break-even gate kept on the plain path may still miss.
        assert!(
            stats.hit_rate() > 0.9,
            "bulk-filled fleet should probe almost entirely from cache \
             (hit rate {:.3})",
            stats.hit_rate()
        );
    }

    #[test]
    fn ch_matcher_recovers_routes_like_plain_matcher() {
        use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use std::sync::Arc;
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig::default(),
        ));
        let cfg = MapMatchConfig::default();
        let mut plain = MapMatcher::new(&g, cfg.clone());
        let mut fast = MapMatcher::new(&g, cfg).with_ch(ch);
        for trip in trips.iter().take(6) {
            // CH probes return exact route costs, so the Viterbi
            // decisions — and the matched routes — must agree (the
            // region's float geometry makes optima unique).
            let a = plain.match_trace(&trip.trace);
            let b = fast.match_trace(&trip.trace);
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.edges(), b.edges()),
                (None, None) => {}
                (a, b) => panic!("CH match divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn m2m_toggle_does_not_change_matches() {
        // The bulk fill replaces per-pair engine probes with table
        // lookups; the matched edge sequences must be unchanged.
        use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use std::sync::Arc;
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig::default(),
        ));
        let cfg = MapMatchConfig::default();
        let mut on = MapMatcher::new(&g, cfg.clone()).with_ch(Arc::clone(&ch));
        let mut off = MapMatcher::new(&g, cfg).with_ch(ch).with_m2m(false);
        for trip in trips.iter().take(8) {
            let a = on.match_trace(&trip.trace);
            let b = off.match_trace(&trip.trace);
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.edges(), b.edges()),
                (None, None) => {}
                (a, b) => panic!("m2m toggle changed a match: {a:?} vs {b:?}"),
            }
        }
        assert!(on.stats().m2m_tables > 0, "m2m on must build tables");
        assert_eq!(off.stats().m2m_tables, 0, "m2m off must not");
    }

    #[test]
    fn m2m_metric_mismatch_falls_back_to_probe_cache() {
        // A TravelTime-metric CH cannot serve the Length transition
        // probes: the bulk fill must stay inert and the sp-cache path
        // must carry the probes, matching the plain matcher exactly.
        use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use std::sync::Arc;
        let g = region_network(&RegionConfig::small_test(), 4);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
        let tt_ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::TravelTime,
            &ChConfig::default(),
        ));
        let cfg = MapMatchConfig::default();
        let mut plain = MapMatcher::new(&g, cfg.clone());
        let mut mismatched = MapMatcher::new(&g, cfg).with_ch(tt_ch);
        for trip in trips.iter().take(6) {
            let a = plain.match_trace(&trip.trace);
            let b = mismatched.match_trace(&trip.trace);
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.edges(), b.edges()),
                (None, None) => {}
                (a, b) => panic!("fallback match divergence: {a:?} vs {b:?}"),
            }
        }
        let stats = mismatched.stats();
        assert_eq!(stats.m2m_tables, 0, "metric gate must block the fill");
        assert_eq!(stats.m2m_pairs, 0);
        assert!(stats.sp_probes > 0, "probes must flow through the cache");
    }

    #[test]
    fn short_traces_return_none() {
        let g = region_network(&RegionConfig::small_test(), 4);
        let trace = GpsTrace {
            vehicle: 0,
            points: vec![],
        };
        assert!(map_match(&g, &trace, &MapMatchConfig::default()).is_none());
    }

    #[test]
    fn far_away_traces_return_none() {
        let g = region_network(&RegionConfig::small_test(), 4);
        let trace = GpsTrace {
            vehicle: 0,
            points: (0..5)
                .map(|i| crate::gps::GpsPoint {
                    pos: Point::new(-1.0e7 + i as f64, -1.0e7),
                    t_s: i as f64 * 5.0,
                })
                .collect(),
        };
        assert!(map_match(&g, &trace, &MapMatchConfig::default()).is_none());
    }
}
