//! Fleet simulation: drivers with hidden preferences make trips and emit
//! noisy GPS traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pathrank_spatial::algo::engine::QueryEngine;
use pathrank_spatial::geometry::Point;
use pathrank_spatial::graph::{edge_popularity, CostModel, Graph, VertexId};
use pathrank_spatial::path::Path;

use crate::gps::{sample_standard_normal, GpsPoint, GpsTrace};
use crate::preference::DriverPreference;

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of vehicles (the paper's fleet has 183).
    pub n_vehicles: usize,
    /// Trips per vehicle.
    pub trips_per_vehicle: usize,
    /// GPS sampling interval in seconds (1 Hz in the paper's data).
    pub sampling_interval_s: f64,
    /// Standard deviation of GPS noise, metres per axis.
    pub gps_noise_std_m: f64,
    /// Minimum straight-line O/D distance for a trip, metres.
    pub min_trip_euclid_m: f64,
    /// Maximum straight-line O/D distance for a trip, metres.
    pub max_trip_euclid_m: f64,
    /// Drivers travel at `factor × free-flow speed`, drawn per trip from
    /// this range.
    pub speed_factor: (f64, f64),
}

impl SimulationConfig {
    /// A small deterministic fleet for tests.
    pub fn small_test() -> Self {
        SimulationConfig {
            n_vehicles: 3,
            trips_per_vehicle: 4,
            sampling_interval_s: 5.0,
            gps_noise_std_m: 8.0,
            min_trip_euclid_m: 300.0,
            max_trip_euclid_m: 5_000.0,
            speed_factor: (0.8, 1.0),
        }
    }

    /// The default experiment fleet: mirrors the paper's 183 vehicles but
    /// with trip counts sized for a laptop run.
    pub fn paper_scale() -> Self {
        SimulationConfig {
            n_vehicles: 183,
            trips_per_vehicle: 8,
            sampling_interval_s: 5.0,
            gps_noise_std_m: 10.0,
            min_trip_euclid_m: 800.0,
            max_trip_euclid_m: 15_000.0,
            speed_factor: (0.75, 1.05),
        }
    }
}

/// One simulated trip: the path the driver actually drove and the noisy
/// GPS trace observed along it.
#[derive(Debug, Clone)]
pub struct Trip {
    /// Vehicle id in `0..n_vehicles`.
    pub vehicle: u32,
    /// The driver's hidden preferred path (ground truth).
    pub path: Path,
    /// The observed GPS trace.
    pub trace: GpsTrace,
}

/// Simulates the whole fleet deterministically from `seed`.
///
/// Every vehicle gets its own [`DriverPreference`]; each trip routes
/// between a random O/D pair (straight-line distance within the configured
/// band) under that driver's hidden cost, then emits GPS fixes along the
/// path geometry.
pub fn simulate_fleet(g: &Graph, cfg: &SimulationConfig, seed: u64) -> Vec<Trip> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.vertex_count() as u32;
    let mut trips = Vec::with_capacity(cfg.n_vehicles * cfg.trips_per_vehicle);
    // One reused engine routes every trip of the fleet.
    let mut engine = QueryEngine::new(g);
    // Shared corridor popularity: part of every driver's taste, and the
    // topological component of the signal PathRank learns.
    let popularity = edge_popularity(g, 48, seed.wrapping_add(0x5eed));

    for vehicle in 0..cfg.n_vehicles as u32 {
        let pref = DriverPreference::sample(&mut rng);
        let costs = pref.edge_costs_with_popularity(g, Some(&popularity));
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < cfg.trips_per_vehicle && attempts < cfg.trips_per_vehicle * 50 {
            attempts += 1;
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            if s == t {
                continue;
            }
            let euclid = g.euclidean(s, t);
            if euclid < cfg.min_trip_euclid_m || euclid > cfg.max_trip_euclid_m {
                continue;
            }
            let Some(path) = engine.shortest_path(s, t, CostModel::Custom(&costs)) else {
                continue;
            };
            let factor = rng.gen_range(cfg.speed_factor.0..=cfg.speed_factor.1);
            let trace = emit_trace(g, &path, vehicle, cfg, factor, &mut rng);
            trips.push(Trip {
                vehicle,
                path,
                trace,
            });
            produced += 1;
        }
    }
    trips
}

/// Walks along `path` at `factor ×` free-flow speed, emitting a noisy fix
/// every `sampling_interval_s`.
fn emit_trace(
    g: &Graph,
    path: &Path,
    vehicle: u32,
    cfg: &SimulationConfig,
    speed_factor: f64,
    rng: &mut StdRng,
) -> GpsTrace {
    let mut points = Vec::new();
    let mut t_now = 0.0f64;
    let mut next_sample = 0.0f64;

    let mut emit = |pos: Point, t: f64, rng: &mut StdRng| {
        let nx = sample_standard_normal(rng) * cfg.gps_noise_std_m;
        let ny = sample_standard_normal(rng) * cfg.gps_noise_std_m;
        points.push(GpsPoint {
            pos: Point::new(pos.x + nx, pos.y + ny),
            t_s: t,
        });
    };

    for (i, &e) in path.edges().iter().enumerate() {
        let rec = g.edge(e);
        let a = g.coord(rec.from);
        let b = g.coord(rec.to);
        let speed_ms = (rec.attrs.speed_kmh / 3.6) * speed_factor;
        let duration = rec.attrs.length_m / speed_ms.max(0.1);
        // Emit all samples that fall within this edge's time window.
        while next_sample <= t_now + duration {
            let frac = ((next_sample - t_now) / duration).clamp(0.0, 1.0);
            emit(a.lerp(&b, frac), next_sample, rng);
            next_sample += cfg.sampling_interval_s;
        }
        t_now += duration;
        // Always emit the final vertex so the trace covers the whole path.
        if i == path.edges().len() - 1 {
            emit(b, t_now, rng);
        }
    }
    GpsTrace { vehicle, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrank_spatial::generators::{region_network, RegionConfig};

    fn setup() -> (Graph, Vec<Trip>) {
        let g = region_network(&RegionConfig::small_test(), 11);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 21);
        (g, trips)
    }

    #[test]
    fn produces_requested_trip_count() {
        let (_, trips) = setup();
        let cfg = SimulationConfig::small_test();
        assert_eq!(trips.len(), cfg.n_vehicles * cfg.trips_per_vehicle);
    }

    #[test]
    fn trips_are_valid_paths_with_distance_band() {
        let (g, trips) = setup();
        let cfg = SimulationConfig::small_test();
        for trip in &trips {
            trip.path.validate(&g).unwrap();
            let euclid = g.euclidean(trip.path.source(), trip.path.target());
            assert!(euclid >= cfg.min_trip_euclid_m && euclid <= cfg.max_trip_euclid_m);
        }
    }

    #[test]
    fn traces_cover_paths_in_time_and_space() {
        let (g, trips) = setup();
        for trip in &trips {
            assert!(
                trip.trace.len() >= 2,
                "every trip emits at least start and end fixes"
            );
            // Timestamps strictly increase.
            for w in trip.trace.points.windows(2) {
                assert!(w[1].t_s > w[0].t_s);
            }
            // First fix is near the source, last near the target (8 m noise).
            let src = g.coord(trip.path.source());
            let dst = g.coord(trip.path.target());
            assert!(trip.trace.points[0].pos.distance(&src) < 60.0);
            assert!(trip.trace.points.last().unwrap().pos.distance(&dst) < 60.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = region_network(&RegionConfig::small_test(), 11);
        let cfg = SimulationConfig::small_test();
        let a = simulate_fleet(&g, &cfg, 5);
        let b = simulate_fleet(&g, &cfg, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.path.same_route(&y.path));
            assert_eq!(x.trace, y.trace);
        }
    }

    #[test]
    fn same_vehicle_routes_consistently() {
        // Two trips of one vehicle between the same O/D must take the same
        // path (the preference is fixed per driver).
        let g = region_network(&RegionConfig::small_test(), 11);
        let mut rng = StdRng::seed_from_u64(77);
        let pref = DriverPreference::sample(&mut rng);
        let costs = pref.edge_costs(&g);
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let mut engine = QueryEngine::new(&g);
        let p1 = engine
            .shortest_path(s, t, CostModel::Custom(&costs))
            .unwrap();
        let p2 = engine
            .shortest_path(s, t, CostModel::Custom(&costs))
            .unwrap();
        assert!(p1.same_route(&p2));
    }

    #[test]
    fn gps_noise_has_configured_magnitude() {
        let g = region_network(&RegionConfig::small_test(), 11);
        let mut cfg = SimulationConfig::small_test();
        cfg.gps_noise_std_m = 0.0;
        let trips = simulate_fleet(&g, &cfg, 3);
        // With zero noise every fix lies exactly on a path segment.
        for trip in trips.iter().take(3) {
            for fix in &trip.trace.points {
                let min_dist = trip
                    .path
                    .edges()
                    .iter()
                    .map(|&e| {
                        let rec = g.edge(e);
                        pathrank_spatial::geometry::point_segment_distance(
                            &fix.pos,
                            &g.coord(rec.from),
                            &g.coord(rec.to),
                        )
                    })
                    .fold(f64::INFINITY, f64::min);
                assert!(min_dist < 1e-6, "noiseless fix off the path by {min_dist}");
            }
        }
    }
}
