//! Extension table **B1**: non-learning baselines vs PathRank.
//!
//! The paper's introduction argues that classic routing objectives
//! (shortest, fastest) mis-rank candidate paths because local drivers
//! follow neither. This table quantifies that claim: each baseline recasts
//! a classic objective as a `[0,1]` ranking score and is evaluated with
//! the same four metrics as PathRank.

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::eval::{baselines, evaluate_with};
use pathrank_core::model::ModelConfig;

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let test_groups = wb.test_groups(scale.k);

    println!(
        "# B1: non-learning baselines vs PathRank (test bed: D-TkDI, k = {}, {} queries)",
        scale.k,
        test_groups.len()
    );
    print_metric_header("Method");

    let g = wb.graph.clone();
    let sp = evaluate_with(&test_groups, |grp| {
        baselines::shortest_length_ratio(&g, grp)
    });
    print_metric_row("SP", 0, &sp);
    let fp = evaluate_with(&test_groups, |grp| baselines::fastest_time_ratio(&g, grp));
    print_metric_row("FP", 0, &fp);
    let blend = evaluate_with(&test_groups, |grp| baselines::length_time_blend(&g, grp));
    print_metric_row("SP+FP", 0, &blend);

    // PathRank (PR-A2, D-TkDI) for reference.
    let ccfg = CandidateConfig {
        k: scale.k,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let mcfg = ModelConfig {
        seed: scale.seed.wrapping_add(11),
        ..ModelConfig::paper_default(dim)
    };
    let res = wb.run(mcfg, ccfg, scale.train_config());
    print_metric_row("PathRank", dim, &res.eval);
}
