//! Live-traffic customization benchmark: per-epoch speed perturbations
//! against a customizable contraction hierarchy, written to
//! `BENCH_customization.json`.
//!
//! Each epoch, a deterministic [`TrafficModel`] congests a random subset
//! of edges (one `set_edge_speeds` call, so the graph's weights epoch
//! advances by one). The benchmark then measures, on the perturbed
//! graph:
//!
//! * **customize_ms** — re-deriving all CCH shortcut weights on the
//!   fixed metric-independent order into a *fresh* index (allocating);
//! * **recustomize_ms** — the same full derivation in place on a
//!   persistent index with recycled buffers (`Cch::recustomize`, the
//!   allocation-free steady state) — the gap between the two is the
//!   per-epoch allocation overhead the buffer reuse removes;
//! * **rebuild_ms** — building a fresh TravelTime contraction hierarchy
//!   from scratch (what serving would pay without a CCH);
//! * **queries_per_s** — fastest-path throughput through the freshly
//!   customized index during the churn.
//!
//! A second, telemetry-shaped phase then perturbs *sparse* subsets of
//! edges (0.1% / 1% / 5% per epoch), drawn as spatially clustered
//! incident patches rather than independent uniform picks (see
//! [`incident_shaped_updates`] — that is how real congestion feeds
//! look, and spatial locality is precisely what keeps a sparse delta's
//! triangle closure small), and measures, per density:
//!
//! * **partial_customize_ms** — `Cch::apply_delta`, re-relaxing only
//!   the triangles the changed edges touch;
//! * **full_customize_ms** — the in-place full pass on the same state;
//! * **speedup_partial_over_full** — their ratio (the top-level keys
//!   carry the 1% headline).
//!
//! Before anything is timed in an epoch, the customized index's answers
//! are asserted **bit-identical** to a fresh Dijkstra on the perturbed
//! weights — the engine recomputes unpacked-path costs in Dijkstra's
//! fold order, so even the floating-point representation must agree.
//! The sparse phase asserts the partially customized index the same way
//! each round before its throughput is measured.
//!
//! ```text
//! cargo run --release -p pathrank-bench --bin simulate_traffic \
//!     [-- --quick] [--out FILE] [--graph NETWORK]
//! ```
//!
//! With `--graph` the churn runs on an imported road network (raw OSM
//! XML, a persisted import, or a plain graph file) instead of the
//! synthetic paper-scale region.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pathrank_obs::Series;
use pathrank_spatial::algo::cch::{CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::engine::{QueryEngine, SearchBackend};
use pathrank_spatial::algo::landmarks::LandmarkMetric;
use pathrank_spatial::generators::{region_network, RegionConfig};
use pathrank_spatial::graph::{CostModel, EdgeId, Graph, VertexId};
use pathrank_traj::congestion::{CongestionConfig, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 2020;

struct EpochRow {
    epoch: u64,
    congested_edges: usize,
    customize_ms: f64,
    recustomize_ms: f64,
    rebuild_ms: f64,
    queries_per_s: f64,
}

struct SparseRow {
    density: f64,
    changed_edges: usize,
    recomputed_arcs: usize,
    partial_customize_ms: f64,
    full_customize_ms: f64,
    queries_per_s: f64,
}

/// Exact median through the shared obs [`Series`] type — the one
/// offline percentile implementation the bench binaries share.
fn median(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Series>().median()
}

/// Draws `k` edges shaped like real congestion telemetry: traffic feeds
/// report incidents, and an incident slows a *contiguous patch* of road
/// segments around its location, not `k` independent uniform draws.
/// Each incident picks a random center vertex and floods outward over
/// the adjacency (BFS), congesting every traversed edge to a random
/// speed until its patch quota (~24 segments, a few blocks) is filled.
/// Duplicate picks across overlapping incidents are fine — the delta
/// path is last-wins end to end.
fn incident_shaped_updates(g: &Graph, k: usize, rng: &mut StdRng) -> Vec<(EdgeId, f64)> {
    const PATCH: usize = 24;
    let n = g.vertex_count() as u32;
    let mut updates = Vec::with_capacity(k);
    while updates.len() < k {
        let quota = PATCH.min(k - updates.len());
        let mut queue = std::collections::VecDeque::from([VertexId(rng.gen_range(0..n))]);
        let mut seen = std::collections::HashSet::new();
        let mut grabbed = 0usize;
        while grabbed < quota {
            let Some(v) = queue.pop_front() else { break };
            for (to, e) in g.out_edges(v) {
                if grabbed == quota {
                    break;
                }
                updates.push((e, rng.gen_range(5.0..120.0)));
                grabbed += 1;
                if seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
    }
    updates
}

/// Random distinct origin/destination pairs (any distance — churn serves
/// the whole network, not just the trip band).
fn query_pairs(g: &Graph, count: usize) -> Vec<(VertexId, VertexId)> {
    let n = g.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x7aff1c);
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let s = VertexId(rng.gen_range(0..n));
        let t = VertexId(rng.gen_range(0..n));
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_customization.json".to_string());
    let graph_arg = args
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| args.get(i + 1).cloned());

    let (mut g, graph_label) = match &graph_arg {
        Some(path) => {
            let loaded = pathrank_spatial::io::load_graph_auto(std::path::Path::new(path))
                .expect("--graph network must load");
            (loaded.graph, path.clone())
        }
        None => {
            let region = if quick {
                RegionConfig::small_test()
            } else {
                RegionConfig::paper_scale()
            };
            (
                region_network(&region, SEED),
                if quick { "small_test" } else { "paper_scale" }.to_string(),
            )
        }
    };
    eprintln!(
        "traffic bench: {} vertices, {} edges ({graph_label})",
        g.vertex_count(),
        g.edge_count()
    );

    let (epochs, n_queries) = if quick {
        (3u64, 16usize)
    } else {
        (8u64, 64usize)
    };
    let pairs = query_pairs(&g, n_queries);
    let model = TrafficModel::new(&g, CongestionConfig::default());

    // Metric-independent preprocessing: paid once, survives every
    // traffic epoch below.
    let t0 = Instant::now();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let topo_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "CCH topology: {} arcs ({} fill-ins, {} triangles) in {topo_build_ms:.1} ms",
        topo.arc_count(),
        topo.fill_in_count(),
        topo.triangle_count()
    );

    // The persistent in-place index: fully re-derived every epoch with
    // recycled buffers, never reallocated — its timing against the
    // fresh `customize` shows what buffer reuse saves.
    let mut inplace = topo.customize(&g, &CostModel::TravelTime);

    let mut rows: Vec<EpochRow> = Vec::with_capacity(epochs as usize);
    for epoch in 1..=epochs {
        let congested_edges = model.apply_epoch(&mut g, epoch);

        // The live-traffic path: triangle-relaxation customization on
        // the fixed order.
        let t0 = Instant::now();
        let cch = Arc::new(topo.customize(&g, &CostModel::TravelTime));
        let customize_ms = t0.elapsed().as_secs_f64() * 1e3;

        // The same full derivation, allocation-free on the persistent
        // index.
        let t0 = Instant::now();
        inplace.recustomize(&g, &CostModel::TravelTime);
        let recustomize_ms = t0.elapsed().as_secs_f64() * 1e3;

        // What serving would pay instead: a witness-searched CH rebuild
        // from scratch on the perturbed graph.
        let t0 = Instant::now();
        let rebuilt =
            ContractionHierarchy::build(&g, LandmarkMetric::TravelTime, &ChConfig::default());
        let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&rebuilt);

        // Exactness before timing: the customized index must agree with
        // a fresh Dijkstra on the perturbed weights, bit for bit.
        let mut live = QueryEngine::new(&g).with_cch(Arc::clone(&cch));
        let mut plain = QueryEngine::new(&g);
        assert_eq!(
            live.backend_for(CostModel::TravelTime),
            SearchBackend::Cch,
            "epoch {epoch}: customized index must pass the weights-epoch gate"
        );
        for &(s, t) in &pairs {
            let a = plain.shortest_path_cost(s, t, CostModel::TravelTime);
            let b = live.shortest_path_cost(s, t, CostModel::TravelTime);
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "epoch {epoch}: CCH diverged from Dijkstra for {s:?}->{t:?} ({a:?} vs {b:?})"
            );
        }

        // Fastest-path throughput through the fresh customization.
        let reps = 3;
        let mut sweep_s = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            for &(s, t) in &pairs {
                std::hint::black_box(live.shortest_path_cost(s, t, CostModel::TravelTime));
            }
            sweep_s.push(t0.elapsed().as_secs_f64());
        }
        let queries_per_s = pairs.len() as f64 / median(&sweep_s);

        eprintln!(
            "  epoch {epoch}: {congested_edges} congested edges, customize {customize_ms:.2} ms (in-place {recustomize_ms:.2} ms) vs rebuild {rebuild_ms:.1} ms, {queries_per_s:.0} queries/s"
        );
        rows.push(EpochRow {
            epoch,
            congested_edges,
            customize_ms,
            recustomize_ms,
            rebuild_ms,
            queries_per_s,
        });
    }

    let customize_ms = median(&rows.iter().map(|r| r.customize_ms).collect::<Vec<_>>());
    let recustomize_ms = median(&rows.iter().map(|r| r.recustomize_ms).collect::<Vec<_>>());
    let rebuild_ms = median(&rows.iter().map(|r| r.rebuild_ms).collect::<Vec<_>>());
    let queries_per_s = median(&rows.iter().map(|r| r.queries_per_s).collect::<Vec<_>>());
    let speedup = rebuild_ms / customize_ms;

    // ---- Sparse telemetry phase -------------------------------------
    //
    // Real traffic feeds move a few percent of edges per epoch. Per
    // density, several rounds each perturb exactly that share of edges
    // and time the partial pass (`apply_delta`) against the in-place
    // full pass on identical state — exactness asserted bitwise against
    // a fresh Dijkstra each round before throughput is measured.
    model.restore(&mut g);
    let densities = [0.001f64, 0.01, 0.05];
    let sparse_rounds = if quick { 2 } else { 4 };
    let mut sparse_rows: Vec<SparseRow> = Vec::with_capacity(densities.len());
    for &density in &densities {
        let m = g.edge_count();
        let k = ((m as f64 * density).round() as usize).max(1);
        let mut rng = StdRng::seed_from_u64(SEED ^ (density * 1e6) as u64);
        let mut partial = topo.customize(&g, &CostModel::TravelTime);
        let mut full = topo.customize(&g, &CostModel::TravelTime);
        let mut partial_ms = Vec::with_capacity(sparse_rounds);
        let mut full_ms = Vec::with_capacity(sparse_rounds);
        let mut qps = Vec::with_capacity(sparse_rounds);
        let mut changed_edges = 0usize;
        let mut recomputed_arcs = 0usize;
        for _ in 0..sparse_rounds {
            let updates = incident_shaped_updates(&g, k, &mut rng);
            let delta = g.set_edge_speeds(&updates);
            changed_edges += delta.len();

            let t0 = Instant::now();
            let recomputed = partial.apply_delta(&g, &delta);
            partial_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            recomputed_arcs += recomputed;

            let t0 = Instant::now();
            full.recustomize(&g, &CostModel::TravelTime);
            full_ms.push(t0.elapsed().as_secs_f64() * 1e3);

            // Exactness before timing queries: the partially refreshed
            // index must match a fresh Dijkstra bit for bit.
            let mut live = QueryEngine::new(&g).with_cch(Arc::new(partial.clone()));
            let mut plain = QueryEngine::new(&g);
            assert_eq!(live.backend_for(CostModel::TravelTime), SearchBackend::Cch);
            for &(s, t) in &pairs {
                let a = plain.shortest_path_cost(s, t, CostModel::TravelTime);
                let b = live.shortest_path_cost(s, t, CostModel::TravelTime);
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "density {density}: partial CCH diverged from Dijkstra for {s:?}->{t:?}"
                );
            }
            let t0 = Instant::now();
            for &(s, t) in &pairs {
                std::hint::black_box(live.shortest_path_cost(s, t, CostModel::TravelTime));
            }
            qps.push(pairs.len() as f64 / t0.elapsed().as_secs_f64());
        }
        let row = SparseRow {
            density,
            changed_edges: changed_edges / sparse_rounds,
            recomputed_arcs: recomputed_arcs / sparse_rounds,
            partial_customize_ms: median(&partial_ms),
            full_customize_ms: median(&full_ms),
            queries_per_s: median(&qps),
        };
        eprintln!(
            "  sparse {:.1}%: ~{} changed edges -> ~{} arcs recomputed, partial {:.3} ms vs full {:.3} ms ({:.1}x), {:.0} queries/s",
            density * 100.0,
            row.changed_edges,
            row.recomputed_arcs,
            row.partial_customize_ms,
            row.full_customize_ms,
            row.full_customize_ms / row.partial_customize_ms,
            row.queries_per_s,
        );
        sparse_rows.push(row);
        model.restore(&mut g);
    }
    // The 1%-density row is the headline the acceptance gate reads.
    let headline = &sparse_rows[1];
    let partial_customize_ms = headline.partial_customize_ms;
    let speedup_partial_over_full = headline.full_customize_ms / headline.partial_customize_ms;

    // Hand-rolled JSON (the workspace deliberately has no serde backend).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"customization\",");
    let _ = writeln!(
        json,
        "  \"description\": \"per-epoch traffic perturbation: CCH triangle-relaxation customization vs full CH rebuild, exactness asserted bit-identical vs fresh Dijkstra each epoch before timing\","
    );
    let _ = writeln!(
        json,
        "  \"graph\": {{\"source\": {graph_label:?}, \"vertices\": {}, \"edges\": {}, \"seed\": {SEED}}},",
        g.vertex_count(),
        g.edge_count()
    );
    let _ = writeln!(
        json,
        "  \"cch\": {{\"arcs\": {}, \"fill_ins\": {}, \"triangles\": {}, \"topo_build_ms\": {topo_build_ms:.1}}},",
        topo.arc_count(),
        topo.fill_in_count(),
        topo.triangle_count()
    );
    let _ = writeln!(json, "  \"epochs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"epoch\": {}, \"congested_edges\": {}, \"customize_ms\": {:.3}, \"recustomize_ms\": {:.3}, \"rebuild_ms\": {:.2}, \"queries_per_s\": {:.0}}}{}",
            r.epoch,
            r.congested_edges,
            r.customize_ms,
            r.recustomize_ms,
            r.rebuild_ms,
            r.queries_per_s,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"sparse_epochs\": [");
    for (i, r) in sparse_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"density\": {}, \"changed_edges\": {}, \"recomputed_arcs\": {}, \"partial_customize_ms\": {:.4}, \"full_customize_ms\": {:.4}, \"speedup_partial_over_full\": {:.2}, \"queries_per_s\": {:.0}}}{}",
            r.density,
            r.changed_edges,
            r.recomputed_arcs,
            r.partial_customize_ms,
            r.full_customize_ms,
            r.full_customize_ms / r.partial_customize_ms,
            r.queries_per_s,
            if i + 1 == sparse_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"customize_ms\": {customize_ms:.3},");
    let _ = writeln!(json, "  \"recustomize_ms\": {recustomize_ms:.3},");
    let _ = writeln!(json, "  \"rebuild_ms\": {rebuild_ms:.2},");
    let _ = writeln!(json, "  \"queries_per_s\": {queries_per_s:.0},");
    let _ = writeln!(
        json,
        "  \"partial_customize_ms\": {partial_customize_ms:.4},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_partial_over_full\": {speedup_partial_over_full:.2},"
    );
    let _ = writeln!(json, "  \"speedup_customize_over_rebuild\": {speedup:.2}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!(
        "customize {customize_ms:.2} ms (in-place {recustomize_ms:.2} ms) vs rebuild {rebuild_ms:.1} ms ({speedup:.1}x); 1% sparse delta {partial_customize_ms:.3} ms ({speedup_partial_over_full:.1}x over full); {queries_per_s:.0} queries/s during churn -> {out_path}"
    );
}
