//! Extension figure **F2**: accuracy as a function of the D-TkDI
//! diversity threshold τ_div (k = 10, PR-A2, M = 64).
//!
//! τ_div = 1.0 degenerates to plain TkDI (no diversification); very small
//! thresholds demand near edge-disjoint candidates, which may not exist,
//! shrinking the training set. The sweet spot sits in between — this
//! figure locates it on the synthetic region.

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::model::ModelConfig;

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let thresholds: &[f64] = if scale.quick {
        &[0.5, 1.0]
    } else {
        &[0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    };

    println!(
        "# F2: diversity-threshold sweep (D-TkDI, k = {}, PR-A2, M = {dim})",
        scale.k
    );
    print_metric_header("tau_div");
    for &threshold in thresholds {
        let ccfg = CandidateConfig {
            k: scale.k,
            diversity_threshold: threshold,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        let mcfg = ModelConfig {
            seed: scale.seed.wrapping_add(11),
            ..ModelConfig::paper_default(dim)
        };
        let res = wb.run(mcfg, ccfg, scale.train_config());
        print_metric_row(&format!("{threshold:.2}"), dim, &res.eval);
        eprintln!("  [tau_div={threshold:.2}] {:.1}s train+eval", res.seconds);
    }
}
