//! Extension ablation **A3**: multi-task auxiliary objective (the full
//! ICDE paper's extension of PathRank).
//!
//! The auxiliary head co-predicts each candidate's length and travel-time
//! ratios relative to the best candidate, regularising the encoder. This
//! sweep varies the auxiliary-loss weight λ (λ = 0 is single-task PR-A2).

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::model::ModelConfig;

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let ccfg = CandidateConfig {
        k: scale.k,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let weights: &[f32] = if scale.quick {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.25, 0.5, 1.0]
    };

    println!(
        "# A3: multi-task weight sweep (D-TkDI, k = {}, PR-A2, M = {dim})",
        scale.k
    );
    print_metric_header("lambda");
    for &w in weights {
        let mcfg = ModelConfig {
            multi_task_weight: w,
            seed: scale.seed.wrapping_add(11),
            ..ModelConfig::paper_default(dim)
        };
        let res = wb.run(mcfg, ccfg, scale.train_config());
        print_metric_row(&format!("{w:.2}"), dim, &res.eval);
        eprintln!("  [lambda={w:.2}] {:.1}s train+eval", res.seconds);
    }
}
