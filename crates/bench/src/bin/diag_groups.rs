//! Diagnostic: candidate-group statistics per training-data strategy.
//!
//! Prints, for TkDI and D-TkDI on the same trajectory set: group sizes,
//! ground-truth label distribution (mean/min/quartiles) and mean pairwise
//! candidate overlap. Useful for checking that the diversified strategy
//! actually has room to diversify on a given network.

use pathrank_bench::Scale;
use pathrank_core::candidates::{
    generate_groups, trajectory_detour_factors, CandidateConfig, Strategy,
};
use pathrank_spatial::similarity::{weighted_jaccard, EdgeWeight};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let scale = Scale::parse(std::env::args());
    // `--graph FILE` swaps the synthetic region for a real (imported)
    // network; the diagnostics below are identical either way.
    let wb = scale.workbench();
    println!(
        "network: {} vertices ({}); {} train trajectories; k = {}",
        wb.graph.vertex_count(),
        scale.graph.as_deref().unwrap_or("synthetic region"),
        wb.train_paths.len(),
        scale.k
    );

    // How far the simulated drivers deviate from the shortest path — the
    // paper's core observation, probed for every group at once through a
    // single CH many-to-many distance table.
    let mut engine = wb.ch_query_engine();
    let mut detours = trajectory_detour_factors(&mut engine, &wb.train_paths);
    detours.sort_by(f64::total_cmp);
    println!(
        "trajectory detour factor (len / shortest): mean {:.3}, p50 {:.3}, p90 {:.3}, max {:.3}",
        detours.iter().sum::<f64>() / detours.len().max(1) as f64,
        percentile(&detours, 0.5),
        percentile(&detours, 0.9),
        detours.last().copied().unwrap_or(f64::NAN),
    );

    for strategy in [Strategy::TkDI, Strategy::DTkDI] {
        let ccfg = CandidateConfig {
            k: scale.k,
            ..CandidateConfig::paper_default(strategy)
        };
        let groups = generate_groups(&wb.graph, &wb.train_paths, &ccfg, scale.threads);

        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        let mut labels: Vec<f64> = groups
            .iter()
            .flat_map(|g| g.candidates.iter().map(|c| c.score))
            .collect();
        labels.sort_by(f64::total_cmp);

        // Mean pairwise overlap between candidates within a group
        // (subsample groups to keep this cheap).
        let mut overlap_sum = 0.0;
        let mut overlap_n = 0usize;
        for g in groups.iter().take(40) {
            for i in 0..g.candidates.len() {
                for j in (i + 1)..g.candidates.len() {
                    overlap_sum += weighted_jaccard(
                        &wb.graph,
                        &g.candidates[i].path,
                        &g.candidates[j].path,
                        EdgeWeight::Length,
                    );
                    overlap_n += 1;
                }
            }
        }

        println!("\n== {} ==", strategy.label());
        println!(
            "groups: {}; candidates/group: mean {:.2}, min {}, max {}",
            groups.len(),
            sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64,
            sizes.iter().min().unwrap_or(&0),
            sizes.iter().max().unwrap_or(&0),
        );
        println!(
            "labels: mean {:.3}, p10 {:.3}, p50 {:.3}, p90 {:.3}",
            labels.iter().sum::<f64>() / labels.len().max(1) as f64,
            percentile(&labels, 0.1),
            percentile(&labels, 0.5),
            percentile(&labels, 0.9),
        );
        println!(
            "mean pairwise candidate overlap: {:.3}",
            overlap_sum / overlap_n.max(1) as f64
        );
    }
}
