//! Extension figure **F1**: accuracy as a function of the candidate-set
//! size k (D-TkDI, PR-A2, M = 64).
//!
//! Motivated by the paper's claim that a *compact* set of diversified
//! paths suffices: accuracy should improve quickly with k and then
//! flatten — more near-duplicate candidates add little.

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::model::ModelConfig;

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let ks: &[usize] = if scale.quick {
        &[2, 4]
    } else {
        &[4, 6, 8, 10, 12]
    };

    println!(
        "# F1: candidate-set size sweep (D-TkDI, PR-A2, M = {dim}; {} train / {} test)",
        wb.train_paths.len(),
        wb.test_paths.len()
    );
    print_metric_header("k");
    for &k in ks {
        let ccfg = CandidateConfig {
            k,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        let mcfg = ModelConfig {
            seed: scale.seed.wrapping_add(11),
            ..ModelConfig::paper_default(dim)
        };
        let res = wb.run(mcfg, ccfg, scale.train_config());
        print_metric_row(&format!("k={k}"), dim, &res.eval);
        eprintln!("  [k={k}] {:.1}s train+eval", res.seconds);
    }
}
