//! CLI for the `spatial::osm` importer: raw OSM XML in, network
//! statistics out, optionally a persisted `pathrank-osm-graph v1` file.
//!
//! ```text
//! cargo run --release -p pathrank-bench --bin import_osm -- INPUT.osm.xml
//!     [--out FILE]        write the persisted imported graph
//!     [--keep-service]    also import service/track access roads
//!     [--no-scc]          skip the largest-SCC prune
//!     [--no-contract]     skip degree-2 chain contraction
//!
//! cargo run --release -p pathrank-bench --bin import_osm -- \
//!     --gen-fixture FILE [--seed N]
//!     regenerate the synthetic fixture extract (deterministic)
//! ```

use std::time::Instant;

use pathrank_spatial::osm::synth::{synthetic_city, write_osm_xml, SynthCityConfig};
use pathrank_spatial::osm::{import_osm, parse_osm_xml, ImportConfig};

fn die(msg: &str) -> ! {
    eprintln!("import_osm: {msg}");
    eprintln!(
        "usage: import_osm INPUT.osm.xml [--out FILE] [--keep-service] [--no-scc] [--no-contract]"
    );
    eprintln!("       import_osm --gen-fixture FILE [--seed N]");
    std::process::exit(2);
}

fn main() {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut gen_fixture: Option<String> = None;
    let mut seed = 2020u64;
    let mut cfg = ImportConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| die("--out needs a path"))),
            "--gen-fixture" => {
                gen_fixture = Some(
                    args.next()
                        .unwrap_or_else(|| die("--gen-fixture needs a path")),
                )
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"))
            }
            "--keep-service" => cfg.include_service_roads = true,
            "--no-scc" => cfg.prune_to_largest_scc = false,
            "--no-contract" => cfg.contract_chains = false,
            "--help" | "-h" => die("see usage"),
            other if !other.starts_with('-') && input.is_none() => input = Some(flag),
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = gen_fixture {
        let xml = write_osm_xml(&synthetic_city(&SynthCityConfig::default(), seed));
        std::fs::write(&path, &xml).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!(
            "wrote synthetic fixture ({} bytes, seed {seed}) to {path}",
            xml.len()
        );
        return;
    }

    let Some(input) = input else {
        die("missing INPUT.osm.xml");
    };
    let t0 = Instant::now();
    let file = std::fs::File::open(&input).unwrap_or_else(|e| die(&format!("{input}: {e}")));
    let data = parse_osm_xml(std::io::BufReader::new(file))
        .unwrap_or_else(|e| die(&format!("parsing {input}: {e}")));
    let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let imported =
        import_osm(&data, &cfg).unwrap_or_else(|e| die(&format!("importing {input}: {e}")));
    let import_ms = t1.elapsed().as_secs_f64() * 1e3;

    let s = &imported.stats;
    println!("parsed {input} in {parse_ms:.1} ms; imported in {import_ms:.1} ms");
    println!("raw extract: {} nodes, {} ways", s.raw_nodes, s.raw_ways);
    println!(
        "kept {} highway ways ({} oneway); skipped: {} non-highway, {} unroutable class, {} missing nodes, {} degenerate",
        s.kept_ways,
        s.oneway_ways,
        s.skipped_non_highway,
        s.skipped_unroutable_class,
        s.skipped_missing_nodes,
        s.skipped_degenerate
    );
    print!("highway classes:");
    for (name, count) in &s.highway_histogram {
        print!(" {name} {count},");
    }
    println!();
    println!(
        "segment graph:          {:>7} vertices {:>8} edges",
        s.segment_vertices, s.segment_edges
    );
    println!(
        "after SCC prune:        {:>7} vertices {:>8} edges  ({} vertices pruned)",
        s.scc_vertices,
        s.scc_edges,
        s.segment_vertices - s.scc_vertices
    );
    println!(
        "after chain contraction:{:>7} vertices {:>8} edges  ({} vertices folded)",
        s.final_vertices,
        s.final_edges,
        s.scc_vertices - s.final_vertices
    );
    println!("total directed length: {:.1} km", s.total_km);

    if let Some(out_path) = out {
        let mut buf = Vec::new();
        pathrank_spatial::io::write_imported_graph(&imported, &mut buf)
            .expect("writing to a Vec cannot fail");
        std::fs::write(&out_path, &buf)
            .unwrap_or_else(|e| die(&format!("writing {out_path}: {e}")));
        println!(
            "wrote pathrank-osm-graph v1 ({} bytes) to {out_path}",
            buf.len()
        );
    }
}
