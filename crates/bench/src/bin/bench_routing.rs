//! Machine-readable routing benchmark: fresh-allocation baseline vs
//! reused [`QueryEngine`] vs ALT-landmark-guided engine vs
//! contraction-hierarchy-backed engine, written to `BENCH_routing.json`.
//!
//! Measures median ns/query for the routing workloads the training
//! pipeline leans on — repeated one-to-one queries (length and
//! travel-time metrics), one-to-all trees, and Yen top-k. The **fresh**
//! rows run a faithful reconstruction of the seed's pre-engine routing
//! layer (every search allocates fresh `O(V)` `dist`/`parent` vectors, a
//! bitset and a heap; Yen allocates per *spur search*; plain Dijkstra
//! throughout). The **reused** rows run the shipped engine: one
//! `SearchSpace` with generation-stamped O(1) reset, cached A* heuristic
//! bounds, and target-directed spur searches. The **reused_alt** rows
//! additionally attach a precomputed [`LandmarkTable`] (build time under
//! `"alt"`), and the **reused_ch** rows a [`ContractionHierarchy`]
//! (build time under `"ch"`): unconstrained point-to-point queries run
//! the bidirectional upward search, Yen spur searches keep ALT. The
//! `fastest_one_to_one` rows exercise the TravelTime metric through a
//! TravelTime-built landmark table (fastest-path serving). The
//! **frozen** rows run the same reused searches over the
//! [`FrozenGraph`] merged CSR (weights inlined next to each arc),
//! asserted *bit-identical* to the builder-graph answers before timing,
//! and the `snap_throughput` rows race the retired uniform grid against
//! the packed R-tree on the fleet's real GPS fixes (candidate sets
//! asserted identical first). Answers stay exact — asserted against the
//! baseline before timing. The JSON makes the perf trajectory of the
//! routing layer trackable across PRs.
//!
//! The `imported_*` rows run the same workloads on a real (imported)
//! road network: by default the checked-in OSM fixture extract
//! (`fixtures/osm/pathrank_city.osm.xml`, parsed and imported on the
//! fly — import time reported under `"imported_graph"`), or any network
//! passed with `--graph` (raw OSM XML, a persisted import, or a plain
//! graph file).
//!
//! ```text
//! cargo run --release -p pathrank-bench --bin bench_routing \
//!     [-- --quick] [--out FILE] [--graph NETWORK]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pathrank_obs::{Registry, Series};
use pathrank_spatial::algo::cch::{CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::engine::{EngineObs, QueryEngine};
use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank_spatial::frozen::FrozenGraph;
use pathrank_spatial::generators::{region_network, RegionConfig};
use pathrank_spatial::geometry::{point_segment_distance, Point};
use pathrank_spatial::graph::{CostModel, EdgeId, Graph, VertexId};
use pathrank_spatial::rtree::RTree;
use pathrank_traj::mapmatch::{EdgeIndex, MapMatchConfig, MapMatcher};
use pathrank_traj::simulator::{simulate_fleet, SimulationConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 2020;
const YEN_K: usize = 8;

/// Faithful reconstruction of the seed's pre-engine routing layer, kept
/// here (not in the library) purely as the benchmark baseline: every
/// search allocates its `O(V)` state fresh, exactly like the original
/// `dijkstra.rs::run`, and Yen fires one such fresh search per spur.
mod seed_baseline {
    use std::collections::{BinaryHeap, HashSet};

    use pathrank_spatial::graph::{CostModel, EdgeId, Graph, VertexId};
    use pathrank_spatial::path::Path;
    use pathrank_spatial::util::{BitSet, MinCost};

    struct Tree {
        dist: Vec<f64>,
        parent: Vec<Option<(VertexId, EdgeId)>>,
    }

    /// The seed's shared Dijkstra core: fresh `dist`/`parent`/`settled`
    /// and heap allocations on every call.
    fn run(
        g: &Graph,
        source: VertexId,
        target: Option<VertexId>,
        cost: CostModel<'_>,
        banned_vertices: Option<&BitSet>,
        banned_edges: Option<&BitSet>,
    ) -> Tree {
        let n = g.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<(VertexId, EdgeId)>> = vec![None; n];
        let mut settled = BitSet::new(n);
        let mut heap: BinaryHeap<MinCost<VertexId>> = BinaryHeap::new();

        dist[source.index()] = 0.0;
        heap.push(MinCost {
            cost: 0.0,
            item: source,
        });

        while let Some(MinCost { cost: d, item: u }) = heap.pop() {
            if settled.contains(u.0) {
                continue;
            }
            settled.insert(u.0);
            if target == Some(u) {
                break;
            }
            for (v, e) in g.out_edges(u) {
                if settled.contains(v.0) {
                    continue;
                }
                if let Some(bv) = banned_vertices {
                    if bv.contains(v.0) {
                        continue;
                    }
                }
                if let Some(be) = banned_edges {
                    if be.contains(e.0) {
                        continue;
                    }
                }
                let nd = d + cost.edge_cost(g, e);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some((u, e));
                    heap.push(MinCost { cost: nd, item: v });
                }
            }
        }
        Tree { dist, parent }
    }

    fn path_from(g: &Graph, tree: &Tree, source: VertexId, target: VertexId) -> Option<Path> {
        if !tree.dist[target.index()].is_finite() || source == target {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((prev, e)) = tree.parent[cur.index()] {
            edges.push(e);
            cur = prev;
        }
        edges.reverse();
        Some(Path::from_edges(g, edges).expect("parent chain forms a path"))
    }

    pub fn shortest_path(
        g: &Graph,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<Path> {
        if source == target {
            return None;
        }
        let tree = run(g, source, Some(target), cost, None, None);
        path_from(g, &tree, source, target)
    }

    pub fn one_to_all_dist(g: &Graph, source: VertexId, cost: CostModel<'_>) -> Vec<f64> {
        run(g, source, None, cost, None, None).dist
    }

    /// The seed's Yen loop: every spur search is a fresh-allocation
    /// constrained Dijkstra.
    pub fn yen_k_shortest(
        g: &Graph,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        k: usize,
    ) -> Vec<(Path, f64)> {
        let mut accepted: Vec<(Path, f64)> = Vec::new();
        let mut candidates: BinaryHeap<MinCost<Path>> = BinaryHeap::new();
        let mut candidate_seen: HashSet<Vec<VertexId>> = HashSet::new();

        let Some(first) = shortest_path(g, source, target, cost) else {
            return accepted;
        };
        let c = first.cost(g, cost);
        accepted.push((first, c));

        while accepted.len() < k {
            let (prev, _) = accepted.last().expect("non-empty").clone();
            let prev_vertices = prev.vertices().to_vec();
            for i in 0..prev.len() {
                let spur_node = prev_vertices[i];
                let root_vertices = &prev_vertices[..=i];
                let mut banned_vertices = BitSet::new(g.vertex_count());
                let mut banned_edges = BitSet::new(g.edge_count());
                for (p, _) in &accepted {
                    let pv = p.vertices();
                    if pv.len() > i && &pv[..=i] == root_vertices {
                        banned_edges.insert(p.edges()[i].0);
                    }
                }
                for v in &root_vertices[..i] {
                    banned_vertices.insert(v.0);
                }
                if banned_vertices.contains(spur_node.0) || banned_vertices.contains(target.0) {
                    continue;
                }
                if spur_node == target {
                    continue;
                }
                let tree = run(
                    g,
                    spur_node,
                    Some(target),
                    cost,
                    Some(&banned_vertices),
                    Some(&banned_edges),
                );
                let Some(spur) = path_from(g, &tree, spur_node, target) else {
                    continue;
                };
                let total = if i == 0 {
                    spur
                } else {
                    prev.prefix(i)
                        .expect("i in 1..len")
                        .concat(&spur)
                        .expect("root ends at spur")
                };
                if candidate_seen.insert(total.vertices().to_vec()) {
                    let c = total.cost(g, cost);
                    candidates.push(MinCost {
                        cost: c,
                        item: total,
                    });
                }
            }
            match candidates.pop() {
                Some(MinCost { cost, item }) => accepted.push((item, cost)),
                None => break,
            }
        }
        accepted
    }
}

struct Scenario {
    name: &'static str,
    mode: &'static str,
    queries: usize,
    reps: usize,
    median_ns_per_query: f64,
}

/// Runs `pass` (one full sweep over `queries` queries) `reps` times and
/// returns the median ns per query (exact, via the shared obs
/// [`Series`] type).
fn measure(reps: usize, queries: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warm-up sweep (page in code and graph)
    let mut per_query = Series::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        pass();
        per_query.push(t0.elapsed().as_nanos() as f64 / queries as f64);
    }
    per_query.median()
}

/// Origin/destination pairs in the simulator's trip band, mirroring the
/// workload candidate generation and map matching actually issue.
fn trip_pairs(g: &Graph, count: usize, lo_m: f64, hi_m: f64) -> Vec<(VertexId, VertexId)> {
    let n = g.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xbe7c);
    let mut pairs = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while pairs.len() < count && attempts < count * 400 {
        attempts += 1;
        let s = VertexId(rng.gen_range(0..n));
        let t = VertexId(rng.gen_range(0..n));
        if s == t {
            continue;
        }
        let d = g.euclidean(s, t);
        if d < lo_m || d > hi_m {
            continue;
        }
        pairs.push((s, t));
    }
    assert!(
        !pairs.is_empty(),
        "no routable pairs found in the distance band"
    );
    pairs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_routing.json".to_string());
    // The imported-network rows default to the checked-in fixture. The
    // label (what the JSON reports) stays repo-relative for the default
    // so the committed artifact is machine-independent.
    let graph_arg = args
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| args.get(i + 1).cloned());
    let graph_label = graph_arg
        .clone()
        .unwrap_or_else(|| "fixtures/osm/pathrank_city.osm.xml".to_string());
    let graph_path = graph_arg.unwrap_or_else(|| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/osm/pathrank_city.osm.xml"
        )
        .to_string()
    });

    let region = if quick {
        RegionConfig::small_test()
    } else {
        RegionConfig::paper_scale()
    };
    let g = region_network(&region, SEED);
    eprintln!(
        "routing bench: {} vertices, {} edges ({})",
        g.vertex_count(),
        g.edge_count(),
        if quick { "quick" } else { "paper scale" }
    );

    let (reps, n_p2p, n_trees, n_yen) = if quick { (5, 24, 4, 2) } else { (9, 64, 8, 4) };
    // Same band the fleet simulator draws trips from at this scale.
    let (lo_m, hi_m) = if quick {
        (300.0, 5_000.0)
    } else {
        (800.0, 15_000.0)
    };
    let p2p = trip_pairs(&g, n_p2p, lo_m, hi_m);
    let yen_pairs = &p2p[..n_yen.min(p2p.len())];
    let tree_sources: Vec<VertexId> = p2p.iter().take(n_trees).map(|&(s, _)| s).collect();

    // Deduplicated endpoint pools for the batched scenarios (≥32×32 at
    // paper scale — the HMM transition-matrix shape).
    let m2m_side = if quick { 8 } else { 32 };
    let mut m2m_sources: Vec<VertexId> = Vec::new();
    let mut m2m_targets: Vec<VertexId> = Vec::new();
    for &(s, t) in &trip_pairs(&g, 6 * m2m_side, lo_m, hi_m) {
        if m2m_sources.len() < m2m_side && !m2m_sources.contains(&s) {
            m2m_sources.push(s);
        }
        if m2m_targets.len() < m2m_side && !m2m_targets.contains(&t) {
            m2m_targets.push(t);
        }
    }
    assert_eq!(
        (m2m_sources.len(), m2m_targets.len()),
        (m2m_side, m2m_side),
        "not enough distinct endpoints in the trip band"
    );

    // ALT preprocessing (timed): the landmark table every `reused_alt`
    // row routes with.
    let t0 = Instant::now();
    let table = Arc::new(LandmarkTable::build(
        &g,
        LandmarkMetric::Length,
        &LandmarkConfig::default(),
    ));
    let alt_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "ALT: {} landmarks precomputed in {alt_build_ms:.1} ms",
        table.k()
    );

    // TravelTime-metric landmark table: the fastest-path serving index.
    let t0 = Instant::now();
    let tt_table = Arc::new(LandmarkTable::build(
        &g,
        LandmarkMetric::TravelTime,
        &LandmarkConfig::default(),
    ));
    let alt_tt_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Contraction hierarchy (timed): the index every `reused_ch` row
    // routes with.
    let t0 = Instant::now();
    let ch = Arc::new(ContractionHierarchy::build(
        &g,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let ch_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "CH: {} shortcuts over {} edges in {ch_build_ms:.1} ms",
        ch.shortcut_count(),
        g.edge_count()
    );

    // TravelTime-metric hierarchy (timed): fastest-path serving on a CH
    // instead of the ALT fallback.
    let t0 = Instant::now();
    let ch_tt = Arc::new(ContractionHierarchy::build(
        &g,
        LandmarkMetric::TravelTime,
        &ChConfig::default(),
    ));
    let ch_tt_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "TT CH: {} shortcuts in {ch_tt_build_ms:.1} ms",
        ch_tt.shortcut_count()
    );

    // Customizable CH: the metric-independent topology is built once
    // (timed), then each metric is a customization pass — the cost a
    // live weight change actually pays, to contrast with the full
    // rebuilds above.
    let t0 = Instant::now();
    let cch_topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let cch_topo_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let cch = Arc::new(cch_topo.customize(&g, &CostModel::Length));
    let cch_customize_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let cch_tt = Arc::new(cch_topo.customize(&g, &CostModel::TravelTime));
    let cch_customize_tt_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "CCH: {} arcs ({} fill-ins, {} triangles) in {cch_topo_build_ms:.1} ms; customize {cch_customize_ms:.2} ms length / {cch_customize_tt_ms:.2} ms travel-time",
        cch_topo.arc_count(),
        cch_topo.fill_in_count(),
        cch_topo.triangle_count()
    );

    // Frozen serving graph (timed): one merged forward/backward CSR
    // with the per-metric weights inlined next to each arc — the layout
    // every `frozen` row relaxes instead of the builder Graph.
    let t0 = Instant::now();
    let frozen = Arc::new(FrozenGraph::freeze(&g));
    let frozen_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "frozen: {} arcs ({} vertices) in {frozen_build_ms:.1} ms",
        2 * frozen.edge_count(),
        frozen.vertex_count()
    );

    // The engines' answers must agree with the baseline's before any
    // timing is trusted (equal costs; tie-breaking may differ) — for the
    // plain reused engine, the ALT-guided one *and* the CH-backed one.
    {
        let mut engine = QueryEngine::new(&g);
        let mut frz = QueryEngine::new(&g).with_frozen(Arc::clone(&frozen));
        assert!(frz.uses_frozen(), "frozen graph must be epoch-fresh");
        let mut alt = QueryEngine::new(&g).with_landmarks(Arc::clone(&table));
        let mut chx = QueryEngine::new(&g)
            .with_landmarks(Arc::clone(&table))
            .with_ch(Arc::clone(&ch));
        let mut tt = QueryEngine::new(&g).with_landmarks(Arc::clone(&tt_table));
        let mut tt_ch_engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch_tt));
        let mut cchx = QueryEngine::new(&g).with_cch(Arc::clone(&cch));
        let mut tt_cch_engine = QueryEngine::new(&g).with_cch(Arc::clone(&cch_tt));
        assert!(alt.uses_alt(CostModel::Length));
        assert!(chx.uses_ch(CostModel::Length));
        assert!(tt.uses_alt(CostModel::TravelTime));
        assert!(tt_ch_engine.uses_ch(CostModel::TravelTime));
        assert!(!tt_ch_engine.uses_ch(CostModel::Length));
        assert!(cchx.uses_cch(CostModel::Length));
        assert!(tt_cch_engine.uses_cch(CostModel::TravelTime));
        assert!(!tt_cch_engine.uses_cch(CostModel::Length));
        for &(s, t) in &p2p {
            let a =
                seed_baseline::shortest_path(&g, s, t, CostModel::Length).map(|p| p.length_m(&g));
            for engine in [&mut engine, &mut alt, &mut chx, &mut cchx] {
                let b = engine
                    .astar_shortest_path(s, t, CostModel::Length)
                    .map(|p| p.length_m(&g));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-6, "cost mismatch {s:?}->{t:?}")
                    }
                    (None, None) => {}
                    (a, b) => panic!("reachability mismatch {s:?}->{t:?}: {a:?} vs {b:?}"),
                }
            }
            // The frozen layout is held to a stricter bar than the
            // tolerance check above: bit-identical costs to the plain
            // reused engine on both metrics, edge-for-edge same path.
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let a = engine.astar_shortest_path(s, t, cost);
                let b = frz.astar_shortest_path(s, t, cost);
                assert_eq!(
                    a.as_ref().map(|p| p.edges().to_vec()),
                    b.as_ref().map(|p| p.edges().to_vec()),
                    "frozen path diverged {s:?}->{t:?}"
                );
                assert_eq!(
                    a.map(|p| p.cost(&g, cost).to_bits()),
                    b.map(|p| p.cost(&g, cost).to_bits()),
                    "frozen cost not bit-identical {s:?}->{t:?}"
                );
            }
            let a = seed_baseline::shortest_path(&g, s, t, CostModel::TravelTime)
                .map(|p| p.travel_time_s(&g));
            for engine in [&mut tt, &mut tt_ch_engine, &mut tt_cch_engine] {
                let b = engine
                    .astar_shortest_path(s, t, CostModel::TravelTime)
                    .map(|p| p.travel_time_s(&g));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-6, "TT cost mismatch {s:?}->{t:?}")
                    }
                    (None, None) => {}
                    (a, b) => panic!("TT reachability mismatch {s:?}->{t:?}: {a:?} vs {b:?}"),
                }
            }
        }
        for &(s, t) in yen_pairs {
            let a = seed_baseline::yen_k_shortest(&g, s, t, CostModel::Length, YEN_K);
            for engine in [&mut engine, &mut alt, &mut chx] {
                let b = engine.yen_k_shortest(s, t, CostModel::Length, YEN_K);
                assert_eq!(a.len(), b.len(), "yen count mismatch {s:?}->{t:?}");
                for ((_, ca), (_, cb)) in a.iter().zip(b.iter()) {
                    assert!((ca - cb).abs() < 1e-6, "yen cost mismatch {s:?}->{t:?}");
                }
            }
        }
        // The batched table must agree with the pairwise CH probes it
        // replaces, and the bucket one-to-many with the one-to-all tree.
        let table = chx
            .many_to_many(&m2m_sources, &m2m_targets, CostModel::Length)
            .expect("length CH attached");
        for (i, &s) in m2m_sources.iter().enumerate() {
            for (j, &t) in m2m_targets.iter().enumerate() {
                let pairwise = chx
                    .shortest_path_cost(s, t, CostModel::Length)
                    .unwrap_or(f64::INFINITY);
                let batched = table.dist(i, j);
                assert!(
                    (pairwise - batched).abs() < 1e-6
                        || (pairwise.is_infinite() && batched.is_infinite()),
                    "m2m mismatch {s:?}->{t:?}: {pairwise} vs {batched}"
                );
            }
        }
        for &s in &tree_sources {
            let batched = chx
                .one_to_many(s, &m2m_targets, CostModel::Length)
                .expect("length CH attached");
            let view = engine.one_to_all(s, CostModel::Length);
            for (j, &t) in m2m_targets.iter().enumerate() {
                let full = view.dist(t);
                assert!(
                    (full - batched[j]).abs() < 1e-6
                        || (full.is_infinite() && batched[j].is_infinite()),
                    "one_to_many mismatch {s:?}->{t:?}"
                );
            }
        }
        // Frozen one-to-all: every settled distance in the tree must be
        // bit-identical to the builder-graph sweep, all V vertices.
        for &s in &tree_sources {
            let a: Vec<u64> = {
                let view = engine.one_to_all(s, CostModel::Length);
                (0..g.vertex_count() as u32)
                    .map(|v| view.dist(VertexId(v)).to_bits())
                    .collect()
            };
            let b: Vec<u64> = {
                let view = frz.one_to_all(s, CostModel::Length);
                (0..g.vertex_count() as u32)
                    .map(|v| view.dist(VertexId(v)).to_bits())
                    .collect()
            };
            assert_eq!(a, b, "frozen one_to_all diverged from {s:?}");
        }
    }

    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut record =
        |name: &'static str, mode: &'static str, queries: usize, reps: usize, ns: f64| {
            eprintln!("  {name:<12} {mode:<6} {ns:>12.0} ns/query");
            scenarios.push(Scenario {
                name,
                mode,
                queries,
                reps,
                median_ns_per_query: ns,
            });
        };

    // One-to-one: the transition-probe / spur-search shape. Three rows
    // separate the two effects the engine brings: `reused_dijkstra` is
    // the same algorithm as the baseline (isolating pure state reuse),
    // `reused` is the engine's full point-to-point path (reuse + cached
    // A* bound — the speedup a migrated caller actually gets).
    let fresh = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(seed_baseline::shortest_path(&g, s, t, CostModel::Length));
        }
    });
    record("one_to_one", "fresh", p2p.len(), reps, fresh);
    let mut engine = QueryEngine::new(&g);
    let reused_dijkstra = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::Length));
        }
    });
    record(
        "one_to_one",
        "reused_dijkstra",
        p2p.len(),
        reps,
        reused_dijkstra,
    );
    let mut engine = QueryEngine::new(&g);
    let reused = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.astar_shortest_path(s, t, CostModel::Length));
        }
    });
    record("one_to_one", "reused", p2p.len(), reps, reused);
    let mut engine = QueryEngine::new(&g).with_landmarks(Arc::clone(&table));
    let reused_alt = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.astar_shortest_path(s, t, CostModel::Length));
        }
    });
    record("one_to_one", "reused_alt", p2p.len(), reps, reused_alt);
    let mut engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch));
    let reused_ch = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::Length));
        }
    });
    record("one_to_one", "reused_ch", p2p.len(), reps, reused_ch);
    let mut engine = QueryEngine::new(&g).with_cch(Arc::clone(&cch));
    let reused_cch = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::Length));
        }
    });
    record("one_to_one", "reused_cch", p2p.len(), reps, reused_cch);
    // Same search as `reused` (cached-bound A*), but relaxing the
    // frozen merged CSR with inlined weights instead of the builder
    // Graph — the row isolates the memory-layout effect alone.
    let mut engine = QueryEngine::new(&g).with_frozen(Arc::clone(&frozen));
    let reused_frozen = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.astar_shortest_path(s, t, CostModel::Length));
        }
    });
    record("one_to_one", "frozen", p2p.len(), reps, reused_frozen);
    // Observability overhead: the identical CH-backed one-to-one
    // workload with a live metrics registry attached vs the
    // construction-time no-op sink. The search loops carry plain u64
    // work counters either way; a live registry adds a few relaxed
    // pinned-shard counter adds per *query* (not per vertex), so the
    // ratio must hold the < 2% budget the obs layer promises — checked
    // here on the fastest backend, where instrumentation is
    // proportionally largest. The two engines alternate sweep-by-sweep
    // (A/B interleave) so clock drift and thermal throttle cancel out
    // of the ratio instead of landing on one side.
    let mut engine_off = QueryEngine::new(&g).with_ch(Arc::clone(&ch));
    let obs_registry = Registry::new();
    let mut engine_on = QueryEngine::new(&g)
        .with_ch(Arc::clone(&ch))
        .with_obs(EngineObs::new(&obs_registry));
    // Many short interleaved sweeps beat few long ones here: the
    // question is a ~2% ratio, so the medians need enough samples to
    // shrug off scheduler blips. 201 sweeps/side costs single-digit
    // milliseconds even at paper scale.
    let obs_reps = (reps * 3).max(201);
    let mut sweep_off = |acc: Option<&mut Series>| {
        let t0 = Instant::now();
        for &(s, t) in &p2p {
            std::hint::black_box(engine_off.shortest_path(s, t, CostModel::Length));
        }
        if let Some(acc) = acc {
            acc.push(t0.elapsed().as_nanos() as f64 / p2p.len() as f64);
        }
    };
    let mut sweep_on = |acc: Option<&mut Series>| {
        let t0 = Instant::now();
        for &(s, t) in &p2p {
            std::hint::black_box(engine_on.shortest_path(s, t, CostModel::Length));
        }
        if let Some(acc) = acc {
            acc.push(t0.elapsed().as_nanos() as f64 / p2p.len() as f64);
        }
    };
    sweep_off(None); // warm both engines before the first timed sweep
    sweep_on(None);
    let mut off_series = Series::with_capacity(obs_reps);
    let mut on_series = Series::with_capacity(obs_reps);
    for _ in 0..obs_reps {
        sweep_off(Some(&mut off_series));
        sweep_on(Some(&mut on_series));
    }
    let obs_off = off_series.median();
    let obs_on = on_series.median();
    record("one_to_one", "obs_off", p2p.len(), obs_reps, obs_off);
    record("one_to_one", "obs_on", p2p.len(), obs_reps, obs_on);
    let obs_overhead_ratio = obs_on / obs_off;
    let counted = obs_registry
        .snapshot()
        .counter_total("pathrank_engine_queries_total", &[]);
    assert_eq!(
        counted as usize,
        (obs_reps + 1) * p2p.len(),
        "instrumented engine must count every query (warm-up included)"
    );
    let speedup_p2p = fresh / reused;
    let speedup_p2p_frozen = fresh / reused_frozen;
    let frozen_over_reused_p2p = reused / reused_frozen;
    let speedup_p2p_cch = fresh / reused_cch;
    let speedup_p2p_alt = fresh / reused_alt;
    let speedup_p2p_ch = fresh / reused_ch;
    let speedup_p2p_reuse_only = fresh / reused_dijkstra;

    // Fastest-path (TravelTime) serving: the fresh baseline vs the
    // TravelTime-metric landmark table the Workbench now carries.
    let fresh_tt = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(seed_baseline::shortest_path(
                &g,
                s,
                t,
                CostModel::TravelTime,
            ));
        }
    });
    record("fastest_one_to_one", "fresh", p2p.len(), reps, fresh_tt);
    let mut engine = QueryEngine::new(&g).with_landmarks(Arc::clone(&tt_table));
    let reused_alt_tt = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.astar_shortest_path(s, t, CostModel::TravelTime));
        }
    });
    record(
        "fastest_one_to_one",
        "reused_alt",
        p2p.len(),
        reps,
        reused_alt_tt,
    );
    let speedup_tt_alt = fresh_tt / reused_alt_tt;
    // The TravelTime-metric hierarchy: fastest-path serving stops
    // falling back to ALT.
    let mut engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch_tt));
    let reused_ch_tt = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::TravelTime));
        }
    });
    record(
        "fastest_one_to_one",
        "reused_ch",
        p2p.len(),
        reps,
        reused_ch_tt,
    );
    let speedup_tt_ch = fresh_tt / reused_ch_tt;
    // The customized hierarchy serving fastest paths — the index live
    // traffic would re-customize instead of rebuilding.
    let mut engine = QueryEngine::new(&g).with_cch(Arc::clone(&cch_tt));
    let reused_cch_tt = measure(reps, p2p.len(), || {
        for &(s, t) in &p2p {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::TravelTime));
        }
    });
    record(
        "fastest_one_to_one",
        "reused_cch",
        p2p.len(),
        reps,
        reused_cch_tt,
    );
    let speedup_tt_cch = fresh_tt / reused_cch_tt;

    // One-to-all trees: the edge-popularity / preprocessing shape. The
    // reused side also skips materialising the O(V) result arrays by
    // reading through the borrowed TreeView.
    let fresh = measure(reps, tree_sources.len(), || {
        for &s in &tree_sources {
            std::hint::black_box(seed_baseline::one_to_all_dist(&g, s, CostModel::Length)[0]);
        }
    });
    record("one_to_all", "fresh", tree_sources.len(), reps, fresh);
    let mut engine = QueryEngine::new(&g);
    let reused = measure(reps, tree_sources.len(), || {
        for &s in &tree_sources {
            std::hint::black_box(engine.one_to_all(s, CostModel::Length).dist(VertexId(0)));
        }
    });
    record("one_to_all", "reused", tree_sources.len(), reps, reused);
    let mut engine = QueryEngine::new(&g).with_frozen(Arc::clone(&frozen));
    let frozen_tree = measure(reps, tree_sources.len(), || {
        for &s in &tree_sources {
            std::hint::black_box(engine.one_to_all(s, CostModel::Length).dist(VertexId(0)));
        }
    });
    record(
        "one_to_all",
        "frozen",
        tree_sources.len(),
        reps,
        frozen_tree,
    );
    let speedup_tree = fresh / reused;
    let speedup_tree_frozen = fresh / frozen_tree;
    let frozen_over_reused_tree = reused / frozen_tree;

    // One-to-many: the batched bounded-target shape. The fresh and
    // reused rows pay a full one-to-all sweep and read the targets out;
    // the CH row runs the bucket algorithm (per-target backward sweeps +
    // one forward sweep) and never touches the rest of the graph.
    let fresh = measure(reps, tree_sources.len(), || {
        for &s in &tree_sources {
            let d = seed_baseline::one_to_all_dist(&g, s, CostModel::Length);
            let mut acc = 0.0;
            for &t in &m2m_targets {
                acc += d[t.index()];
            }
            std::hint::black_box(acc);
        }
    });
    record("one_to_many", "fresh", tree_sources.len(), reps, fresh);
    let mut engine = QueryEngine::new(&g);
    let reused = measure(reps, tree_sources.len(), || {
        for &s in &tree_sources {
            let view = engine.one_to_all(s, CostModel::Length);
            let mut acc = 0.0;
            for &t in &m2m_targets {
                acc += view.dist(t);
            }
            std::hint::black_box(acc);
        }
    });
    record("one_to_many", "reused", tree_sources.len(), reps, reused);
    let mut engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch));
    let reused_ch_otm = measure(reps, tree_sources.len(), || {
        for &s in &tree_sources {
            std::hint::black_box(engine.one_to_many(s, &m2m_targets, CostModel::Length));
        }
    });
    record(
        "one_to_many",
        "reused_ch",
        tree_sources.len(),
        reps,
        reused_ch_otm,
    );
    let speedup_one_to_many = reused / reused_ch_otm;

    // Many-to-many: the HMM transition-matrix shape. `pairwise_ch` is
    // what PR 3's matcher effectively does — one independent CH probe
    // per (source, target) pair — against one bucket-based
    // DistanceTable for the whole S×T block.
    let pair_count = m2m_sources.len() * m2m_targets.len();
    let mut engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch));
    let pairwise_ch = measure(reps, pair_count, || {
        for &s in &m2m_sources {
            for &t in &m2m_targets {
                std::hint::black_box(engine.shortest_path_cost(s, t, CostModel::Length));
            }
        }
    });
    record("many_to_many", "pairwise_ch", pair_count, reps, pairwise_ch);
    let m2m_table_ns = measure(reps, pair_count, || {
        std::hint::black_box(engine.many_to_many(&m2m_sources, &m2m_targets, CostModel::Length));
    });
    record("many_to_many", "reused_ch", pair_count, reps, m2m_table_ns);
    let speedup_m2m = pairwise_ch / m2m_table_ns;

    // Map-matching throughput: whole traces through the reusable
    // matcher. `reused_ch` reproduces PR 3's configuration (CH-backed
    // pairwise transition probes through the fleet sp-cache); `m2m`
    // additionally bulk-fills each ping-to-ping block from one
    // DistanceTable. Caches reset per pass so both sides pay cold-fleet
    // costs; matches are asserted identical before timing.
    let sim = if quick {
        SimulationConfig {
            n_vehicles: 4,
            trips_per_vehicle: 1,
            ..SimulationConfig::small_test()
        }
    } else {
        SimulationConfig {
            n_vehicles: 8,
            trips_per_vehicle: 1,
            min_trip_euclid_m: 800.0,
            max_trip_euclid_m: 6_000.0,
            ..SimulationConfig::paper_scale()
        }
    };
    let trips = simulate_fleet(&g, &sim, SEED ^ 0x77);
    let mm_cfg = MapMatchConfig::default();
    {
        let mut on = MapMatcher::new(&g, mm_cfg.clone()).with_ch(Arc::clone(&ch));
        let mut off = MapMatcher::new(&g, mm_cfg.clone())
            .with_ch(Arc::clone(&ch))
            .with_m2m(false);
        for trip in &trips {
            let a = on.match_trace(&trip.trace).map(|p| p.edges().to_vec());
            let b = off.match_trace(&trip.trace).map(|p| p.edges().to_vec());
            assert_eq!(a, b, "m2m bulk fill changed a match");
        }
        assert!(on.stats().m2m_tables > 0, "m2m matcher must build tables");
    }
    let mm_reps = reps.min(5);
    let mut matcher = MapMatcher::new(&g, mm_cfg.clone())
        .with_ch(Arc::clone(&ch))
        .with_m2m(false);
    let mm_pairwise = measure(mm_reps, trips.len(), || {
        matcher.reset_cache();
        for trip in &trips {
            std::hint::black_box(matcher.match_trace(&trip.trace));
        }
    });
    record(
        "mapmatch_throughput",
        "reused_ch",
        trips.len(),
        mm_reps,
        mm_pairwise,
    );
    let mut matcher = MapMatcher::new(&g, mm_cfg.clone()).with_ch(Arc::clone(&ch));
    let mm_m2m = measure(mm_reps, trips.len(), || {
        matcher.reset_cache();
        for trip in &trips {
            std::hint::black_box(matcher.match_trace(&trip.trace));
        }
    });
    record("mapmatch_throughput", "m2m", trips.len(), mm_reps, mm_m2m);
    let speedup_mapmatch = mm_pairwise / mm_m2m;

    // Candidate snapping: the retired uniform grid against the packed
    // R-tree, probed with the fleet's real GPS fixes. The grid returns a
    // cell-superset that the caller must distance-filter (exactly what
    // the matcher's candidate loop used to pay per fix); the R-tree
    // returns the exact in-radius set directly. Both index builds are
    // timed, and candidate sets are asserted identical on every probe
    // before any timing is trusted.
    let probes: Vec<Point> = trips
        .iter()
        .flat_map(|t| t.trace.points.iter().map(|p| p.pos))
        .collect();
    let snap_radius = mm_cfg.candidate_radius_m;
    let t0 = Instant::now();
    let grid_index = EdgeIndex::build(&g, mm_cfg.index_cell_m());
    let grid_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let rtree_index = RTree::build(&g);
    let rtree_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let in_radius = |p: &Point, e: EdgeId| {
        let rec = g.edge(e);
        point_segment_distance(p, &g.coord(rec.from), &g.coord(rec.to)) <= snap_radius
    };
    {
        let mut a: Vec<EdgeId> = Vec::new();
        let mut b: Vec<EdgeId> = Vec::new();
        for p in &probes {
            grid_index.edges_near_into(p, snap_radius, &mut a);
            a.retain(|&e| in_radius(p, e));
            rtree_index.edges_within_into(p, snap_radius, &mut b);
            assert_eq!(a, b, "snap candidate sets diverged at {p:?}");
        }
    }
    let mut snap_buf: Vec<EdgeId> = Vec::new();
    let snap_grid = measure(reps, probes.len(), || {
        for p in &probes {
            grid_index.edges_near_into(p, snap_radius, &mut snap_buf);
            snap_buf.retain(|&e| in_radius(p, e));
            std::hint::black_box(snap_buf.len());
        }
    });
    record("snap_throughput", "grid", probes.len(), reps, snap_grid);
    let snap_rtree = measure(reps, probes.len(), || {
        for p in &probes {
            rtree_index.edges_within_into(p, snap_radius, &mut snap_buf);
            std::hint::black_box(snap_buf.len());
        }
    });
    record("snap_throughput", "rtree", probes.len(), reps, snap_rtree);
    let speedup_snap = snap_grid / snap_rtree;

    // Yen top-k: the candidate-generation shape (hundreds of constrained
    // spur searches per query group).
    let fresh = measure(reps, yen_pairs.len(), || {
        for &(s, t) in yen_pairs {
            std::hint::black_box(seed_baseline::yen_k_shortest(
                &g,
                s,
                t,
                CostModel::Length,
                YEN_K,
            ));
        }
    });
    record("yen_top_k", "fresh", yen_pairs.len(), reps, fresh);
    let mut engine = QueryEngine::new(&g);
    let reused = measure(reps, yen_pairs.len(), || {
        for &(s, t) in yen_pairs {
            std::hint::black_box(engine.yen_k_shortest(s, t, CostModel::Length, YEN_K));
        }
    });
    record("yen_top_k", "reused", yen_pairs.len(), reps, reused);
    let mut engine = QueryEngine::new(&g).with_landmarks(Arc::clone(&table));
    let reused_alt = measure(reps, yen_pairs.len(), || {
        for &(s, t) in yen_pairs {
            std::hint::black_box(engine.yen_k_shortest(s, t, CostModel::Length, YEN_K));
        }
    });
    record("yen_top_k", "reused_alt", yen_pairs.len(), reps, reused_alt);
    // ALT + CH together: the initial unconstrained path of each Yen
    // enumeration takes the CH backend, the spur searches stay ALT.
    let mut engine = QueryEngine::new(&g)
        .with_landmarks(Arc::clone(&table))
        .with_ch(Arc::clone(&ch));
    let reused_ch_yen = measure(reps, yen_pairs.len(), || {
        for &(s, t) in yen_pairs {
            std::hint::black_box(engine.yen_k_shortest(s, t, CostModel::Length, YEN_K));
        }
    });
    record(
        "yen_top_k",
        "reused_ch",
        yen_pairs.len(),
        reps,
        reused_ch_yen,
    );
    let speedup_yen = fresh / reused;
    let speedup_yen_alt = fresh / reused_alt;
    let speedup_yen_ch = fresh / reused_ch_yen;

    // Imported-network rows: the same one-to-one workloads on a real
    // (OSM-imported) road network, so the perf trajectory is tracked on
    // real topology too, not just the generator's.
    let t0 = Instant::now();
    let loaded = pathrank_spatial::io::load_graph_auto(std::path::Path::new(&graph_path))
        .expect("--graph network must load");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let og = loaded.graph;
    eprintln!(
        "imported network ({}): {} vertices, {} edges from {graph_path} in {load_ms:.1} ms",
        loaded.kind.label(),
        og.vertex_count(),
        og.edge_count()
    );
    // Trip band scaled to the network's extent.
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for p in og.coords() {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let diag = ((max_x - min_x).powi(2) + (max_y - min_y).powi(2)).sqrt();
    let o_pairs = trip_pairs(&og, if quick { 16 } else { 32 }, 0.2 * diag, 0.85 * diag);
    let t0 = Instant::now();
    let o_table = Arc::new(LandmarkTable::build(
        &og,
        LandmarkMetric::Length,
        &LandmarkConfig::default(),
    ));
    let o_alt_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let o_ch = Arc::new(ContractionHierarchy::build(
        &og,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let o_ch_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let o_ch_tt = Arc::new(ContractionHierarchy::build(
        &og,
        LandmarkMetric::TravelTime,
        &ChConfig::default(),
    ));
    let t0 = Instant::now();
    let o_cch_topo = Arc::new(CchTopology::build(&og, &CchConfig::default()));
    let o_cch_topo_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let o_cch = Arc::new(o_cch_topo.customize(&og, &CostModel::Length));
    let o_cch_customize_ms = t0.elapsed().as_secs_f64() * 1e3;
    let o_cch_tt = Arc::new(o_cch_topo.customize(&og, &CostModel::TravelTime));
    // Exactness on the imported network before any timing is trusted:
    // every backend must agree with the fresh baseline on both metrics.
    {
        let mut alt = QueryEngine::new(&og).with_landmarks(Arc::clone(&o_table));
        let mut chx = QueryEngine::new(&og).with_ch(Arc::clone(&o_ch));
        let mut cchx = QueryEngine::new(&og).with_cch(Arc::clone(&o_cch));
        let mut tt = QueryEngine::new(&og).with_ch(Arc::clone(&o_ch_tt));
        let mut tt_cch = QueryEngine::new(&og).with_cch(Arc::clone(&o_cch_tt));
        assert!(alt.uses_alt(CostModel::Length));
        assert!(chx.uses_ch(CostModel::Length));
        assert!(cchx.uses_cch(CostModel::Length));
        assert!(tt.uses_ch(CostModel::TravelTime));
        assert!(tt_cch.uses_cch(CostModel::TravelTime));
        for &(s, t) in &o_pairs {
            let a =
                seed_baseline::shortest_path(&og, s, t, CostModel::Length).map(|p| p.length_m(&og));
            for engine in [&mut alt, &mut chx, &mut cchx] {
                let b = engine
                    .astar_shortest_path(s, t, CostModel::Length)
                    .map(|p| p.length_m(&og));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-6, "imported cost mismatch {s:?}->{t:?}")
                    }
                    (None, None) => {}
                    (a, b) => panic!("imported reachability mismatch {s:?}->{t:?}: {a:?} vs {b:?}"),
                }
            }
            let a = seed_baseline::shortest_path(&og, s, t, CostModel::TravelTime)
                .map(|p| p.travel_time_s(&og));
            for engine in [&mut tt, &mut tt_cch] {
                let b = engine
                    .astar_shortest_path(s, t, CostModel::TravelTime)
                    .map(|p| p.travel_time_s(&og));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-6, "imported TT mismatch {s:?}->{t:?}")
                    }
                    (None, None) => {}
                    (a, b) => {
                        panic!("imported TT reachability mismatch {s:?}->{t:?}: {a:?} vs {b:?}")
                    }
                }
            }
        }
    }
    let o_fresh = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(seed_baseline::shortest_path(&og, s, t, CostModel::Length));
        }
    });
    record("imported_one_to_one", "fresh", o_pairs.len(), reps, o_fresh);
    let mut engine = QueryEngine::new(&og);
    let o_reused = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(engine.astar_shortest_path(s, t, CostModel::Length));
        }
    });
    record(
        "imported_one_to_one",
        "reused",
        o_pairs.len(),
        reps,
        o_reused,
    );
    let mut engine = QueryEngine::new(&og).with_landmarks(Arc::clone(&o_table));
    let o_reused_alt = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(engine.astar_shortest_path(s, t, CostModel::Length));
        }
    });
    record(
        "imported_one_to_one",
        "reused_alt",
        o_pairs.len(),
        reps,
        o_reused_alt,
    );
    let mut engine = QueryEngine::new(&og).with_ch(Arc::clone(&o_ch));
    let o_reused_ch = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::Length));
        }
    });
    record(
        "imported_one_to_one",
        "reused_ch",
        o_pairs.len(),
        reps,
        o_reused_ch,
    );
    let mut engine = QueryEngine::new(&og).with_cch(Arc::clone(&o_cch));
    let o_reused_cch = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::Length));
        }
    });
    record(
        "imported_one_to_one",
        "reused_cch",
        o_pairs.len(),
        reps,
        o_reused_cch,
    );
    let o_fresh_tt = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(seed_baseline::shortest_path(
                &og,
                s,
                t,
                CostModel::TravelTime,
            ));
        }
    });
    record(
        "imported_fastest_one_to_one",
        "fresh",
        o_pairs.len(),
        reps,
        o_fresh_tt,
    );
    let mut engine = QueryEngine::new(&og).with_ch(Arc::clone(&o_ch_tt));
    let o_reused_ch_tt = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::TravelTime));
        }
    });
    record(
        "imported_fastest_one_to_one",
        "reused_ch",
        o_pairs.len(),
        reps,
        o_reused_ch_tt,
    );
    let mut engine = QueryEngine::new(&og).with_cch(Arc::clone(&o_cch_tt));
    let o_reused_cch_tt = measure(reps, o_pairs.len(), || {
        for &(s, t) in &o_pairs {
            std::hint::black_box(engine.shortest_path(s, t, CostModel::TravelTime));
        }
    });
    record(
        "imported_fastest_one_to_one",
        "reused_cch",
        o_pairs.len(),
        reps,
        o_reused_cch_tt,
    );
    let speedup_imported_ch = o_fresh / o_reused_ch;
    let speedup_imported_alt = o_fresh / o_reused_alt;
    let speedup_imported_tt_ch = o_fresh_tt / o_reused_ch_tt;
    let speedup_imported_cch = o_fresh / o_reused_cch;
    let speedup_imported_tt_cch = o_fresh_tt / o_reused_cch_tt;
    let imported_stats = loaded.stats.clone();

    // Hand-rolled JSON (the workspace deliberately has no serde backend).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"routing\",");
    let _ = writeln!(json, "  \"unit\": \"ns_per_query_median\",");
    let _ = writeln!(
        json,
        "  \"baseline\": \"seed reconstruction: fresh O(V) allocation per search, Dijkstra-only\","
    );
    let _ = writeln!(
        json,
        "  \"reused\": \"QueryEngine: generation-stamped SearchSpace + cached A* bounds\","
    );
    let _ = writeln!(
        json,
        "  \"reused_alt\": \"QueryEngine + LandmarkTable: ALT triangle-inequality heuristic (exact)\","
    );
    let _ = writeln!(
        json,
        "  \"reused_ch\": \"QueryEngine + ContractionHierarchy: bidirectional upward search with shortcut unpacking (exact)\","
    );
    let _ = writeln!(
        json,
        "  \"alt\": {{\"landmarks\": {}, \"active_per_query\": {}, \"build_ms\": {:.1}, \"travel_time_build_ms\": {:.1}}},",
        table.k(),
        pathrank_spatial::algo::landmarks::ACTIVE_LANDMARKS,
        alt_build_ms,
        alt_tt_build_ms
    );
    let _ = writeln!(
        json,
        "  \"m2m\": \"bucket-based many-to-many over the CH: T backward + S forward upward sweeps fill an exact SxT DistanceTable (exact)\","
    );
    let _ = writeln!(
        json,
        "  \"ch\": {{\"shortcuts\": {}, \"arcs\": {}, \"build_ms\": {:.1}}},",
        ch.shortcut_count(),
        ch.arcs().len(),
        ch_build_ms
    );
    let _ = writeln!(
        json,
        "  \"ch_tt\": {{\"shortcuts\": {}, \"arcs\": {}, \"build_ms\": {:.1}}},",
        ch_tt.shortcut_count(),
        ch_tt.arcs().len(),
        ch_tt_build_ms
    );
    let _ = writeln!(
        json,
        "  \"reused_cch\": \"QueryEngine + customizable CH: fixed metric-independent order, per-metric triangle-relaxation customization (exact)\","
    );
    let _ = writeln!(
        json,
        "  \"cch\": {{\"arcs\": {}, \"fill_ins\": {}, \"triangles\": {}, \"topo_build_ms\": {:.1}, \"customize_ms\": {:.2}, \"customize_tt_ms\": {:.2}}},",
        cch_topo.arc_count(),
        cch_topo.fill_in_count(),
        cch_topo.triangle_count(),
        cch_topo_build_ms,
        cch_customize_ms,
        cch_customize_tt_ms
    );
    let _ = writeln!(
        json,
        "  \"frozen\": {{\"arcs\": {}, \"vertices\": {}, \"build_ms\": {frozen_build_ms:.1}}},",
        2 * frozen.edge_count(),
        frozen.vertex_count()
    );
    let _ = writeln!(
        json,
        "  \"snap_index\": {{\"segments\": {}, \"rtree_build_ms\": {rtree_build_ms:.1}, \"grid_build_ms\": {grid_build_ms:.1}, \"radius_m\": {snap_radius:.1}, \"probes\": {}}},",
        rtree_index.len(),
        probes.len()
    );
    let _ = writeln!(
        json,
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"seed\": {}, \"scale\": \"{}\"}},",
        g.vertex_count(),
        g.edge_count(),
        SEED,
        if quick { "small_test" } else { "paper_scale" }
    );
    let _ = writeln!(json, "  \"yen_k\": {YEN_K},");
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"queries\": {}, \"reps\": {}, \"median_ns_per_query\": {:.0}}}{}",
            s.name,
            s.mode,
            s.queries,
            s.reps,
            s.median_ns_per_query,
            if i + 1 == scenarios.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_reused_over_fresh\": {{\"one_to_one\": {speedup_p2p:.3}, \"one_to_all\": {speedup_tree:.3}, \"yen_top_k\": {speedup_yen:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_alt_over_fresh\": {{\"one_to_one\": {speedup_p2p_alt:.3}, \"yen_top_k\": {speedup_yen_alt:.3}, \"fastest_one_to_one\": {speedup_tt_alt:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_ch_over_fresh\": {{\"one_to_one\": {speedup_p2p_ch:.3}, \"yen_top_k\": {speedup_yen_ch:.3}, \"fastest_one_to_one\": {speedup_tt_ch:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_cch_over_fresh\": {{\"one_to_one\": {speedup_p2p_cch:.3}, \"fastest_one_to_one\": {speedup_tt_cch:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_frozen_over_fresh\": {{\"one_to_one\": {speedup_p2p_frozen:.3}, \"one_to_all\": {speedup_tree_frozen:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_frozen_over_reused\": {{\"one_to_one\": {frozen_over_reused_p2p:.3}, \"one_to_all\": {frozen_over_reused_tree:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_snap_rtree_over_grid\": {speedup_snap:.3},"
    );
    let _ = writeln!(
        json,
        "  \"obs_overhead\": {{\"one_to_one_ratio\": {obs_overhead_ratio:.4}, \"budget_ratio\": 1.02}},"
    );
    // The batched layer: one DistanceTable vs the pairwise CH probes it
    // replaces (the HMM transition-matrix shape), bucket one-to-many vs
    // a full reused one-to-all, and whole-trace map-matching throughput
    // with the bulk fill on vs off.
    // The imported-network section: where the rows came from, what the
    // importer did, and the index speedups on real topology.
    let _ = writeln!(
        json,
        "  \"imported_graph\": {{\"source\": {graph_label:?}, \"kind\": \"{}\", \"vertices\": {}, \"edges\": {}, \"load_ms\": {load_ms:.1}, \"total_km\": {:.1}, \"alt_build_ms\": {o_alt_build_ms:.1}, \"ch_build_ms\": {o_ch_build_ms:.1}, \"cch_topo_build_ms\": {o_cch_topo_build_ms:.1}, \"cch_customize_ms\": {o_cch_customize_ms:.2}}},",
        loaded.kind.label(),
        og.vertex_count(),
        og.edge_count(),
        og.total_length_m() / 1000.0
    );
    // Pipeline counters exist only for on-the-fly XML imports (a
    // persisted import records just its final shape).
    if let Some(s) = imported_stats.as_ref().filter(|s| s.raw_ways > 0) {
        let _ = writeln!(
            json,
            "  \"imported_pipeline\": {{\"raw_nodes\": {}, \"raw_ways\": {}, \"kept_ways\": {}, \"oneway_ways\": {}, \"segment_vertices\": {}, \"scc_vertices\": {}, \"final_vertices\": {}}},",
            s.raw_nodes,
            s.raw_ways,
            s.kept_ways,
            s.oneway_ways,
            s.segment_vertices,
            s.scc_vertices,
            s.final_vertices
        );
    }
    let _ = writeln!(
        json,
        "  \"speedup_imported_ch_over_fresh\": {{\"one_to_one\": {speedup_imported_ch:.3}, \"fastest_one_to_one\": {speedup_imported_tt_ch:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_imported_alt_over_fresh\": {{\"one_to_one\": {speedup_imported_alt:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_imported_cch_over_fresh\": {{\"one_to_one\": {speedup_imported_cch:.3}, \"fastest_one_to_one\": {speedup_imported_tt_cch:.3}}},"
    );
    let _ = writeln!(json, "  \"speedup_m2m_over_pairwise\": {speedup_m2m:.3},");
    let _ = writeln!(
        json,
        "  \"speedup_one_to_many_over_one_to_all\": {speedup_one_to_many:.3},"
    );
    let _ = writeln!(json, "  \"speedup_mapmatch_m2m\": {speedup_mapmatch:.3},");
    // Same-algorithm comparison (Dijkstra both sides): the share of the
    // one-to-one speedup attributable to state reuse alone, with the
    // cached-A*-bound effect factored out. one_to_all is same-algorithm
    // by construction, so it already measures pure reuse.
    let _ = writeln!(
        json,
        "  \"speedup_reuse_only\": {{\"one_to_one\": {speedup_p2p_reuse_only:.3}, \"one_to_all\": {speedup_tree:.3}}}"
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!(
        "speedups (reused/fresh): one_to_one {speedup_p2p:.2}x, one_to_all {speedup_tree:.2}x, yen {speedup_yen:.2}x"
    );
    eprintln!(
        "speedups (alt/fresh):    one_to_one {speedup_p2p_alt:.2}x, yen {speedup_yen_alt:.2}x, fastest {speedup_tt_alt:.2}x"
    );
    eprintln!(
        "speedups (ch/fresh):     one_to_one {speedup_p2p_ch:.2}x, yen {speedup_yen_ch:.2}x, fastest {speedup_tt_ch:.2}x"
    );
    eprintln!(
        "speedups (cch/fresh):    one_to_one {speedup_p2p_cch:.2}x, fastest {speedup_tt_cch:.2}x (customize {cch_customize_tt_ms:.2} ms vs {ch_tt_build_ms:.1} ms rebuild)"
    );
    eprintln!(
        "speedups (m2m):          table/pairwise {speedup_m2m:.2}x ({m2m_side}x{m2m_side}), one_to_many {speedup_one_to_many:.2}x, mapmatch {speedup_mapmatch:.2}x"
    );
    eprintln!(
        "speedups (frozen/fresh): one_to_one {speedup_p2p_frozen:.2}x, one_to_all {speedup_tree_frozen:.2}x (vs reused: {frozen_over_reused_p2p:.2}x / {frozen_over_reused_tree:.2}x)"
    );
    eprintln!(
        "speedups (snap):         rtree/grid {speedup_snap:.2}x over {} probes",
        probes.len()
    );
    eprintln!(
        "obs overhead:            instrumented/uninstrumented one_to_one {obs_overhead_ratio:.4}x (budget 1.02)"
    );
    eprintln!(
        "speedups (imported):     one_to_one ch {speedup_imported_ch:.2}x / alt {speedup_imported_alt:.2}x, fastest ch {speedup_imported_tt_ch:.2}x -> {out_path}"
    );
}
