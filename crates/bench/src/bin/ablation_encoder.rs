//! Extension ablation **A2**: sequence encoder choice.
//!
//! Compares GRU (the paper's encoder), LSTM, and an order-insensitive
//! mean-pool encoder on identical data (D-TkDI, PR-A2, M = 64). The
//! recurrent encoders should beat mean pooling: a path is a *sequence*,
//! and edge adjacency carries signal a bag of vertices discards.

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::model::{EncoderKind, ModelConfig};

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let ccfg = CandidateConfig {
        k: scale.k,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };

    println!(
        "# A2: encoder ablation (D-TkDI, k = {}, PR-A2, M = {dim})",
        scale.k
    );
    print_metric_header("Encoder");
    for (label, encoder) in [
        ("GRU", EncoderKind::Gru),
        ("LSTM", EncoderKind::Lstm),
        ("MeanPool", EncoderKind::MeanPool),
    ] {
        let mcfg = ModelConfig {
            encoder,
            seed: scale.seed.wrapping_add(11),
            ..ModelConfig::paper_default(dim)
        };
        let res = wb.run(mcfg, ccfg, scale.train_config());
        print_metric_row(label, dim, &res.eval);
        eprintln!("  [{label}] {:.1}s train+eval", res.seconds);
    }
}
