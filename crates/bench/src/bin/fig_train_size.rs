//! Extension figure **F3**: accuracy as a function of training-set size
//! (fraction of training trajectories used; D-TkDI, PR-A2, M = 64).
//!
//! The paper's pipeline is data-driven: this figure quantifies how many
//! trajectories the ranking model actually needs before accuracy saturates.

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::eval::evaluate_model;
use pathrank_core::model::{ModelConfig, PathRankModel};
use pathrank_core::trainer::{prepare_samples, train};

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let fractions: &[f64] = if scale.quick {
        &[0.5, 1.0]
    } else {
        &[0.2, 0.4, 0.6, 0.8, 1.0]
    };

    let ccfg = CandidateConfig {
        k: scale.k,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    // Generate the full candidate pool once, then train on prefixes; the
    // test set is fixed, so rows differ only in training-data volume.
    let all_groups = wb.train_groups(&ccfg);
    let test_groups = wb.test_groups(scale.k);
    let embedding = wb.embedding(dim);

    println!(
        "# F3: training-set size sweep (D-TkDI, k = {}, PR-A2, M = {dim}; pool = {} groups)",
        scale.k,
        all_groups.len()
    );
    print_metric_header("frac");
    for &frac in fractions {
        let n = ((all_groups.len() as f64 * frac).round() as usize).max(1);
        let subset = &all_groups[..n];
        let samples = prepare_samples(&wb.graph, subset, false);
        let mcfg = ModelConfig {
            seed: scale.seed.wrapping_add(11),
            ..ModelConfig::paper_default(dim)
        };
        let mut model = PathRankModel::new(wb.graph.vertex_count(), Some(embedding.clone()), mcfg);
        train(&mut model, &samples, &scale.train_config());
        let eval = evaluate_model(&model, &test_groups);
        print_metric_row(&format!("{frac:.1}"), dim, &eval);
        eprintln!("  [frac={frac:.1}] {} groups, {} samples", n, samples.len());
    }
}
