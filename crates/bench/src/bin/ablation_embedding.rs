//! Extension ablation **A1**: what the spatial-network embedding buys.
//!
//! Compares, on identical data (D-TkDI, M = 64):
//!
//! * **PR-RAND** — randomly initialised embedding, fine-tuned (no
//!   node2vec at all);
//! * **PR-A1**  — node2vec embedding, frozen;
//! * **PR-A2**  — node2vec embedding, fine-tuned (the paper's best).
//!
//! The paper's Tables 1–2 imply PR-A2 > PR-A1; this ablation adds the
//! "no pretraining" control the full evaluation motivates.

use pathrank_bench::{print_metric_header, print_metric_row, Scale};
use pathrank_core::candidates::{CandidateConfig, Strategy};
use pathrank_core::model::{EmbeddingMode, ModelConfig};

fn main() {
    let scale = Scale::parse(std::env::args());
    let mut wb = scale.workbench();
    let dim = scale.embedding_dims()[0];
    let ccfg = CandidateConfig {
        k: scale.k,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };

    println!(
        "# A1: embedding ablation (D-TkDI, k = {}, M = {dim})",
        scale.k
    );
    print_metric_header("Variant");
    for mode in [
        EmbeddingMode::TrainableRandom,
        EmbeddingMode::FrozenPretrained,
        EmbeddingMode::Trainable,
    ] {
        let mcfg = ModelConfig {
            embedding_mode: mode,
            seed: scale.seed.wrapping_add(11),
            ..ModelConfig::paper_default(dim)
        };
        let res = wb.run(mcfg, ccfg, scale.train_config());
        print_metric_row(mode.label(), dim, &res.eval);
        eprintln!("  [{}] {:.1}s train+eval", mode.label(), res.seconds);
    }
}
