//! Regenerates **Table 1** of the paper: training-data generation
//! strategies (TkDI vs D-TkDI) × embedding size M, for **PR-A1** (frozen
//! node2vec embedding).
//!
//! Paper reference values (North Jutland, 180M GPS records):
//!
//! | Strategy | M    | MAE    | MARE   | tau    | rho    |
//! |----------|------|--------|--------|--------|--------|
//! | TkDI     | 64   | 0.1433 | 0.2300 | 0.6638 | 0.7044 |
//! | TkDI     | 128  | 0.1168 | 0.1875 | 0.6913 | 0.7330 |
//! | D-TkDI   | 64   | 0.1140 | 0.1830 | 0.6959 | 0.7346 |
//! | D-TkDI   | 128  | 0.0955 | 0.1533 | 0.7077 | 0.7492 |
//!
//! Expected *shape* on the synthetic region: D-TkDI beats TkDI and larger
//! M helps, on every metric.

use pathrank_bench::{run_strategy_table, Scale};
use pathrank_core::model::EmbeddingMode;

fn main() {
    let scale = Scale::parse(std::env::args());
    run_strategy_table(EmbeddingMode::FrozenPretrained, &scale);
}
