//! Regenerates **Table 2** of the paper: training-data generation
//! strategies (TkDI vs D-TkDI) × embedding size M, for **PR-A2**
//! (fine-tuned node2vec embedding).
//!
//! Paper reference values:
//!
//! | Strategy | M    | MAE    | MARE   | tau    | rho    |
//! |----------|------|--------|--------|--------|--------|
//! | TkDI     | 64   | 0.1163 | 0.1868 | 0.6835 | 0.7256 |
//! | TkDI     | 128  | 0.1130 | 0.1814 | 0.7082 | 0.7481 |
//! | D-TkDI   | 64   | 0.0940 | 0.1509 | 0.7144 | 0.7532 |
//! | D-TkDI   | 128  | 0.0855 | 0.1373 | 0.7339 | 0.7731 |
//!
//! Expected *shape*: D-TkDI beats TkDI, larger M helps, and every PR-A2
//! row beats its PR-A1 counterpart from Table 1 (updating the embedding
//! matrix B is useful).

use pathrank_bench::{run_strategy_table, Scale};
use pathrank_core::model::EmbeddingMode;

fn main() {
    let scale = Scale::parse(std::env::args());
    run_strategy_table(EmbeddingMode::Trainable, &scale);
}
