//! Shared plumbing for the experiment binaries: a tiny CLI parser, scale
//! presets, and paper-style table printing.
//!
//! Every `[[bin]]` in this crate regenerates one table or figure of the
//! paper (or a labelled extension experiment). All binaries accept:
//!
//! ```text
//! --quick            milliseconds-scale smoke run (tiny region and fleet)
//! --vehicles N       fleet size                  (default 50)
//! --trips N          trips per vehicle           (default 5)
//! --epochs N         training epochs             (default 4)
//! --k N              candidates per trajectory   (default 10)
//! --seed N           master seed                 (default 2020)
//! --threads N        worker threads              (default 2)
//! --graph FILE       run on a real network (OSM XML, persisted import
//!                    or plain graph file) instead of the generator
//! ```

use pathrank_core::pipeline::ExperimentConfig;
use pathrank_core::trainer::TrainConfig;
use pathrank_traj::simulator::SimulationConfig;

/// Parsed command-line scale options.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Fleet size.
    pub vehicles: usize,
    /// Trips per vehicle.
    pub trips: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Candidates per trajectory.
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Tiny smoke-run mode.
    pub quick: bool,
    /// Road-network file to run on instead of the synthetic generator
    /// (raw OSM XML, a persisted import, or a plain graph file).
    pub graph: Option<String>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            vehicles: 60,
            trips: 6,
            epochs: 12,
            k: 10,
            seed: 2020,
            threads: 2,
            quick: false,
            graph: None,
        }
    }
}

impl Scale {
    /// Parses `std::env::args`-style arguments; unknown flags abort with a
    /// usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> Scale {
        let mut scale = Scale::default();
        let mut args = args.skip(1);
        while let Some(flag) = args.next() {
            let numeric = |name: &str, args: &mut dyn Iterator<Item = String>| -> u64 {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die(&format!("flag {name} needs a numeric argument")))
            };
            match flag.as_str() {
                "--quick" => scale.quick = true,
                "--vehicles" => scale.vehicles = numeric("--vehicles", &mut args) as usize,
                "--trips" => scale.trips = numeric("--trips", &mut args) as usize,
                "--epochs" => scale.epochs = numeric("--epochs", &mut args) as usize,
                "--k" => scale.k = numeric("--k", &mut args) as usize,
                "--seed" => scale.seed = numeric("--seed", &mut args),
                "--threads" => scale.threads = numeric("--threads", &mut args) as usize,
                "--graph" => {
                    scale.graph = Some(
                        args.next()
                            .unwrap_or_else(|| die("flag --graph needs a file path")),
                    )
                }
                "--help" | "-h" => die("see crate docs for flags"),
                other => die(&format!("unknown flag {other:?}")),
            }
        }
        scale
    }

    /// The experiment environment for this scale.
    pub fn experiment_config(&self) -> ExperimentConfig {
        if self.quick {
            let mut cfg = ExperimentConfig::small_test();
            cfg.seed = self.seed;
            cfg.threads = self.threads;
            return cfg;
        }
        let mut cfg = ExperimentConfig::paper_scale();
        cfg.sim = SimulationConfig {
            n_vehicles: self.vehicles,
            trips_per_vehicle: self.trips,
            ..cfg.sim
        };
        cfg.seed = self.seed;
        cfg.threads = self.threads;
        cfg
    }

    /// The experiment workbench for this scale: built on the `--graph`
    /// network when one was given (raw OSM XML, persisted import or
    /// plain graph file), on the synthetic region otherwise.
    pub fn workbench(&self) -> pathrank_core::pipeline::Workbench {
        use pathrank_core::pipeline::Workbench;
        match &self.graph {
            Some(path) => Workbench::from_graph_file(path, self.experiment_config())
                .unwrap_or_else(|e| die(&format!("--graph {path}: {e}"))),
            None => Workbench::new(self.experiment_config()),
        }
    }

    /// The training configuration for this scale.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: if self.quick { 2 } else { self.epochs },
            lr: 2e-3,
            threads: self.threads,
            seed: self.seed.wrapping_add(7),
            ..TrainConfig::default()
        }
    }

    /// Embedding sizes to sweep: the paper's 64 and 128, shrunk under
    /// `--quick`.
    pub fn embedding_dims(&self) -> Vec<usize> {
        if self.quick {
            vec![16, 32]
        } else {
            vec![64, 128]
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("pathrank-bench: {msg}");
    eprintln!(
        "flags: --quick --vehicles N --trips N --epochs N --k N --seed N --threads N --graph FILE"
    );
    std::process::exit(2);
}

/// Prints a paper-style table row: label, M, then the four metrics.
pub fn print_metric_row(label: &str, m: usize, eval: &pathrank_core::eval::EvalResult) {
    println!(
        "| {label:<8} | {m:>4} | {:>7.4} | {:>7.4} | {:>7.4} | {:>7.4} |",
        eval.mae, eval.mare, eval.tau, eval.rho
    );
}

/// Prints the standard table header used by the table binaries.
pub fn print_metric_header(first_col: &str) {
    println!(
        "| {first_col:<8} | {:>4} | {:>7} | {:>7} | {:>7} | {:>7} |",
        "M", "MAE", "MARE", "tau", "rho"
    );
    println!("|----------|------|---------|---------|---------|---------|");
}

/// Runs one full "training-data strategies" table (paper Tables 1 and 2):
/// strategies {TkDI, D-TkDI} × embedding sizes, for the given model
/// variant. Prints paper-style rows to stdout.
pub fn run_strategy_table(mode: pathrank_core::model::EmbeddingMode, scale: &Scale) {
    use pathrank_core::candidates::{CandidateConfig, Strategy};
    use pathrank_core::model::ModelConfig;

    let mut wb = scale.workbench();
    println!(
        "# Training Data Generation Strategies, {} (network: {} vertices / {} edges; \
         {} train + {} test trajectories; k = {})",
        mode.label(),
        wb.graph.vertex_count(),
        wb.graph.edge_count(),
        wb.train_paths.len(),
        wb.test_paths.len(),
        scale.k,
    );
    print_metric_header("Strategy");
    for strategy in [Strategy::TkDI, Strategy::DTkDI] {
        for dim in scale.embedding_dims() {
            let ccfg = CandidateConfig {
                k: scale.k,
                ..CandidateConfig::paper_default(strategy)
            };
            let mcfg = ModelConfig {
                embedding_mode: mode,
                seed: scale.seed.wrapping_add(11),
                ..ModelConfig::paper_default(dim)
            };
            let res = wb.run(mcfg, ccfg, scale.train_config());
            print_metric_row(strategy.label(), dim, &res.eval);
            eprintln!(
                "  [{} M={dim}] {} train groups, {:.1}s train+eval, final loss {:.5}",
                strategy.label(),
                res.train_groups,
                res.seconds,
                res.report.epoch_losses.last().copied().unwrap_or(f64::NAN),
            );
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Scale {
        let all = std::iter::once("bin".to_string()).chain(tokens.iter().map(|s| s.to_string()));
        Scale::parse(all)
    }

    #[test]
    fn defaults() {
        let s = parse(&[]);
        assert_eq!(s.vehicles, 60);
        assert_eq!(s.k, 10);
        assert!(!s.quick);
    }

    #[test]
    fn flags_override_defaults() {
        let s = parse(&[
            "--quick",
            "--vehicles",
            "9",
            "--epochs",
            "3",
            "--seed",
            "99",
        ]);
        assert!(s.quick);
        assert_eq!(s.vehicles, 9);
        assert_eq!(s.epochs, 3);
        assert_eq!(s.seed, 99);
    }

    #[test]
    fn quick_config_is_small() {
        let s = parse(&["--quick"]);
        let cfg = s.experiment_config();
        assert!(cfg.sim.n_vehicles <= 5);
        assert_eq!(s.train_config().epochs, 2);
        assert_eq!(s.embedding_dims(), vec![16, 32]);
    }

    #[test]
    fn graph_flag_is_parsed() {
        let s = parse(&["--graph", "fixtures/osm/pathrank_city.osm.xml"]);
        assert_eq!(
            s.graph.as_deref(),
            Some("fixtures/osm/pathrank_city.osm.xml")
        );
        assert!(parse(&[]).graph.is_none());
    }

    #[test]
    fn full_config_respects_scale() {
        let s = parse(&["--vehicles", "12", "--trips", "3"]);
        let cfg = s.experiment_config();
        assert_eq!(cfg.sim.n_vehicles, 12);
        assert_eq!(cfg.sim.trips_per_vehicle, 3);
        assert_eq!(s.embedding_dims(), vec![64, 128]);
    }
}
