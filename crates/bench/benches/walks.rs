//! M3: node2vec preprocessing throughput — biased walk generation and
//! alias-table sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pathrank_embed::alias::AliasTable;
use pathrank_embed::walks::{generate_walks, WalkConfig};
use pathrank_spatial::generators::{grid_network, GridConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn walks(c: &mut Criterion) {
    let g = grid_network(&GridConfig::town(), 2020);

    let mut group = c.benchmark_group("node2vec");
    group.sample_size(10);
    group.bench_function("walks_town", |b| {
        let cfg = WalkConfig {
            walks_per_vertex: 2,
            walk_length: 20,
            p: 1.0,
            q: 0.5,
        };
        b.iter(|| generate_walks(&g, black_box(&cfg), 7))
    });
    group.finish();

    let mut group = c.benchmark_group("alias_table");
    let weights: Vec<f64> = (1..=1000).map(|i| (i as f64).powf(0.75)).collect();
    group.bench_function("build_1k", |b| {
        b.iter(|| AliasTable::new(black_box(&weights)))
    });
    let table = AliasTable::new(&weights);
    group.bench_function("sample", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| table.sample(black_box(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, walks);
criterion_main!(benches);
