//! Customizable-CH latency on the paper-scale synthetic region: the
//! metric-independent topology build, a single customization pass vs the
//! full witness-searched CH rebuild it replaces (the live-traffic
//! trade), and fastest-path query latency before and after a traffic
//! perturbation (the post-perturbation row re-customizes the same
//! shared topology). The machine-readable epoch-churn comparison lives
//! in the `simulate_traffic` binary (`BENCH_customization.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pathrank_spatial::algo::cch::{CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::engine::QueryEngine;
use pathrank_spatial::algo::landmarks::LandmarkMetric;
use pathrank_spatial::generators::{region_network, RegionConfig};
use pathrank_spatial::graph::{CostModel, VertexId};
use pathrank_traj::congestion::{CongestionConfig, TrafficModel};

fn customization(c: &mut Criterion) {
    let g = region_network(&RegionConfig::paper_scale(), 2020);
    let n = g.vertex_count() as u32;
    let (s, t) = (VertexId(17 % n), VertexId(n - 23));
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));

    // The perturbed twin: one traffic epoch applied to a copy, so the
    // pre- and post-perturbation rows run side by side.
    let model = TrafficModel::new(&g, CongestionConfig::default());
    let mut perturbed = g.clone();
    model.apply_epoch(&mut perturbed, 1);

    let mut group = c.benchmark_group("customization");
    group.sample_size(10);
    group.bench_function("cch_topology_build", |b| {
        b.iter(|| black_box(CchTopology::build(&g, &CchConfig::default())))
    });
    group.bench_function("cch_customize_travel_time", |b| {
        b.iter(|| black_box(topo.customize(&g, &CostModel::TravelTime)))
    });
    group.bench_function("ch_rebuild_travel_time", |b| {
        b.iter(|| {
            black_box(ContractionHierarchy::build(
                &g,
                LandmarkMetric::TravelTime,
                &ChConfig::default(),
            ))
        })
    });
    // Custom weight vectors hit the same customization path — the
    // `CostModel::Custom` serving shape the engine used to run plain.
    let weights: Vec<f64> = g
        .edges()
        .enumerate()
        .map(|(i, e)| e.attrs.length_m * (1.0 + 0.1 * ((i % 7) as f64)))
        .collect();
    group.bench_function("cch_customize_custom_weights", |b| {
        b.iter(|| black_box(topo.customize_weights(&g, &weights)))
    });
    group.finish();

    let mut group = c.benchmark_group("live_query");
    let cch = Arc::new(topo.customize(&g, &CostModel::TravelTime));
    group.bench_function("fastest_pre_perturbation", |b| {
        let mut engine = QueryEngine::new(&g).with_cch(Arc::clone(&cch));
        b.iter(|| engine.shortest_path(black_box(s), black_box(t), CostModel::TravelTime))
    });
    // Same shared topology, re-customized on the perturbed weights —
    // exactly what a live traffic update does.
    let cch_p = Arc::new(topo.customize(&perturbed, &CostModel::TravelTime));
    group.bench_function("fastest_post_perturbation", |b| {
        let mut engine = QueryEngine::new(&perturbed).with_cch(Arc::clone(&cch_p));
        b.iter(|| engine.shortest_path(black_box(s), black_box(t), CostModel::TravelTime))
    });
    group.bench_function("fastest_plain_post_perturbation", |b| {
        let mut engine = QueryEngine::new(&perturbed);
        b.iter(|| engine.shortest_path(black_box(s), black_box(t), CostModel::TravelTime))
    });
    group.finish();
}

criterion_group!(benches, customization);
criterion_main!(benches);
