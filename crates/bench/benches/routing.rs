//! M1: routing-algorithm latency on the paper-scale synthetic region —
//! Dijkstra vs A* vs bidirectional, plus Yen top-k and diversified top-k
//! (the training-data generators whose cost dominates preprocessing).
//! Each algorithm is measured through the one-shot free function
//! (transient engine per query), on a reused [`QueryEngine`], and — for
//! the goal-directed workloads — on an engine with ALT landmarks
//! attached (`*_alt` rows; exact, see `spatial::algo::landmarks`); the
//! machine-readable comparison lives in the `bench_routing` binary
//! (`BENCH_routing.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pathrank_spatial::algo::astar::astar_shortest_path;
use pathrank_spatial::algo::bidijkstra::bidirectional_shortest_path;
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::dijkstra::shortest_path;
use pathrank_spatial::algo::diversified::{diversified_top_k, DiversifiedConfig};
use pathrank_spatial::algo::engine::QueryEngine;
use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank_spatial::algo::m2m::M2mSearch;
use pathrank_spatial::algo::yen::yen_k_shortest;
use pathrank_spatial::generators::{region_network, RegionConfig};
use pathrank_spatial::graph::{CostModel, VertexId};

fn routing(c: &mut Criterion) {
    let g = region_network(&RegionConfig::paper_scale(), 2020);
    let n = g.vertex_count() as u32;
    let (s, t) = (VertexId(17 % n), VertexId(n - 23));
    let table = Arc::new(LandmarkTable::build(
        &g,
        LandmarkMetric::Length,
        &LandmarkConfig::default(),
    ));
    let ch = Arc::new(ContractionHierarchy::build(
        &g,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));

    let mut group = c.benchmark_group("point_to_point");
    group.bench_function("dijkstra", |b| {
        b.iter(|| shortest_path(&g, black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("dijkstra_reused", |b| {
        let mut engine = QueryEngine::new(&g);
        b.iter(|| engine.shortest_path(black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("astar", |b| {
        b.iter(|| astar_shortest_path(&g, black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("astar_reused", |b| {
        let mut engine = QueryEngine::new(&g);
        b.iter(|| engine.astar_shortest_path(black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("astar_alt", |b| {
        let mut engine = QueryEngine::new(&g).with_landmarks(Arc::clone(&table));
        b.iter(|| engine.astar_shortest_path(black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("ch", |b| {
        let mut engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch));
        b.iter(|| engine.shortest_path(black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("bidirectional", |b| {
        b.iter(|| bidirectional_shortest_path(&g, black_box(s), black_box(t), CostModel::Length))
    });
    group.bench_function("bidirectional_reused", |b| {
        let mut engine = QueryEngine::new(&g);
        b.iter(|| engine.bidirectional_shortest_path(black_box(s), black_box(t), CostModel::Length))
    });
    group.finish();

    let mut group = c.benchmark_group("many_to_many");
    // The HMM transition-matrix shape: one 16×16 block, pairwise CH
    // probes vs one bucket-based DistanceTable call.
    let sources: Vec<VertexId> = (0..16u32).map(|i| VertexId((i * 131) % n)).collect();
    let targets: Vec<VertexId> = (0..16u32).map(|i| VertexId((i * 197 + 61) % n)).collect();
    group.bench_function("pairwise_ch_16x16", |b| {
        let mut engine = QueryEngine::new(&g).with_ch(Arc::clone(&ch));
        b.iter(|| {
            for &s in &sources {
                for &t in &targets {
                    black_box(engine.shortest_path_cost(s, t, CostModel::Length));
                }
            }
        })
    });
    group.bench_function("bucket_table_16x16", |b| {
        let mut search = M2mSearch::new(g.vertex_count());
        b.iter(|| black_box(ch.many_to_many(&mut search, &sources, &targets)))
    });
    group.finish();

    let mut group = c.benchmark_group("top_k");
    group.sample_size(10);
    for k in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("yen", k), &k, |b, &k| {
            b.iter(|| yen_k_shortest(&g, s, t, CostModel::Length, black_box(k)))
        });
        group.bench_with_input(BenchmarkId::new("yen_reused", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&g);
            b.iter(|| engine.yen_k_shortest(s, t, CostModel::Length, black_box(k)))
        });
        group.bench_with_input(BenchmarkId::new("yen_alt", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&g).with_landmarks(Arc::clone(&table));
            b.iter(|| engine.yen_k_shortest(s, t, CostModel::Length, black_box(k)))
        });
        group.bench_with_input(BenchmarkId::new("yen_ch_alt", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&g)
                .with_landmarks(Arc::clone(&table))
                .with_ch(Arc::clone(&ch));
            b.iter(|| engine.yen_k_shortest(s, t, CostModel::Length, black_box(k)))
        });
        group.bench_with_input(BenchmarkId::new("diversified", k), &k, |b, &k| {
            let cfg = DiversifiedConfig::with_k(k);
            b.iter(|| diversified_top_k(&g, s, t, CostModel::Length, black_box(&cfg)))
        });
        group.bench_with_input(BenchmarkId::new("diversified_reused", k), &k, |b, &k| {
            let cfg = DiversifiedConfig::with_k(k);
            let mut engine = QueryEngine::new(&g);
            b.iter(|| engine.diversified_top_k(s, t, CostModel::Length, black_box(&cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, routing);
criterion_main!(benches);
