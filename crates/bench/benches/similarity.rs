//! M2: path-similarity throughput. Weighted Jaccard is evaluated once per
//! (candidate, trajectory) pair during training-data generation, so its
//! cost scales with the entire corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pathrank_spatial::algo::yen::yen_k_shortest;
use pathrank_spatial::generators::{region_network, RegionConfig};
use pathrank_spatial::graph::{CostModel, VertexId};
use pathrank_spatial::similarity::{
    jaccard, lcs_similarity, weighted_dice, weighted_jaccard, EdgeWeight,
};

fn similarity(c: &mut Criterion) {
    let g = region_network(&RegionConfig::paper_scale(), 2020);
    let n = g.vertex_count() as u32;
    let (s, t) = (VertexId(5), VertexId(n - 11));
    let paths = yen_k_shortest(&g, s, t, CostModel::Length, 4);
    assert!(paths.len() >= 2, "need at least two alternative paths");
    let a = &paths[0].0;
    let b = &paths[paths.len() - 1].0;

    let mut group = c.benchmark_group("similarity");
    group.bench_function("weighted_jaccard", |bch| {
        bch.iter(|| weighted_jaccard(&g, black_box(a), black_box(b), EdgeWeight::Length))
    });
    group.bench_function("unweighted_jaccard", |bch| {
        bch.iter(|| jaccard(&g, black_box(a), black_box(b)))
    });
    group.bench_function("weighted_dice", |bch| {
        bch.iter(|| weighted_dice(&g, black_box(a), black_box(b), EdgeWeight::Length))
    });
    group.bench_function("lcs", |bch| {
        bch.iter(|| lcs_similarity(black_box(a), black_box(b)))
    });
    group.finish();
}

criterion_group!(benches, similarity);
criterion_main!(benches);
