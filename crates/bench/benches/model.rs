//! M4: model throughput — GRU forward scoring (inference) and
//! forward+backward (one training sample), across embedding sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pathrank_core::model::{ModelConfig, PathRankModel};
use pathrank_nn::init::uniform;
use pathrank_nn::params::GradStore;
use pathrank_nn::tape::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(c: &mut Criterion) {
    let vocab = 2500usize;
    let path: Vec<u32> = (0..32u32).map(|i| (i * 67) % vocab as u32).collect();

    let mut group = c.benchmark_group("pathrank_model");
    group.sample_size(20);
    for dim in [64usize, 128] {
        let mut rng = StdRng::seed_from_u64(4);
        let pretrained = uniform(vocab, dim, -0.1, 0.1, &mut rng);
        let model = PathRankModel::new(vocab, Some(pretrained), ModelConfig::paper_default(dim));

        group.bench_with_input(BenchmarkId::new("forward_l32", dim), &dim, |b, _| {
            b.iter(|| model.score_path(black_box(&path)))
        });
        group.bench_with_input(
            BenchmarkId::new("forward_backward_l32", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    let mut tape = Tape::new(&model.store);
                    let loss = model.loss(&mut tape, black_box(&path), 0.5, None);
                    let mut grads = GradStore::new(&model.store);
                    tape.backward(loss, &mut grads);
                    grads
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, model);
criterion_main!(benches);
