//! Serving-layer metric handles.
//!
//! One [`ServeObs`] is built per [`crate::RouteServer`] against the
//! registry handed to `RouteServer::start_with_metrics` (the default
//! `start` constructor builds a live registry of its own). Every handle
//! in here is a sharded-counter / histogram / gauge clone, so recording
//! on the serving path is one relaxed atomic add; a disabled registry
//! yields no-op sinks throughout — same call sites, one predictable
//! branch.
//!
//! Registered families (the catalogue README.md documents):
//!
//! | family | kind | labels |
//! |---|---|---|
//! | `pathrank_serve_served_total` | counter | `mode=sequential\|batched` |
//! | `pathrank_serve_shed_total` | counter | `reason=deadline_expired\|queue_full`, `at=admission\|batch_start` |
//! | `pathrank_serve_errors_total` | counter | `variant=QueueFull\|DeadlineExpired\|NoBackend\|InvalidWeights\|Shutdown` |
//! | `pathrank_serve_request_latency_ns` | histogram | — (admission to reply, served requests only) |
//! | `pathrank_serve_batch_size` | histogram | — (coalesced batch sizes at batch start) |
//! | `pathrank_serve_queue_depth` | gauge | `shard=<n>` |
//! | `pathrank_serve_coalesced_batches_total` | counter | — (batches answered by one m2m fill) |
//! | `pathrank_serve_live_generation` | gauge | — |
//! | `pathrank_serve_live_swaps_total` | counter | `kind=full\|sparse` |
//! | `pathrank_cch_customize_ns` | histogram | `kind=full\|sparse` |
//! | `pathrank_cch_delta_edges` | histogram | — (sparse update sizes) |
//! | `pathrank_cch_recomputed_arcs` | histogram | — (triangle-closure sizes per sparse update) |

use pathrank_obs::{Counter, Gauge, Histogram, Registry, Tracer};

use crate::server::ServeError;

/// Trace ring capacity per worker thread: enough for a few thousand
/// batch spans between drains without growing past ~100 KiB per shard.
const TRACE_RING: usize = 4096;

pub(crate) struct ServeObs {
    pub(crate) registry: Registry,
    pub(crate) tracer: Tracer,
    pub(crate) served_sequential: Counter,
    pub(crate) served_batched: Counter,
    pub(crate) shed_deadline_admission: Counter,
    pub(crate) shed_deadline_batch: Counter,
    pub(crate) shed_queue_full: Counter,
    err_queue_full: Counter,
    err_deadline: Counter,
    err_no_backend: Counter,
    err_invalid_weights: Counter,
    err_shutdown: Counter,
    pub(crate) latency_ns: Histogram,
    pub(crate) batch_size: Histogram,
    /// Indexed by shard.
    pub(crate) queue_depth: Vec<Gauge>,
    pub(crate) coalesced_batches: Counter,
    pub(crate) live_generation: Gauge,
    pub(crate) swap_full: Counter,
    pub(crate) swap_sparse: Counter,
    pub(crate) customize_full_ns: Histogram,
    pub(crate) customize_sparse_ns: Histogram,
    pub(crate) delta_edges: Histogram,
    pub(crate) recomputed_arcs: Histogram,
}

impl ServeObs {
    pub(crate) fn new(registry: Registry, shards: usize) -> Self {
        let served = |mode: &str| {
            registry.counter(
                "pathrank_serve_served_total",
                "Requests answered with a route reply, by dispatch mode",
                &[("mode", mode)],
            )
        };
        let shed = |reason: &str, at: &str| {
            registry.counter(
                "pathrank_serve_shed_total",
                "Requests shed without an answer, by reason and shed point",
                &[("reason", reason), ("at", at)],
            )
        };
        let err = |variant: &str| {
            registry.counter(
                "pathrank_serve_errors_total",
                "Error replies returned to callers, by ServeError variant",
                &[("variant", variant)],
            )
        };
        let swap = |kind: &str| {
            registry.counter(
                "pathrank_serve_live_swaps_total",
                "Live-weight generations published, by update kind",
                &[("kind", kind)],
            )
        };
        let customize = |kind: &str| {
            registry.histogram(
                "pathrank_cch_customize_ns",
                "CCH customization wall time in nanoseconds, by update kind",
                &[("kind", kind)],
            )
        };
        let queue_depth = (0..shards)
            .map(|s| {
                registry.gauge(
                    "pathrank_serve_queue_depth",
                    "Jobs admitted to a shard queue and not yet picked up",
                    &[("shard", &s.to_string())],
                )
            })
            .collect();
        let tracer = if registry.is_enabled() {
            Tracer::new(TRACE_RING)
        } else {
            Tracer::disabled()
        };
        ServeObs {
            tracer,
            served_sequential: served("sequential"),
            served_batched: served("batched"),
            shed_deadline_admission: shed("deadline_expired", "admission"),
            shed_deadline_batch: shed("deadline_expired", "batch_start"),
            shed_queue_full: shed("queue_full", "admission"),
            err_queue_full: err("QueueFull"),
            err_deadline: err("DeadlineExpired"),
            err_no_backend: err("NoBackend"),
            err_invalid_weights: err("InvalidWeights"),
            err_shutdown: err("Shutdown"),
            latency_ns: registry.histogram(
                "pathrank_serve_request_latency_ns",
                "End-to-end latency (admission to reply) of served requests",
                &[],
            ),
            batch_size: registry.histogram(
                "pathrank_serve_batch_size",
                "Coalesced batch sizes observed at batch start",
                &[],
            ),
            queue_depth,
            coalesced_batches: registry.counter(
                "pathrank_serve_coalesced_batches_total",
                "Batches whose shape made the m2m fill cheaper than pointwise dispatch",
                &[],
            ),
            live_generation: registry.gauge(
                "pathrank_serve_live_generation",
                "Generation of the currently served live-weight snapshot",
                &[],
            ),
            swap_full: swap("full"),
            swap_sparse: swap("sparse"),
            customize_full_ns: customize("full"),
            customize_sparse_ns: customize("sparse"),
            delta_edges: registry.histogram(
                "pathrank_cch_delta_edges",
                "Edges named by each sparse live-weight delta",
                &[],
            ),
            recomputed_arcs: registry.histogram(
                "pathrank_cch_recomputed_arcs",
                "Shortcut arcs re-relaxed by each sparse customization (triangle closure size)",
                &[],
            ),
            registry,
        }
    }

    /// Counts an error reply by variant. Every `Err(ServeError)` the
    /// server hands a caller goes through here exactly once.
    pub(crate) fn error(&self, e: ServeError) {
        self.error_counter(e).inc();
    }

    /// Cumulative count of error replies for one variant — what the TCP
    /// layer quotes in its `ERR <Variant> n=<count>` replies.
    pub(crate) fn error_count(&self, e: ServeError) -> u64 {
        self.error_counter(e).value()
    }

    fn error_counter(&self, e: ServeError) -> &Counter {
        match e {
            ServeError::QueueFull => &self.err_queue_full,
            ServeError::DeadlineExpired => &self.err_deadline,
            ServeError::NoBackend => &self.err_no_backend,
            ServeError::InvalidWeights => &self.err_invalid_weights,
            ServeError::Shutdown => &self.err_shutdown,
        }
    }
}
