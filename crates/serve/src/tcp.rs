//! A minimal TCP line protocol over [`RouteServer`].
//!
//! One line per request, one line per reply:
//!
//! ```text
//! -> ROUTE <source> <target> <metric> [deadline_ms]
//! <- OK <cost|inf> <backend> <batched:0|1> <generation>
//! -> UPDATE <edge>:<weight>[,<edge>:<weight>...]
//! <- OK <generation>
//! -> STATS [json]
//! <- (multi-line metrics dump, see below)
//! <- ERR <QueueFull|DeadlineExpired|NoBackend|InvalidWeights|Shutdown> n=<count>
//! <- ERR BadRequest
//! ```
//!
//! `<metric>` is `length`, `time` or `live`; `deadline_ms` is a relative
//! budget from the moment the server parses the line.
//!
//! Every `ERR` carrying a [`ServeError`] variant appends `n=<count>` —
//! the server's cumulative error count for that variant, so a client
//! seeing its first `QueueFull` can tell an isolated blip (`n=1`) from
//! systemic overload (`n=40000`) without a second round trip.
//! `BadRequest` is a parse failure on this connection, not a server
//! error, and carries no counter.
//!
//! `STATS` scrapes the server's metrics registry
//! ([`RouteServer::metrics_snapshot`]) and answers with a framed dump:
//! Prometheus text exposition by default (`# EOF` terminated, so a
//! scraper can splice it straight through), or a single JSON line after
//! `STATS json`. Both forms end with a `.` line as the protocol frame
//! terminator.
//!
//! `UPDATE` feeds a sparse live-weight delta
//! ([`RouteServer::update_live_weights_sparse`]): each `edge:weight`
//! pair sets one edge's live weight (duplicates last-wins), the rest of
//! the installed vector carries over, and only the shortcut arcs the
//! named edges support are re-relaxed before the new generation swaps
//! in — the reply carries that generation so a client can fence
//! subsequent `live` routes on it. A full vector must have been
//! installed first (the `serve` binary does this at startup); before
//! that, `UPDATE` answers `ERR NoBackend`. Malformed pairs answer `ERR
//! BadRequest`; unknown edges and non-finite / negative weights answer
//! `ERR InvalidWeights`.
//!
//! The protocol is a demo transport for the `serve` binary — the
//! benchmarks drive the server in-process so transport noise never
//! pollutes the latency numbers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pathrank_spatial::graph::{EdgeId, VertexId};

use crate::server::{Metric, RouteRequest, RouteServer, ServeError};

/// Parses one `ROUTE` line into a request against `server`'s graph.
/// Returns `None` on any malformed input (answered as `ERR BadRequest`).
fn parse_line(server: &RouteServer, line: &str) -> Option<RouteRequest> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "ROUTE" {
        return None;
    }
    let n = server.graph().vertex_count() as u64;
    let source: u64 = parts.next()?.parse().ok()?;
    let target: u64 = parts.next()?.parse().ok()?;
    if source >= n || target >= n {
        return None;
    }
    let metric = match parts.next()? {
        "length" => Metric::Length,
        "time" => Metric::TravelTime,
        "live" => Metric::Live,
        _ => return None,
    };
    let deadline = match parts.next() {
        Some(ms) => {
            let ms: u64 = ms.parse().ok()?;
            Some(Instant::now() + Duration::from_millis(ms))
        }
        None => None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(RouteRequest {
        source: VertexId(source as u32),
        target: VertexId(target as u32),
        metric,
        deadline,
    })
}

/// Parses the delta of an `UPDATE` line: comma-separated `edge:weight`
/// pairs (whitespace between groups also tolerated). Returns `None` on
/// any malformed pair; edge-bounds and weight-range checks stay with
/// [`RouteServer::update_live_weights_sparse`] so they answer
/// `ERR InvalidWeights` rather than `BadRequest`.
fn parse_update(line: &str) -> Option<Vec<(EdgeId, f64)>> {
    let rest = line.trim().strip_prefix("UPDATE")?;
    let mut updates = Vec::new();
    for pair in rest.split_ascii_whitespace().flat_map(|g| g.split(',')) {
        if pair.is_empty() {
            continue;
        }
        let (edge, weight) = pair.split_once(':')?;
        let edge: u32 = edge.parse().ok()?;
        let weight: f64 = weight.parse().ok()?;
        updates.push((EdgeId(edge), weight));
    }
    Some(updates)
}

fn error_tag(e: ServeError) -> &'static str {
    match e {
        ServeError::QueueFull => "QueueFull",
        ServeError::DeadlineExpired => "DeadlineExpired",
        ServeError::NoBackend => "NoBackend",
        ServeError::InvalidWeights => "InvalidWeights",
        ServeError::Shutdown => "Shutdown",
    }
}

/// `ERR <Variant> n=<count>`: the variant plus the server's cumulative
/// count for it (this reply included — the counter was incremented
/// before the error propagated here).
fn error_reply(server: &RouteServer, e: ServeError) -> String {
    format!("ERR {} n={}\n", error_tag(e), server.error_count(e))
}

/// Answers a `STATS [json]` line: the full registry scrape, framed with
/// a trailing `.` line.
fn stats_reply(server: &RouteServer, line: &str) -> String {
    let rest = line.trim().strip_prefix("STATS").unwrap_or("").trim();
    let snapshot = server.metrics_snapshot();
    if rest.eq_ignore_ascii_case("json") {
        let mut out = snapshot.to_json();
        out.push_str("\n.\n");
        out
    } else if rest.is_empty() {
        let mut out = snapshot.to_prometheus_text();
        out.push_str(".\n");
        out
    } else {
        "ERR BadRequest\n".to_string()
    }
}

/// Serves one connection until EOF or a write error.
pub fn serve_connection(stream: TcpStream, server: &RouteServer) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if line.trim_start().starts_with("STATS") {
            writer.write_all(stats_reply(server, &line).as_bytes())?;
            continue;
        }
        if line.trim_start().starts_with("UPDATE") {
            let answer = match parse_update(&line) {
                None => "ERR BadRequest\n".to_string(),
                Some(updates) => match server.update_live_weights_sparse(&updates) {
                    Ok(generation) => format!("OK {generation}\n"),
                    Err(e) => error_reply(server, e),
                },
            };
            writer.write_all(answer.as_bytes())?;
            continue;
        }
        let answer = match parse_line(server, &line) {
            None => "ERR BadRequest\n".to_string(),
            Some(req) => match server.route(req) {
                Err(e) => error_reply(server, e),
                Ok(reply) => format!(
                    "OK {} {:?} {} {}\n",
                    reply.cost.map_or("inf".to_string(), |c| format!("{c}")),
                    reply.backend,
                    u8::from(reply.batched),
                    reply.weights_generation
                ),
            },
        };
        writer.write_all(answer.as_bytes())?;
    }
    Ok(())
}

/// Accept loop: one thread per connection, each sharing `server`.
/// Runs until the listener errors (i.e. effectively forever).
pub fn run_listener(listener: TcpListener, server: Arc<RouteServer>) -> std::io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &server);
        });
    }
}
