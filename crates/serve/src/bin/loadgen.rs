//! `loadgen` — the serving benchmark behind `BENCH_serving.json`.
//!
//! Drives an in-process [`RouteServer`] (no transport noise) with N
//! closed-loop clients over a hub-skewed workload, A/B-ing live m2m
//! batching against individual dispatch at several client counts.
//! Before *any* configuration is timed, the same concurrent run is
//! executed once as an exactness pass: every reply must be
//! **bit-identical** to the sequential [`QueryEngine`] answer for that
//! pair (the fixture graph carries integer weights, where bucket m2m
//! sums are exact in any association — see [`pathrank_serve::fixture`]).
//!
//! Every timed window is measured from **both sides**: the clients time
//! each request on their own clocks (exact [`Series`] percentiles), and
//! the server's metrics registry is snapshotted around the window
//! ([`RouteServer::metrics_snapshot`] + `delta_since`) for the
//! server-side latency histogram, shed rate and batched share. The two
//! views must agree on the request count — a mismatch means a reply was
//! lost or double-counted and fails the run loudly.
//!
//! ```text
//! loadgen [--quick] [--out PATH]
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use pathrank_obs::Series;
use pathrank_serve::fixture::{hub_pairs, integer_city};
use pathrank_serve::{Metric, RouteRequest, RouteServer, ServeConfig, ServerIndexes};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::engine::QueryEngine;
use pathrank_spatial::graph::{CostModel, VertexId};

struct ConfigRow {
    clients: usize,
    batching: bool,
    requests: usize,
    elapsed_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    server_p50_us: f64,
    server_p99_us: f64,
    server_p999_us: f64,
    shed_rate: f64,
    batched_share: f64,
}

/// Runs `clients` closed-loop client threads over `pairs`, returning
/// per-request latencies (ns) in completion order. When `expected` is
/// given this is an exactness pass: every reply's cost is compared
/// bitwise against the sequential answer.
fn run_clients(
    server: &RouteServer,
    pairs: &[(VertexId, VertexId)],
    clients: usize,
    expected: Option<&HashMap<(u32, u32), Option<f64>>>,
) -> Vec<u64> {
    let per = pairs.len() / clients;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let slice = &pairs[c * per..(c + 1) * per];
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(slice.len());
                    for &(s, t) in slice {
                        let started = Instant::now();
                        let reply = server
                            .route(RouteRequest {
                                source: s,
                                target: t,
                                metric: Metric::Length,
                                deadline: None,
                            })
                            .expect("no deadlines and a deep queue: nothing sheds");
                        lat.push(started.elapsed().as_nanos() as u64);
                        if let Some(exp) = expected {
                            let want = exp[&(s.0, t.0)];
                            assert_eq!(
                                reply.cost.map(f64::to_bits),
                                want.map(f64::to_bits),
                                "server answer for {}->{} diverged from sequential engine",
                                s.0,
                                t.0
                            );
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::with_capacity(pairs.len());
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    })
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_serving.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or(out),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: loadgen [--quick] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }

    let side = if quick { 12 } else { 24 };
    let client_counts: &[usize] = &[4, 16, 64];
    let total_requests = if quick { 1_536 } else { 6_144 };
    let hubs = 8;

    eprintln!("loadgen: building {side}x{side} integer city + Length CH...");
    let graph = Arc::new(integer_city(side));
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        pathrank_spatial::algo::landmarks::LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let pairs = hub_pairs(&graph, total_requests, hubs, 0x10ad);

    // Sequential ground truth, computed once: the bar every timed
    // configuration must clear bit-for-bit before its clock starts.
    let mut engine = QueryEngine::new(&graph);
    engine.set_ch(Some(Arc::clone(&ch)));
    let mut expected: HashMap<(u32, u32), Option<f64>> = HashMap::new();
    for &(s, t) in &pairs {
        expected
            .entry((s.0, t.0))
            .or_insert_with(|| engine.shortest_path_cost(s, t, CostModel::Length));
    }
    eprintln!(
        "  {} requests over {} distinct pairs, {} hub targets",
        pairs.len(),
        expected.len(),
        hubs
    );

    let mut rows: Vec<ConfigRow> = Vec::new();
    for &clients in client_counts {
        for batching in [false, true] {
            let cfg = ServeConfig {
                batching,
                ..ServeConfig::default()
            };
            let server = RouteServer::start(
                Arc::clone(&graph),
                ServerIndexes {
                    ch: Some(Arc::clone(&ch)),
                    ..ServerIndexes::default()
                },
                cfg,
            );
            // Exactness pass first — untimed, same concurrency.
            run_clients(&server, &pairs, clients, Some(&expected));
            let snap_before = server.metrics_snapshot();

            let started = Instant::now();
            let lat_ns = run_clients(&server, &pairs, clients, None);
            let elapsed = started.elapsed();

            // Server-side view of the same window, cut out of the
            // cumulative registry counters.
            let window = server.metrics_snapshot().delta_since(&snap_before);
            server.shutdown();

            let requests = lat_ns.len();
            let served = window.counter_total("pathrank_serve_served_total", &[]);
            let shed = window.counter_total("pathrank_serve_shed_total", &[]);
            let latency = window
                .histogram("pathrank_serve_request_latency_ns", &[])
                .expect("latency histogram always registered");
            if served != requests as u64 || latency.count != served {
                eprintln!(
                    "loadgen: request-count mismatch: clients timed {requests}, \
                     server served {served}, latency histogram holds {} — \
                     a reply was lost or double-counted",
                    latency.count
                );
                return ExitCode::FAILURE;
            }

            let mut lat: Series = lat_ns.iter().map(|&ns| ns as f64 / 1_000.0).collect();
            let batched =
                window.counter_total("pathrank_serve_served_total", &[("mode", "batched")]);
            let elapsed_s = elapsed.as_secs_f64();
            let row = ConfigRow {
                clients,
                batching,
                requests,
                elapsed_s,
                qps: requests as f64 / elapsed_s,
                p50_us: lat.percentile(50.0),
                p99_us: lat.percentile(99.0),
                p999_us: lat.percentile(99.9),
                server_p50_us: latency.percentile(50.0) / 1_000.0,
                server_p99_us: latency.percentile(99.0) / 1_000.0,
                server_p999_us: latency.percentile(99.9) / 1_000.0,
                shed_rate: shed as f64 / (served + shed).max(1) as f64,
                batched_share: batched as f64 / served.max(1) as f64,
            };
            eprintln!(
                "  clients={:3} batching={:5} qps={:9.0} p50={:7.1}us p99={:7.1}us p999={:7.1}us server_p99={:7.1}us shed={:.3} batched_share={:.2}",
                row.clients, row.batching, row.qps, row.p50_us, row.p99_us, row.p999_us, row.server_p99_us, row.shed_rate, row.batched_share
            );
            rows.push(row);
        }
    }

    // Throughput win of batching over individual dispatch at the
    // heaviest client count.
    let max_clients = *client_counts.iter().max().expect("non-empty");
    let qps_of = |batching: bool| {
        rows.iter()
            .find(|r| r.clients == max_clients && r.batching == batching)
            .map_or(0.0, |r| r.qps)
    };
    let win_ratio = qps_of(true) / qps_of(false).max(1e-9);
    eprintln!("  batched/unbatched qps at {max_clients} clients: {win_ratio:.2}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serving\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"graph\": {{ \"side\": {side}, \"vertices\": {}, \"edges\": {} }},",
        graph.vertex_count(),
        graph.edge_count()
    );
    let _ = writeln!(json, "  \"workload\": {{ \"requests\": {total_requests}, \"hub_targets\": {hubs}, \"metric\": \"length\" }},");
    let _ = writeln!(
        json,
        "  \"exactness\": \"bitwise vs sequential QueryEngine, asserted before timing\","
    );
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"clients\": {}, \"batching\": {}, \"requests\": {}, \"elapsed_s\": {:.4}, \"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"server_p50_us\": {:.1}, \"server_p99_us\": {:.1}, \"server_p999_us\": {:.1}, \"shed_rate\": {:.4}, \"batched_share\": {:.3} }}{}",
            r.clients, r.batching, r.requests, r.elapsed_s, r.qps, r.p50_us, r.p99_us, r.p999_us, r.server_p50_us, r.server_p99_us, r.server_p999_us, r.shed_rate, r.batched_share, comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"batched_qps_win\": {{ \"clients\": {max_clients}, \"ratio\": {win_ratio:.3} }}"
    );
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
