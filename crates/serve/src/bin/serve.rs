//! `serve` — stand up a [`RouteServer`] over a fixture city and speak
//! the TCP line protocol.
//!
//! ```text
//! serve [--port P] [--side N] [--shards S] [--no-batching]
//! ```
//!
//! Builds the integer grid city, a Length CH, Length landmarks and the
//! CCH topology, installs an initial live weight generation, then
//! listens. Try it with netcat:
//!
//! ```text
//! $ echo "ROUTE 0 575 length" | nc 127.0.0.1 7111
//! OK 9042 Ch 0 0
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use pathrank_serve::fixture::{integer_city, integer_live_weights};
use pathrank_serve::tcp::run_listener;
use pathrank_serve::{RouteServer, ServeConfig, ServerIndexes};
use pathrank_spatial::algo::cch::{CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};

fn main() -> ExitCode {
    let mut port: u16 = 7111;
    let mut side: usize = 24;
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = args.next().and_then(|v| v.parse().ok()).unwrap_or(port),
            "--side" => side = args.next().and_then(|v| v.parse().ok()).unwrap_or(side),
            "--shards" => {
                cfg.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.shards);
            }
            "--no-batching" => cfg.batching = false,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: serve [--port P] [--side N] [--shards S] [--no-batching]");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("building {side}x{side} fixture city...");
    let graph = Arc::new(integer_city(side));
    eprintln!(
        "  {} vertices, {} directed edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    eprintln!("building Length CH, landmarks and CCH topology...");
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let landmarks = Arc::new(LandmarkTable::build(
        &graph,
        LandmarkMetric::Length,
        &LandmarkConfig::default(),
    ));
    let topo = Arc::new(CchTopology::build(&graph, &CchConfig::default()));
    let indexes = ServerIndexes {
        ch: Some(ch),
        landmarks: Some(landmarks),
        cch_topology: Some(topo),
    };

    let server = Arc::new(RouteServer::start(Arc::clone(&graph), indexes, cfg));
    let generation = server
        .update_live_weights(integer_live_weights(&graph, 0xbeef))
        .expect("fixture weights are valid");
    eprintln!("installed live weight generation {generation}");

    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving on 127.0.0.1:{port} with {} shard(s); protocol: ROUTE <src> <dst> <length|time|live> [deadline_ms]",
        server.shards()
    );
    match run_listener(listener, server) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
