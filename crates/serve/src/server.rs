//! The thread-per-core route server.
//!
//! One worker thread per shard, each owning a private [`QueryEngine`]
//! over the `Arc`-shared graph and indexes. Requests are hashed by
//! source vertex onto a shard (same-source bursts coalesce in one
//! worker, where the batcher can reuse their forward sweeps), admitted
//! through a *bounded* queue, and answered over a per-request one-shot
//! channel.
//!
//! # Live m2m batching
//!
//! A worker picking up a request first drains everything already queued
//! (a free batch — those requests have already paid their queueing
//! latency), then optionally waits out a short window for stragglers —
//! but only when that drain actually found queued traffic
//! ([`ServeConfig::straggler_min_queued`]): at low concurrency an empty
//! drain means no batch will ever form, and the window would tax every
//! request with its full duration for nothing. The window also closes
//! the moment the batch reaches the m2m threshold — growth past it
//! comes for free on the next drain, so waiting longer is pure latency.
//! If the coalesced batch is large enough, *shaped* so the fill saves
//! sweeps (see [`coalescing_wins`] — a drained handful of unrelated
//! point queries is all bucket overhead and no saving), and a hierarchy
//! covers its metric, the worker answers it with one bucket
//! many-to-many fill:
//! one backward upward sweep per distinct target, one forward upward
//! sweep per distinct source — `S + T` half-sweeps where individual
//! dispatch would pay two per request. Each reply is de-multiplexed out
//! of the row its source swept. Batched costs are the bucket sums —
//! exact, and *bit-identical* to sequential engine answers on
//! integer-weight graphs (see [`crate::fixture`]); on arbitrary float
//! weights they agree up to float re-association, the same caveat the
//! map matcher's bulk fill documents.
//!
//! # Deadlines and degradation
//!
//! Admission rejects immediately when the queue is full
//! ([`ServeError::QueueFull`]) or the deadline has already passed;
//! workers re-check deadlines when a batch starts and shed expired
//! requests unanswered-work-first ([`ServeError::DeadlineExpired`]).
//! The batching window never waits past the earliest deadline in the
//! batch. Per metric, queries take the strongest backend that covers
//! them — CH, CCH, ALT, then plain Dijkstra — and a server configured
//! with [`ServeConfig::allow_plain`]` = false` rejects queries that
//! would hit the plain rung ([`ServeError::NoBackend`]) instead of
//! letting them monopolise a shard.
//!
//! # Atomic live-weight swaps
//!
//! Live weights are double-buffered. A mutable *staging* `(weights,
//! Cch)` master lives behind its own mutex and is the only copy ever
//! mutated: [`RouteServer::update_live_weights`] re-customizes it in
//! place (recycled buffers, no fresh skeleton), and
//! [`RouteServer::update_live_weights_sparse`] patches just the entries
//! a telemetry delta names and re-relaxes only the triangles those
//! edges touch (`Cch::apply_weight_delta` — bit-identical to the full
//! pass, microseconds instead of milliseconds for percent-level
//! deltas). Both happen *off* the serving path; publishing then clones
//! an immutable snapshot, stamps the next generation and swaps the
//! `(weights, Cch)` pair into the served slot under a mutex — the
//! served copy itself is never written. Workers snapshot the pair once
//! per batch, so every request in a batch — and every individual
//! query, which folds costs over that snapshot's unpacked edges —
//! observes exactly one generation, never a mix. Holding the staging
//! lock across stamp-and-publish keeps generations observed through
//! the served slot monotone even when sparse and full updates race.
//! The engine's own `usable_for` bitwise-equality and weights-epoch
//! gates stay on underneath as defence in depth.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pathrank_obs::{MetricsSnapshot, Registry, TraceRecord};
use pathrank_spatial::algo::cch::{Cch, CchTopology};
use pathrank_spatial::algo::ch::ContractionHierarchy;
use pathrank_spatial::algo::engine::{EngineObs, QueryEngine, SearchBackend};
use pathrank_spatial::algo::landmarks::LandmarkTable;
use pathrank_spatial::graph::{CostModel, EdgeId, Graph, VertexId};

use crate::obs::ServeObs;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; `0` means one per available core
    /// (thread-per-core).
    pub shards: usize,
    /// Bounded admission queue depth per shard; a full queue sheds with
    /// [`ServeError::QueueFull`] instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// How long a worker may wait for stragglers to grow a batch that
    /// is still below [`ServeConfig::min_batch_for_m2m`]. Zero disables
    /// waiting; already-queued requests still coalesce for free.
    pub batch_window: Duration,
    /// How many *extra* requests the greedy drain must have found
    /// (beyond the one that woke the worker) before the straggler
    /// window opens at all. An empty drain means the shard is running
    /// below its batching break-even — a handful of synchronous clients
    /// — and waiting the window out only adds latency per request
    /// without ever forming a batch (the regression BENCH_serving.json
    /// showed at 4 clients: 39.6k qps batched vs 102.0k unbatched).
    /// The default `1` keeps the window shut until queue depth proves
    /// there is traffic to coalesce; `0` restores the old
    /// always-wait behaviour.
    pub straggler_min_queued: usize,
    /// Hard cap on coalesced batch size.
    pub max_batch: usize,
    /// Master switch for m2m batching; off, every request dispatches
    /// individually (the A/B baseline the loadgen benchmark measures).
    pub batching: bool,
    /// Smallest batch worth *considering* a bucket m2m fill. Even past
    /// this floor, the group only coalesces when the fill actually
    /// saves sweeps for its shape — see [`coalescing_wins`]: a drained
    /// queue of B unrelated point queries (the low-concurrency regime)
    /// costs `S + T = 2B` half-sweeps through m2m, all bucket overhead
    /// and no saving, so it dispatches pointwise instead.
    pub min_batch_for_m2m: usize,
    /// Whether queries no index covers may fall back to plain Dijkstra.
    /// `false` turns the ladder's last rung into
    /// [`ServeError::NoBackend`] — an overload guard for big graphs
    /// where one plain sweep can starve a shard.
    pub allow_plain: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 0,
            queue_capacity: 1024,
            batch_window: Duration::from_micros(200),
            straggler_min_queued: 1,
            max_batch: 64,
            batching: true,
            min_batch_for_m2m: 4,
            allow_plain: true,
        }
    }
}

/// Which cost model a request routes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Static edge lengths ([`CostModel::Length`]).
    Length,
    /// Static free-flow travel time ([`CostModel::TravelTime`]).
    TravelTime,
    /// The latest live weight vector
    /// ([`RouteServer::update_live_weights`]), served through the
    /// re-customized CCH as [`CostModel::Custom`].
    Live,
}

/// One point-to-point routing request.
#[derive(Debug, Clone, Copy)]
pub struct RouteRequest {
    /// Route origin.
    pub source: VertexId,
    /// Route destination.
    pub target: VertexId,
    /// Cost model to route under.
    pub metric: Metric,
    /// Drop-dead time: the server sheds the request (at admission or
    /// when its batch starts) once this instant passes. `None` never
    /// expires.
    pub deadline: Option<Instant>,
}

/// A served answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteReply {
    /// Cheapest route cost, `None` when the target is unreachable.
    pub cost: Option<f64>,
    /// Which backend rung answered.
    pub backend: SearchBackend,
    /// Whether the answer came out of a coalesced m2m fill.
    pub batched: bool,
    /// Live-weights generation that answered (`0` for static metrics).
    pub weights_generation: u64,
}

/// Why a request was not answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The shard's bounded queue was full — shed at admission.
    QueueFull,
    /// The deadline passed before the request was served.
    DeadlineExpired,
    /// No backend covers the metric (no live weights installed, or the
    /// plain rung is disabled and no index matches). Also returned by
    /// [`RouteServer::update_live_weights_sparse`] before any full
    /// vector has been installed — a sparse delta patches an existing
    /// generation and has nothing to patch yet.
    NoBackend,
    /// A weight vector of the wrong length, a sparse update naming a
    /// nonexistent edge, or any non-finite/negative entry — rejected
    /// before it could poison a customization.
    InvalidWeights,
    /// The server is shutting down.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServeError::QueueFull => "shard queue full",
            ServeError::DeadlineExpired => "deadline expired",
            ServeError::NoBackend => "no backend covers the metric",
            ServeError::InvalidWeights => "invalid live weight vector",
            ServeError::Shutdown => "server shut down",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ServeError {}

/// One immutable live-weight generation: the vector and the CCH
/// customized for it, always swapped as a pair.
#[derive(Debug)]
pub struct LiveWeights {
    /// Monotone generation counter (first install is 1).
    pub generation: u64,
    /// Per-edge weights, indexed by `EdgeId` — what queries fold with
    /// [`CostModel::Custom`].
    pub weights: Vec<f64>,
    /// The CCH customized for exactly `weights` (bitwise).
    pub cch: Arc<Cch>,
}

/// The shared indexes workers attach to their engines. All optional —
/// the ladder simply skips missing rungs.
#[derive(Clone, Default)]
pub struct ServerIndexes {
    /// Metric-built contraction hierarchy (strongest rung for its
    /// metric).
    pub ch: Option<Arc<ContractionHierarchy>>,
    /// ALT landmark table (the CH's fallback rung).
    pub landmarks: Option<Arc<LandmarkTable>>,
    /// Metric-independent CCH topology; required for
    /// [`Metric::Live`] / [`RouteServer::update_live_weights`].
    pub cch_topology: Option<Arc<CchTopology>>,
}

/// Cumulative server counters ([`RouteServer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with a [`RouteReply`].
    pub served: u64,
    /// Of those, answered out of a coalesced m2m fill.
    pub batched: u64,
    /// Requests shed because their deadline passed in the queue.
    pub shed_deadline: u64,
    /// Requests rejected at admission because the shard queue was full.
    pub shed_queue_full: u64,
    /// Requests rejected because no backend covered their metric.
    pub no_backend: u64,
}

/// The mutable master half of the live-weight double buffer. Updates —
/// full and sparse alike — mutate this pair in place under its mutex,
/// then publish an immutable cloned snapshot into [`LiveState::current`].
/// The served snapshot is never written, so queries can keep reading it
/// lock-free for the whole batch while the next generation customizes.
#[derive(Default)]
struct LiveStaging {
    /// The current live weight vector (empty before the first install).
    weights: Vec<f64>,
    /// The CCH customized for exactly `weights`, recycled across
    /// updates ([`Cch::recustomize_weights`] / [`Cch::apply_weight_delta`])
    /// so steady-state customization allocates nothing.
    cch: Option<Cch>,
}

struct LiveState {
    staging: Mutex<LiveStaging>,
    current: Mutex<Option<Arc<LiveWeights>>>,
    generation: AtomicU64,
}

struct Job {
    req: RouteRequest,
    reply: SyncSender<Result<RouteReply, ServeError>>,
    /// When admission enqueued the job — the end-to-end latency
    /// histogram records `admitted -> reply` for served requests.
    admitted: Instant,
}

/// A submitted request's reply slot ([`RouteServer::submit`]).
pub struct PendingRoute {
    rx: Receiver<Result<RouteReply, ServeError>>,
}

impl PendingRoute {
    /// Blocks until the shard answers (or sheds) the request.
    pub fn wait(self) -> Result<RouteReply, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// The running server: shard workers plus the shared live-weight state.
pub struct RouteServer {
    graph: Arc<Graph>,
    indexes: ServerIndexes,
    live: Arc<LiveState>,
    obs: Arc<ServeObs>,
    senders: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl RouteServer {
    /// Starts the shard workers with a live metrics registry of their
    /// own ([`RouteServer::metrics_snapshot`] scrapes it).
    /// `cfg.shards == 0` spawns one per available core.
    pub fn start(graph: Arc<Graph>, indexes: ServerIndexes, cfg: ServeConfig) -> Self {
        Self::start_with_metrics(graph, indexes, cfg, Registry::new())
    }

    /// [`RouteServer::start`] against a caller-supplied registry — pass
    /// [`Registry::disabled`] to serve with every metric a no-op sink
    /// (the obs-off escape hatch the overhead benchmark pins), or a
    /// shared live registry to scrape the server alongside other
    /// components.
    pub fn start_with_metrics(
        graph: Arc<Graph>,
        indexes: ServerIndexes,
        cfg: ServeConfig,
        registry: Registry,
    ) -> Self {
        let shards = if cfg.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.shards
        };
        let live = Arc::new(LiveState {
            staging: Mutex::new(LiveStaging::default()),
            current: Mutex::new(None),
            generation: AtomicU64::new(0),
        });
        let obs = Arc::new(ServeObs::new(registry, shards));
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
            senders.push(tx);
            let g = Arc::clone(&graph);
            let idx = indexes.clone();
            let lv = Arc::clone(&live);
            let ob = Arc::clone(&obs);
            let wc = cfg.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("route-shard-{shard}"))
                    .spawn(move || worker_loop(&g, &idx, &lv, &ob, &wc, rx, shard))
                    .expect("spawn shard worker"),
            );
        }
        RouteServer {
            graph,
            indexes,
            live,
            obs,
            senders,
            handles,
        }
    }

    /// The graph the server routes on.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Cumulative counters across all shards, derived from the metric
    /// registry (the typed quick-look subset of
    /// [`RouteServer::metrics_snapshot`]).
    pub fn stats(&self) -> ServeStats {
        let batched = self.obs.served_batched.value();
        ServeStats {
            served: self.obs.served_sequential.value() + batched,
            batched,
            shed_deadline: self.obs.shed_deadline_admission.value()
                + self.obs.shed_deadline_batch.value(),
            shed_queue_full: self.obs.shed_queue_full.value(),
            no_backend: self.obs.error_count(ServeError::NoBackend),
        }
    }

    /// The metrics registry this server records into — share it with
    /// other components or scrape it directly.
    pub fn registry(&self) -> &Registry {
        &self.obs.registry
    }

    /// A point-in-time scrape of every registered series (counters,
    /// gauges, histograms). This is what the TCP `STATS` command
    /// serializes and what `loadgen` differences around its timed
    /// window.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.registry.snapshot()
    }

    /// Cumulative count of error replies for one [`ServeError`] variant
    /// — quoted by the TCP layer's `ERR <Variant> n=<count>` replies.
    pub fn error_count(&self, e: ServeError) -> u64 {
        self.obs.error_count(e)
    }

    /// Drains the worker trace rings: batch spans (arg = batch size)
    /// and live-swap events, time-sorted across shards. Empty when the
    /// server was started with a disabled registry.
    pub fn drain_trace(&self) -> Vec<TraceRecord> {
        self.obs.tracer.drain()
    }

    /// Generation of the currently installed live weights (`0` before
    /// the first [`RouteServer::update_live_weights`]).
    pub fn live_generation(&self) -> u64 {
        self.live.generation.load(Ordering::SeqCst)
    }

    /// Installs a new live weight vector: validates it, re-customizes
    /// the staging CCH for it *on the calling thread* (workers keep
    /// serving the previous generation meanwhile — the staging buffers
    /// are recycled, so steady-state full updates allocate nothing
    /// beyond the published snapshot), then atomically swaps an
    /// immutable `(weights, index)` snapshot in. Returns the new
    /// generation.
    ///
    /// Errors with [`ServeError::NoBackend`] when the server has no
    /// [`ServerIndexes::cch_topology`], and
    /// [`ServeError::InvalidWeights`] on a wrong-length vector or any
    /// non-finite / negative entry — the serving-layer mirror of the
    /// graph-mutation speed clamp, so a poisoned vector can never reach
    /// a customization.
    pub fn update_live_weights(&self, weights: Vec<f64>) -> Result<u64, ServeError> {
        let Some(topo) = self.indexes.cch_topology.as_ref() else {
            self.obs.error(ServeError::NoBackend);
            return Err(ServeError::NoBackend);
        };
        if weights.len() != self.graph.edge_count()
            || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
        {
            self.obs.error(ServeError::InvalidWeights);
            return Err(ServeError::InvalidWeights);
        }
        let mut staging = self.live.staging.lock().expect("staging lock");
        let t0 = Instant::now();
        match staging.cch.as_mut() {
            Some(cch) => cch.recustomize_weights(&self.graph, &weights),
            None => staging.cch = Some(topo.customize_weights(&self.graph, &weights)),
        }
        self.obs.customize_full_ns.record_duration(t0.elapsed());
        self.obs.swap_full.inc();
        staging.weights = weights;
        Ok(self.publish(&staging))
    }

    /// Patches the installed live weights with a sparse telemetry delta
    /// — `(edge, new weight)` pairs, duplicates last-wins — and
    /// re-customizes *partially*: only the shortcut arcs whose weight
    /// actually changes are re-relaxed (`Cch::apply_weight_delta`),
    /// which is bit-identical to a full re-customization of the patched
    /// vector but costs microseconds for percent-level deltas. Runs off
    /// the serving path on the staging copy and atomically swaps a
    /// fresh immutable snapshot in, exactly like
    /// [`RouteServer::update_live_weights`]. Returns the new
    /// generation; an empty (or pure-echo) delta still publishes one,
    /// so callers can fence on it.
    ///
    /// Errors with [`ServeError::NoBackend`] when no CCH topology is
    /// mounted *or no full vector has been installed yet* (a delta
    /// patches the previous generation), and
    /// [`ServeError::InvalidWeights`] when an update names a
    /// nonexistent edge or carries a non-finite / negative weight.
    pub fn update_live_weights_sparse(&self, updates: &[(EdgeId, f64)]) -> Result<u64, ServeError> {
        if self.indexes.cch_topology.is_none() {
            self.obs.error(ServeError::NoBackend);
            return Err(ServeError::NoBackend);
        }
        let m = self.graph.edge_count();
        if updates
            .iter()
            .any(|&(e, w)| e.index() >= m || !w.is_finite() || w < 0.0)
        {
            self.obs.error(ServeError::InvalidWeights);
            return Err(ServeError::InvalidWeights);
        }
        let mut staging = self.live.staging.lock().expect("staging lock");
        if staging.cch.is_none() {
            self.obs.error(ServeError::NoBackend);
            return Err(ServeError::NoBackend);
        }
        for &(e, w) in updates {
            staging.weights[e.index()] = w;
        }
        let t0 = Instant::now();
        let recomputed = staging
            .cch
            .as_mut()
            .expect("checked above")
            .apply_weight_delta(updates);
        self.obs.customize_sparse_ns.record_duration(t0.elapsed());
        self.obs.delta_edges.record(updates.len() as u64);
        self.obs.recomputed_arcs.record(recomputed as u64);
        self.obs.swap_sparse.inc();
        Ok(self.publish(&staging))
    }

    /// Publishes the staging pair: clones an immutable snapshot, stamps
    /// the next generation and swaps it into the served slot. Must be
    /// called with the staging lock held — that serializes generation
    /// assignment with the publish itself, so generations observed
    /// through the served slot are monotone even when sparse and full
    /// updates race. (The snapshot's customization scratch clones as
    /// empty, so served copies stay lean.)
    fn publish(&self, staging: &LiveStaging) -> u64 {
        let cch = Arc::new(staging.cch.as_ref().expect("staging customized").clone());
        let generation = self.live.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let lw = Arc::new(LiveWeights {
            generation,
            weights: staging.weights.clone(),
            cch,
        });
        *self.live.current.lock().expect("live lock") = Some(lw);
        self.obs.live_generation.set(generation as i64);
        generation
    }

    /// Admits a request without blocking: hashes it onto its shard and
    /// enqueues it, returning the reply slot. Sheds immediately when
    /// the deadline has already passed or the shard queue is full.
    pub fn submit(&self, req: RouteRequest) -> Result<PendingRoute, ServeError> {
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            self.obs.shed_deadline_admission.inc();
            self.obs.error(ServeError::DeadlineExpired);
            return Err(ServeError::DeadlineExpired);
        }
        // Fibonacci hash of the source vertex: same-source bursts land
        // on one shard, where their forward sweep is shared.
        let h = (req.source.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let shard = (h >> 33) as usize % self.senders.len();
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            req,
            reply: tx,
            admitted: Instant::now(),
        };
        match self.senders[shard].try_send(job) {
            Ok(()) => {
                self.obs.queue_depth[shard].add(1);
                Ok(PendingRoute { rx })
            }
            Err(TrySendError::Full(_)) => {
                self.obs.shed_queue_full.inc();
                self.obs.error(ServeError::QueueFull);
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.obs.error(ServeError::Shutdown);
                Err(ServeError::Shutdown)
            }
        }
    }

    /// [`RouteServer::submit`] + [`PendingRoute::wait`].
    pub fn route(&self, req: RouteRequest) -> Result<RouteReply, ServeError> {
        self.submit(req)?.wait()
    }

    /// Stops accepting work, drains the shards and joins the workers.
    pub fn shutdown(mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RouteServer {
    fn drop(&mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One shard's serving loop: block for work, coalesce, process.
fn worker_loop(
    g: &Arc<Graph>,
    idx: &ServerIndexes,
    live: &Arc<LiveState>,
    obs: &Arc<ServeObs>,
    cfg: &ServeConfig,
    rx: Receiver<Job>,
    shard: usize,
) {
    let mut engine = QueryEngine::new(g);
    engine.set_landmarks(idx.landmarks.clone());
    engine.set_ch(idx.ch.clone());
    engine.set_obs(EngineObs::new(&obs.registry));
    let trace = obs.tracer.register(format!("route-shard-{shard}"));
    let depth = obs.queue_depth[shard].clone();
    // The live generation this engine's CCH slot currently matches;
    // swapped lazily when a batch snapshots a newer one.
    let mut mounted_live: Option<Arc<LiveWeights>> = None;
    let mut batch: Vec<Job> = Vec::new();
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: shutdown
        };
        depth.sub(1);
        batch.push(first);
        // Greedy drain: whatever queued while we were busy batches for
        // free — no request waits a window it doesn't have to.
        while batch.len() < cfg.max_batch {
            match rx.try_recv() {
                Ok(job) => {
                    depth.sub(1);
                    batch.push(job);
                }
                Err(_) => break,
            }
        }
        // Straggler window, only while the batch is still below the
        // m2m threshold and never past the earliest deadline on board.
        // The drain above is also the load signal: unless it found at
        // least `straggler_min_queued` extras, the shard is below its
        // batching break-even and the window would be pure added
        // latency, so it stays shut and the request dispatches now.
        if cfg.batching
            && cfg.batch_window > Duration::ZERO
            && batch.len() < cfg.min_batch_for_m2m
            && batch.len() > cfg.straggler_min_queued
        {
            let window_end = Instant::now() + cfg.batch_window;
            let wait_until = batch
                .iter()
                .filter_map(|j| j.req.deadline)
                .min()
                .map_or(window_end, |d| d.min(window_end));
            // Stop as soon as the batch is m2m-worthy: the window only
            // exists to reach that threshold, and anything queued past
            // it coalesces for free on the next greedy drain. Sitting
            // the window out at a low client count would otherwise tax
            // every request the full window even though the handful of
            // closed-loop clients can never push the batch further.
            let window_target = cfg.min_batch_for_m2m.min(cfg.max_batch);
            while batch.len() < window_target {
                let now = Instant::now();
                let Some(remaining) = wait_until.checked_duration_since(now) else {
                    break;
                };
                if remaining.is_zero() {
                    break;
                }
                match rx.recv_timeout(remaining) {
                    Ok(job) => {
                        depth.sub(1);
                        batch.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        obs.batch_size.record(batch.len() as u64);
        let span = trace.span("batch", batch.len() as u64);
        process_batch(&mut engine, live, obs, cfg, &mut mounted_live, &mut batch);
        drop(span);
    }
}

/// Sheds expired jobs, groups the rest by metric and serves each group.
fn process_batch(
    engine: &mut QueryEngine<'_>,
    live: &Arc<LiveState>,
    obs: &ServeObs,
    cfg: &ServeConfig,
    mounted_live: &mut Option<Arc<LiveWeights>>,
    batch: &mut Vec<Job>,
) {
    let now = Instant::now();
    let mut groups: HashMap<Metric, Vec<Job>> = HashMap::new();
    for job in batch.drain(..) {
        if job.req.deadline.is_some_and(|d| now >= d) {
            obs.shed_deadline_batch.inc();
            obs.error(ServeError::DeadlineExpired);
            let _ = job.reply.send(Err(ServeError::DeadlineExpired));
            continue;
        }
        groups.entry(job.req.metric).or_default().push(job);
    }
    for (metric, jobs) in groups {
        match metric {
            Metric::Length => serve_group(engine, obs, cfg, jobs, CostModel::Length, 0),
            Metric::TravelTime => serve_group(engine, obs, cfg, jobs, CostModel::TravelTime, 0),
            Metric::Live => {
                // One snapshot per batch: every request in it sees this
                // exact (weights, cch) pair — old or new around a swap,
                // never a mix.
                let snapshot = live.current.lock().expect("live lock").clone();
                let Some(lw) = snapshot else {
                    for job in jobs {
                        obs.error(ServeError::NoBackend);
                        let _ = job.reply.send(Err(ServeError::NoBackend));
                    }
                    continue;
                };
                if mounted_live.as_ref().is_none_or(|m| !Arc::ptr_eq(m, &lw)) {
                    engine.set_cch(Some(Arc::clone(&lw.cch)));
                    *mounted_live = Some(Arc::clone(&lw));
                }
                serve_group(
                    engine,
                    obs,
                    cfg,
                    jobs,
                    CostModel::Custom(&lw.weights),
                    lw.generation,
                );
            }
        }
    }
}

/// Serves one same-metric group: batched m2m on the hierarchy rungs
/// when worthwhile, individual backend-dispatched queries otherwise.
fn serve_group(
    engine: &mut QueryEngine<'_>,
    obs: &ServeObs,
    cfg: &ServeConfig,
    jobs: Vec<Job>,
    cost: CostModel<'_>,
    generation: u64,
) {
    if jobs.is_empty() {
        return;
    }
    let backend = engine.backend_for(cost);
    let hierarchy_backed = matches!(backend, SearchBackend::Ch | SearchBackend::Cch);
    if hierarchy_backed
        && cfg.batching
        && jobs.len() >= cfg.min_batch_for_m2m
        && coalescing_wins(&jobs)
    {
        obs.coalesced_batches.inc();
        serve_batched(engine, obs, jobs, cost, backend, generation);
        return;
    }
    if backend == SearchBackend::Plain && !cfg.allow_plain {
        for job in jobs {
            obs.error(ServeError::NoBackend);
            let _ = job.reply.send(Err(ServeError::NoBackend));
        }
        return;
    }
    for job in jobs {
        let cost_val = engine.shortest_path_cost(job.req.source, job.req.target, cost);
        obs.served_sequential.inc();
        obs.latency_ns.record_duration(job.admitted.elapsed());
        let _ = job.reply.send(Ok(RouteReply {
            cost: cost_val,
            backend,
            batched: false,
            weights_generation: generation,
        }));
    }
}

/// Whether the bucket m2m fill actually saves work for this group's
/// shape. The fill costs one backward half-sweep per distinct target
/// plus one forward half-sweep per distinct source; the pairwise
/// bidirectional path costs two half-sweeps per request. Coalescing
/// must save at least two half-sweeps to also cover the fill's bucket
/// deposit/scan and demux overhead. Hub-shaped traffic (many sources,
/// few shared targets) passes easily; a drained queue of a few
/// unrelated point queries — the low-concurrency regime where batching
/// used to *lose* 2.6x — fails and dispatches pointwise.
fn coalescing_wins(jobs: &[Job]) -> bool {
    let mut sources: Vec<u32> = jobs.iter().map(|j| j.req.source.0).collect();
    sources.sort_unstable();
    sources.dedup();
    let mut targets: Vec<u32> = jobs.iter().map(|j| j.req.target.0).collect();
    targets.sort_unstable();
    targets.dedup();
    sources.len() + targets.len() + 2 <= 2 * jobs.len()
}

/// The coalesced path: one bucket preparation over the batch's distinct
/// targets, one forward sweep per distinct source, demuxed back.
fn serve_batched(
    engine: &mut QueryEngine<'_>,
    obs: &ServeObs,
    jobs: Vec<Job>,
    cost: CostModel<'_>,
    backend: SearchBackend,
    generation: u64,
) {
    let mut targets: Vec<VertexId> = jobs.iter().map(|j| j.req.target).collect();
    targets.sort_unstable_by_key(|v| v.0);
    targets.dedup();
    let target_col: HashMap<u32, usize> =
        targets.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    if !engine.prepare_m2m_targets(&targets, cost) {
        // The index was swapped between backend resolution and here;
        // individual dispatch re-resolves per query and stays exact.
        for job in jobs {
            let cost_val = engine.shortest_path_cost(job.req.source, job.req.target, cost);
            obs.served_sequential.inc();
            obs.latency_ns.record_duration(job.admitted.elapsed());
            let _ = job.reply.send(Ok(RouteReply {
                cost: cost_val,
                backend: engine.backend_for(cost),
                batched: false,
                weights_generation: generation,
            }));
        }
        return;
    }
    let mut by_source: HashMap<u32, Vec<Job>> = HashMap::new();
    for job in jobs {
        by_source.entry(job.req.source.0).or_default().push(job);
    }
    for (source, jobs) in by_source {
        let row = engine
            .m2m_distances_from(VertexId(source), cost)
            .expect("buckets prepared above on this backend");
        for job in jobs {
            let d = row[target_col[&job.req.target.0]];
            obs.served_batched.inc();
            obs.latency_ns.record_duration(job.admitted.elapsed());
            let _ = job.reply.send(Ok(RouteReply {
                cost: d.is_finite().then_some(d),
                backend,
                batched: true,
                weights_generation: generation,
            }));
        }
    }
}
