//! Deterministic serving fixtures.
//!
//! The exactness harnesses compare batched server replies against
//! sequential [`QueryEngine`](pathrank_spatial::algo::engine::QueryEngine)
//! answers **bitwise**. Bucket many-to-many fills sum hub distances in
//! a different association order than a sequential cost fold, so on
//! arbitrary float weights the two can differ in the last ulp. On
//! *integer* weights they cannot: every partial sum along a realistic
//! path stays far below 2^53, where f64 addition is exact in any
//! association. All graphs and live weight vectors here therefore carry
//! integer-metre costs, making "bit-identical" a theorem rather than a
//! hope. (A separate tolerance harness covers float weights.)

use pathrank_spatial::builder::GraphBuilder;
use pathrank_spatial::geometry::Point;
use pathrank_spatial::graph::{EdgeAttrs, Graph, RoadCategory, VertexId};

/// Splitmix-style step used for every deterministic choice below.
#[inline]
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A `side × side` grid city with deterministic *integer* edge lengths
/// (metres in `[80, 400)`), every street bidirectional. Vertex
/// `(i, j)` sits at `(i·200, j·200)` and has id `i·side + j`.
pub fn integer_city(side: usize) -> Graph {
    assert!(side >= 2, "a city needs at least a 2x2 grid");
    let mut b = GraphBuilder::with_capacity(side * side, 4 * side * (side - 1));
    for i in 0..side {
        for j in 0..side {
            b.add_vertex(Point::new(i as f64 * 200.0, j as f64 * 200.0));
        }
    }
    let id = |i: usize, j: usize| VertexId((i * side + j) as u32);
    let mut state = 0x5eed_c17du64;
    let street = |b: &mut GraphBuilder, u: VertexId, v: VertexId, state: &mut u64| {
        let length_m = (80 + next(state) % 320) as f64;
        let category = match next(state) % 4 {
            0 => RoadCategory::Arterial,
            1 => RoadCategory::Rural,
            _ => RoadCategory::Residential,
        };
        b.add_bidirectional(u, v, EdgeAttrs::with_default_speed(length_m, category))
            .expect("grid edges are valid");
    };
    for i in 0..side {
        for j in 0..side {
            if i + 1 < side {
                street(&mut b, id(i, j), id(i + 1, j), &mut state);
            }
            if j + 1 < side {
                street(&mut b, id(i, j), id(i, j + 1), &mut state);
            }
        }
    }
    b.build()
}

/// A deterministic integer live-weight vector for `g` — "congested"
/// weights in `[60, 1000)` per directed edge, distinct from the static
/// lengths so a test can tell the generations apart. Different `seed`s
/// give different vectors (distinct generations for swap tests).
pub fn integer_live_weights(g: &Graph, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..g.edge_count())
        .map(|_| (60 + next(&mut state) % 940) as f64)
        .collect()
}

/// Deterministic request endpoints with hub-skewed targets: sources are
/// uniform, targets are drawn from a pool of `hubs` vertices. This is
/// the workload where coalescing wins — many concurrent requests share
/// backward target sweeps, so a batch of `B` pays `S + T ≪ 2·B`
/// half-sweeps. Self-pairs are skipped.
pub fn hub_pairs(g: &Graph, count: usize, hubs: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let n = g.vertex_count() as u64;
    let hubs = hubs.max(1) as u64;
    let mut state = seed | 1;
    let hub_pool: Vec<u64> = (0..hubs).map(|_| next(&mut state) % n).collect();
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let s = next(&mut state) % n;
        let t = hub_pool[(next(&mut state) % hubs) as usize];
        if s != t {
            pairs.push((VertexId(s as u32), VertexId(t as u32)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_is_deterministic_and_integer_weighted() {
        let a = integer_city(6);
        let b = integer_city(6);
        assert_eq!(a.vertex_count(), 36);
        assert_eq!(a.edge_count(), b.edge_count());
        for e in 0..a.edge_count() {
            let attrs = a.edge(pathrank_spatial::graph::EdgeId(e as u32)).attrs;
            assert_eq!(attrs.length_m.fract(), 0.0, "lengths must be integers");
            assert!((80.0..400.0).contains(&attrs.length_m));
        }
    }

    #[test]
    fn live_weights_are_integer_and_seed_dependent() {
        let g = integer_city(5);
        let w1 = integer_live_weights(&g, 1);
        let w2 = integer_live_weights(&g, 2);
        assert_eq!(w1.len(), g.edge_count());
        assert!(w1.iter().all(|w| w.fract() == 0.0 && *w >= 60.0));
        assert_ne!(w1, w2);
    }

    #[test]
    fn hub_pairs_reuse_targets() {
        let g = integer_city(8);
        let pairs = hub_pairs(&g, 200, 4, 99);
        assert_eq!(pairs.len(), 200);
        let mut targets: Vec<u32> = pairs.iter().map(|(_, t)| t.0).collect();
        targets.sort_unstable();
        targets.dedup();
        assert!(targets.len() <= 4, "targets come from the hub pool");
        assert!(pairs.iter().all(|(s, t)| s != t));
    }
}
