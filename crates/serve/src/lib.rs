//! Concurrent route serving over the PathRank spatial indexes.
//!
//! Everything below `crates/serve` handles *concurrent* traffic — the
//! layer the sequential benchmarks stop short of. The design is a
//! dependency-free thread-per-core server:
//!
//! * each **shard** is one worker thread owning a private
//!   [`QueryEngine`](pathrank_spatial::algo::engine::QueryEngine) over
//!   the `Arc`-shared graph and indexes, fed by a bounded channel;
//! * concurrent one-to-one requests landing in a shard within a short
//!   window are **coalesced** into one bucket many-to-many fill
//!   (`S + T` upward half-sweeps instead of `2·B`) and de-multiplexed
//!   back to their callers;
//! * requests carry **deadlines**; overloaded shards shed
//!   ([`ServeError::QueueFull`], [`ServeError::DeadlineExpired`])
//!   or degrade down the backend ladder (CH/CCH → ALT → plain →
//!   [`ServeError::NoBackend`]) instead of queueing unboundedly;
//! * live weight updates re-customize the CCH off the serving path and
//!   **swap in atomically** — a batch snapshots one `(weights, index)`
//!   pair, so no in-flight query ever sees torn weights.
//!
//! [`fixture`] provides the deterministic integer-weight graphs the
//! exactness harnesses and the `loadgen` benchmark run on, and [`tcp`]
//! a minimal line protocol for out-of-process clients.

pub mod fixture;
mod obs;
pub mod server;
pub mod tcp;

pub use server::{
    LiveWeights, Metric, RouteReply, RouteRequest, RouteServer, ServeConfig, ServeError,
    ServeStats, ServerIndexes,
};
