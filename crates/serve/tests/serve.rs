//! Integration tests for the route server: batched exactness, the
//! degradation ladder, deadline/overload shedding, atomic live-weight
//! swaps and the TCP protocol.
//!
//! All bit-identity assertions run on the integer-weight fixture city,
//! where bucket m2m sums are exact in any association (see
//! `pathrank_serve::fixture`); the float-weight test uses a relative
//! tolerance instead.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pathrank_serve::fixture::{hub_pairs, integer_city, integer_live_weights};
use pathrank_serve::{
    Metric, RouteReply, RouteRequest, RouteServer, ServeConfig, ServeError, ServerIndexes,
};
use pathrank_spatial::algo::cch::{CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::engine::{QueryEngine, SearchBackend};
use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank_spatial::builder::GraphBuilder;
use pathrank_spatial::geometry::Point;
use pathrank_spatial::graph::{CostModel, EdgeAttrs, EdgeId, RoadCategory, VertexId};

fn length_request(s: VertexId, t: VertexId) -> RouteRequest {
    RouteRequest {
        source: s,
        target: t,
        metric: Metric::Length,
        deadline: None,
    }
}

/// Submits every request before waiting on any reply: with one shard
/// and a generous straggler window this coalesces the burst into m2m
/// batches.
fn burst_route(server: &RouteServer, reqs: &[RouteRequest]) -> Vec<Result<RouteReply, ServeError>> {
    let pending: Vec<_> = reqs.iter().map(|r| server.submit(*r)).collect();
    pending
        .into_iter()
        .map(|p| match p {
            Ok(p) => p.wait(),
            Err(e) => Err(e),
        })
        .collect()
}

#[test]
fn serve_batched_replies_are_bit_identical_to_sequential() {
    let graph = Arc::new(integer_city(10));
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    // Two hub targets: every batch of `min_batch_for_m2m` or more then
    // passes the coalescing-win test (`S + T + 2 <= 2B` holds for any
    // B >= 4 when T <= 2), however the burst fragments.
    let pairs = hub_pairs(&graph, 160, 2, 0xfeed);

    let mut engine = QueryEngine::new(&graph);
    engine.set_ch(Some(Arc::clone(&ch)));
    let expected: Vec<Option<f64>> = pairs
        .iter()
        .map(|&(s, t)| engine.shortest_path_cost(s, t, CostModel::Length))
        .collect();

    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            batch_window: Duration::from_millis(100),
            max_batch: pairs.len(),
            // Always-wait straggler window (`0`): if the worker keeps
            // pace with the submitting thread, every drain comes up
            // empty and the load-signal gate would rightly dispatch the
            // trickle solo — this test *wants* the burst to accumulate
            // into one m2m batch, whatever the scheduling.
            straggler_min_queued: 0,
            ..ServeConfig::default()
        },
    );
    let reqs: Vec<_> = pairs.iter().map(|&(s, t)| length_request(s, t)).collect();
    let replies = burst_route(&server, &reqs);

    for ((reply, want), &(s, t)) in replies.iter().zip(&expected).zip(&pairs) {
        let reply = reply.expect("no deadlines, deep queue: everything serves");
        assert_eq!(reply.backend, SearchBackend::Ch);
        assert_eq!(
            reply.cost.map(f64::to_bits),
            want.map(f64::to_bits),
            "batched answer for {}->{} diverged from the sequential engine",
            s.0,
            t.0
        );
    }
    let stats = server.stats();
    assert_eq!(stats.served, pairs.len() as u64);
    assert!(
        stats.batched >= (pairs.len() / 2) as u64,
        "the burst must actually exercise the m2m path, got {} batched of {}",
        stats.batched,
        stats.served
    );
    server.shutdown();
}

#[test]
fn serve_float_graph_batched_matches_within_tolerance() {
    // Fractional lengths: bucket sums may differ from the sequential
    // fold in the last ulp, so this asserts closeness, not bits.
    let mut b = GraphBuilder::new();
    let side = 8usize;
    for i in 0..side {
        for j in 0..side {
            b.add_vertex(Point::new(i as f64 * 97.0, j as f64 * 97.0));
        }
    }
    let id = |i: usize, j: usize| VertexId((i * side + j) as u32);
    for i in 0..side {
        for j in 0..side {
            let len = 90.0 + ((i * 31 + j * 17) % 50) as f64 * 1.37;
            if i + 1 < side {
                b.add_bidirectional(
                    id(i, j),
                    id(i + 1, j),
                    EdgeAttrs::with_default_speed(len, RoadCategory::Residential),
                )
                .unwrap();
            }
            if j + 1 < side {
                b.add_bidirectional(
                    id(i, j),
                    id(i, j + 1),
                    EdgeAttrs::with_default_speed(len + 0.73, RoadCategory::Arterial),
                )
                .unwrap();
            }
        }
    }
    let graph = Arc::new(b.build());
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let pairs = hub_pairs(&graph, 96, 5, 0x0f10a7);

    let mut engine = QueryEngine::new(&graph);
    engine.set_ch(Some(Arc::clone(&ch)));
    let expected: Vec<Option<f64>> = pairs
        .iter()
        .map(|&(s, t)| engine.shortest_path_cost(s, t, CostModel::Length))
        .collect();

    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            batch_window: Duration::from_millis(100),
            max_batch: pairs.len(),
            ..ServeConfig::default()
        },
    );
    let reqs: Vec<_> = pairs.iter().map(|&(s, t)| length_request(s, t)).collect();
    for (reply, want) in burst_route(&server, &reqs).iter().zip(&expected) {
        let got = reply.expect("serves").cost;
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => {
                assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "batched {g} vs sequential {w}"
                );
            }
            other => panic!("reachability disagrees: {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn serve_live_weight_swaps_are_atomic_and_bit_exact() {
    let graph = Arc::new(integer_city(8));
    let topo = Arc::new(CchTopology::build(&graph, &CchConfig::default()));
    const GENS: u64 = 6;

    // Generations interleave full installs (odd) with sparse deltas
    // patched on top of the previous vector (even) — the torn-weights
    // claim must hold across both update paths racing the readers.
    // Sequential ground truth per generation, computed up front from
    // the evolving weight vector.
    let pairs = hub_pairs(&graph, 24, 4, 0x5a5a);
    let weights_for = |gen: u64| integer_live_weights(&graph, 0xcafe + gen);
    let sparse_delta = |gen: u64| -> Vec<(EdgeId, f64)> {
        let fresh = integer_live_weights(&graph, 0xd00d + gen);
        (0..graph.edge_count())
            .step_by(7)
            .map(|i| (EdgeId(i as u32), fresh[i]))
            .collect()
    };
    let mut current = weights_for(1);
    let mut vectors: HashMap<u64, Vec<f64>> = HashMap::new();
    vectors.insert(1, current.clone());
    for gen in 2..=GENS {
        if gen % 2 == 0 {
            for &(e, w) in &sparse_delta(gen) {
                current[e.index()] = w;
            }
        } else {
            current = weights_for(gen);
        }
        vectors.insert(gen, current.clone());
    }
    let mut expected: HashMap<u64, Vec<Option<f64>>> = HashMap::new();
    for gen in 1..=GENS {
        let w = &vectors[&gen];
        let cch = Arc::new(topo.customize_weights(&graph, w));
        let mut engine = QueryEngine::new(&graph);
        engine.set_cch(Some(cch));
        let costs = pairs
            .iter()
            .map(|&(s, t)| engine.shortest_path_cost(s, t, CostModel::Custom(w)))
            .collect();
        expected.insert(gen, costs);
    }

    let server = Arc::new(RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            cch_topology: Some(Arc::clone(&topo)),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    ));
    assert_eq!(server.update_live_weights(weights_for(1)), Ok(1));

    // Clients hammer Live queries while the main thread keeps swapping
    // generations underneath them.
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(3));
    let mut observed: HashSet<u64> = HashSet::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..2 {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let start = Arc::clone(&start);
            let pairs = &pairs;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                start.wait();
                let mut seen = HashSet::new();
                let mut i = client;
                while !stop.load(Ordering::Relaxed) {
                    let (s, t) = pairs[i % pairs.len()];
                    let reply = server
                        .route(RouteRequest {
                            source: s,
                            target: t,
                            metric: Metric::Live,
                            deadline: None,
                        })
                        .expect("live weights installed");
                    let gen = reply.weights_generation;
                    assert!(
                        (1..=GENS).contains(&gen),
                        "reply from unknown generation {gen}"
                    );
                    // The atomicity claim: whatever generation answered,
                    // the cost is bit-identical to that generation's
                    // sequential answer — never a torn mix.
                    assert_eq!(
                        reply.cost.map(f64::to_bits),
                        expected[&gen][i % pairs.len()].map(f64::to_bits),
                        "cost does not match generation {gen} for pair {}->{}",
                        s.0,
                        t.0
                    );
                    seen.insert(gen);
                    i += 1;
                }
                seen
            }));
        }
        start.wait();
        for gen in 2..=GENS {
            std::thread::sleep(Duration::from_millis(15));
            if gen % 2 == 0 {
                assert_eq!(
                    server.update_live_weights_sparse(&sparse_delta(gen)),
                    Ok(gen)
                );
            } else {
                assert_eq!(server.update_live_weights(vectors[&gen].clone()), Ok(gen));
            }
        }
        std::thread::sleep(Duration::from_millis(15));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            observed.extend(h.join().expect("client"));
        }
    });
    assert!(
        observed.len() >= 2,
        "clients should observe multiple generations, saw {observed:?}"
    );
    assert_eq!(server.live_generation(), GENS);
}

#[test]
fn serve_deadlines_shed_instead_of_serving_late() {
    let graph = Arc::new(integer_city(6));
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            // A long window the worker will sit out (min_batch is
            // unreachable), guaranteeing the tight deadline below
            // expires while its batch forms. `straggler_min_queued: 0`
            // opts back into the unconditional window so a solo request
            // opens it.
            batch_window: Duration::from_millis(400),
            min_batch_for_m2m: usize::MAX,
            straggler_min_queued: 0,
            ..ServeConfig::default()
        },
    );

    // Already-expired deadlines shed at admission, before queueing.
    let pre_expired = server.submit(RouteRequest {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..length_request(VertexId(0), VertexId(35))
    });
    assert!(matches!(pre_expired, Err(ServeError::DeadlineExpired)));

    // A patient request opens the 400ms window (the sleep hands the
    // core to the worker so it does); a 20ms-deadline request joining
    // that window must be shed when processing starts at window end.
    let patient = server
        .submit(length_request(VertexId(0), VertexId(35)))
        .expect("queue empty");
    std::thread::sleep(Duration::from_millis(50));
    let hurried = server
        .submit(RouteRequest {
            deadline: Some(Instant::now() + Duration::from_millis(20)),
            ..length_request(VertexId(1), VertexId(30))
        })
        .expect("queue has room");

    assert!(patient
        .wait()
        .expect("no deadline: must serve")
        .cost
        .is_some());
    assert_eq!(hurried.wait(), Err(ServeError::DeadlineExpired));
    let stats = server.stats();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.shed_deadline, 2);
    server.shutdown();
}

#[test]
fn serve_solo_requests_skip_the_straggler_window() {
    // The low-concurrency regression fix: a synchronous client on an
    // otherwise idle shard must not pay the straggler window per
    // request. With a deliberately huge window (400ms) and the default
    // straggler gate, ten sequential round trips must complete in a
    // fraction of a single window — the drain finds nothing queued, so
    // the window never opens.
    let graph = Arc::new(integer_city(6));
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            batch_window: Duration::from_millis(400),
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    for i in 0..10u32 {
        let reply = server
            .route(length_request(VertexId(i % 36), VertexId((i + 18) % 36)))
            .expect("idle shard must serve");
        assert!(!reply.batched, "a solo request has nothing to batch with");
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(400),
        "10 solo round trips took {elapsed:?}: the straggler window \
         must stay shut on an idle shard"
    );
    server.shutdown();
}

#[test]
fn serve_full_queues_shed_at_admission() {
    // No indexes: every query is a full plain Dijkstra over 1600
    // vertices (hundreds of microseconds), while a submission costs a
    // try_send (microseconds). The worker absorbs at most 8 jobs per
    // batch and cannot drain while processing one, so a 200-deep burst
    // against a depth-8 queue must overflow on any scheduler.
    let graph = Arc::new(integer_city(40));
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes::default(),
        ServeConfig {
            shards: 1,
            queue_capacity: 8,
            min_batch_for_m2m: usize::MAX,
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let reqs: Vec<_> = (0..200)
        .map(|i| length_request(VertexId(i % 1600), VertexId((i + 800) % 1600)))
        .filter(|r| r.source != r.target)
        .collect();
    let results = burst_route(&server, &reqs);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let full = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::QueueFull)))
        .count();
    assert!(ok >= 1, "the absorbed prefix must still be served");
    assert!(full >= 1, "a 200-burst against depth 8 must overflow");
    assert_eq!(ok + full, results.len(), "no other failure mode expected");
    assert_eq!(server.stats().shed_queue_full, full as u64);
    server.shutdown();
}

#[test]
fn serve_degradation_ladder_falls_back_and_bottoms_out() {
    let graph = Arc::new(integer_city(6));
    let s = VertexId(3);
    let t = VertexId(32);
    let mut engine = QueryEngine::new(&graph);
    let plain = engine.shortest_path_cost(s, t, CostModel::Length);

    // No CH: the ladder lands on ALT, same cost.
    let landmarks = Arc::new(LandmarkTable::build(
        &graph,
        LandmarkMetric::Length,
        &LandmarkConfig::default(),
    ));
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            landmarks: Some(landmarks),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    );
    let reply = server.route(length_request(s, t)).expect("alt serves");
    assert_eq!(reply.backend, SearchBackend::Alt);
    assert_eq!(reply.cost.map(f64::to_bits), plain.map(f64::to_bits));
    // Live has no backend at all without a CCH topology.
    assert_eq!(
        server.route(RouteRequest {
            metric: Metric::Live,
            ..length_request(s, t)
        }),
        Err(ServeError::NoBackend)
    );
    server.shutdown();

    // No indexes at all: plain Dijkstra when allowed...
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes::default(),
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    );
    let reply = server.route(length_request(s, t)).expect("plain serves");
    assert_eq!(reply.backend, SearchBackend::Plain);
    assert_eq!(reply.cost.map(f64::to_bits), plain.map(f64::to_bits));
    server.shutdown();

    // ...and a hard NoBackend when the plain rung is disabled.
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes::default(),
        ServeConfig {
            shards: 1,
            allow_plain: false,
            ..ServeConfig::default()
        },
    );
    assert_eq!(
        server.route(length_request(s, t)),
        Err(ServeError::NoBackend)
    );
    assert_eq!(server.stats().no_backend, 1);
    server.shutdown();
}

#[test]
fn serve_rejects_invalid_live_weights() {
    let graph = Arc::new(integer_city(5));
    let topo = Arc::new(CchTopology::build(&graph, &CchConfig::default()));
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            cch_topology: Some(topo),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    );
    let m = graph.edge_count();
    assert_eq!(
        server.update_live_weights(vec![1.0; m - 1]),
        Err(ServeError::InvalidWeights)
    );
    let mut poisoned = vec![1.0; m];
    poisoned[m / 2] = f64::NAN;
    assert_eq!(
        server.update_live_weights(poisoned),
        Err(ServeError::InvalidWeights)
    );
    let mut negative = vec![1.0; m];
    negative[0] = -2.0;
    assert_eq!(
        server.update_live_weights(negative),
        Err(ServeError::InvalidWeights)
    );
    assert_eq!(server.live_generation(), 0);
    server.shutdown();
}

#[test]
fn serve_sparse_updates_answer_bit_identically_to_sequential() {
    let graph = Arc::new(integer_city(8));
    let topo = Arc::new(CchTopology::build(&graph, &CchConfig::default()));
    let server = RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            cch_topology: Some(Arc::clone(&topo)),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    );
    let pairs = hub_pairs(&graph, 32, 4, 0xbead);

    // A sparse delta patches the previous generation; before any full
    // install there is nothing to patch.
    assert_eq!(
        server.update_live_weights_sparse(&[(EdgeId(0), 5.0)]),
        Err(ServeError::NoBackend)
    );

    let mut weights = integer_live_weights(&graph, 0x11);
    assert_eq!(server.update_live_weights(weights.clone()), Ok(1));

    // Invalid sparse updates are rejected without publishing.
    let out_of_range = EdgeId(graph.edge_count() as u32);
    assert_eq!(
        server.update_live_weights_sparse(&[(out_of_range, 5.0)]),
        Err(ServeError::InvalidWeights)
    );
    assert_eq!(
        server.update_live_weights_sparse(&[(EdgeId(0), f64::NAN)]),
        Err(ServeError::InvalidWeights)
    );
    assert_eq!(
        server.update_live_weights_sparse(&[(EdgeId(0), -1.0)]),
        Err(ServeError::InvalidWeights)
    );
    assert_eq!(server.live_generation(), 1);

    // Chained sparse deltas — including a duplicate-edge last-wins
    // entry — must leave the server bit-identical to a sequential
    // engine rebuilt from scratch over the same patched vector.
    for round in 0u64..4 {
        let fresh = integer_live_weights(&graph, 0x900d + round);
        let mut delta: Vec<(EdgeId, f64)> = (0..graph.edge_count())
            .step_by(11 + round as usize)
            .map(|i| (EdgeId(i as u32), fresh[i]))
            .collect();
        // EdgeId(0) already appears first; this later entry must win.
        delta.push((EdgeId(0), 77.0));
        for &(e, w) in &delta {
            weights[e.index()] = w;
        }
        let gen = server
            .update_live_weights_sparse(&delta)
            .expect("a valid delta publishes");
        assert_eq!(gen, round + 2);

        let cch = Arc::new(topo.customize_weights(&graph, &weights));
        let mut engine = QueryEngine::new(&graph);
        engine.set_cch(Some(cch));
        for &(s, t) in &pairs {
            let want = engine.shortest_path_cost(s, t, CostModel::Custom(&weights));
            let reply = server
                .route(RouteRequest {
                    source: s,
                    target: t,
                    metric: Metric::Live,
                    deadline: None,
                })
                .expect("live weights installed");
            assert_eq!(reply.weights_generation, gen);
            assert_eq!(
                reply.cost.map(f64::to_bits),
                want.map(f64::to_bits),
                "sparse-updated server diverged from sequential engine \
                 for {}->{} at generation {gen}",
                s.0,
                t.0
            );
        }
    }
    server.shutdown();
}

#[test]
fn serve_tcp_update_round_trip() {
    let graph = Arc::new(integer_city(6));
    let topo = Arc::new(CchTopology::build(&graph, &CchConfig::default()));
    let server = Arc::new(RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            cch_topology: Some(Arc::clone(&topo)),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    ));
    let mut weights = integer_live_weights(&graph, 0x70c9);
    assert_eq!(server.update_live_weights(weights.clone()), Ok(1));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = pathrank_serve::tcp::run_listener(listener, server);
        });
    }
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // A sparse delta over the wire bumps the generation...
    weights[0] = 444.0;
    weights[7] = 555.0;
    writer.write_all(b"UPDATE 0:444,7:555\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), "OK 2");

    // ...and live routes answer on the patched vector, bit-identical
    // to a sequential engine customized from scratch.
    let cch = Arc::new(topo.customize_weights(&graph, &weights));
    let mut engine = QueryEngine::new(&graph);
    engine.set_cch(Some(cch));
    let want = engine
        .shortest_path_cost(VertexId(0), VertexId(35), CostModel::Custom(&weights))
        .expect("grid is connected");
    line.clear();
    writer.write_all(b"ROUTE 0 35 live\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), format!("OK {want} Cch 0 2"));

    // Malformed pairs are a protocol error; a real pair naming an
    // unknown edge or a negative weight is a validation error.
    line.clear();
    writer.write_all(b"UPDATE 0=444\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), "ERR BadRequest");
    // Variant errors carry the server's cumulative count for the
    // variant: first InvalidWeights is n=1, the next n=2.
    line.clear();
    writer.write_all(b"UPDATE 999999:5\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), "ERR InvalidWeights n=1");
    line.clear();
    writer.write_all(b"UPDATE 0:-3\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), "ERR InvalidWeights n=2");
    assert_eq!(server.live_generation(), 2);
}

#[test]
fn serve_tcp_round_trip() {
    let graph = Arc::new(integer_city(6));
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let mut engine = QueryEngine::new(&graph);
    engine.set_ch(Some(Arc::clone(&ch)));
    let want = engine
        .shortest_path_cost(VertexId(0), VertexId(35), CostModel::Length)
        .expect("grid is connected");

    let server = Arc::new(RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = pathrank_serve::tcp::run_listener(listener, server);
        });
    }

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writer.write_all(b"ROUTE 0 35 length\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), format!("OK {want} Ch 0 0"));

    line.clear();
    writer.write_all(b"ROUTE 0 garbage length\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), "ERR BadRequest");

    line.clear();
    writer.write_all(b"ROUTE 0 35 live\n").expect("send");
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim(), "ERR NoBackend n=1");
}
