//! Serving-layer observability: the `STATS` TCP command, per-variant
//! `ERR ... n=<count>` replies, the typed snapshot API and the obs-off
//! escape hatch. Test names carry the `obs_` prefix so the release CI
//! step (`cargo test --release -- obs_`) picks them up alongside the
//! exactness harness.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pathrank_obs::{promtext, Registry, TraceKind};
use pathrank_serve::fixture::{hub_pairs, integer_city, integer_live_weights};
use pathrank_serve::{Metric, RouteRequest, RouteServer, ServeConfig, ServeError, ServerIndexes};
use pathrank_spatial::algo::cch::{CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::graph::EdgeId;

fn start_server(graph: Arc<pathrank_spatial::graph::Graph>) -> Arc<RouteServer> {
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        pathrank_spatial::algo::landmarks::LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let topo = Arc::new(CchTopology::build(&graph, &CchConfig::default()));
    Arc::new(RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            cch_topology: Some(topo),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    ))
}

/// Reads a framed multi-line STATS reply: every line up to the `.`
/// frame terminator.
fn read_frame(reader: &mut BufReader<TcpStream>) -> String {
    let mut out = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("frame line");
        if line.trim_end() == "." {
            return out;
        }
        out.push_str(&line);
    }
}

#[test]
fn obs_serve_stats_scrape_has_nonzero_series() {
    let graph = Arc::new(integer_city(6));
    let server = start_server(Arc::clone(&graph));
    server
        .update_live_weights(integer_live_weights(&graph, 0x0b5))
        .expect("install live weights");
    server
        .update_live_weights_sparse(&[(EdgeId(0), 123.0)])
        .expect("sparse delta");
    // Traffic across two metrics so engine and serve families populate.
    for (s, t) in hub_pairs(&graph, 32, 2, 0x57a7) {
        for metric in [Metric::Length, Metric::Live] {
            server
                .route(RouteRequest {
                    source: s,
                    target: t,
                    metric,
                    deadline: None,
                })
                .expect("served");
        }
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = pathrank_serve::tcp::run_listener(listener, server);
        });
    }
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    writer.write_all(b"STATS\n").expect("send");
    let text = read_frame(&mut reader);
    assert!(text.ends_with("# EOF\n"), "scrape not EOF-terminated");
    let samples = promtext::parse(&text).expect("well-formed exposition");
    let total = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    assert_eq!(total("pathrank_serve_served_total"), 64.0);
    assert_eq!(total("pathrank_serve_request_latency_ns_count"), 64.0);
    assert_eq!(total("pathrank_engine_queries_total"), 64.0);
    assert!(total("pathrank_serve_batch_size_count") >= 1.0);
    assert!(total("pathrank_engine_settled_nodes_total") > 0.0);
    assert_eq!(total("pathrank_serve_live_swaps_total"), 2.0);
    assert_eq!(total("pathrank_cch_customize_ns_count"), 2.0);
    assert_eq!(total("pathrank_cch_delta_edges_count"), 1.0);
    assert_eq!(total("pathrank_serve_live_generation"), 2.0);

    // The JSON form carries the same families.
    writer.write_all(b"STATS json\n").expect("send");
    let json = read_frame(&mut reader);
    assert!(json.trim_start().starts_with('{'), "not a JSON object");
    assert!(json.contains("pathrank_serve_served_total"));
    assert!(json.contains("pathrank_engine_queries_total"));

    // Typed quick-look API agrees with the scrape.
    let stats = server.stats();
    assert_eq!(stats.served, 64);
    let snapshot = server.metrics_snapshot();
    assert_eq!(
        snapshot.counter_total("pathrank_serve_served_total", &[]),
        64
    );
    assert_eq!(
        snapshot
            .histogram("pathrank_serve_request_latency_ns", &[])
            .expect("latency histogram registered")
            .count,
        64
    );
}

#[test]
fn obs_serve_error_replies_carry_cumulative_counts() {
    let graph = Arc::new(integer_city(4));
    // No CCH topology: live routes and updates answer NoBackend.
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        pathrank_spatial::algo::landmarks::LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let server = Arc::new(RouteServer::start(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = pathrank_serve::tcp::run_listener(listener, server);
        });
    }
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for n in 1..=3u32 {
        line.clear();
        writer.write_all(b"ROUTE 0 5 live\n").expect("send");
        reader.read_line(&mut line).expect("reply");
        assert_eq!(line.trim(), format!("ERR NoBackend n={n}"));
    }
    assert_eq!(server.error_count(ServeError::NoBackend), 3);
    assert_eq!(server.error_count(ServeError::QueueFull), 0);
}

#[test]
fn obs_serve_disabled_registry_is_a_true_noop() {
    let graph = Arc::new(integer_city(5));
    let ch = Arc::new(ContractionHierarchy::build(
        &graph,
        pathrank_spatial::algo::landmarks::LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let server = RouteServer::start_with_metrics(
        Arc::clone(&graph),
        ServerIndexes {
            ch: Some(ch),
            ..ServerIndexes::default()
        },
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
        Registry::disabled(),
    );
    for (s, t) in hub_pairs(&graph, 16, 2, 0x0ff) {
        let reply = server
            .route(RouteRequest {
                source: s,
                target: t,
                metric: Metric::Length,
                deadline: None,
            })
            .expect("served");
        assert!(reply.cost.is_some());
    }
    // Nothing registered, nothing recorded, nothing traced — but the
    // derived quick-look stats still answer (all zeros).
    let snapshot = server.metrics_snapshot();
    assert_eq!(
        snapshot.counter_total("pathrank_serve_served_total", &[]),
        0
    );
    assert!(snapshot.to_prometheus_text().ends_with("# EOF\n"));
    assert!(server.drain_trace().is_empty());
    assert_eq!(server.stats().served, 0);
}

#[test]
fn obs_serve_trace_records_batch_spans() {
    let graph = Arc::new(integer_city(5));
    let server = start_server(Arc::clone(&graph));
    for (s, t) in hub_pairs(&graph, 8, 2, 0x7ace) {
        server
            .route(RouteRequest {
                source: s,
                target: t,
                metric: Metric::Length,
                deadline: None,
            })
            .expect("served");
    }
    let records = server.drain_trace();
    let enters: Vec<_> = records
        .iter()
        .filter(|r| r.label == "batch" && r.kind == TraceKind::Enter)
        .collect();
    assert!(!enters.is_empty(), "no batch spans recorded");
    assert!(enters.iter().all(|r| r.arg >= 1));
    assert!(records
        .iter()
        .filter(|r| r.label == "batch")
        .all(|r| r.thread == "route-shard-0"));
}
