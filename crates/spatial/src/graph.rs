//! Compact CSR-based directed road-network graph.
//!
//! The graph is immutable after construction (see
//! [`crate::builder::GraphBuilder`]): vertices carry planar coordinates,
//! edges carry a length, a road category and a speed, from which a travel
//! time is derived. Both outgoing and incoming adjacency are stored in CSR
//! form so that forward searches, reverse searches and bidirectional
//! searches are all cache-friendly.

use serde::{Deserialize, Serialize};

use crate::geometry::Point;

/// Identifier of a vertex; an index into the graph's vertex arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a directed edge; an index into the graph's edge arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Lower clamp for edge speeds, km/h. Speeds entering the graph — at
/// build time or through the live mutation entry points — are clamped
/// into `[MIN_EDGE_SPEED_KMH, MAX_EDGE_SPEED_KMH]`: a zero or denormal
/// speed would turn [`EdgeAttrs::travel_time_s`] into `inf` (the
/// division `length / (speed / 3.6)` overflows for speeds below
/// ~1e-305), and a single infinite travel time poisons every
/// TravelTime-metric index that is subsequently built or customized
/// from the graph. 0.1 km/h still models a near-standstill (36 s per
/// metre) while keeping every derived weight finite.
pub const MIN_EDGE_SPEED_KMH: f64 = 0.1;

/// Upper clamp for edge speeds, km/h (comfortably above any legal road
/// speed; keeps fat-fingered telemetry from minting teleport edges).
pub const MAX_EDGE_SPEED_KMH: f64 = 300.0;

/// Clamps a proposed edge speed into the representable band.
///
/// # Panics
/// If the speed is non-finite or not strictly positive — those are
/// caller bugs, not clampable noise.
#[inline]
pub(crate) fn clamp_edge_speed(speed_kmh: f64) -> f64 {
    assert!(
        speed_kmh.is_finite() && speed_kmh > 0.0,
        "edge speed must be positive and finite, got {speed_kmh}"
    );
    speed_kmh.clamp(MIN_EDGE_SPEED_KMH, MAX_EDGE_SPEED_KMH)
}

/// Functional road classes, mirroring the hierarchy of a national road
/// network. The class determines the default speed used to derive travel
/// times in the synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadCategory {
    /// Motorways connecting towns (fast, sparse).
    Highway,
    /// Arterial roads within and between towns.
    Arterial,
    /// Ordinary urban streets.
    Residential,
    /// Low-speed rural or service roads.
    Rural,
}

impl RoadCategory {
    /// Default free-flow speed for the category, in km/h.
    pub fn default_speed_kmh(self) -> f64 {
        match self {
            RoadCategory::Highway => 110.0,
            RoadCategory::Arterial => 70.0,
            RoadCategory::Residential => 45.0,
            RoadCategory::Rural => 60.0,
        }
    }

    /// All categories, useful for iteration in tests and generators.
    pub const ALL: [RoadCategory; 4] = [
        RoadCategory::Highway,
        RoadCategory::Arterial,
        RoadCategory::Residential,
        RoadCategory::Rural,
    ];

    /// Stable single-byte tag used by the text serialisation format.
    pub fn tag(self) -> u8 {
        match self {
            RoadCategory::Highway => b'H',
            RoadCategory::Arterial => b'A',
            RoadCategory::Residential => b'R',
            RoadCategory::Rural => b'U',
        }
    }

    /// Inverse of [`RoadCategory::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            b'H' => Some(RoadCategory::Highway),
            b'A' => Some(RoadCategory::Arterial),
            b'R' => Some(RoadCategory::Residential),
            b'U' => Some(RoadCategory::Rural),
            _ => None,
        }
    }
}

/// Immutable attributes of a directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeAttrs {
    /// Length of the edge in metres. Always positive and finite.
    pub length_m: f64,
    /// Free-flow speed in km/h. Always positive and finite.
    pub speed_kmh: f64,
    /// Functional road class.
    pub category: RoadCategory,
}

impl EdgeAttrs {
    /// Creates attributes with the category's default speed.
    pub fn with_default_speed(length_m: f64, category: RoadCategory) -> Self {
        EdgeAttrs {
            length_m,
            speed_kmh: category.default_speed_kmh(),
            category,
        }
    }

    /// Free-flow travel time over the edge, in seconds.
    #[inline]
    pub fn travel_time_s(&self) -> f64 {
        self.length_m / (self.speed_kmh / 3.6)
    }
}

/// One directed edge: tail, head and attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Tail (source) vertex.
    pub from: VertexId,
    /// Head (target) vertex.
    pub to: VertexId,
    /// Edge attributes.
    pub attrs: EdgeAttrs,
}

/// The cost model used by routing queries.
///
/// `Custom` allows callers (notably the trajectory simulator's hidden driver
/// preferences) to route on arbitrary per-edge costs without rebuilding the
/// graph.
#[derive(Debug, Clone, Copy)]
pub enum CostModel<'a> {
    /// Cost = edge length in metres (shortest path).
    Length,
    /// Cost = free-flow travel time in seconds (fastest path).
    TravelTime,
    /// Cost = `costs[edge.index()]`; the slice must have one positive,
    /// finite entry per edge.
    Custom(&'a [f64]),
}

impl CostModel<'_> {
    /// Cost of traversing edge `e` in graph `g`.
    #[inline]
    pub fn edge_cost(&self, g: &Graph, e: EdgeId) -> f64 {
        match self {
            CostModel::Length => g.edge(e).attrs.length_m,
            CostModel::TravelTime => g.edge(e).attrs.travel_time_s(),
            CostModel::Custom(costs) => costs[e.index()],
        }
    }

    /// The *nominal* lower bound on cost-per-metre of travelled length:
    /// exactly 1 for `Length`, `1 / v_max` for `TravelTime`, 0 (unknown)
    /// for `Custom`.
    ///
    /// This bound is only admissible as an A* heuristic rate when every
    /// edge's length covers its straight-line span — true for this
    /// crate's generators, but not guaranteed for arbitrary
    /// [`crate::builder::GraphBuilder`] input. The routing layer
    /// therefore uses [`crate::algo::engine::safe_heuristic_bound`]
    /// (per-edge `cost / span` minimum) instead; prefer that for any
    /// heuristic work.
    pub fn min_cost_per_meter(&self, g: &Graph) -> f64 {
        match self {
            CostModel::Length => 1.0,
            CostModel::TravelTime => {
                // The O(E) fold over edge speeds is cached on the graph
                // (`Graph::max_speed_kmh`, maintained by the builder and
                // the speed mutation entry points), so this is O(1).
                let vmax = g.max_speed_kmh.max(1e-9);
                1.0 / (vmax / 3.6)
            }
            CostModel::Custom(_) => 0.0,
        }
    }
}

/// Immutable CSR road network.
///
/// Construct with [`crate::builder::GraphBuilder`] or one of the
/// [`crate::generators`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) coords: Vec<Point>,
    // Outgoing CSR.
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<VertexId>,
    pub(crate) out_edge_ids: Vec<EdgeId>,
    // Incoming CSR.
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<VertexId>,
    pub(crate) in_edge_ids: Vec<EdgeId>,
    // Edge records, indexed by EdgeId.
    pub(crate) edge_records: Vec<EdgeRecord>,
    /// Bumped on every in-place weight mutation (see
    /// [`Graph::set_edge_speed`]). Derived indexes record the epoch they
    /// were built against so the query layer can refuse to pair a mutated
    /// graph with a stale index. Freshly built and deserialised graphs
    /// start at epoch 0.
    pub(crate) weights_epoch: u64,
    /// Cached `max` over all edge speeds (km/h), `f64::MIN` for an
    /// edge-free graph — kept exact by the builder and by
    /// [`Graph::set_edge_speed`] / [`Graph::set_edge_speeds`] so
    /// [`CostModel::min_cost_per_meter`] needn't fold over every edge
    /// per call. `f64::max` folds are order-independent over finite
    /// floats, so the cache is always bit-identical to a fresh fold.
    pub(crate) max_speed_kmh: f64,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_records.len()
    }

    /// Planar coordinates of a vertex.
    #[inline]
    pub fn coord(&self, v: VertexId) -> Point {
        self.coords[v.index()]
    }

    /// All vertex coordinates, indexed by vertex id.
    #[inline]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// The record of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRecord {
        &self.edge_records[e.index()]
    }

    /// Iterator over all edge records in `EdgeId` order.
    pub fn edges(&self) -> impl Iterator<Item = &EdgeRecord> + '_ {
        self.edge_records.iter()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.coords.len() as u32).map(VertexId)
    }

    /// Outgoing neighbours of `v` as `(head, edge)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        self.out_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.out_edge_ids[lo..hi].iter().copied())
    }

    /// Incoming neighbours of `v` as `(tail, edge)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        self.in_sources[lo..hi]
            .iter()
            .copied()
            .zip(self.in_edge_ids[lo..hi].iter().copied())
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Finds the edge from `from` to `to`, if the vertices are adjacent.
    /// When parallel edges exist the one with the smallest cost under
    /// `CostModel::Length` is returned.
    pub fn find_edge(&self, from: VertexId, to: VertexId) -> Option<EdgeId> {
        let mut best: Option<EdgeId> = None;
        for (head, e) in self.out_edges(from) {
            if head == to {
                match best {
                    None => best = Some(e),
                    Some(b) if self.edge(e).attrs.length_m < self.edge(b).attrs.length_m => {
                        best = Some(e)
                    }
                    _ => {}
                }
            }
        }
        best
    }

    /// Sum of all edge lengths, in metres.
    pub fn total_length_m(&self) -> f64 {
        self.edge_records.iter().map(|e| e.attrs.length_m).sum()
    }

    /// Straight-line distance between two vertices, in metres.
    #[inline]
    pub fn euclidean(&self, a: VertexId, b: VertexId) -> f64 {
        self.coords[a.index()].distance(&self.coords[b.index()])
    }

    /// The current weights epoch: 0 for a freshly built or loaded graph,
    /// bumped once per mutation call ([`Graph::set_edge_speed`] /
    /// [`Graph::set_edge_speeds`]) **that actually changes a stored
    /// (post-clamp) speed** — a redundant telemetry echo leaves the
    /// epoch, and therefore every derived index, untouched.
    ///
    /// Derived indexes ([`crate::algo::LandmarkTable`],
    /// [`crate::algo::ContractionHierarchy`], [`crate::algo::cch::Cch`])
    /// record the epoch of the graph they were built against;
    /// [`crate::algo::engine::QueryEngine`] skips any index whose epoch no
    /// longer matches, falling back to slower exact searches instead of
    /// silently serving stale weights.
    #[inline]
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// Sets the free-flow speed of edge `e` (km/h) and bumps the weights
    /// epoch. The speed must be positive and finite; it is clamped into
    /// `[`[`MIN_EDGE_SPEED_KMH`]`, `[`MAX_EDGE_SPEED_KMH`]`]` so a zero-ish
    /// (denormal) telemetry reading can never mint an infinite travel
    /// time that a later index build or CCH customization would then
    /// propagate through every shortcut above it.
    ///
    /// This is the live-traffic entry point: topology, lengths and road
    /// categories stay fixed, only the travel-time metric moves. Rebuild
    /// or re-customize metric-dependent indexes afterwards (a
    /// [`crate::algo::cch::CchTopology`] re-customizes in milliseconds;
    /// [`crate::algo::cch::Cch::apply_delta`] chases just the change).
    ///
    /// Returns whether the stored speed actually moved. A no-op update
    /// (the post-clamp speed is bitwise what the edge already carries)
    /// does **not** bump the weights epoch: a redundant telemetry echo
    /// must not un-mount the frozen graph or mark ALT/CH/CCH stale for
    /// nothing.
    pub fn set_edge_speed(&mut self, e: EdgeId, speed_kmh: f64) -> bool {
        let new = clamp_edge_speed(speed_kmh);
        let old = self.edge_records[e.index()].attrs.speed_kmh;
        if new.to_bits() == old.to_bits() {
            return false;
        }
        self.edge_records[e.index()].attrs.speed_kmh = new;
        if new >= self.max_speed_kmh {
            self.max_speed_kmh = new;
        } else if old == self.max_speed_kmh {
            // The (possibly unique) maximum just dropped; refold.
            self.max_speed_kmh = self.recompute_max_speed();
        }
        self.weights_epoch += 1;
        true
    }

    /// Batch form of [`Graph::set_edge_speed`]: applies every
    /// `(edge, speed_kmh)` pair, bumping the weights epoch once for the
    /// whole batch — and only when at least one stored speed actually
    /// changed. Every speed must be positive and finite; each is clamped
    /// like [`Graph::set_edge_speed`] clamps.
    ///
    /// Returns the changed-edge delta: the `(edge, post-clamp speed)`
    /// pairs whose stored speed moved, in application order (an edge
    /// updated twice appears once per effective change — later entries
    /// win, the contract every sparse consumer
    /// ([`crate::algo::cch::Cch::apply_delta`],
    /// [`crate::algo::cch::Cch::apply_weight_delta`]) honours). An empty
    /// delta means the batch was a pure echo and no index was
    /// invalidated.
    pub fn set_edge_speeds(&mut self, updates: &[(EdgeId, f64)]) -> Vec<(EdgeId, f64)> {
        let mut delta: Vec<(EdgeId, f64)> = Vec::new();
        if updates.is_empty() {
            return delta;
        }
        let mut max_may_have_dropped = false;
        for &(e, speed_kmh) in updates {
            let new = clamp_edge_speed(speed_kmh);
            let old = self.edge_records[e.index()].attrs.speed_kmh;
            if new.to_bits() == old.to_bits() {
                continue;
            }
            self.edge_records[e.index()].attrs.speed_kmh = new;
            if new >= self.max_speed_kmh {
                self.max_speed_kmh = new;
            } else if old == self.max_speed_kmh {
                max_may_have_dropped = true;
            }
            delta.push((e, new));
        }
        if max_may_have_dropped {
            self.max_speed_kmh = self.recompute_max_speed();
        }
        if !delta.is_empty() {
            self.weights_epoch += 1;
        }
        delta
    }

    /// Exact `max` fold over every edge speed — the slow path behind the
    /// [`Graph::max_speed_kmh`] cache, taken only when the current
    /// maximum holder's speed is lowered.
    fn recompute_max_speed(&self) -> f64 {
        self.edge_records
            .iter()
            .map(|e| e.attrs.speed_kmh)
            .fold(f64::MIN, f64::max)
    }

    /// Cached maximum free-flow speed over all edges, km/h (`f64::MIN`
    /// when the graph has no edges). Maintained by the builder and the
    /// speed mutation entry points; always equal to a fresh fold over
    /// [`Graph::edges`].
    #[inline]
    pub fn max_speed_kmh(&self) -> f64 {
        self.max_speed_kmh
    }

    /// Returns the vertex ids belonging to the largest strongly connected
    /// component, in ascending order.
    ///
    /// Used by the generators to guarantee that every routing query has an
    /// answer. Iterative Tarjan so deep graphs cannot overflow the stack.
    pub fn largest_scc(&self) -> Vec<VertexId> {
        let n = self.vertex_count();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut best: Vec<VertexId> = Vec::new();

        // Explicit DFS state: (vertex, iterator position over out-edges).
        let mut call_stack: Vec<(u32, u32)> = Vec::new();

        for start in 0..n as u32 {
            if index[start as usize] != UNVISITED {
                continue;
            }
            call_stack.push((start, 0));
            index[start as usize] = next_index;
            lowlink[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
                let lo = self.out_offsets[v as usize];
                let hi = self.out_offsets[v as usize + 1];
                let pos = lo + *child_pos;
                if pos < hi {
                    *child_pos += 1;
                    let w = self.out_targets[pos as usize].0;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        // v is the root of an SCC; pop it off.
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            on_stack[w as usize] = false;
                            component.push(VertexId(w));
                            if w == v {
                                break;
                            }
                        }
                        if component.len() > best.len() {
                            best = component;
                        }
                    }
                }
            }
        }
        best.sort_unstable();
        best
    }
}

/// Approximate edge betweenness ("popularity"): counts how often each edge
/// lies on a shortest-path tree from `samples` sampled roots, normalised to
/// `[0, 1]`. High values mark the network's major corridors.
///
/// Real drivers concentrate on such corridors, and node2vec embeddings
/// encode exactly this kind of topological centrality — the trajectory
/// simulator uses this to give frozen-embedding models (PR-A1) a fair,
/// realistic learnable signal.
pub fn edge_popularity(g: &Graph, samples: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = g.vertex_count();
    let mut counts = vec![0.0f64; g.edge_count()];
    if n == 0 || g.edge_count() == 0 {
        return counts;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = crate::algo::engine::QueryEngine::new(g);
    for _ in 0..samples.max(1) {
        let root = VertexId(rng.gen_range(0..n as u32));
        let tree = engine.one_to_all(root, CostModel::Length);
        // Each vertex contributes its tree edge; edges nearer the root are
        // shared by more descendants, which we approximate by accumulating
        // subtree sizes bottom-up through repeated parent walks capped for
        // O(n · depth) worst cases on degenerate graphs.
        for v in g.vertices() {
            let mut cur = v;
            let mut hops = 0usize;
            while let Some((parent, e)) = tree.parent_of(cur) {
                counts[e.index()] += 1.0;
                cur = parent;
                hops += 1;
                if hops > n {
                    break; // defensive: cannot happen on a valid tree
                }
            }
        }
    }
    let max = counts.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for c in counts.iter_mut() {
            *c /= max;
        }
    }
    counts
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny() -> Graph {
        // 0 -> 1 -> 2, 0 -> 2, 2 -> 0 (cycle through all).
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        let v2 = b.add_vertex(Point::new(200.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential),
        )
        .unwrap();
        b.add_edge(
            v1,
            v2,
            EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential),
        )
        .unwrap();
        b.add_edge(
            v0,
            v2,
            EdgeAttrs::with_default_speed(250.0, RoadCategory::Residential),
        )
        .unwrap();
        b.add_edge(
            v2,
            v0,
            EdgeAttrs::with_default_speed(200.0, RoadCategory::Arterial),
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = tiny();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.in_degree(VertexId(2)), 2);
        assert_eq!(g.out_degree(VertexId(1)), 1);
    }

    #[test]
    fn adjacency_is_consistent_between_csr_sides() {
        let g = tiny();
        for v in g.vertices() {
            for (head, e) in g.out_edges(v) {
                assert_eq!(g.edge(e).from, v);
                assert_eq!(g.edge(e).to, head);
                // The reverse CSR must contain the same edge.
                assert!(g.in_edges(head).any(|(tail, e2)| tail == v && e2 == e));
            }
        }
    }

    #[test]
    fn find_edge_picks_shortest_parallel() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(10.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::with_default_speed(500.0, RoadCategory::Rural),
        )
        .unwrap();
        let short = b
            .add_edge(
                v0,
                v1,
                EdgeAttrs::with_default_speed(10.0, RoadCategory::Rural),
            )
            .unwrap();
        let g = b.build();
        assert_eq!(g.find_edge(v0, v1), Some(short));
        assert_eq!(g.find_edge(v1, v0), None);
    }

    #[test]
    fn travel_time_from_speed() {
        let attrs = EdgeAttrs {
            length_m: 1000.0,
            speed_kmh: 36.0,
            category: RoadCategory::Rural,
        };
        // 36 km/h = 10 m/s => 100 seconds for a kilometre.
        assert!((attrs.travel_time_s() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cost_models() {
        let g = tiny();
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(CostModel::Length.edge_cost(&g, e), 100.0);
        let tt = CostModel::TravelTime.edge_cost(&g, e);
        assert!((tt - 100.0 / (45.0 / 3.6)).abs() < 1e-9);
        let custom = vec![7.0; g.edge_count()];
        assert_eq!(CostModel::Custom(&custom).edge_cost(&g, e), 7.0);
    }

    #[test]
    fn min_cost_per_meter_bounds() {
        let g = tiny();
        assert_eq!(CostModel::Length.min_cost_per_meter(&g), 1.0);
        // Fastest edge is the arterial at 70 km/h.
        let expect = 1.0 / (70.0 / 3.6);
        assert!((CostModel::TravelTime.min_cost_per_meter(&g) - expect).abs() < 1e-12);
        assert_eq!(CostModel::Custom(&[]).min_cost_per_meter(&g), 0.0);
    }

    #[test]
    fn scc_of_cyclic_graph_is_everything() {
        let g = tiny();
        let scc = g.largest_scc();
        assert_eq!(scc, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn scc_excludes_dangling_vertex() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(2.0, 0.0));
        let dangling = b.add_vertex(Point::new(9.0, 9.0));
        for (a, z) in [(v0, v1), (v1, v2), (v2, v0), (v0, dangling)] {
            b.add_edge(
                a,
                z,
                EdgeAttrs::with_default_speed(10.0, RoadCategory::Rural),
            )
            .unwrap();
        }
        let g = b.build();
        let scc = g.largest_scc();
        assert_eq!(scc, vec![v0, v1, v2]);
    }

    #[test]
    fn speed_updates_are_clamped_into_the_finite_band() {
        let mut g = tiny();
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        // A denormal speed passes the positivity check but would push
        // `length / (speed / 3.6)` to infinity; the clamp must keep every
        // derived travel time finite.
        g.set_edge_speed(e, 1e-308);
        assert_eq!(g.edge(e).attrs.speed_kmh, MIN_EDGE_SPEED_KMH);
        assert!(g.edge(e).attrs.travel_time_s().is_finite());
        g.set_edge_speeds(&[(e, 1e9)]);
        assert_eq!(g.edge(e).attrs.speed_kmh, MAX_EDGE_SPEED_KMH);
        assert!(g.edge(e).attrs.travel_time_s().is_finite());
        // In-band speeds pass through untouched.
        g.set_edge_speed(e, 42.5);
        assert_eq!(g.edge(e).attrs.speed_kmh, 42.5);
    }

    #[test]
    fn max_speed_cache_tracks_mutation() {
        let fresh_fold = |g: &Graph| {
            g.edges()
                .map(|e| e.attrs.speed_kmh)
                .fold(f64::MIN, f64::max)
        };
        let mut g = tiny();
        // Builder seeds the cache: fastest edge is the arterial at 70.
        assert_eq!(g.max_speed_kmh(), 70.0);
        let slow = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let fast = g.find_edge(VertexId(2), VertexId(0)).unwrap();
        // Raising any edge above the max moves the cache up.
        g.set_edge_speed(slow, 120.0);
        assert_eq!(g.max_speed_kmh(), 120.0);
        assert_eq!(
            CostModel::TravelTime.min_cost_per_meter(&g),
            1.0 / (120.0 / 3.6)
        );
        // Lowering the unique max holder refolds down to the runner-up.
        g.set_edge_speed(slow, 30.0);
        assert_eq!(g.max_speed_kmh(), 70.0);
        // Batch updates maintain the cache too, including a dropped max.
        g.set_edge_speeds(&[(fast, 20.0), (slow, 55.0)]);
        assert_eq!(g.max_speed_kmh(), fresh_fold(&g));
        assert_eq!(g.max_speed_kmh(), 55.0);
        g.set_edge_speeds(&[(slow, 200.0)]);
        assert_eq!(g.max_speed_kmh(), 200.0);
        // Out-of-band inputs are clamped before entering the cache.
        g.set_edge_speed(slow, 1e9);
        assert_eq!(g.max_speed_kmh(), MAX_EDGE_SPEED_KMH);
        assert_eq!(g.max_speed_kmh(), fresh_fold(&g));
    }

    #[test]
    fn noop_speed_updates_do_not_bump_the_weights_epoch() {
        let mut g = tiny();
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let base = g.edge(e).attrs.speed_kmh;
        assert_eq!(g.weights_epoch(), 0);
        // Regression: a redundant telemetry echo used to bump the epoch,
        // un-mounting the frozen graph and marking every ALT/CH/CCH
        // index stale for nothing.
        assert!(!g.set_edge_speed(e, base));
        assert_eq!(g.weights_epoch(), 0);
        assert!(g.set_edge_speeds(&[(e, base)]).is_empty());
        assert_eq!(g.weights_epoch(), 0);
        // A speed that only differs pre-clamp is still a no-op: the
        // stored post-clamp value decides.
        assert!(g.set_edge_speed(e, 1e-308));
        assert_eq!(g.weights_epoch(), 1);
        assert!(!g.set_edge_speed(e, 1e-300));
        assert!(g
            .set_edge_speeds(&[(e, MIN_EDGE_SPEED_KMH / 2.0)])
            .is_empty());
        assert_eq!(g.weights_epoch(), 1);
        // A real change bumps once and reports the post-clamp delta, in
        // application order with an echo filtered out.
        let delta = g.set_edge_speeds(&[(e, MIN_EDGE_SPEED_KMH), (e, 42.5)]);
        assert_eq!(delta, vec![(e, 42.5)]);
        assert_eq!(g.weights_epoch(), 2);
        let delta = g.set_edge_speeds(&[(e, 50.0), (e, 60.0)]);
        assert_eq!(delta, vec![(e, 50.0), (e, 60.0)], "later entries win");
        assert_eq!(g.weights_epoch(), 3);
    }

    #[test]
    fn empty_graph_max_speed_matches_old_fold() {
        let g = GraphBuilder::new().build();
        // The uncached code folded to `f64::MIN` and clamped at 1e-9;
        // the cache must preserve that exact value.
        assert_eq!(g.max_speed_kmh(), f64::MIN);
        assert_eq!(
            CostModel::TravelTime.min_cost_per_meter(&g),
            1.0 / (1e-9 / 3.6)
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_speed_update_panics() {
        let mut g = tiny();
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        g.set_edge_speed(e, 0.0);
    }

    #[test]
    fn category_tags_roundtrip() {
        for cat in RoadCategory::ALL {
            assert_eq!(RoadCategory::from_tag(cat.tag()), Some(cat));
        }
        assert_eq!(RoadCategory::from_tag(b'?'), None);
    }
}
