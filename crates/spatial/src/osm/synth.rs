//! Deterministic synthetic OSM: an XML writer and a city generator.
//!
//! [`write_osm_xml`] serialises any [`OsmData`] back into OSM XML
//! (entities escaped, stable formatting), which lets property tests
//! round-trip arbitrary — including adversarial — documents through the
//! parser, and lets the checked-in fixture extract be regenerated
//! byte-identically (`import_osm --gen-fixture`).
//!
//! [`synthetic_city`] builds a small but realistically messy city the
//! importer has to work for: a jittered residential grid with curvy
//! degree-2 chain segments, a primary ring road, a one-way motorway
//! bypass with link ramps, a one-way couplet (one of them tagged
//! `oneway=-1` with reversed refs), a roundabout, mixed `maxspeed`
//! formats, unroutable ways (footpaths, buildings), a disconnected
//! fragment for the SCC prune to remove, and one way referencing a
//! missing node for the importer to skip.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{OsmData, OsmNode, OsmWay};
use crate::geo::LocalProjection;
use crate::geometry::Point;

/// Escapes an XML attribute value (the five predefined entities).
fn escape(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
}

/// Serialises `data` as an OSM XML document. Deterministic: the same
/// input always produces the same bytes (coordinates at fixed 7-decimal
/// precision, the resolution of OSM itself).
pub fn write_osm_xml(data: &OsmData) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<osm version=\"0.6\" generator=\"pathrank-synth\">\n");
    for n in &data.nodes {
        let _ = writeln!(
            out,
            "  <node id=\"{}\" lat=\"{:.7}\" lon=\"{:.7}\"/>",
            n.id, n.lat, n.lon
        );
    }
    for w in &data.ways {
        let _ = writeln!(out, "  <way id=\"{}\">", w.id);
        for r in &w.refs {
            let _ = writeln!(out, "    <nd ref=\"{r}\"/>");
        }
        for (k, v) in &w.tags {
            out.push_str("    <tag k=\"");
            escape(k, &mut out);
            out.push_str("\" v=\"");
            escape(v, &mut out);
            out.push_str("\"/>\n");
        }
        out.push_str("  </way>\n");
    }
    out.push_str("</osm>\n");
    out
}

/// Knobs for [`synthetic_city`].
#[derive(Debug, Clone)]
pub struct SynthCityConfig {
    /// Street-grid intersections along the x axis.
    pub cols: usize,
    /// Street-grid intersections along the y axis.
    pub rows: usize,
    /// Block edge length in metres.
    pub block_m: f64,
    /// Curve points inserted between adjacent intersections (pure
    /// degree-2 chain vertices the importer should contract away).
    pub curve_points: usize,
    /// Centre of the city (latitude, longitude) — defaults to Aalborg.
    pub centre: (f64, f64),
}

impl Default for SynthCityConfig {
    fn default() -> Self {
        SynthCityConfig {
            cols: 8,
            rows: 6,
            block_m: 160.0,
            curve_points: 2,
            centre: (57.0488, 9.9217), // Aalborg, Denmark
        }
    }
}

/// Accumulates nodes/ways in a local planar frame and converts to
/// lat/lon on the way out.
struct CityBuilder {
    data: OsmData,
    rng: StdRng,
    proj: LocalProjection,
    next_node: i64,
    next_way: i64,
    /// Planar offset so the grid is centred on the projection origin.
    centre_xy: (f64, f64),
}

impl CityBuilder {
    fn node(&mut self, x: f64, y: f64, jitter: f64) -> i64 {
        let id = self.next_node;
        self.next_node += 1;
        let jx = self.rng.gen_range(-jitter..=jitter);
        let jy = self.rng.gen_range(-jitter..=jitter);
        let p = Point::new(x - self.centre_xy.0 + jx, y - self.centre_xy.1 + jy);
        let (lat, lon) = self.proj.unproject(p);
        self.data.nodes.push(OsmNode { id, lat, lon });
        id
    }

    fn way(&mut self, refs: Vec<i64>, tags: &[(&str, &str)]) {
        let id = self.next_way;
        self.next_way += 1;
        self.data.ways.push(OsmWay {
            id,
            refs,
            tags: tags
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Interior curve nodes between `a` and `b`, bowing perpendicular to
    /// the segment (parabolic, zero at the endpoints).
    fn curve(&mut self, a: (f64, f64), b: (f64, f64), points: usize) -> Vec<i64> {
        let mut refs = Vec::with_capacity(points);
        let (dx, dy) = (b.0 - a.0, b.1 - a.1);
        let len = (dx * dx + dy * dy).sqrt().max(1e-9);
        let (nx, ny) = (-dy / len, dx / len);
        let bow = self.rng.gen_range(-0.12..=0.12) * len;
        for k in 1..=points {
            let t = k as f64 / (points + 1) as f64;
            let off = bow * 4.0 * t * (1.0 - t);
            refs.push(self.node(a.0 + dx * t + nx * off, a.1 + dy * t + ny * off, 0.0));
        }
        refs
    }
}

/// Generates a deterministic synthetic city extract. See the module
/// docs for what it contains; the same `(cfg, seed)` always produces an
/// identical [`OsmData`] (and therefore, through [`write_osm_xml`],
/// identical bytes).
// Index loops over `grid` interleave reads with `CityBuilder` pushes;
// iterator forms would fight the borrow checker for no clarity gain.
#[allow(clippy::needless_range_loop)]
pub fn synthetic_city(cfg: &SynthCityConfig, seed: u64) -> OsmData {
    let w = (cfg.cols - 1) as f64 * cfg.block_m;
    let h = (cfg.rows - 1) as f64 * cfg.block_m;
    let mut b = CityBuilder {
        data: OsmData::default(),
        rng: StdRng::seed_from_u64(seed),
        proj: LocalProjection::new(cfg.centre.0, cfg.centre.1),
        next_node: 1,
        next_way: 1000,
        centre_xy: (w / 2.0, h / 2.0),
    };
    let xy = |r: usize, c: usize| (c as f64 * cfg.block_m, r as f64 * cfg.block_m);

    // Grid intersections.
    let mut grid = vec![vec![0i64; cfg.cols]; cfg.rows];
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let (x, y) = xy(r, c);
            grid[r][c] = b.node(x, y, cfg.block_m * 0.08);
        }
    }

    let residential_speeds = ["30", "40", "50 km/h", "30 mph", ""];

    // Horizontal streets: one way per row, interior curve nodes between
    // intersections. Rows 1 and 2 form a one-way couplet.
    for r in 0..cfg.rows {
        let mut refs = Vec::new();
        for c in 0..cfg.cols {
            refs.push(grid[r][c]);
            if c + 1 < cfg.cols {
                refs.extend(b.curve(xy(r, c), xy(r, c + 1), cfg.curve_points));
            }
        }
        let speed = residential_speeds[r % residential_speeds.len()];
        let mut tags: Vec<(&str, &str)> = vec![("highway", "residential"), ("name", "Row Street")];
        if !speed.is_empty() {
            tags.push(("maxspeed", speed));
        }
        if cfg.rows >= 4 && r == 1 {
            tags.push(("oneway", "yes"));
        }
        if cfg.rows >= 4 && r == 2 {
            // The couplet's partner runs the other way, tagged with the
            // reversed-geometry convention.
            refs.reverse();
            tags.push(("oneway", "-1"));
        }
        b.way(refs, &tags);
    }

    // Vertical streets (tertiary every third column, residential
    // otherwise).
    for c in 0..cfg.cols {
        let mut refs = Vec::new();
        for r in 0..cfg.rows {
            refs.push(grid[r][c]);
            if r + 1 < cfg.rows {
                refs.extend(b.curve(xy(r, c), xy(r + 1, c), cfg.curve_points));
            }
        }
        let class = if c % 3 == 0 {
            "tertiary"
        } else {
            "residential"
        };
        b.way(refs, &[("highway", class), ("name", "Column Street")]);
    }

    // Primary ring road just outside the grid, anchored to the four
    // corner intersections through short secondary connectors.
    let margin = cfg.block_m * 0.9;
    let ring_pts = [
        (-margin, -margin),
        (w / 2.0, -margin * 1.2),
        (w + margin, -margin),
        (w + margin * 1.2, h / 2.0),
        (w + margin, h + margin),
        (w / 2.0, h + margin * 1.2),
        (-margin, h + margin),
        (-margin * 1.2, h / 2.0),
    ];
    let ring_ids: Vec<i64> = ring_pts
        .iter()
        .map(|&(x, y)| b.node(x, y, cfg.block_m * 0.05))
        .collect();
    let mut ring_refs = ring_ids.clone();
    ring_refs.push(ring_ids[0]);
    b.way(
        ring_refs,
        &[
            ("highway", "primary"),
            ("maxspeed", "70"),
            ("name", "Ring Road"),
        ],
    );
    let corners = [
        (0usize, 0usize, 0usize),
        (0, cfg.cols - 1, 2),
        (cfg.rows - 1, cfg.cols - 1, 4),
        (cfg.rows - 1, 0, 6),
    ];
    for &(r, c, ring_idx) in &corners {
        b.way(
            vec![grid[r][c], ring_ids[ring_idx]],
            &[("highway", "secondary")],
        );
    }

    // One-way motorway bypass south of the ring with link ramps at both
    // ends (oneway-by-default classes, no explicit tag).
    let my = -margin - cfg.block_m * 1.4;
    let bypass_w: Vec<i64> = (0..4)
        .map(|k| b.node(w * k as f64 / 3.0, my, 0.0))
        .collect();
    let bypass_e: Vec<i64> = (0..4)
        .map(|k| b.node(w * k as f64 / 3.0, my - 40.0, 0.0))
        .collect();
    b.way(
        bypass_w.clone(),
        &[("highway", "motorway"), ("maxspeed", "110"), ("ref", "E45")],
    );
    let mut east: Vec<i64> = bypass_e.clone();
    east.reverse();
    b.way(
        east,
        &[("highway", "motorway"), ("maxspeed", "110"), ("ref", "E45")],
    );
    // Ramps connect both carriageways to the ring's south vertex.
    let south_ring = ring_ids[1];
    b.way(
        vec![bypass_w[3], south_ring],
        &[("highway", "motorway_link")],
    );
    b.way(
        vec![south_ring, bypass_w[0]],
        &[("highway", "motorway_link")],
    );
    b.way(
        vec![bypass_e[0], south_ring],
        &[("highway", "motorway_link")],
    );
    b.way(
        vec![south_ring, bypass_e[3]],
        &[("highway", "motorway_link")],
    );

    // A roundabout attached east of the grid via two unclassified stubs.
    let (rx, ry) = (w + margin * 2.2, h * 0.35);
    let rr = cfg.block_m * 0.22;
    let round_ids: Vec<i64> = (0..6)
        .map(|k| {
            let a = std::f64::consts::TAU * k as f64 / 6.0;
            b.node(rx + rr * a.cos(), ry + rr * a.sin(), 0.0)
        })
        .collect();
    let mut round_refs = round_ids.clone();
    round_refs.push(round_ids[0]);
    b.way(
        round_refs,
        &[("highway", "tertiary"), ("junction", "roundabout")],
    );
    b.way(
        vec![ring_ids[3], round_ids[3]],
        &[("highway", "unclassified")],
    );
    b.way(
        vec![round_ids[0], grid[cfg.rows / 2][cfg.cols - 1]],
        &[("highway", "unclassified"), ("oneway", "no")],
    );

    // Unroutable extras the importer must skip: a footpath across the
    // park, a building outline, and a service alley (gated by config).
    let park_a = b.node(w * 0.3, h * 0.45, 0.0);
    let park_b = b.node(w * 0.55, h * 0.55, 0.0);
    b.way(
        vec![park_a, park_b],
        &[("highway", "footway"), ("name", "Kildeparken path")],
    );
    b.way(
        vec![grid[0][0], grid[0][1], grid[1][1], grid[1][0], grid[0][0]],
        &[("building", "yes")],
    );
    b.way(
        vec![grid[1][1], park_a],
        &[
            ("highway", "service"),
            ("name", "Alley & Co's \"yard\" <rear>"),
        ],
    );

    // A disconnected village fragment for the SCC prune.
    let vx = -margin - cfg.block_m * 3.0;
    let village: Vec<i64> = (0..3)
        .map(|k| b.node(vx, h + k as f64 * 90.0, 8.0))
        .collect();
    b.way(village, &[("highway", "residential")]);

    // One way referencing a node the extract does not contain — real
    // clipped extracts have these at their borders; the importer must
    // skip it (counted), never fail.
    b.way(
        vec![grid[0][0], 999_999_999],
        &[("highway", "residential"), ("note", "clipped at boundary")],
    );

    b.data
}

#[cfg(test)]
mod tests {
    use super::super::{import_osm, parse_osm_str, ImportConfig};
    use super::*;

    #[test]
    fn writer_escapes_and_round_trips() {
        let data = OsmData {
            nodes: vec![OsmNode {
                id: 7,
                lat: 57.05,
                lon: 9.92,
            }],
            ways: vec![OsmWay {
                id: 8,
                refs: vec![7, 7],
                tags: vec![("name".into(), "A&B <\"quoted\"> 'lane'".into())],
            }],
        };
        let xml = write_osm_xml(&data);
        let back = parse_osm_str(&xml).unwrap();
        assert_eq!(back.ways[0].tag("name"), Some("A&B <\"quoted\"> 'lane'"));
        assert_eq!(back.nodes[0].id, 7);
    }

    #[test]
    fn synthetic_city_is_deterministic() {
        let cfg = SynthCityConfig::default();
        let a = write_osm_xml(&synthetic_city(&cfg, 2020));
        let b = write_osm_xml(&synthetic_city(&cfg, 2020));
        assert_eq!(a, b);
        let c = write_osm_xml(&synthetic_city(&cfg, 2021));
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn synthetic_city_exercises_the_whole_importer() {
        let data = synthetic_city(&SynthCityConfig::default(), 2020);
        let xml = write_osm_xml(&data);
        let parsed = parse_osm_str(&xml).unwrap();
        let imported = import_osm(&parsed, &ImportConfig::default()).unwrap();
        let s = &imported.stats;
        assert!(s.skipped_non_highway >= 1, "building outline");
        assert!(s.skipped_unroutable_class >= 2, "footway + service");
        assert!(s.skipped_missing_nodes >= 1, "clipped way");
        assert!(
            s.oneway_ways >= 5,
            "couplet + motorways + ramps + roundabout"
        );
        assert!(
            s.scc_vertices < s.segment_vertices,
            "village fragment must be pruned"
        );
        assert!(
            s.final_vertices < s.scc_vertices,
            "curve chains must contract"
        );
        assert_eq!(
            imported.graph.largest_scc().len(),
            imported.graph.vertex_count()
        );
        assert!(s.highway_histogram.len() >= 5, "{:?}", s.highway_histogram);
    }

    #[test]
    fn write_then_parse_preserves_topology_and_tags() {
        let data = synthetic_city(&SynthCityConfig::default(), 7);
        let back = parse_osm_str(&write_osm_xml(&data)).unwrap();
        assert_eq!(back.ways, data.ways, "refs and tags must survive exactly");
        assert_eq!(back.nodes.len(), data.nodes.len());
        for (a, b) in back.nodes.iter().zip(&data.nodes) {
            assert_eq!(a.id, b.id);
            // Coordinates survive to the writer's 7-decimal precision.
            assert!((a.lat - b.lat).abs() < 1e-7);
            assert!((a.lon - b.lon).abs() < 1e-7);
        }
    }
}
