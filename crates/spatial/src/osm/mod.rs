//! Real road-network ingestion: raw OSM XML → routable, index-ready
//! [`Graph`]s.
//!
//! The paper's experiments run on a real OSM road network (Aalborg,
//! Denmark); this subsystem is what lets every index and pipeline in the
//! workspace run on such data instead of the synthetic
//! [`crate::generators`]. The pipeline is:
//!
//! 1. **Parse** ([`parse_osm_xml`]) — a dependency-free streaming XML
//!    pull-parser (the build environment has no registry access, so it
//!    is hand-rolled like the vendored crate stand-ins) extracts nodes
//!    (id, lat, lon) and ways (node refs + tags) into an [`OsmData`].
//!    Malformed input — truncation, mismatched tags, broken entities,
//!    out-of-range coordinates — is rejected with
//!    [`SpatialError::Parse`], never a panic.
//! 2. **Import** ([`import_osm`]) — filters ways by `highway` class
//!    ([`HIGHWAY_CLASSES`]), infers per-edge speeds from `maxspeed` with
//!    per-class defaults, expands `oneway`/reversed geometry into
//!    directed edges, projects lat/lon into local planar metres
//!    ([`crate::geo::LocalProjection`]) and computes
//!    [`crate::geo::haversine_m`] edge lengths, prunes to the largest
//!    strongly-connected component (every routing query has an answer),
//!    and contracts degree-2 chains into single edges — length and
//!    travel time preserved exactly, intermediate geometry retained for
//!    map matching. The result is an [`ImportedGraph`] whose
//!    [`Graph`] is ready for every existing index (ALT, CH,
//!    many-to-many, `EdgeIndex`).
//! 3. **Persist** — [`crate::io::write_imported_graph`] /
//!    [`crate::io::read_imported_graph`] round-trip the imported network
//!    (graph + projection origin + edge geometry) through a versioned
//!    text format, and [`crate::io::load_graph_auto`] sniffs raw XML,
//!    imported and plain graph files alike.
//!
//! [`synth::write_osm_xml`] and [`synth::synthetic_city`] close the
//! loop for testing: a deterministic synthetic-OSM writer and a city
//! generator with oneway couplets, motorway bypasses, roundabouts,
//! curvy degree-2 chains and disconnected fragments, so property tests
//! can generate adversarial inputs and the checked-in fixture extract
//! is reproducible.

mod import;
pub mod synth;
mod xml;

pub use import::{import_osm, ImportConfig, ImportStats, ImportedGraph};
pub use xml::{parse_osm_str, parse_osm_xml};

use crate::error::SpatialError;
use crate::graph::RoadCategory;

/// One OSM node: a WGS84 coordinate with an id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsmNode {
    /// OSM node id.
    pub id: i64,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// One OSM way: an ordered node-ref polyline plus its tags.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OsmWay {
    /// OSM way id.
    pub id: i64,
    /// Ordered node references.
    pub refs: Vec<i64>,
    /// `(key, value)` tags in document order.
    pub tags: Vec<(String, String)>,
}

impl OsmWay {
    /// The value of tag `key`, if present (first occurrence wins).
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed OSM extract: the raw material [`import_osm`] consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OsmData {
    /// All nodes, in document order.
    pub nodes: Vec<OsmNode>,
    /// All ways, in document order.
    pub ways: Vec<OsmWay>,
}

/// Routing-relevant properties of one `highway=*` class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HighwayClass {
    /// The OSM tag value (`"residential"`, `"motorway"`, …).
    pub name: &'static str,
    /// The [`RoadCategory`] the class maps to in the graph model.
    pub category: RoadCategory,
    /// Free-flow speed assumed when no parseable `maxspeed` is tagged,
    /// in km/h.
    pub default_speed_kmh: f64,
    /// Whether the class is one-way unless explicitly tagged otherwise
    /// (OSM convention for motorways and their ramps).
    pub oneway_by_default: bool,
    /// Whether the class is a minor access road, excluded unless
    /// [`ImportConfig::include_service_roads`] is set.
    pub service: bool,
}

/// The car-routable `highway=*` classes the importer understands, with
/// their category mapping and default speeds. Ways tagged with any other
/// `highway` value (footways, cycleways, paths, …) are skipped and
/// counted in [`ImportStats::skipped_unroutable_class`].
pub const HIGHWAY_CLASSES: &[HighwayClass] = &[
    hw("motorway", RoadCategory::Highway, 110.0, true, false),
    hw("motorway_link", RoadCategory::Highway, 60.0, true, false),
    hw("trunk", RoadCategory::Highway, 90.0, false, false),
    hw("trunk_link", RoadCategory::Highway, 50.0, false, false),
    hw("primary", RoadCategory::Arterial, 70.0, false, false),
    hw("primary_link", RoadCategory::Arterial, 45.0, false, false),
    hw("secondary", RoadCategory::Arterial, 60.0, false, false),
    hw("secondary_link", RoadCategory::Arterial, 45.0, false, false),
    hw("tertiary", RoadCategory::Residential, 55.0, false, false),
    hw(
        "tertiary_link",
        RoadCategory::Residential,
        40.0,
        false,
        false,
    ),
    hw(
        "unclassified",
        RoadCategory::Residential,
        50.0,
        false,
        false,
    ),
    hw("residential", RoadCategory::Residential, 40.0, false, false),
    hw(
        "living_street",
        RoadCategory::Residential,
        15.0,
        false,
        false,
    ),
    hw("road", RoadCategory::Residential, 40.0, false, false),
    hw("service", RoadCategory::Rural, 25.0, false, true),
    hw("track", RoadCategory::Rural, 20.0, false, true),
];

const fn hw(
    name: &'static str,
    category: RoadCategory,
    default_speed_kmh: f64,
    oneway_by_default: bool,
    service: bool,
) -> HighwayClass {
    HighwayClass {
        name,
        category,
        default_speed_kmh,
        oneway_by_default,
        service,
    }
}

/// Looks up the [`HighwayClass`] for a `highway=*` tag value.
pub fn highway_class(value: &str) -> Option<&'static HighwayClass> {
    HIGHWAY_CLASSES.iter().find(|c| c.name == value)
}

/// Parses an OSM `maxspeed` value into km/h. Handles plain numbers
/// (km/h by convention), explicit `km/h` / `kph` / `mph` units, and the
/// `walk` / `none` keywords; anything else (signal-controlled,
/// multi-valued, garbage) yields `None` and the importer falls back to
/// the highway class default. Zero and negative values are rejected
/// outright (`None`, not clamped): `maxspeed=0` is always a tagging
/// error, and letting it through — even clamped — would misrepresent a
/// live road as impassable. Positive results are clamped into
/// [1, 150] km/h so a denormal or absurd value can neither overflow a
/// travel time to infinity nor mint a teleport edge (the band sits
/// inside the graph-wide
/// [`MIN_EDGE_SPEED_KMH`](crate::graph::MIN_EDGE_SPEED_KMH)..=
/// [`MAX_EDGE_SPEED_KMH`](crate::graph::MAX_EDGE_SPEED_KMH) clamp every
/// edge speed passes through at build time).
pub fn parse_maxspeed_kmh(value: &str) -> Option<f64> {
    let v = value.trim();
    match v {
        "none" => return Some(130.0),
        "walk" => return Some(5.0),
        _ => {}
    }
    let (num, factor) = if let Some(s) = v.strip_suffix("mph") {
        (s, 1.609_344)
    } else if let Some(s) = v.strip_suffix("km/h") {
        (s, 1.0)
    } else if let Some(s) = v.strip_suffix("kph") {
        (s, 1.0)
    } else {
        (v, 1.0)
    };
    num.trim()
        .parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && *s > 0.0)
        .map(|s| (s * factor).clamp(1.0, 150.0))
}

/// The direction(s) in which a way may be traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WayDirection {
    /// Both directions (the default for ordinary streets).
    Both,
    /// Only in node-ref order.
    Forward,
    /// Only against node-ref order (`oneway=-1`).
    Backward,
}

/// Resolves a way's traversal direction from its `oneway` / `junction`
/// tags and its highway class (motorways and roundabouts are one-way by
/// convention unless explicitly tagged otherwise).
pub fn way_direction(way: &OsmWay, class: &HighwayClass) -> WayDirection {
    match way.tag("oneway") {
        Some("yes") | Some("true") | Some("1") => WayDirection::Forward,
        Some("-1") | Some("reverse") => WayDirection::Backward,
        Some("no") | Some("false") | Some("0") => WayDirection::Both,
        _ => {
            if class.oneway_by_default || way.tag("junction") == Some("roundabout") {
                WayDirection::Forward
            } else {
                WayDirection::Both
            }
        }
    }
}

/// Parses an OSM XML string and imports it in one step.
pub fn import_osm_str(s: &str, cfg: &ImportConfig) -> Result<ImportedGraph, SpatialError> {
    import_osm(&parse_osm_str(s)?, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highway_classes_cover_the_main_hierarchy() {
        for name in ["motorway", "primary", "residential", "service"] {
            assert!(highway_class(name).is_some(), "{name} missing");
        }
        assert!(highway_class("footway").is_none());
        assert!(highway_class("cycleway").is_none());
        assert!(highway_class("").is_none());
        // Motorways and their ramps are one-way by default; streets not.
        assert!(highway_class("motorway").unwrap().oneway_by_default);
        assert!(highway_class("motorway_link").unwrap().oneway_by_default);
        assert!(!highway_class("residential").unwrap().oneway_by_default);
    }

    #[test]
    fn maxspeed_parsing() {
        assert_eq!(parse_maxspeed_kmh("50"), Some(50.0));
        assert_eq!(parse_maxspeed_kmh(" 80 "), Some(80.0));
        assert_eq!(parse_maxspeed_kmh("50 km/h"), Some(50.0));
        assert_eq!(parse_maxspeed_kmh("60kph"), Some(60.0));
        let mph = parse_maxspeed_kmh("30 mph").unwrap();
        assert!((mph - 48.280_32).abs() < 1e-9, "{mph}");
        assert_eq!(parse_maxspeed_kmh("walk"), Some(5.0));
        assert_eq!(parse_maxspeed_kmh("none"), Some(130.0));
        // Garbage, multi-values and non-positive speeds fall back.
        for bad in ["", "signals", "50;30", "-10", "0", "NaN", "inf"] {
            assert_eq!(parse_maxspeed_kmh(bad), None, "{bad:?}");
        }
        // Clamped into a sane band.
        assert_eq!(parse_maxspeed_kmh("900"), Some(150.0));
        assert_eq!(parse_maxspeed_kmh("0.2"), Some(1.0));
        // Zero is rejected (tagging error), and a denormal — which would
        // overflow `travel_time_s` to infinity unclamped — is lifted to
        // the band floor, never passed through raw.
        assert_eq!(parse_maxspeed_kmh("0"), None);
        assert_eq!(parse_maxspeed_kmh("0.0"), None);
        assert_eq!(parse_maxspeed_kmh("-0"), None);
        assert_eq!(parse_maxspeed_kmh("5e-324"), Some(1.0));
        assert_eq!(parse_maxspeed_kmh("1e-308"), Some(1.0));
    }

    #[test]
    fn oneway_resolution() {
        let class = highway_class("residential").unwrap();
        let mut way = OsmWay {
            id: 1,
            refs: vec![1, 2],
            tags: vec![],
        };
        assert_eq!(way_direction(&way, class), WayDirection::Both);
        way.tags = vec![("oneway".into(), "yes".into())];
        assert_eq!(way_direction(&way, class), WayDirection::Forward);
        way.tags = vec![("oneway".into(), "-1".into())];
        assert_eq!(way_direction(&way, class), WayDirection::Backward);
        way.tags = vec![("oneway".into(), "no".into())];
        assert_eq!(way_direction(&way, class), WayDirection::Both);
        // Roundabouts imply oneway; an explicit tag overrides.
        way.tags = vec![("junction".into(), "roundabout".into())];
        assert_eq!(way_direction(&way, class), WayDirection::Forward);
        way.tags = vec![
            ("junction".into(), "roundabout".into()),
            ("oneway".into(), "no".into()),
        ];
        assert_eq!(way_direction(&way, class), WayDirection::Both);
        // Motorways default to oneway.
        let motorway = highway_class("motorway").unwrap();
        way.tags = vec![];
        assert_eq!(way_direction(&way, motorway), WayDirection::Forward);
        way.tags = vec![("oneway".into(), "no".into())];
        assert_eq!(way_direction(&way, motorway), WayDirection::Both);
    }
}
