//! OSM → [`Graph`] conversion: filtering, projection, SCC pruning and
//! degree-2 chain contraction.

use std::collections::HashMap;

use crate::builder::GraphBuilder;
use crate::error::SpatialError;
use crate::geo::{haversine_m, LocalProjection};
use crate::geometry::Point;
use crate::graph::{EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};

use super::{highway_class, parse_maxspeed_kmh, way_direction, OsmData, WayDirection};

/// Importer knobs. The defaults produce the graph every existing index
/// expects: car-routable classes only, strongly connected, chains
/// contracted.
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// Also keep `service` / `track` access roads (off by default: they
    /// multiply the vertex count without adding routing structure).
    pub include_service_roads: bool,
    /// Restrict the graph to its largest strongly-connected component so
    /// every query has an answer (on by default; the synthetic
    /// generators give the same guarantee).
    pub prune_to_largest_scc: bool,
    /// Contract degree-2 pass-through vertices into single edges, with
    /// length and travel time preserved exactly and the removed
    /// vertices' coordinates retained as intermediate edge geometry.
    pub contract_chains: bool,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            include_service_roads: false,
            prune_to_largest_scc: true,
            contract_chains: true,
        }
    }
}

/// What the importer did, stage by stage — printed by the `import_osm`
/// binary and asserted by the fixture tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImportStats {
    /// Nodes in the parsed extract.
    pub raw_nodes: usize,
    /// Ways in the parsed extract.
    pub raw_ways: usize,
    /// Ways kept as routable roads.
    pub kept_ways: usize,
    /// Kept ways that are one-way (either direction).
    pub oneway_ways: usize,
    /// Ways without a `highway` tag (buildings, land use, …).
    pub skipped_non_highway: usize,
    /// Ways with a `highway` value outside [`super::HIGHWAY_CLASSES`]
    /// (footways, cycleways, …) or an excluded service class.
    pub skipped_unroutable_class: usize,
    /// Ways dropped because a node ref is missing from the extract.
    pub skipped_missing_nodes: usize,
    /// Ways dropped for having fewer than two distinct nodes.
    pub skipped_degenerate: usize,
    /// `(highway value, count)` histogram over kept ways, most common
    /// first.
    pub highway_histogram: Vec<(String, usize)>,
    /// Vertex/edge counts of the raw segment graph (one edge per
    /// consecutive node pair).
    pub segment_vertices: usize,
    /// Edges in the raw segment graph.
    pub segment_edges: usize,
    /// Vertex/edge counts after the SCC prune.
    pub scc_vertices: usize,
    /// Edges after the SCC prune.
    pub scc_edges: usize,
    /// Final vertex count (after chain contraction).
    pub final_vertices: usize,
    /// Final edge count.
    pub final_edges: usize,
    /// Total directed edge length of the final graph, in km.
    pub total_km: f64,
}

/// An imported road network: the routable [`Graph`] plus everything the
/// planar model alone cannot carry — the projection that maps graph
/// coordinates back to WGS84 and the intermediate geometry chain
/// contraction folded into each edge (for map matching and rendering).
#[derive(Debug, Clone)]
pub struct ImportedGraph {
    /// The routable graph, in local planar metres.
    pub graph: Graph,
    /// Interior geometry per edge (endpoints excluded), aligned with
    /// edge ids. Empty for edges that never spanned a contracted vertex.
    pub edge_geometry: Vec<Vec<Point>>,
    /// The lat/lon ↔ planar mapping used at import time.
    pub projection: LocalProjection,
    /// Stage-by-stage import statistics.
    pub stats: ImportStats,
}

impl ImportedGraph {
    /// Full polyline of edge `e` (endpoints included), in planar metres.
    pub fn edge_polyline(&self, e: EdgeId) -> Vec<Point> {
        let rec = self.graph.edge(e);
        let mut pts = Vec::with_capacity(self.edge_geometry[e.index()].len() + 2);
        pts.push(self.graph.coord(rec.from));
        pts.extend_from_slice(&self.edge_geometry[e.index()]);
        pts.push(self.graph.coord(rec.to));
        pts
    }
}

/// A directed edge in the intermediate (pre-CSR) representation.
#[derive(Debug, Clone)]
struct RawEdge {
    from: u32,
    to: u32,
    length_m: f64,
    time_s: f64,
    category: RoadCategory,
    /// Interior points (endpoints excluded).
    geometry: Vec<Point>,
}

impl RawEdge {
    fn speed_kmh(&self) -> f64 {
        // Preserve travel time exactly: speed is derived, not stored.
        (self.length_m / self.time_s) * 3.6
    }
}

/// Converts a parsed OSM extract into a routable graph. See the module
/// docs for the pipeline; errors are [`SpatialError::Parse`] when the
/// extract contains no routable network at all.
pub fn import_osm(data: &OsmData, cfg: &ImportConfig) -> Result<ImportedGraph, SpatialError> {
    let mut stats = ImportStats {
        raw_nodes: data.nodes.len(),
        raw_ways: data.ways.len(),
        ..ImportStats::default()
    };

    let positions: HashMap<i64, (f64, f64)> =
        data.nodes.iter().map(|n| (n.id, (n.lat, n.lon))).collect();

    // Pass 1: filter ways, collect the used node set and the histogram.
    let mut kept: Vec<(&super::OsmWay, &'static super::HighwayClass)> = Vec::new();
    let mut histogram: HashMap<&str, usize> = HashMap::new();
    for way in &data.ways {
        let Some(value) = way.tag("highway") else {
            stats.skipped_non_highway += 1;
            continue;
        };
        let Some(class) = highway_class(value) else {
            stats.skipped_unroutable_class += 1;
            continue;
        };
        if class.service && !cfg.include_service_roads {
            stats.skipped_unroutable_class += 1;
            continue;
        }
        if way.refs.iter().any(|r| !positions.contains_key(r)) {
            stats.skipped_missing_nodes += 1;
            continue;
        }
        // Count *distinct consecutive* refs: a way needs at least one
        // traversable segment.
        let mut distinct = 1usize;
        for w in way.refs.windows(2) {
            if w[0] != w[1] {
                distinct += 1;
            }
        }
        if way.refs.is_empty() || distinct < 2 {
            stats.skipped_degenerate += 1;
            continue;
        }
        *histogram.entry(class.name).or_default() += 1;
        kept.push((way, class));
    }
    if kept.is_empty() {
        return Err(SpatialError::Parse(
            "extract contains no routable highway ways".into(),
        ));
    }
    let mut histogram: Vec<(String, usize)> = histogram
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    histogram.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    stats.kept_ways = kept.len();
    stats.highway_histogram = histogram;

    // Pass 2: number the used nodes and centre a projection on them.
    let mut vertex_of: HashMap<i64, u32> = HashMap::new();
    let mut lat_lon: Vec<(f64, f64)> = Vec::new();
    for (way, _) in &kept {
        for r in &way.refs {
            if let std::collections::hash_map::Entry::Vacant(e) = vertex_of.entry(*r) {
                e.insert(lat_lon.len() as u32);
                lat_lon.push(positions[r]);
            }
        }
    }
    let projection =
        LocalProjection::centred_on(lat_lon.iter().copied()).expect("kept ways have nodes");
    let coords: Vec<Point> = lat_lon
        .iter()
        .map(|&(la, lo)| projection.project(la, lo))
        .collect();

    // Pass 3: one directed edge per traversable consecutive node pair,
    // with haversine lengths and `maxspeed`-or-default speeds.
    let mut edges: Vec<RawEdge> = Vec::new();
    for (way, class) in &kept {
        let speed = way
            .tag("maxspeed")
            .and_then(parse_maxspeed_kmh)
            .unwrap_or(class.default_speed_kmh);
        let dir = way_direction(way, class);
        if dir != WayDirection::Both {
            stats.oneway_ways += 1;
        }
        for w in way.refs.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                continue;
            }
            let (la1, lo1) = positions[&a];
            let (la2, lo2) = positions[&b];
            // Coincident distinct nodes would violate the builder's
            // positive-length invariant; clamp to a centimetre.
            let length_m = haversine_m(la1, lo1, la2, lo2).max(0.01);
            let time_s = length_m / (speed / 3.6);
            let (u, v) = (vertex_of[&a], vertex_of[&b]);
            let seg = |from: u32, to: u32| RawEdge {
                from,
                to,
                length_m,
                time_s,
                category: class.category,
                geometry: Vec::new(),
            };
            match dir {
                WayDirection::Forward => edges.push(seg(u, v)),
                WayDirection::Backward => edges.push(seg(v, u)),
                WayDirection::Both => {
                    edges.push(seg(u, v));
                    edges.push(seg(v, u));
                }
            }
        }
    }
    stats.segment_vertices = coords.len();
    stats.segment_edges = edges.len();

    // Pass 4: largest-SCC prune.
    let (mut coords, mut edges) = if cfg.prune_to_largest_scc {
        let probe = build_graph(&coords, &edges);
        let scc = probe.largest_scc();
        let mut keep = vec![false; coords.len()];
        for v in &scc {
            keep[v.index()] = true;
        }
        let mut remap = vec![u32::MAX; coords.len()];
        let mut new_coords = Vec::with_capacity(scc.len());
        for v in &scc {
            remap[v.index()] = new_coords.len() as u32;
            new_coords.push(coords[v.index()]);
        }
        let new_edges: Vec<RawEdge> = edges
            .into_iter()
            .filter(|e| keep[e.from as usize] && keep[e.to as usize])
            .map(|mut e| {
                e.from = remap[e.from as usize];
                e.to = remap[e.to as usize];
                e
            })
            .collect();
        (new_coords, new_edges)
    } else {
        (coords, edges)
    };
    stats.scc_vertices = coords.len();
    stats.scc_edges = edges.len();
    if edges.is_empty() {
        return Err(SpatialError::Parse(
            "no routable edges survive the strongly-connected-component prune".into(),
        ));
    }

    // Pass 5: degree-2 chain contraction.
    if cfg.contract_chains {
        let (c, e) = contract_chains(coords, edges);
        coords = c;
        edges = e;
    }
    stats.final_vertices = coords.len();
    stats.final_edges = edges.len();
    stats.total_km = edges.iter().map(|e| e.length_m).sum::<f64>() / 1000.0;

    let graph = build_graph(&coords, &edges);
    let edge_geometry: Vec<Vec<Point>> = edges.into_iter().map(|e| e.geometry).collect();
    Ok(ImportedGraph {
        graph,
        edge_geometry,
        projection,
        stats,
    })
}

/// Builds a CSR [`Graph`] from the intermediate representation.
fn build_graph(coords: &[Point], edges: &[RawEdge]) -> Graph {
    let mut b = GraphBuilder::with_capacity(coords.len(), edges.len());
    for &p in coords {
        b.add_vertex(p);
    }
    for e in edges {
        b.add_edge(
            VertexId(e.from),
            VertexId(e.to),
            EdgeAttrs {
                length_m: e.length_m,
                speed_kmh: e.speed_kmh(),
                category: e.category,
            },
        )
        .expect("importer produces validated edges");
    }
    b.build()
}

/// Folds a run of consecutive directed edges into one edge: length and
/// travel time are exact sums, the category comes from the longest
/// constituent, and the intermediate vertices' coordinates (plus any
/// geometry the constituents already carried) become interior geometry.
fn fold_run(edges: &[RawEdge], coords: &[Point], run: &[u32]) -> RawEdge {
    let mut length_m = 0.0;
    let mut time_s = 0.0;
    let mut geometry: Vec<Point> = Vec::new();
    let mut category = edges[run[0] as usize].category;
    let mut longest = -1.0f64;
    for (k, &ei) in run.iter().enumerate() {
        let e = &edges[ei as usize];
        length_m += e.length_m;
        time_s += e.time_s;
        if e.length_m > longest {
            longest = e.length_m;
            category = e.category;
        }
        geometry.extend_from_slice(&e.geometry);
        if k + 1 < run.len() {
            geometry.push(coords[e.to as usize]);
        }
    }
    RawEdge {
        from: edges[run[0] as usize].from,
        to: edges[*run.last().expect("runs are non-empty") as usize].to,
        length_m,
        time_s,
        category,
        geometry,
    }
}

/// Contracts pass-through vertices: a vertex is *interior* when it is
/// either a two-way chain link (in = out = 2, the same two distinct
/// neighbours on both sides) or a one-way chain link (in = out = 1 with
/// distinct neighbours). Each maximal run of interior vertices between
/// two anchors collapses into one edge whose length and travel time are
/// the exact sums of its constituents (speed is re-derived, category
/// taken from the longest constituent) and whose interior geometry
/// records the folded vertices — map matching still sees the true
/// street shape. Runs looping back onto their own anchor split at a
/// deterministic interior vertex (self-loops are forbidden); cycles
/// with no anchor at all are left uncontracted.
fn contract_chains(coords: Vec<Point>, edges: Vec<RawEdge>) -> (Vec<Point>, Vec<RawEdge>) {
    let n = coords.len();
    let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n]; // edge indices
    let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        out_adj[e.from as usize].push(i as u32);
        in_adj[e.to as usize].push(i as u32);
    }

    let mut interior = vec![false; n];
    for v in 0..n {
        let outs = &out_adj[v];
        let ins = &in_adj[v];
        interior[v] = match (ins.len(), outs.len()) {
            (1, 1) => {
                let a = edges[ins[0] as usize].from;
                let b = edges[outs[0] as usize].to;
                a != b && a != v as u32 && b != v as u32
            }
            (2, 2) => {
                let mut o = [edges[outs[0] as usize].to, edges[outs[1] as usize].to];
                let mut i = [edges[ins[0] as usize].from, edges[ins[1] as usize].from];
                o.sort_unstable();
                i.sort_unstable();
                o == i && o[0] != o[1] && o[0] != v as u32 && o[1] != v as u32
            }
            _ => false,
        };
    }

    let mut consumed = vec![false; edges.len()];
    let mut merged: Vec<RawEdge> = Vec::new();

    // Walk every maximal chain from its anchor-side first edge.
    for start in 0..edges.len() {
        if consumed[start] || interior[edges[start].from as usize] {
            continue;
        }
        consumed[start] = true;
        let first = edges[start].clone();
        if !interior[first.to as usize] {
            merged.push(first);
            continue;
        }
        // Accumulate the run.
        let anchor = first.from;
        let mut run_edges: Vec<u32> = vec![start as u32];
        let mut cur = start;
        let mut hops = 0usize;
        loop {
            hops += 1;
            assert!(hops <= edges.len(), "chain walk exceeded edge count");
            let v = edges[cur].to;
            if !interior[v as usize] {
                break;
            }
            let came_from = edges[cur].from;
            // The unique continuation: the out-edge of `v` that does not
            // head straight back where we came from.
            let next = out_adj[v as usize]
                .iter()
                .copied()
                .find(|&e| edges[e as usize].to != came_from)
                .expect("interior vertex has a continuing out-edge");
            debug_assert!(!consumed[next as usize], "chain edges are walked once");
            consumed[next as usize] = true;
            run_edges.push(next);
            cur = next as usize;
        }
        let end = edges[cur].to;
        if end == anchor {
            // A loop back onto its own anchor (a city block ring hanging
            // off one intersection): a single merged edge would be a
            // self-loop, which the graph model forbids. Split the run at
            // its smallest-indexed interior vertex instead — both
            // traversal directions pick the same split, so the two
            // halves contract symmetrically.
            let split = (0..run_edges.len() - 1)
                .min_by_key(|&k| edges[run_edges[k] as usize].to)
                .expect("anchor loops span at least two edges");
            merged.push(fold_run(&edges, &coords, &run_edges[..=split]));
            merged.push(fold_run(&edges, &coords, &run_edges[split + 1..]));
            continue;
        }
        merged.push(fold_run(&edges, &coords, &run_edges));
    }

    // Edges whose tail is interior and that no walk consumed belong to
    // anchor-free cycles (e.g. an isolated ring road); keep them as-is.
    for (i, e) in edges.iter().enumerate() {
        if !consumed[i] {
            merged.push(e.clone());
        }
    }

    // Drop the folded vertices and renumber.
    let mut used = vec![false; n];
    for e in &merged {
        used[e.from as usize] = true;
        used[e.to as usize] = true;
    }
    let mut remap = vec![u32::MAX; n];
    let mut new_coords = Vec::new();
    for (v, &u) in used.iter().enumerate() {
        if u {
            remap[v] = new_coords.len() as u32;
            new_coords.push(coords[v]);
        }
    }
    for e in &mut merged {
        e.from = remap[e.from as usize];
        e.to = remap[e.to as usize];
    }
    (new_coords, merged)
}

#[cfg(test)]
mod tests {
    use super::super::{parse_osm_str, OsmNode, OsmWay};
    use super::*;

    /// Nodes on a ~100 m grid near Aalborg.
    fn node(id: i64, col: f64, row: f64) -> OsmNode {
        OsmNode {
            id,
            lat: 57.0 + row * 0.0009,
            lon: 9.9 + col * 0.00165,
        }
    }

    fn way(id: i64, refs: &[i64], tags: &[(&str, &str)]) -> OsmWay {
        OsmWay {
            id,
            refs: refs.to_vec(),
            tags: tags
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// A 2×3 block with one long residential chain hanging off it:
    ///
    /// ```text
    ///  1 - 2 - 3
    ///  |       |      7 - 8 - 9 (chain into the loop at 3)
    ///  4 - 5 - 6
    /// ```
    fn city() -> OsmData {
        OsmData {
            nodes: vec![
                node(1, 0.0, 1.0),
                node(2, 1.0, 1.0),
                node(3, 2.0, 1.0),
                node(4, 0.0, 0.0),
                node(5, 1.0, 0.0),
                node(6, 2.0, 0.0),
                node(7, 3.0, 1.0),
                node(8, 4.0, 1.0),
                node(9, 5.0, 1.0),
            ],
            ways: vec![
                way(10, &[1, 2, 3], &[("highway", "residential")]),
                way(11, &[4, 5, 6], &[("highway", "residential")]),
                way(12, &[1, 4], &[("highway", "residential")]),
                way(13, &[3, 6], &[("highway", "residential")]),
                way(14, &[3, 7, 8, 9], &[("highway", "residential")]),
            ],
        }
    }

    #[test]
    fn imports_filters_and_counts() {
        let mut data = city();
        // Non-highway, unroutable and missing-node ways are skipped.
        data.ways.push(way(20, &[1, 2], &[("building", "yes")]));
        data.ways.push(way(21, &[1, 2], &[("highway", "footway")]));
        data.ways
            .push(way(22, &[1, 999], &[("highway", "residential")]));
        data.ways
            .push(way(23, &[5, 5], &[("highway", "residential")]));
        let imported = import_osm(&data, &ImportConfig::default()).unwrap();
        let s = &imported.stats;
        assert_eq!(s.raw_ways, 9);
        assert_eq!(s.kept_ways, 5);
        assert_eq!(s.skipped_non_highway, 1);
        assert_eq!(s.skipped_unroutable_class, 1);
        assert_eq!(s.skipped_missing_nodes, 1);
        assert_eq!(s.skipped_degenerate, 1);
        assert_eq!(s.highway_histogram, vec![("residential".to_string(), 5)]);
        // Everything is two-way, so the SCC keeps all nine nodes.
        assert_eq!(s.scc_vertices, 9);
        // The block ring 1-2-3-6-5-4 is a loop anchored at the junction
        // 3: it splits at its smallest interior vertex (node 1) and both
        // halves contract; the appendix 3-7-8-9 folds to a single edge
        // pair. Only 3, 1 and the dead end 9 remain.
        assert_eq!(s.final_vertices, 3);
        assert_eq!(s.final_edges, 6);
        let g = &imported.graph;
        assert_eq!(g.vertex_count(), 3);
        // The contracted graph is still strongly connected.
        assert_eq!(g.largest_scc().len(), 3);
    }

    #[test]
    fn contraction_preserves_length_time_and_geometry() {
        let data = city();
        let loose = import_osm(
            &data,
            &ImportConfig {
                contract_chains: false,
                ..ImportConfig::default()
            },
        )
        .unwrap();
        let tight = import_osm(&data, &ImportConfig::default()).unwrap();
        // Total length and travel time are preserved exactly-ish (sums
        // reassociate, so compare to 1e-9 relative).
        let len_a = loose.graph.total_length_m();
        let len_b = tight.graph.total_length_m();
        assert!((len_a - len_b).abs() < 1e-6 * len_a, "{len_a} vs {len_b}");
        let tt = |g: &Graph| g.edges().map(|e| e.attrs.travel_time_s()).sum::<f64>();
        let (ta, tb) = (tt(&loose.graph), tt(&tight.graph));
        assert!((ta - tb).abs() < 1e-6 * ta, "{ta} vs {tb}");
        // The chain 3-7-8-9 folded into one edge pair whose geometry
        // remembers vertices 7 and 8.
        let with_geom: Vec<&Vec<Point>> = tight
            .edge_geometry
            .iter()
            .filter(|g| !g.is_empty())
            .collect();
        assert!(!with_geom.is_empty(), "contraction must retain geometry");
        assert!(with_geom.iter().any(|g| g.len() == 2));
        // Polylines include the endpoints.
        for e in 0..tight.graph.edge_count() {
            let pl = tight.edge_polyline(EdgeId(e as u32));
            assert!(pl.len() >= 2);
            assert_eq!(
                pl[0],
                tight.graph.coord(tight.graph.edge(EdgeId(e as u32)).from)
            );
        }
    }

    #[test]
    fn oneway_ways_get_single_directed_edges() {
        let mut data = city();
        // Make the top street a oneway couplet: 1→2→3 forward,
        // 3→2'→1 via the bottom … simplest: tag way 10 oneway=yes and
        // check the reverse arcs disappear (SCC then routes around).
        data.ways[0]
            .tags
            .push(("oneway".to_string(), "yes".to_string()));
        let imported = import_osm(
            &data,
            &ImportConfig {
                contract_chains: false,
                ..ImportConfig::default()
            },
        )
        .unwrap();
        assert_eq!(imported.stats.oneway_ways, 1);
        let g = &imported.graph;
        // Find the imported vertices for OSM nodes 1 and 2 by position.
        let p1 = imported.projection.project(57.0 + 0.0009, 9.9);
        let p2 = imported.projection.project(57.0 + 0.0009, 9.9 + 0.00165);
        let find = |p: Point| {
            g.vertices()
                .min_by(|&a, &b| {
                    g.coord(a)
                        .distance_sq(&p)
                        .total_cmp(&g.coord(b).distance_sq(&p))
                })
                .unwrap()
        };
        let (v1, v2) = (find(p1), find(p2));
        assert!(g.find_edge(v1, v2).is_some(), "forward arc must exist");
        assert!(g.find_edge(v2, v1).is_none(), "reverse arc must not");
    }

    #[test]
    fn reversed_oneway_flips_the_arcs() {
        let mut fwd = city();
        fwd.ways[4].tags.push(("oneway".into(), "yes".into()));
        let mut rev = city();
        rev.ways[4].tags.push(("oneway".into(), "-1".into()));
        rev.ways[4].refs.reverse();
        // Same geometry, same arcs: `-1` on reversed refs equals `yes`
        // on forward refs.
        let a = import_osm(&fwd, &ImportConfig::default());
        let b = import_osm(&rev, &ImportConfig::default());
        // The dead-end chain is now a one-way appendix, so the SCC prune
        // removes it in both — the two graphs must agree exactly.
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn maxspeed_overrides_class_default() {
        let mut data = city();
        data.ways[0].tags.push(("maxspeed".into(), "30".into()));
        let imported = import_osm(
            &data,
            &ImportConfig {
                contract_chains: false,
                ..ImportConfig::default()
            },
        )
        .unwrap();
        let speeds: std::collections::BTreeSet<i64> = imported
            .graph
            .edges()
            .map(|e| e.attrs.speed_kmh.round() as i64)
            .collect();
        assert!(speeds.contains(&30), "tagged 30 km/h missing: {speeds:?}");
        assert!(speeds.contains(&40), "class default missing: {speeds:?}");
    }

    #[test]
    fn disconnected_fragment_is_pruned() {
        let mut data = city();
        data.nodes.push(node(100, 20.0, 20.0));
        data.nodes.push(node(101, 21.0, 20.0));
        data.ways
            .push(way(30, &[100, 101], &[("highway", "residential")]));
        let imported = import_osm(&data, &ImportConfig::default()).unwrap();
        assert!(imported.stats.segment_vertices > imported.stats.scc_vertices);
        assert_eq!(
            imported.graph.largest_scc().len(),
            imported.graph.vertex_count(),
            "result must be strongly connected"
        );
    }

    #[test]
    fn pure_ring_survives_contraction_uncontracted() {
        // A standalone roundabout: every vertex is interior (one-way
        // in=out=1), so there is no anchor to start a chain walk from.
        let data = OsmData {
            nodes: vec![
                node(1, 0.0, 0.0),
                node(2, 1.0, 0.0),
                node(3, 1.0, 1.0),
                node(4, 0.0, 1.0),
            ],
            ways: vec![way(
                1,
                &[1, 2, 3, 4, 1],
                &[("highway", "tertiary"), ("junction", "roundabout")],
            )],
        };
        let imported = import_osm(&data, &ImportConfig::default()).unwrap();
        assert_eq!(imported.graph.vertex_count(), 4);
        assert_eq!(imported.graph.edge_count(), 4);
        assert_eq!(imported.stats.oneway_ways, 1);
    }

    #[test]
    fn empty_or_unroutable_extracts_error_cleanly() {
        assert!(import_osm(&OsmData::default(), &ImportConfig::default()).is_err());
        let only_footways = parse_osm_str(
            "<osm><node id='1' lat='1' lon='1'/><node id='2' lat='1.001' lon='1'/>\
             <way id='1'><nd ref='1'/><nd ref='2'/><tag k='highway' v='footway'/></way></osm>",
        )
        .unwrap();
        assert!(import_osm(&only_footways, &ImportConfig::default()).is_err());
    }

    #[test]
    fn service_roads_are_gated() {
        let mut data = city();
        data.nodes.push(node(50, 2.5, 0.5));
        data.ways
            .push(way(40, &[6, 50, 3], &[("highway", "service")]));
        let without = import_osm(&data, &ImportConfig::default()).unwrap();
        let with = import_osm(
            &data,
            &ImportConfig {
                include_service_roads: true,
                ..ImportConfig::default()
            },
        )
        .unwrap();
        assert!(with.stats.kept_ways > without.stats.kept_ways);
        assert!(with.stats.total_km > without.stats.total_km);
    }
}
