//! A dependency-free streaming XML pull-parser, specialised for OSM
//! documents.
//!
//! The build environment has no crates.io access, so this is hand-rolled
//! against exactly the XML subset OSM planet/extract files use: nested
//! elements with attributes, self-closing tags, comments, processing
//! instructions, `DOCTYPE` declarations, CDATA sections and the five
//! predefined plus numeric character entities. It reads its input
//! incrementally through any [`BufRead`] (constant memory in the raw
//! text; only the element stack and the accumulated nodes/ways grow) and
//! it *never panics on malformed input*: truncation, tag mismatches,
//! broken entities, duplicate attributes and out-of-range coordinates
//! all surface as [`SpatialError::Parse`] with a byte offset.

use std::io::BufRead;

use crate::error::SpatialError;
use crate::geo::valid_lat_lon;

use super::{OsmData, OsmNode, OsmWay};

/// Upper bound on element / attribute name length — a malformed file
/// cannot make the parser buffer unbounded names.
const MAX_NAME: usize = 512;
/// Upper bound on a single attribute value.
const MAX_VALUE: usize = 1 << 16;
/// Upper bound on node refs per way (the longest real OSM ways are
/// ~2000 nodes; anything near this bound is corrupt input).
const MAX_WAY_REFS: usize = 1 << 20;
/// Upper bound on element nesting depth.
const MAX_DEPTH: usize = 64;

/// Byte source with one-byte lookahead over a [`BufRead`].
struct ByteStream<R: BufRead> {
    inner: R,
    peeked: Option<u8>,
    /// Bytes consumed so far (for error messages).
    pos: u64,
}

impl<R: BufRead> ByteStream<R> {
    fn new(inner: R) -> Self {
        ByteStream {
            inner,
            peeked: None,
            pos: 0,
        }
    }

    fn next(&mut self) -> Result<Option<u8>, SpatialError> {
        if let Some(b) = self.peeked.take() {
            self.pos += 1;
            return Ok(Some(b));
        }
        let buf = self
            .inner
            .fill_buf()
            .map_err(|e| SpatialError::Parse(format!("read error at byte {}: {e}", self.pos)))?;
        if buf.is_empty() {
            return Ok(None);
        }
        let b = buf[0];
        self.inner.consume(1);
        self.pos += 1;
        Ok(Some(b))
    }

    fn peek(&mut self) -> Result<Option<u8>, SpatialError> {
        if self.peeked.is_none() {
            let buf = self.inner.fill_buf().map_err(|e| {
                SpatialError::Parse(format!("read error at byte {}: {e}", self.pos))
            })?;
            if buf.is_empty() {
                return Ok(None);
            }
            self.peeked = Some(buf[0]);
            self.inner.consume(1);
        }
        Ok(self.peeked)
    }
}

/// One parsed start tag.
struct Tag {
    name: String,
    attrs: Vec<(String, String)>,
    self_closing: bool,
}

impl Tag {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Pull events: opening tags, closing tags, end of document.
enum Event {
    Open(Tag),
    Close(String),
    Eof,
}

struct Puller<R: BufRead> {
    s: ByteStream<R>,
    /// Open-element stack, for well-formedness checking.
    stack: Vec<String>,
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':'
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
}

impl<R: BufRead> Puller<R> {
    fn new(input: R) -> Self {
        Puller {
            s: ByteStream::new(input),
            stack: Vec::new(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> SpatialError {
        SpatialError::Parse(format!("{} (at byte {})", msg.into(), self.s.pos))
    }

    fn skip_whitespace(&mut self) -> Result<(), SpatialError> {
        while let Some(b) = self.s.peek()? {
            if b.is_ascii_whitespace() {
                self.s.next()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Reads an element or attribute name starting at the current byte.
    fn read_name(&mut self) -> Result<String, SpatialError> {
        let mut name = Vec::new();
        match self.s.peek()? {
            Some(b) if is_name_start(b) => {}
            Some(b) => return Err(self.err(format!("invalid name start byte {:?}", b as char))),
            None => return Err(self.err("unexpected end of input in name")),
        }
        while let Some(b) = self.s.peek()? {
            if is_name_byte(b) {
                name.push(b);
                self.s.next()?;
                if name.len() > MAX_NAME {
                    return Err(self.err("name too long"));
                }
            } else {
                break;
            }
        }
        Ok(String::from_utf8(name).expect("name bytes are ASCII"))
    }

    /// Decodes one entity reference; the leading `&` is already consumed.
    fn read_entity(&mut self, out: &mut Vec<u8>) -> Result<(), SpatialError> {
        let mut body = Vec::new();
        loop {
            match self.s.next()? {
                Some(b';') => break,
                Some(b) if body.len() < 12 => body.push(b),
                Some(_) => return Err(self.err("entity reference too long")),
                None => return Err(self.err("unexpected end of input in entity")),
            }
        }
        let body = std::str::from_utf8(&body)
            .map_err(|_| self.err("non-UTF-8 entity reference"))?
            .to_string();
        let ch = match body.as_str() {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ => {
                let code = if let Some(hex) =
                    body.strip_prefix("#x").or_else(|| body.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                code.and_then(char::from_u32)
                    .ok_or_else(|| self.err(format!("unknown entity &{body};")))?
            }
        };
        let mut buf = [0u8; 4];
        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
        Ok(())
    }

    /// Reads a quoted attribute value (entities decoded). The opening
    /// quote is at the current byte.
    fn read_attr_value(&mut self) -> Result<String, SpatialError> {
        let quote = match self.s.next()? {
            Some(q @ (b'"' | b'\'')) => q,
            Some(b) => return Err(self.err(format!("expected quote, got {:?}", b as char))),
            None => return Err(self.err("unexpected end of input before attribute value")),
        };
        let mut out = Vec::new();
        loop {
            match self.s.next()? {
                Some(b) if b == quote => break,
                Some(b'&') => self.read_entity(&mut out)?,
                Some(b'<') => return Err(self.err("raw '<' in attribute value")),
                Some(b) => {
                    out.push(b);
                    if out.len() > MAX_VALUE {
                        return Err(self.err("attribute value too long"));
                    }
                }
                None => return Err(self.err("unexpected end of input in attribute value")),
            }
        }
        String::from_utf8(out).map_err(|_| self.err("attribute value is not valid UTF-8"))
    }

    /// Skips a `<!...>` construct (comment, DOCTYPE, CDATA). The `<!`
    /// is already consumed.
    fn skip_bang(&mut self) -> Result<(), SpatialError> {
        // Comment?
        if self.s.peek()? == Some(b'-') {
            self.s.next()?;
            if self.s.next()? != Some(b'-') {
                return Err(self.err("malformed comment open"));
            }
            // Skip until `-->`.
            let mut dashes = 0u8;
            loop {
                match self.s.next()? {
                    Some(b'-') => dashes = (dashes + 1).min(2),
                    Some(b'>') if dashes >= 2 => return Ok(()),
                    Some(_) => dashes = 0,
                    None => return Err(self.err("unterminated comment")),
                }
            }
        }
        // CDATA?
        let mut probe = Vec::new();
        while probe.len() < 7 {
            match self.s.peek()? {
                Some(b) => {
                    probe.push(b);
                    if b"[CDATA[".starts_with(&probe) {
                        self.s.next()?;
                    } else {
                        probe.pop();
                        break;
                    }
                }
                None => return Err(self.err("unexpected end of input after '<!'")),
            }
        }
        if probe == b"[CDATA[" {
            // Skip until `]]>`.
            let mut brackets = 0u8;
            loop {
                match self.s.next()? {
                    Some(b']') => brackets = (brackets + 1).min(2),
                    Some(b'>') if brackets >= 2 => return Ok(()),
                    Some(_) => brackets = 0,
                    None => return Err(self.err("unterminated CDATA section")),
                }
            }
        }
        // DOCTYPE or similar declaration: skip to the matching '>',
        // tolerating an internal subset's nested `<!ENTITY ...>` lines.
        let mut depth = 1usize;
        loop {
            match self.s.next()? {
                Some(b'<') => depth += 1,
                Some(b'>') => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.err("unterminated '<!' declaration")),
            }
        }
    }

    /// Skips a `<?...?>` processing instruction; `<?` already consumed.
    fn skip_pi(&mut self) -> Result<(), SpatialError> {
        let mut question = false;
        loop {
            match self.s.next()? {
                Some(b'?') => question = true,
                Some(b'>') if question => return Ok(()),
                Some(_) => question = false,
                None => return Err(self.err("unterminated processing instruction")),
            }
        }
    }

    /// Pulls the next structural event, skipping text, comments, PIs and
    /// declarations.
    fn next_event(&mut self) -> Result<Event, SpatialError> {
        loop {
            // Skip character data between tags.
            loop {
                match self.s.peek()? {
                    Some(b'<') => {
                        self.s.next()?;
                        break;
                    }
                    Some(_) => {
                        self.s.next()?;
                    }
                    None => {
                        if let Some(open) = self.stack.last() {
                            return Err(
                                self.err(format!("unexpected end of input inside <{open}>"))
                            );
                        }
                        return Ok(Event::Eof);
                    }
                }
            }
            match self.s.peek()? {
                Some(b'?') => {
                    self.s.next()?;
                    self.skip_pi()?;
                }
                Some(b'!') => {
                    self.s.next()?;
                    self.skip_bang()?;
                }
                Some(b'/') => {
                    self.s.next()?;
                    let name = self.read_name()?;
                    self.skip_whitespace()?;
                    if self.s.next()? != Some(b'>') {
                        return Err(self.err(format!("malformed closing tag </{name}")));
                    }
                    match self.stack.pop() {
                        Some(open) if open == name => return Ok(Event::Close(name)),
                        Some(open) => {
                            return Err(self
                                .err(format!("mismatched closing tag </{name}> inside <{open}>")))
                        }
                        None => {
                            return Err(self.err(format!("closing tag </{name}> with nothing open")))
                        }
                    }
                }
                Some(_) => {
                    let tag = self.read_tag()?;
                    if !tag.self_closing {
                        if self.stack.len() >= MAX_DEPTH {
                            return Err(self.err("elements nested too deeply"));
                        }
                        self.stack.push(tag.name.clone());
                    }
                    return Ok(Event::Open(tag));
                }
                None => return Err(self.err("unexpected end of input after '<'")),
            }
        }
    }

    /// Reads an opening tag starting at its name byte (`<` consumed).
    fn read_tag(&mut self) -> Result<Tag, SpatialError> {
        let name = self.read_name()?;
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_whitespace()?;
            match self.s.peek()? {
                Some(b'>') => {
                    self.s.next()?;
                    return Ok(Tag {
                        name,
                        attrs,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.s.next()?;
                    if self.s.next()? != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    return Ok(Tag {
                        name,
                        attrs,
                        self_closing: true,
                    });
                }
                Some(b) if is_name_start(b) => {
                    let key = self.read_name()?;
                    self.skip_whitespace()?;
                    if self.s.next()? != Some(b'=') {
                        return Err(self.err(format!("attribute {key:?} missing '='")));
                    }
                    self.skip_whitespace()?;
                    let value = self.read_attr_value()?;
                    if attrs.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(format!("duplicate attribute {key:?} on <{name}>")));
                    }
                    attrs.push((key, value));
                }
                Some(b) => {
                    return Err(self.err(format!("unexpected byte {:?} in <{name}>", b as char)))
                }
                None => return Err(self.err(format!("unexpected end of input in <{name}>"))),
            }
        }
    }

    /// Skips everything up to and including the close of the element
    /// whose open tag was just returned (which must not be
    /// self-closing).
    fn skip_element(&mut self) -> Result<(), SpatialError> {
        let depth = self.stack.len();
        loop {
            match self.next_event()? {
                Event::Close(_) if self.stack.len() < depth => return Ok(()),
                Event::Eof => {
                    return Err(self.err("unexpected end of input while skipping element"))
                }
                _ => {}
            }
        }
    }
}

fn parse_attr_f64<R: BufRead>(p: &Puller<R>, tag: &Tag, name: &str) -> Result<f64, SpatialError> {
    tag.attr(name)
        .ok_or_else(|| p.err(format!("<{}> missing attribute {name:?}", tag.name)))?
        .trim()
        .parse::<f64>()
        .map_err(|e| p.err(format!("<{}> attribute {name:?}: {e}", tag.name)))
}

fn parse_attr_i64<R: BufRead>(p: &Puller<R>, tag: &Tag, name: &str) -> Result<i64, SpatialError> {
    tag.attr(name)
        .ok_or_else(|| p.err(format!("<{}> missing attribute {name:?}", tag.name)))?
        .trim()
        .parse::<i64>()
        .map_err(|e| p.err(format!("<{}> attribute {name:?}: {e}", tag.name)))
}

/// Parses an OSM XML document from any buffered reader into an
/// [`OsmData`]. Streaming: the raw text is never materialised in
/// memory, only the accumulated nodes and ways. Relations, metadata and
/// unknown elements are skipped; structural errors (truncation,
/// mismatched or malformed tags, broken entities, invalid coordinates,
/// duplicate ids) are [`SpatialError::Parse`], never panics.
pub fn parse_osm_xml<R: BufRead>(input: R) -> Result<OsmData, SpatialError> {
    let mut p = Puller::new(input);
    // Find the root element (prologue text, comments and PIs are
    // consumed inside `next_event`; a stray close is an error there).
    let root = match p.next_event()? {
        Event::Open(tag) => tag,
        Event::Close(name) => return Err(p.err(format!("unexpected </{name}> before any root"))),
        Event::Eof => return Err(p.err("empty document: no <osm> root")),
    };
    if root.name != "osm" {
        return Err(p.err(format!("root element is <{}>, expected <osm>", root.name)));
    }
    if root.self_closing {
        return Ok(OsmData::default());
    }

    let mut data = OsmData::default();
    let mut seen_nodes = std::collections::HashSet::new();
    let mut seen_ways = std::collections::HashSet::new();

    loop {
        match p.next_event()? {
            Event::Open(tag) => match tag.name.as_str() {
                "node" => {
                    let id = parse_attr_i64(&p, &tag, "id")?;
                    let lat = parse_attr_f64(&p, &tag, "lat")?;
                    let lon = parse_attr_f64(&p, &tag, "lon")?;
                    if !valid_lat_lon(lat, lon) {
                        return Err(p.err(format!(
                            "node {id} has out-of-range position ({lat}, {lon})"
                        )));
                    }
                    if !seen_nodes.insert(id) {
                        return Err(p.err(format!("duplicate node id {id}")));
                    }
                    if !tag.self_closing {
                        p.skip_element()?; // node <tag>s are irrelevant for routing
                    }
                    data.nodes.push(OsmNode { id, lat, lon });
                }
                "way" => {
                    let id = parse_attr_i64(&p, &tag, "id")?;
                    if !seen_ways.insert(id) {
                        return Err(p.err(format!("duplicate way id {id}")));
                    }
                    let mut way = OsmWay {
                        id,
                        refs: Vec::new(),
                        tags: Vec::new(),
                    };
                    if !tag.self_closing {
                        let depth = p.stack.len();
                        loop {
                            match p.next_event()? {
                                Event::Open(child) => match child.name.as_str() {
                                    "nd" => {
                                        way.refs.push(parse_attr_i64(&p, &child, "ref")?);
                                        if way.refs.len() > MAX_WAY_REFS {
                                            return Err(
                                                p.err(format!("way {id} has too many node refs"))
                                            );
                                        }
                                        if !child.self_closing {
                                            p.skip_element()?;
                                        }
                                    }
                                    "tag" => {
                                        let k = child
                                            .attr("k")
                                            .ok_or_else(|| {
                                                p.err(format!("way {id}: <tag> missing 'k'"))
                                            })?
                                            .to_string();
                                        let v = child
                                            .attr("v")
                                            .ok_or_else(|| {
                                                p.err(format!("way {id}: <tag> missing 'v'"))
                                            })?
                                            .to_string();
                                        way.tags.push((k, v));
                                        if !child.self_closing {
                                            p.skip_element()?;
                                        }
                                    }
                                    _ => {
                                        if !child.self_closing {
                                            p.skip_element()?;
                                        }
                                    }
                                },
                                Event::Close(_) if p.stack.len() < depth => break,
                                Event::Close(_) => {}
                                Event::Eof => {
                                    return Err(
                                        p.err(format!("unexpected end of input inside way {id}"))
                                    )
                                }
                            }
                        }
                    }
                    data.ways.push(way);
                }
                // Relations, bounds, changesets, notes … — not needed.
                _ => {
                    if !tag.self_closing {
                        p.skip_element()?;
                    }
                }
            },
            Event::Close(name) => {
                debug_assert_eq!(name, "osm");
                break;
            }
            Event::Eof => return Err(p.err("unexpected end of input inside <osm>")),
        }
    }

    // Nothing but whitespace/comments may follow the root.
    match p.next_event()? {
        Event::Eof => Ok(data),
        Event::Open(tag) => Err(p.err(format!("content after </osm>: <{}>", tag.name))),
        Event::Close(name) => Err(p.err(format!("content after </osm>: </{name}>"))),
    }
}

/// Parses an OSM XML document from a string. See [`parse_osm_xml`].
pub fn parse_osm_str(s: &str) -> Result<OsmData, SpatialError> {
    parse_osm_xml(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <bounds minlat="57.0" minlon="9.9" maxlat="57.1" maxlon="10.0"/>
  <node id="1" lat="57.01" lon="9.91"/>
  <node id="2" lat="57.02" lon="9.92">
    <tag k="highway" v="traffic_signals"/>
  </node>
  <node id="3" lat="57.03" lon="9.93"/>
  <way id="10">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="residential"/>
    <tag k="name" v="N&#248;rregade &amp; more"/>
  </way>
  <relation id="99">
    <member type="way" ref="10" role="outer"/>
    <tag k="type" v="multipolygon"/>
  </relation>
</osm>
"#;

    #[test]
    fn parses_nodes_ways_and_skips_relations() {
        let data = parse_osm_str(MINI).unwrap();
        assert_eq!(data.nodes.len(), 3);
        assert_eq!(data.ways.len(), 1);
        let way = &data.ways[0];
        assert_eq!(way.refs, vec![1, 2, 3]);
        assert_eq!(way.tag("highway"), Some("residential"));
        // Entities decode: `&#248;` is ø, `&amp;` is &.
        assert_eq!(way.tag("name"), Some("Nørregade & more"));
        assert_eq!(data.nodes[1].lat, 57.02);
    }

    #[test]
    fn attribute_order_is_irrelevant() {
        let reordered = r#"<osm><node lon="9.91" id="1" lat="57.01"/></osm>"#;
        let data = parse_osm_str(reordered).unwrap();
        assert_eq!(data.nodes[0].id, 1);
        assert_eq!(data.nodes[0].lat, 57.01);
        assert_eq!(data.nodes[0].lon, 9.91);
    }

    #[test]
    fn tolerates_comments_cdata_and_doctype() {
        let doc = "<!DOCTYPE osm [ <!ENTITY x \"y\"> ]>\n<!-- a comment -->\n\
                   <osm><![CDATA[ raw <stuff> ]]><node id=\"1\" lat=\"1\" lon=\"2\"/></osm>";
        let data = parse_osm_str(doc).unwrap();
        assert_eq!(data.nodes.len(), 1);
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        for cut in 0..MINI.len() {
            let prefix = &MINI[..cut];
            if !prefix.is_ascii() {
                continue; // don't split inside a multi-byte char literal
            }
            // Either a clean error or (for cuts past the closing tag's
            // final byte) success — never a panic.
            let _ = parse_osm_str(prefix);
        }
        // A cut strictly inside the document must error.
        assert!(parse_osm_str(&MINI[..MINI.len() / 2]).is_err());
    }

    #[test]
    fn structural_garbage_is_rejected() {
        for bad in [
            "",
            "   ",
            "plain text",
            "<notosm></notosm>",
            "<osm><node id='1' lat='1' lon='2'></osm>", // mismatched close
            "<osm><node id='1' lat='1' lon='2'/></osm><osm/>", // trailing content
            "<osm><node id='1' lat='1'/></osm>",        // missing lon
            "<osm><node id='1' lat='91' lon='0'/></osm>", // lat out of range
            "<osm><node id='1' lat='1' lon='999'/></osm>", // lon out of range
            "<osm><node id='x' lat='1' lon='2'/></osm>", // non-numeric id
            "<osm><node id='1' id='2' lat='1' lon='2'/></osm>", // duplicate attr
            "<osm><node id='1' lat='1' lon='2'/><node id='1' lat='1' lon='2'/></osm>", // dup id
            "<osm><way id='1'><nd/></way></osm>",       // nd missing ref
            "<osm><way id='1'><nd ref='1&bogus;2'/></way></osm>", // unknown entity
            "<osm><node id='1' lat='1' lon='2' x=<bad>/></osm>", // raw '<' in attr
            "<osm",
            "<osm>",
            "<osm><!-- unterminated ",
            "<osm><way id='1'>",
        ] {
            assert!(parse_osm_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unknown_elements_and_nested_extras_are_skipped() {
        let doc = r#"<osm>
            <weird><deeply><nested attr="1">text</nested></deeply></weird>
            <node id="5" lat="0.5" lon="0.25"/>
            <way id="7"><nd ref="5"/><center lat="0" lon="0"/><nd ref="5"/></way>
        </osm>"#;
        let data = parse_osm_str(doc).unwrap();
        assert_eq!(data.nodes.len(), 1);
        assert_eq!(data.ways[0].refs, vec![5, 5]);
    }
}
