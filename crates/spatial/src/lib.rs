//! Road-network substrate for the PathRank reproduction.
//!
//! This crate provides everything PathRank needs from a spatial network:
//!
//! * a compact CSR-based directed [`graph::Graph`] with planar vertex
//!   coordinates and per-edge attributes (length, speed category, travel
//!   time);
//! * deterministic synthetic [`generators`] that produce road networks with
//!   realistic structure (grid towns, ring-radial cities, multi-town
//!   regions connected by highways) — the substitute for the proprietary
//!   North Jutland network used in the paper;
//! * real road-network ingestion ([`osm`]): a dependency-free streaming
//!   OSM XML parser and an importer (highway filtering, `maxspeed` /
//!   `oneway` handling, [`geo`] haversine lengths, SCC pruning, degree-2
//!   chain contraction) that emits index-ready graphs from real extracts;
//! * routing algorithms: [`algo::dijkstra`], [`algo::astar`],
//!   [`algo::bidijkstra`], Yen's top-k shortest paths ([`algo::yen`]) and
//!   the diversified top-k used by the paper's D-TkDI training-data
//!   strategy ([`algo::diversified`]) — all running on the reusable,
//!   generation-stamped query layer in [`algo::engine`];
//! * path [`similarity`] measures, most importantly the weighted Jaccard
//!   similarity that defines PathRank's ground-truth ranking scores;
//! * a cache-compact serving form ([`frozen::FrozenGraph`]): one merged
//!   forward/backward CSR with inlined per-metric weights, bit-identical
//!   to builder-graph searches, persisted as a fixed-width binary
//!   section by [`io`]; and a packed STR-bulk-loaded [`rtree::RTree`]
//!   over edge polyline segments for GPS candidate snapping.
//!
//! # Quick example
//!
//! ```
//! use pathrank_spatial::generators::{grid_network, GridConfig};
//! use pathrank_spatial::algo::dijkstra::shortest_path;
//! use pathrank_spatial::graph::{CostModel, VertexId};
//!
//! let g = grid_network(&GridConfig::small_test(), 7);
//! let p = shortest_path(&g, VertexId(0), VertexId(24), CostModel::Length)
//!     .expect("grid is strongly connected");
//! assert!(p.length_m(&g) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod builder;
pub mod error;
pub mod frozen;
pub mod generators;
pub mod geo;
pub mod geometry;
pub mod graph;
pub mod io;
pub mod osm;
pub mod path;
pub mod rtree;
pub mod similarity;
pub mod util;

pub use algo::engine::QueryEngine;
pub use builder::GraphBuilder;
pub use error::SpatialError;
pub use frozen::{FrozenArc, FrozenGraph};
pub use graph::{CostModel, EdgeId, Graph, RoadCategory, VertexId};
pub use path::Path;
pub use rtree::RTree;
