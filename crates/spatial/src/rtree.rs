//! Packed STR-bulk-loaded R-tree over edge polyline segments.
//!
//! Replaces the uniform hash-grid scan of the map matcher's candidate
//! lookup: instead of enumerating `(2r/cell + 1)^2` grid cells per GPS
//! probe, a query descends a shallow tree of bounding rectangles,
//! pruning whole subtrees by exact point-to-rectangle distance. The tree
//! is bulk-loaded once with the Sort-Tile-Recursive (STR) packing — sort
//! segments by x-centre, cut into vertical slices, sort each slice by
//! y-centre, pack runs of [`LEAF_CAP`] — which yields near-square leaves
//! with high occupancy and no insertion-time rebalancing. Upper levels
//! simply group [`FANOUT`] consecutive nodes, valid because STR order is
//! already spatially coherent.
//!
//! Indexed items are individual *segments* of each edge's polyline
//! (interior chain geometry included, matching the geometry-aware
//! matcher), so a folded edge is found by probes near any of its bends.
//! [`RTree::edges_within`] filters hits by exact
//! [`point_segment_distance`] and returns the deduplicated, ascending
//! list of edge ids — exactly the set a brute-force scan over every
//! segment would return.

use crate::geometry::{point_segment_distance, Point};
use crate::graph::{EdgeId, Graph};

/// Segments per leaf (STR tile size).
const LEAF_CAP: usize = 16;
/// Child nodes per inner node.
const FANOUT: usize = 16;

/// One indexed polyline segment, flattened for cache-friendly leaf scans.
#[derive(Debug, Clone, Copy)]
struct Segment {
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
    edge: EdgeId,
}

impl Segment {
    #[inline]
    fn new(a: Point, b: Point, edge: EdgeId) -> Self {
        Segment {
            ax: a.x,
            ay: a.y,
            bx: b.x,
            by: b.y,
            edge,
        }
    }

    #[inline]
    fn center_x(&self) -> f64 {
        (self.ax + self.bx) * 0.5
    }

    #[inline]
    fn center_y(&self) -> f64 {
        (self.ay + self.by) * 0.5
    }
}

/// Minimum bounding rectangle of a node.
#[derive(Debug, Clone, Copy)]
struct Mbr {
    minx: f64,
    miny: f64,
    maxx: f64,
    maxy: f64,
}

impl Mbr {
    const EMPTY: Mbr = Mbr {
        minx: f64::INFINITY,
        miny: f64::INFINITY,
        maxx: f64::NEG_INFINITY,
        maxy: f64::NEG_INFINITY,
    };

    #[inline]
    fn add_segment(&mut self, s: &Segment) {
        self.minx = self.minx.min(s.ax.min(s.bx));
        self.miny = self.miny.min(s.ay.min(s.by));
        self.maxx = self.maxx.max(s.ax.max(s.bx));
        self.maxy = self.maxy.max(s.ay.max(s.by));
    }

    #[inline]
    fn add_mbr(&mut self, o: &Mbr) {
        self.minx = self.minx.min(o.minx);
        self.miny = self.miny.min(o.miny);
        self.maxx = self.maxx.max(o.maxx);
        self.maxy = self.maxy.max(o.maxy);
    }

    /// Squared distance from `p` to the rectangle (0 inside).
    #[inline]
    fn dist_sq(&self, p: &Point) -> f64 {
        let dx = (self.minx - p.x).max(0.0).max(p.x - self.maxx);
        let dy = (self.miny - p.y).max(0.0).max(p.y - self.maxy);
        dx * dx + dy * dy
    }
}

/// Packed-leaf R-tree over edge polyline segments; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct RTree {
    /// STR-ordered segments; leaf `i` owns
    /// `segments[i * LEAF_CAP .. (i + 1) * LEAF_CAP]` (last leaf short).
    segments: Vec<Segment>,
    /// `levels[0]` = leaf MBRs; `levels[k + 1][i]` covers
    /// `levels[k][i * FANOUT .. (i + 1) * FANOUT]`. The topmost level has
    /// one node. Empty when there are no segments.
    levels: Vec<Vec<Mbr>>,
}

impl RTree {
    /// Builds the index over straight `from -> to` chords of every edge.
    ///
    /// Like the grid's endpoint index, this is blind to interior chain
    /// geometry — use [`RTree::build_with_geometry`] when edges carry
    /// polylines.
    pub fn build(g: &Graph) -> RTree {
        let mut segs = Vec::with_capacity(g.edge_count());
        for (i, e) in g.edges().enumerate() {
            segs.push(Segment::new(
                g.coord(e.from),
                g.coord(e.to),
                EdgeId(i as u32),
            ));
        }
        Self::pack(segs)
    }

    /// Builds the index over every segment of every edge's polyline
    /// (`coord(from)`, interior `geometry[e]` points, `coord(to)`), so
    /// folded edges are discoverable near their bends.
    ///
    /// # Panics
    /// If `geometry.len() != g.edge_count()` — the same contract as the
    /// grid index's geometry-aware constructor.
    pub fn build_with_geometry(g: &Graph, geometry: &[Vec<Point>]) -> RTree {
        assert_eq!(
            geometry.len(),
            g.edge_count(),
            "geometry must have one (possibly empty) chain per edge"
        );
        let mut segs = Vec::with_capacity(g.edge_count());
        for (i, e) in g.edges().enumerate() {
            let id = EdgeId(i as u32);
            let mut prev = g.coord(e.from);
            for &mid in &geometry[i] {
                segs.push(Segment::new(prev, mid, id));
                prev = mid;
            }
            segs.push(Segment::new(prev, g.coord(e.to), id));
        }
        Self::pack(segs)
    }

    /// STR packing: x-sort, tile into vertical slices, y-sort each slice,
    /// chunk into leaves; then stack levels of `FANOUT` consecutive nodes.
    fn pack(mut segs: Vec<Segment>) -> RTree {
        if segs.is_empty() {
            return RTree {
                segments: segs,
                levels: Vec::new(),
            };
        }
        let leaf_count = segs.len().div_ceil(LEAF_CAP);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_len = segs.len().div_ceil(slices);
        segs.sort_unstable_by(|a, b| a.center_x().total_cmp(&b.center_x()));
        for chunk in segs.chunks_mut(slice_len.max(1)) {
            chunk.sort_unstable_by(|a, b| a.center_y().total_cmp(&b.center_y()));
        }
        let mut leaves = Vec::with_capacity(leaf_count);
        for chunk in segs.chunks(LEAF_CAP) {
            let mut mbr = Mbr::EMPTY;
            for s in chunk {
                mbr.add_segment(s);
            }
            leaves.push(mbr);
        }
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let below = levels.last().unwrap();
            let mut above = Vec::with_capacity(below.len().div_ceil(FANOUT));
            for chunk in below.chunks(FANOUT) {
                let mut mbr = Mbr::EMPTY;
                for m in chunk {
                    mbr.add_mbr(m);
                }
                above.push(mbr);
            }
            levels.push(above);
        }
        RTree {
            segments: segs,
            levels,
        }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the index holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Ids of all edges with at least one polyline segment within
    /// `radius_m` of `p`, deduplicated and ascending — exactly the set a
    /// brute-force scan over every indexed segment returns.
    pub fn edges_within(&self, p: &Point, radius_m: f64) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.edges_within_into(p, radius_m, &mut out);
        out
    }

    /// Allocation-reusing form of [`RTree::edges_within`]: clears `out`
    /// and fills it with the same deduplicated ascending id set.
    ///
    /// The descent recurses instead of keeping an explicit stack: depth
    /// is the tree height (a handful of levels even at city scale), and
    /// recursion keeps the hot query path free of per-call heap
    /// allocation.
    pub fn edges_within_into(&self, p: &Point, radius_m: f64, out: &mut Vec<EdgeId>) {
        out.clear();
        if self.levels.is_empty() || radius_m < 0.0 || radius_m.is_nan() {
            return;
        }
        let r_sq = radius_m * radius_m;
        let top = self.levels.len() - 1;
        for node in 0..self.levels[top].len() {
            self.descend(top, node, p, radius_m, r_sq, out);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// DFS into `node` at `level` (0 = leaves), appending every in-radius
    /// edge id to `out`. Children of node `i` are the contiguous run
    /// `i * FANOUT ..` one level down — the packed layout needs no child
    /// pointers.
    fn descend(
        &self,
        level: usize,
        node: usize,
        p: &Point,
        radius_m: f64,
        r_sq: f64,
        out: &mut Vec<EdgeId>,
    ) {
        if self.levels[level][node].dist_sq(p) > r_sq {
            return;
        }
        if level == 0 {
            let lo = node * LEAF_CAP;
            let hi = (lo + LEAF_CAP).min(self.segments.len());
            for s in &self.segments[lo..hi] {
                // Cheap per-segment bounding-box rejection first: the
                // box distance never exceeds the true segment distance,
                // so skipping `box > r` segments cannot drop a hit, and
                // it spares the full projection for most of the leaf.
                let dx = (s.ax.min(s.bx) - p.x).max(0.0).max(p.x - s.ax.max(s.bx));
                let dy = (s.ay.min(s.by) - p.y).max(0.0).max(p.y - s.ay.max(s.by));
                if dx * dx + dy * dy > r_sq {
                    continue;
                }
                let a = Point::new(s.ax, s.ay);
                let b = Point::new(s.bx, s.by);
                // Same predicate as the grid's caller-side filter and
                // the brute-force ground truth — candidate sets must be
                // identical, not just equal up to boundary rounding.
                if point_segment_distance(p, &a, &b) <= radius_m {
                    out.push(s.edge);
                }
            }
        } else {
            let lo = node * FANOUT;
            let hi = (lo + FANOUT).min(self.levels[level - 1].len());
            for child in lo..hi {
                self.descend(level - 1, child, p, radius_m, r_sq, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{EdgeAttrs, RoadCategory, VertexId};

    fn grid_graph(side: usize, spacing: f64) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..side {
            for x in 0..side {
                b.add_vertex(Point::new(x as f64 * spacing, y as f64 * spacing));
            }
        }
        let at = |x: usize, y: usize| VertexId((y * side + x) as u32);
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    b.add_bidirectional(
                        at(x, y),
                        at(x + 1, y),
                        EdgeAttrs::with_default_speed(spacing, RoadCategory::Residential),
                    )
                    .unwrap();
                }
                if y + 1 < side {
                    b.add_bidirectional(
                        at(x, y),
                        at(x, y + 1),
                        EdgeAttrs::with_default_speed(spacing, RoadCategory::Residential),
                    )
                    .unwrap();
                }
            }
        }
        b.build()
    }

    fn brute_force(g: &Graph, p: &Point, r: f64) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = g
            .edges()
            .enumerate()
            .filter(|(_, e)| point_segment_distance(p, &g.coord(e.from), &g.coord(e.to)) <= r)
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn rtree_matches_brute_force_on_a_grid() {
        let g = grid_graph(9, 40.0);
        let tree = RTree::build(&g);
        assert_eq!(tree.len(), g.edge_count());
        for p in [
            Point::new(0.0, 0.0),
            Point::new(123.0, 77.0),
            Point::new(160.0, 160.0),
            Point::new(-35.0, 400.0),
            Point::new(1000.0, 1000.0),
        ] {
            for r in [0.0, 10.0, 45.0, 120.0, 1e4] {
                assert_eq!(tree.edges_within(&p, r), brute_force(&g, &p, r));
            }
        }
    }

    #[test]
    fn rtree_geometry_segments_make_folded_edges_visible() {
        // One edge folded into a U whose bottom passes far from both
        // endpoints; with chords only, a probe at the bottom misses it.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(40.0, 0.0));
        let e = b
            .add_edge(
                v0,
                v1,
                EdgeAttrs::with_default_speed(640.0, RoadCategory::Residential),
            )
            .unwrap();
        let g = b.build();
        let chain = vec![vec![Point::new(0.0, -300.0), Point::new(40.0, -300.0)]];
        let probe = Point::new(20.0, -295.0);
        let chords = RTree::build(&g);
        assert!(chords.edges_within(&probe, 30.0).is_empty());
        let folded = RTree::build_with_geometry(&g, &chain);
        assert_eq!(folded.edges_within(&probe, 30.0), vec![e]);
    }

    #[test]
    fn rtree_into_reuses_the_buffer() {
        let g = grid_graph(4, 25.0);
        let tree = RTree::build(&g);
        let mut buf = vec![EdgeId(999)];
        tree.edges_within_into(&Point::new(30.0, 30.0), 20.0, &mut buf);
        assert_eq!(buf, tree.edges_within(&Point::new(30.0, 30.0), 20.0));
        tree.edges_within_into(&Point::new(1e6, 1e6), 20.0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn rtree_empty_graph() {
        let g = GraphBuilder::new().build();
        let tree = RTree::build(&g);
        assert!(tree.is_empty());
        assert!(tree.edges_within(&Point::new(0.0, 0.0), 100.0).is_empty());
    }
}
