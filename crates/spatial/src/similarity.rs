//! Path similarity measures.
//!
//! The paper labels every candidate training path `P` with the **weighted
//! Jaccard similarity** between `P` and the trajectory path `P_T`:
//!
//! ```text
//!                    Σ_{e ∈ P ∩ P_T} w(e)
//! WJ(P, P_T) = ------------------------------
//!                    Σ_{e ∈ P ∪ P_T} w(e)
//! ```
//!
//! with `w(e)` the edge length (other weightings such as travel time are
//! supported through [`EdgeWeight`]). The same family of measures drives the
//! diversified top-k selection (D-TkDI), which keeps a newly enumerated path
//! only if it is sufficiently dissimilar from every path already kept.

use crate::graph::{EdgeId, Graph};
use crate::path::Path;

/// Sorted, deduplicated edge ids of a path. Sorting fixes the floating-
/// point summation order, making every similarity value fully
/// deterministic (hash-set iteration order is not).
fn sorted_edge_set(p: &Path) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = p.edges().to_vec();
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Which per-edge weight a similarity measure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWeight {
    /// Weight = edge length in metres (the paper's choice).
    Length,
    /// Weight = free-flow travel time in seconds.
    TravelTime,
    /// Weight = 1 per edge (plain set Jaccard).
    Unit,
}

impl EdgeWeight {
    #[inline]
    fn of(&self, g: &Graph, e: EdgeId) -> f64 {
        match self {
            EdgeWeight::Length => g.edge(e).attrs.length_m,
            EdgeWeight::TravelTime => g.edge(e).attrs.travel_time_s(),
            EdgeWeight::Unit => 1.0,
        }
    }
}

/// Weighted Jaccard similarity of two paths' edge sets.
///
/// Result is in `[0, 1]`; 1 iff the edge sets coincide, 0 iff they are
/// disjoint. Symmetric in its arguments.
pub fn weighted_jaccard(g: &Graph, a: &Path, b: &Path, weight: EdgeWeight) -> f64 {
    let ea = sorted_edge_set(a);
    let eb = sorted_edge_set(b);
    let mut inter = 0.0;
    let mut union = 0.0;
    // Sorted-merge walk over both edge sets.
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() || j < eb.len() {
        match (ea.get(i), eb.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                let w = weight.of(g, x);
                inter += w;
                union += w;
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                union += weight.of(g, x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                union += weight.of(g, y);
                j += 1;
            }
            (Some(&x), None) => {
                union += weight.of(g, x);
                i += 1;
            }
            (None, Some(&y)) => {
                union += weight.of(g, y);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    if union <= 0.0 {
        return 0.0;
    }
    inter / union
}

/// Plain (unweighted) Jaccard similarity of edge sets.
pub fn jaccard(g: &Graph, a: &Path, b: &Path) -> f64 {
    weighted_jaccard(g, a, b, EdgeWeight::Unit)
}

/// Overlap ratio used by diversified top-k selection: the fraction of `a`'s
/// weight shared with `b`,
/// `Σ_{e ∈ a ∩ b} w(e) / Σ_{e ∈ a} w(e)`.
///
/// Asymmetric: a short path fully contained in a long one has overlap 1 with
/// it, but the long path has overlap < 1 with the short one.
pub fn overlap_ratio(g: &Graph, a: &Path, b: &Path, weight: EdgeWeight) -> f64 {
    let set_b = sorted_edge_set(b);
    let mut shared = 0.0;
    let mut total = 0.0;
    for &e in sorted_edge_set(a).iter() {
        let w = weight.of(g, e);
        total += w;
        if set_b.binary_search(&e).is_ok() {
            shared += w;
        }
    }
    if total <= 0.0 {
        return 0.0;
    }
    shared / total
}

/// Weighted Sørensen–Dice coefficient: `2·|a ∩ b| / (|a| + |b|)` on edge
/// weights. Included because it is a common alternative ground-truth score;
/// the experiment harness can swap it in for ablations.
pub fn weighted_dice(g: &Graph, a: &Path, b: &Path, weight: EdgeWeight) -> f64 {
    let set_b = sorted_edge_set(b);
    let mut inter = 0.0;
    let mut wa = 0.0;
    for &e in sorted_edge_set(a).iter() {
        let w = weight.of(g, e);
        wa += w;
        if set_b.binary_search(&e).is_ok() {
            inter += w;
        }
    }
    let wb: f64 = set_b.iter().map(|&e| weight.of(g, e)).sum();
    if wa + wb <= 0.0 {
        return 0.0;
    }
    2.0 * inter / (wa + wb)
}

/// Longest-common-subsequence similarity over vertex sequences, normalised
/// by the longer sequence length. Captures order, unlike the set measures.
pub fn lcs_similarity(a: &Path, b: &Path) -> f64 {
    let va = a.vertices();
    let vb = b.vertices();
    let (n, m) = (va.len(), vb.len());
    if n == 0 || m == 0 {
        return 0.0;
    }
    // Rolling one-row DP to keep memory at O(min(n, m)).
    let (short, long) = if n <= m { (va, vb) } else { (vb, va) };
    let mut prev = vec![0u32; short.len() + 1];
    let mut curr = vec![0u32; short.len() + 1];
    for &lv in long {
        for (j, &sv) in short.iter().enumerate() {
            curr[j + 1] = if lv == sv {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let lcs = prev[short.len()] as f64;
    lcs / long.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory, VertexId};

    /// Two parallel routes 0 -> 1 -> 3 and 0 -> 2 -> 3 plus direct 0 -> 3.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = [(0.0, 0.0), (100.0, 50.0), (100.0, -50.0), (200.0, 0.0)]
            .iter()
            .map(|&(x, y)| b.add_vertex(Point::new(x, y)))
            .collect();
        let a = |len| EdgeAttrs::with_default_speed(len, RoadCategory::Residential);
        b.add_edge(v[0], v[1], a(120.0)).unwrap(); // e0
        b.add_edge(v[1], v[3], a(120.0)).unwrap(); // e1
        b.add_edge(v[0], v[2], a(130.0)).unwrap(); // e2
        b.add_edge(v[2], v[3], a(130.0)).unwrap(); // e3
        b.add_edge(v[0], v[3], a(400.0)).unwrap(); // e4
        b.build()
    }

    fn path(g: &Graph, vs: &[u32]) -> Path {
        Path::from_vertices(g, vs.iter().map(|&v| VertexId(v)).collect()).unwrap()
    }

    #[test]
    fn identical_paths_have_similarity_one() {
        let g = diamond();
        let p = path(&g, &[0, 1, 3]);
        for w in [EdgeWeight::Length, EdgeWeight::TravelTime, EdgeWeight::Unit] {
            assert!((weighted_jaccard(&g, &p, &p, w) - 1.0).abs() < 1e-12);
        }
        assert!((weighted_dice(&g, &p, &p, EdgeWeight::Length) - 1.0).abs() < 1e-12);
        assert!((overlap_ratio(&g, &p, &p, EdgeWeight::Length) - 1.0).abs() < 1e-12);
        assert!((lcs_similarity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_paths_have_similarity_zero() {
        let g = diamond();
        let p = path(&g, &[0, 1, 3]);
        let q = path(&g, &[0, 2, 3]);
        assert_eq!(weighted_jaccard(&g, &p, &q, EdgeWeight::Length), 0.0);
        assert_eq!(jaccard(&g, &p, &q), 0.0);
        assert_eq!(overlap_ratio(&g, &p, &q, EdgeWeight::Length), 0.0);
    }

    #[test]
    fn jaccard_matches_hand_computation() {
        let g = diamond();
        // p = 0-1-3 (edges e0 len 120, e1 len 120); r = direct 0-3 (e4, 400).
        // Mixed path sharing e0 with p: 0-1-3 vs 0-1 then direct? Build
        // overlap via prefix: q = 0-1-3 and p' = 0-1-3 trivially equal, so
        // instead compare p with a path sharing exactly e0.
        // Construct r2 = 0 -> 1 -> 3? that's p. Use overlap of p with
        // direct: 0. Then hand-check partial overlap on a longer route.
        let p = path(&g, &[0, 1, 3]);
        let direct = path(&g, &[0, 3]);
        assert_eq!(weighted_jaccard(&g, &p, &direct, EdgeWeight::Length), 0.0);
        // Unit jaccard between p and itself minus nothing: sanity on dice.
        let d = weighted_dice(&g, &p, &direct, EdgeWeight::Length);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn partial_overlap_weighted_jaccard() {
        let g = diamond();
        let p = path(&g, &[0, 1, 3]); // e0, e1: weights 120 + 120
                                      // Make a path sharing only e0 by extending: 0 -> 1 uses e0; then we
                                      // need an outgoing edge from 1 other than e1 — there is none, so
                                      // instead check overlap_ratio asymmetry with a sub-path.
        let pre = p.prefix(1).unwrap(); // 0 -> 1, edge e0
        let wj = weighted_jaccard(&g, &pre, &p, EdgeWeight::Length);
        assert!((wj - 120.0 / 240.0).abs() < 1e-12);
        // overlap(pre, p) = 1 (pre fully inside p), overlap(p, pre) = 0.5.
        assert!((overlap_ratio(&g, &pre, &p, EdgeWeight::Length) - 1.0).abs() < 1e-12);
        assert!((overlap_ratio(&g, &p, &pre, EdgeWeight::Length) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_is_symmetric() {
        let g = diamond();
        let p = path(&g, &[0, 1, 3]);
        let q = path(&g, &[0, 3]);
        for w in [EdgeWeight::Length, EdgeWeight::TravelTime, EdgeWeight::Unit] {
            assert_eq!(
                weighted_jaccard(&g, &p, &q, w),
                weighted_jaccard(&g, &q, &p, w)
            );
        }
    }

    #[test]
    fn lcs_similarity_partial() {
        let g = diamond();
        let p = path(&g, &[0, 1, 3]);
        let q = path(&g, &[0, 2, 3]);
        // LCS of [0,1,3] and [0,2,3] is [0,3] -> 2/3.
        assert!((lcs_similarity(&p, &q) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dice_vs_jaccard_relation() {
        // D = 2J/(1+J) for set measures; check on a partial overlap.
        let g = diamond();
        let p = path(&g, &[0, 1, 3]);
        let pre = p.prefix(1).unwrap();
        let j = weighted_jaccard(&g, &pre, &p, EdgeWeight::Length);
        let d = weighted_dice(&g, &pre, &p, EdgeWeight::Length);
        assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::algo::yen::YenIter;
    use crate::generators::{grid_network, GridConfig};
    use crate::graph::{CostModel, VertexId};
    use proptest::prelude::*;

    /// Draws two simple paths between random endpoints of a fixed grid by
    /// enumerating shortest paths and picking by index.
    fn two_paths(
        g: &Graph,
        s: u32,
        t: u32,
        i: usize,
        j: usize,
    ) -> Option<(crate::path::Path, crate::path::Path)> {
        let s = VertexId(s % g.vertex_count() as u32);
        let t = VertexId(t % g.vertex_count() as u32);
        if s == t {
            return None;
        }
        let paths: Vec<_> = YenIter::new(g, s, t, CostModel::Length)
            .take(8)
            .map(|(p, _)| p)
            .collect();
        if paths.is_empty() {
            return None;
        }
        let a = paths[i % paths.len()].clone();
        let b = paths[j % paths.len()].clone();
        Some((a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn weighted_jaccard_bounded_symmetric_reflexive(
            s in 0u32..25, t in 0u32..25, i in 0usize..8, j in 0usize..8,
        ) {
            let g = grid_network(&GridConfig::small_test(), 5);
            let Some((a, b)) = two_paths(&g, s, t, i, j) else { return Ok(()) };
            for w in [EdgeWeight::Length, EdgeWeight::TravelTime, EdgeWeight::Unit] {
                let ab = weighted_jaccard(&g, &a, &b, w);
                let ba = weighted_jaccard(&g, &b, &a, w);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
                prop_assert!((ab - ba).abs() < 1e-12, "symmetry violated");
                prop_assert!((weighted_jaccard(&g, &a, &a, w) - 1.0).abs() < 1e-12);
                // Same route <=> similarity 1 under positive weights.
                if a.same_route(&b) {
                    prop_assert!((ab - 1.0).abs() < 1e-12);
                } else {
                    prop_assert!(ab < 1.0 - 1e-12, "distinct simple routes with the \
                        same endpoints must differ in some edge");
                }
            }
        }

        #[test]
        fn dice_jaccard_identity_holds_generally(
            s in 0u32..25, t in 0u32..25, i in 0usize..8, j in 0usize..8,
        ) {
            let g = grid_network(&GridConfig::small_test(), 5);
            let Some((a, b)) = two_paths(&g, s, t, i, j) else { return Ok(()) };
            let jac = weighted_jaccard(&g, &a, &b, EdgeWeight::Length);
            let dice = weighted_dice(&g, &a, &b, EdgeWeight::Length);
            prop_assert!((dice - 2.0 * jac / (1.0 + jac)).abs() < 1e-9);
        }

        #[test]
        fn overlap_ratio_bounds_and_containment(
            s in 0u32..25, t in 0u32..25, i in 0usize..8, j in 0usize..8,
        ) {
            let g = grid_network(&GridConfig::small_test(), 5);
            let Some((a, b)) = two_paths(&g, s, t, i, j) else { return Ok(()) };
            let r = overlap_ratio(&g, &a, &b, EdgeWeight::Length);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
            // overlap(a, a) = 1 and overlap is bounded by jaccard from below.
            prop_assert!((overlap_ratio(&g, &a, &a, EdgeWeight::Length) - 1.0).abs() < 1e-12);
            let jac = weighted_jaccard(&g, &a, &b, EdgeWeight::Length);
            prop_assert!(r + 1e-12 >= jac, "overlap >= jaccard (union >= |a|)");
        }

        #[test]
        fn lcs_bounded_and_reflexive(
            s in 0u32..25, t in 0u32..25, i in 0usize..8, j in 0usize..8,
        ) {
            let g = grid_network(&GridConfig::small_test(), 5);
            let Some((a, b)) = two_paths(&g, s, t, i, j) else { return Ok(()) };
            let sim = lcs_similarity(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&sim));
            prop_assert!((lcs_similarity(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((lcs_similarity(&a, &b) - lcs_similarity(&b, &a)).abs() < 1e-12);
            // Paths share at least source and target: LCS >= 2 entries.
            prop_assert!(sim >= 2.0 / a.vertices().len().max(b.vertices().len()) as f64 - 1e-12);
        }
    }
}
