//! Mutable construction of [`Graph`]s.

use crate::error::SpatialError;
use crate::geometry::Point;
use crate::graph::{EdgeAttrs, EdgeId, EdgeRecord, Graph, VertexId};

/// Incrementally builds a [`Graph`]; [`GraphBuilder::build`] freezes it into
/// CSR form.
///
/// ```
/// use pathrank_spatial::builder::GraphBuilder;
/// use pathrank_spatial::geometry::Point;
/// use pathrank_spatial::graph::{EdgeAttrs, RoadCategory};
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_vertex(Point::new(0.0, 0.0));
/// let v = b.add_vertex(Point::new(100.0, 0.0));
/// b.add_bidirectional(u, v, EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential))
///     .unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 2);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    coords: Vec<Point>,
    edges: Vec<EdgeRecord>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-allocated capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            coords: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex at `coord` and returns its id.
    pub fn add_vertex(&mut self, coord: Point) -> VertexId {
        let id = VertexId(self.coords.len() as u32);
        self.coords.push(coord);
        id
    }

    /// Coordinate of a previously added vertex.
    pub fn coord(&self, v: VertexId) -> Point {
        self.coords[v.index()]
    }

    /// Adds a directed edge. Fails if either endpoint is unknown, the edge
    /// is a self-loop, or the attributes are not positive and finite.
    pub fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        attrs: EdgeAttrs,
    ) -> Result<EdgeId, SpatialError> {
        let n = self.coords.len();
        for v in [from, to] {
            if v.index() >= n {
                return Err(SpatialError::VertexOutOfBounds { vertex: v, len: n });
            }
        }
        if from == to {
            return Err(SpatialError::InvalidAttribute(format!(
                "self-loop at vertex {} is not allowed",
                from.0
            )));
        }
        if !(attrs.length_m.is_finite() && attrs.length_m > 0.0) {
            return Err(SpatialError::InvalidAttribute(format!(
                "edge length must be positive and finite, got {}",
                attrs.length_m
            )));
        }
        if !(attrs.speed_kmh.is_finite() && attrs.speed_kmh > 0.0) {
            return Err(SpatialError::InvalidAttribute(format!(
                "edge speed must be positive and finite, got {}",
                attrs.speed_kmh
            )));
        }
        // Denormal (but positive) speeds would survive the check above
        // yet overflow `travel_time_s` to infinity; clamp them into the
        // same band the live mutation entry points enforce.
        let mut attrs = attrs;
        attrs.speed_kmh = attrs.speed_kmh.clamp(
            crate::graph::MIN_EDGE_SPEED_KMH,
            crate::graph::MAX_EDGE_SPEED_KMH,
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { from, to, attrs });
        Ok(id)
    }

    /// Adds the pair of directed edges `(from -> to, to -> from)` with the
    /// same attributes and returns the forward edge id.
    pub fn add_bidirectional(
        &mut self,
        from: VertexId,
        to: VertexId,
        attrs: EdgeAttrs,
    ) -> Result<EdgeId, SpatialError> {
        let fwd = self.add_edge(from, to, attrs)?;
        self.add_edge(to, from, attrs)?;
        Ok(fwd)
    }

    /// Whether a directed edge `from -> to` has already been added.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.coords.len();
        let m = self.edges.len();

        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for e in &self.edges {
            out_offsets[e.from.index() + 1] += 1;
            in_offsets[e.to.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }

        let mut out_targets = vec![VertexId(0); m];
        let mut out_edge_ids = vec![EdgeId(0); m];
        let mut in_sources = vec![VertexId(0); m];
        let mut in_edge_ids = vec![EdgeId(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            let oc = &mut out_cursor[e.from.index()];
            out_targets[*oc as usize] = e.to;
            out_edge_ids[*oc as usize] = id;
            *oc += 1;
            let ic = &mut in_cursor[e.to.index()];
            in_sources[*ic as usize] = e.from;
            in_edge_ids[*ic as usize] = id;
            *ic += 1;
        }

        let max_speed_kmh = self
            .edges
            .iter()
            .map(|e| e.attrs.speed_kmh)
            .fold(f64::MIN, f64::max);

        Graph {
            coords: self.coords,
            out_offsets,
            out_targets,
            out_edge_ids,
            in_offsets,
            in_sources,
            in_edge_ids,
            edge_records: self.edges,
            weights_epoch: 0,
            max_speed_kmh,
        }
    }

    /// Builds a sub-graph restricted to `keep` (ascending list of vertex
    /// ids). Vertices are re-numbered densely in the order given; edges with
    /// either endpoint outside `keep` are dropped. Returns the new graph and
    /// the mapping `old id -> new id`.
    pub fn build_induced(self, keep: &[VertexId]) -> (Graph, Vec<Option<VertexId>>) {
        let n = self.coords.len();
        let mut remap: Vec<Option<VertexId>> = vec![None; n];
        let mut b = GraphBuilder::with_capacity(keep.len(), self.edges.len());
        for &old in keep {
            let new = b.add_vertex(self.coords[old.index()]);
            remap[old.index()] = Some(new);
        }
        for e in &self.edges {
            if let (Some(nf), Some(nt)) = (remap[e.from.index()], remap[e.to.index()]) {
                b.add_edge(nf, nt, e.attrs)
                    .expect("attrs already validated");
            }
        }
        (b.build(), remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadCategory;

    fn attrs(len: f64) -> EdgeAttrs {
        EdgeAttrs::with_default_speed(len, RoadCategory::Residential)
    }

    #[test]
    fn rejects_out_of_bounds_vertex() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let err = b.add_edge(v0, VertexId(7), attrs(10.0)).unwrap_err();
        assert!(matches!(err, SpatialError::VertexOutOfBounds { .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        assert!(b.add_edge(v0, v0, attrs(10.0)).is_err());
    }

    #[test]
    fn rejects_bad_attributes() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        for bad_len in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            assert!(b.add_edge(v0, v1, attrs(bad_len)).is_err());
        }
        let bad_speed = EdgeAttrs {
            length_m: 5.0,
            speed_kmh: 0.0,
            category: RoadCategory::Rural,
        };
        assert!(b.add_edge(v0, v1, bad_speed).is_err());
    }

    #[test]
    fn clamps_denormal_speed_at_build() {
        use crate::graph::{MAX_EDGE_SPEED_KMH, MIN_EDGE_SPEED_KMH};
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let denormal = EdgeAttrs {
            length_m: 5.0,
            speed_kmh: 1e-310,
            category: RoadCategory::Rural,
        };
        let e = b.add_edge(v0, v1, denormal).unwrap();
        let fast = EdgeAttrs {
            length_m: 5.0,
            speed_kmh: 1e12,
            category: RoadCategory::Rural,
        };
        let e2 = b.add_edge(v1, v0, fast).unwrap();
        let g = b.build();
        assert_eq!(g.edge(e).attrs.speed_kmh, MIN_EDGE_SPEED_KMH);
        assert!(g.edge(e).attrs.travel_time_s().is_finite());
        assert_eq!(g.edge(e2).attrs.speed_kmh, MAX_EDGE_SPEED_KMH);
    }

    #[test]
    fn edge_ids_are_sequential() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let e0 = b.add_edge(v0, v1, attrs(1.0)).unwrap();
        let e1 = b.add_edge(v1, v0, attrs(1.0)).unwrap();
        assert_eq!(e0, EdgeId(0));
        assert_eq!(e1, EdgeId(1));
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        b.add_bidirectional(v0, v1, attrs(1.0)).unwrap();
        assert_eq!(b.edge_count(), 2);
        assert!(b.has_edge(v0, v1));
        assert!(b.has_edge(v1, v0));
        let g = b.build();
        assert_eq!(g.out_degree(v0), 1);
        assert_eq!(g.in_degree(v0), 1);
    }

    #[test]
    fn build_induced_renumbers_and_filters() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge(v0, v1, attrs(1.0)).unwrap();
        b.add_edge(v1, v2, attrs(1.0)).unwrap();
        b.add_edge(v2, v0, attrs(1.0)).unwrap();
        let (g, remap) = b.build_induced(&[v0, v2]);
        assert_eq!(g.vertex_count(), 2);
        // Only v2 -> v0 survives.
        assert_eq!(g.edge_count(), 1);
        assert_eq!(remap[v1.index()], None);
        assert_eq!(remap[v0.index()], Some(VertexId(0)));
        assert_eq!(remap[v2.index()], Some(VertexId(1)));
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
