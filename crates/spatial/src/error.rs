//! Error type shared by the spatial crate.

use std::fmt;

use crate::graph::VertexId;

/// Errors produced while building or querying a spatial network.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialError {
    /// A vertex id referenced an index outside the graph.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        len: usize,
    },
    /// An edge was requested between two vertices that are not adjacent.
    NoSuchEdge {
        /// Tail of the requested edge.
        from: VertexId,
        /// Head of the requested edge.
        to: VertexId,
    },
    /// A path constructor was given a vertex sequence that is not connected
    /// in the graph.
    DisconnectedSequence {
        /// Position in the sequence at which connectivity fails.
        at: usize,
    },
    /// A path constructor was given fewer than two vertices.
    TooShort,
    /// No path exists between the requested vertices.
    Unreachable {
        /// Source vertex of the failed query.
        source: VertexId,
        /// Target vertex of the failed query.
        target: VertexId,
    },
    /// An edge attribute was invalid (e.g. non-positive length).
    InvalidAttribute(String),
    /// Parsing a serialised graph failed.
    Parse(String),
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::VertexOutOfBounds { vertex, len } => {
                write!(
                    f,
                    "vertex {} out of bounds (graph has {} vertices)",
                    vertex.0, len
                )
            }
            SpatialError::NoSuchEdge { from, to } => {
                write!(f, "no edge from vertex {} to vertex {}", from.0, to.0)
            }
            SpatialError::DisconnectedSequence { at } => {
                write!(f, "vertex sequence disconnected at position {at}")
            }
            SpatialError::TooShort => write!(f, "a path needs at least two vertices"),
            SpatialError::Unreachable { source, target } => {
                write!(
                    f,
                    "vertex {} is unreachable from vertex {}",
                    target.0, source.0
                )
            }
            SpatialError::InvalidAttribute(msg) => write!(f, "invalid edge attribute: {msg}"),
            SpatialError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SpatialError {}
