//! Geodesic geometry: great-circle distances and a local planar
//! projection for real (lat/lon) road networks.
//!
//! The synthetic [`crate::generators`] live in a planar metre grid where
//! Euclidean geometry is exact, and every downstream consumer — A*
//! heuristics, the map matcher's `EdgeIndex`, GPS noise models — assumes
//! planar coordinates. Real OSM extracts come as WGS84 lat/lon instead,
//! where naive Euclidean arithmetic over degrees is wrong by a factor of
//! ~111 000 (and latitude-dependent). This module is the bridge:
//!
//! * [`haversine_m`] — the great-circle distance the importer uses for
//!   edge *lengths* (the quantity routing costs are built from);
//! * [`LocalProjection`] — an equirectangular projection centred on the
//!   extract that maps lat/lon into the crate's planar metre
//!   [`Point`]s, so the `EdgeIndex` grid, point-to-segment projections
//!   and Euclidean heuristic floors all keep working unchanged. At city
//!   scale (tens of km) the projection error is well below GPS noise;
//!   exactness of routing never depends on it because the engine derives
//!   its A* rate from per-edge `cost / span` minima
//!   ([`crate::algo::engine::safe_heuristic_bound`]), which absorbs any
//!   residual distortion.

use crate::geometry::Point;

/// Mean Earth radius in metres (IUGG arithmetic mean radius).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle (haversine) distance between two WGS84 coordinates, in
/// metres. Inputs are degrees; the result is symmetric, non-negative and
/// satisfies the triangle inequality (it is a metric on the sphere).
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let phi1 = lat1.to_radians();
    let phi2 = lat2.to_radians();
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let s1 = (dphi / 2.0).sin();
    let s2 = (dlambda / 2.0).sin();
    let a = s1 * s1 + phi1.cos() * phi2.cos() * s2 * s2;
    // Clamp before the sqrt/asin: rounding can push `a` epsilon outside
    // [0, 1] for antipodal or coincident points.
    2.0 * EARTH_RADIUS_M * a.max(0.0).sqrt().min(1.0).asin()
}

/// Wraps a longitude difference (or longitude) into [-180, 180)
/// degrees.
#[inline]
pub fn wrap_degrees(deg: f64) -> f64 {
    let w = deg.rem_euclid(360.0);
    if w >= 180.0 {
        w - 360.0
    } else {
        w
    }
}

/// Whether `(lat, lon)` is a finite, in-range WGS84 coordinate.
pub fn valid_lat_lon(lat: f64, lon: f64) -> bool {
    lat.is_finite()
        && lon.is_finite()
        && (-90.0..=90.0).contains(&lat)
        && (-180.0..=180.0).contains(&lon)
}

/// An equirectangular projection centred on a reference coordinate:
/// `x = R · Δλ · cos φ₀`, `y = R · Δφ`. Exactly invertible (away from
/// the poles), metre-scaled on both axes, and accurate to a fraction of
/// a percent over the city-scale extents road-network extracts cover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    /// Reference latitude (degrees) — maps to `y = 0`.
    pub lat0: f64,
    /// Reference longitude (degrees) — maps to `x = 0`.
    pub lon0: f64,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Creates a projection centred on `(lat0, lon0)`. The reference
    /// latitude is clamped into (-89.9°, 89.9°) so the inverse stays
    /// well-conditioned.
    pub fn new(lat0: f64, lon0: f64) -> Self {
        let lat0 = lat0.clamp(-89.9, 89.9);
        LocalProjection {
            lat0,
            lon0,
            cos_lat0: lat0.to_radians().cos(),
        }
    }

    /// A projection centred on the mean of the given coordinates
    /// (`None` for an empty iterator). Longitudes are averaged as
    /// *wrapped offsets from the first coordinate*, so an extract
    /// straddling the ±180° antimeridian centres on the extract — not
    /// on the far side of the planet.
    pub fn centred_on(coords: impl IntoIterator<Item = (f64, f64)>) -> Option<Self> {
        let (mut n, mut lat, mut dlon_sum) = (0usize, 0.0f64, 0.0f64);
        let mut lon_ref = 0.0f64;
        for (la, lo) in coords {
            if n == 0 {
                lon_ref = lo;
            }
            n += 1;
            lat += la;
            dlon_sum += wrap_degrees(lo - lon_ref);
        }
        if n == 0 {
            return None;
        }
        Some(Self::new(
            lat / n as f64,
            wrap_degrees(lon_ref + dlon_sum / n as f64),
        ))
    }

    /// Projects a WGS84 coordinate (degrees) into local planar metres.
    /// The longitude offset is wrapped into ±180°, so coordinates just
    /// across the antimeridian from the origin land next to it.
    #[inline]
    pub fn project(&self, lat: f64, lon: f64) -> Point {
        Point {
            x: wrap_degrees(lon - self.lon0).to_radians() * self.cos_lat0 * EARTH_RADIUS_M,
            y: (lat - self.lat0).to_radians() * EARTH_RADIUS_M,
        }
    }

    /// Inverse of [`LocalProjection::project`]; the returned longitude
    /// is wrapped into [-180, 180).
    #[inline]
    pub fn unproject(&self, p: Point) -> (f64, f64) {
        let lat = self.lat0 + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = wrap_degrees(self.lon0 + (p.x / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees());
        (lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// One degree of latitude (or of longitude at the equator):
    /// 2πR / 360.
    const DEGREE_M: f64 = 2.0 * std::f64::consts::PI * EARTH_RADIUS_M / 360.0;

    #[test]
    fn equator_degree_is_exact() {
        let d = haversine_m(0.0, 0.0, 0.0, 1.0);
        assert!((d - DEGREE_M).abs() < 1e-6, "{d} vs {DEGREE_M}");
        let d = haversine_m(0.0, 0.0, 1.0, 0.0);
        assert!((d - DEGREE_M).abs() < 1e-6, "meridian degree {d}");
    }

    #[test]
    fn known_city_pairs() {
        // Great-circle distances, checked against published figures.
        // Aalborg -> Copenhagen (the paper's network is Aalborg):
        let aal_cph = haversine_m(57.0488, 9.9217, 55.6761, 12.5683);
        assert!(
            (219_000.0..228_000.0).contains(&aal_cph),
            "Aalborg-Copenhagen {aal_cph}"
        );
        // London -> Paris (~343 km):
        let lon_par = haversine_m(51.5074, -0.1278, 48.8566, 2.3522);
        assert!(
            (339_000.0..349_000.0).contains(&lon_par),
            "London-Paris {lon_par}"
        );
        // New York -> Los Angeles (~3936 km):
        let nyc_la = haversine_m(40.7128, -74.0060, 34.0522, -118.2437);
        assert!(
            (3_920_000.0..3_955_000.0).contains(&nyc_la),
            "NYC-LA {nyc_la}"
        );
    }

    #[test]
    fn degenerate_and_extreme_inputs() {
        assert_eq!(haversine_m(57.0, 9.9, 57.0, 9.9), 0.0);
        // Antipodal points: half the circumference, no NaN from the
        // clamped asin.
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        let d = haversine_m(0.0, 0.0, 0.0, 180.0);
        assert!((d - half).abs() < 1.0, "{d} vs {half}");
        assert!(valid_lat_lon(90.0, 180.0));
        assert!(!valid_lat_lon(90.1, 0.0));
        assert!(!valid_lat_lon(0.0, -180.5));
        assert!(!valid_lat_lon(f64::NAN, 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn haversine_is_symmetric_and_nonnegative(
            a in (-80.0f64..80.0, -179.0f64..179.0),
            b in (-80.0f64..80.0, -179.0f64..179.0),
        ) {
            let ab = haversine_m(a.0, a.1, b.0, b.1);
            let ba = haversine_m(b.0, b.1, a.0, a.1);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() < 1e-6, "asymmetry {ab} vs {ba}");
        }

        #[test]
        fn haversine_triangle_inequality(
            a in (-80.0f64..80.0, -179.0f64..179.0),
            b in (-80.0f64..80.0, -179.0f64..179.0),
            c in (-80.0f64..80.0, -179.0f64..179.0),
        ) {
            let ab = haversine_m(a.0, a.1, b.0, b.1);
            let bc = haversine_m(b.0, b.1, c.0, c.1);
            let ac = haversine_m(a.0, a.1, c.0, c.1);
            prop_assert!(ac <= ab + bc + 1e-6, "triangle violated: {ac} > {ab} + {bc}");
        }

        #[test]
        fn projection_round_trips(
            lat0 in -70.0f64..70.0,
            lon0 in -170.0f64..170.0,
            dlat in -0.3f64..0.3,
            dlon in -0.3f64..0.3,
        ) {
            let proj = LocalProjection::new(lat0, lon0);
            let (lat, lon) = (lat0 + dlat, lon0 + dlon);
            let p = proj.project(lat, lon);
            let (la, lo) = proj.unproject(p);
            prop_assert!((la - lat).abs() < 1e-9, "lat {la} vs {lat}");
            prop_assert!((lo - lon).abs() < 1e-9, "lon {lo} vs {lon}");
        }

        #[test]
        fn projection_matches_haversine_at_city_scale(
            lat0 in -60.0f64..60.0,
            lon0 in -170.0f64..170.0,
            dlat in (-0.05f64..0.05),
            dlon in (-0.05f64..0.05),
            dlat2 in (-0.05f64..0.05),
            dlon2 in (-0.05f64..0.05),
        ) {
            // Within a ~10 km extent the planar distance between two
            // projected points tracks the geodesic to ≈0.1%: the planar
            // substrate (EdgeIndex cells, GPS noise, heuristic floors)
            // stays metrically faithful on imported networks.
            let proj = LocalProjection::new(lat0, lon0);
            let (a_lat, a_lon) = (lat0 + dlat, lon0 + dlon);
            let (b_lat, b_lon) = (lat0 + dlat2, lon0 + dlon2);
            let planar = proj.project(a_lat, a_lon).distance(&proj.project(b_lat, b_lon));
            let geodesic = haversine_m(a_lat, a_lon, b_lat, b_lon);
            let err = (planar - geodesic).abs();
            prop_assert!(
                err <= 0.002 * geodesic + 0.5,
                "planar {planar} vs geodesic {geodesic} (err {err})"
            );
        }
    }

    #[test]
    fn antimeridian_extracts_project_locally() {
        // A "city" straddling ±180° (Taveuni-style): the centre must be
        // on the extract, and both sides must land next to each other.
        let coords = [(-16.8, 179.95), (-16.8, -179.95), (-16.9, 179.98)];
        let proj = LocalProjection::centred_on(coords).unwrap();
        assert!(
            proj.lon0.abs() > 179.0,
            "centre must stay near the antimeridian, got {}",
            proj.lon0
        );
        for &(la, lo) in &coords {
            let p = proj.project(la, lo);
            assert!(
                p.x.abs() < 50_000.0 && p.y.abs() < 50_000.0,
                "({la}, {lo}) projected {} km away",
                (p.x.hypot(p.y) / 1000.0).round()
            );
            // Planar distance across the seam tracks the geodesic.
            let (la2, lo2) = proj.unproject(p);
            assert!(haversine_m(la, lo, la2, lo2) < 1.0);
        }
        let a = proj.project(-16.8, 179.95);
        let b = proj.project(-16.8, -179.95);
        let geodesic = haversine_m(-16.8, 179.95, -16.8, -179.95);
        assert!((a.distance(&b) - geodesic).abs() < 0.01 * geodesic);
        assert_eq!(wrap_degrees(190.0), -170.0);
        assert_eq!(wrap_degrees(-190.0), 170.0);
        assert_eq!(wrap_degrees(0.0), 0.0);
    }

    #[test]
    fn centred_on_means_coordinates() {
        let p = LocalProjection::centred_on([(56.0, 9.0), (58.0, 11.0)]).unwrap();
        assert!((p.lat0 - 57.0).abs() < 1e-12);
        assert!((p.lon0 - 10.0).abs() < 1e-12);
        assert!(LocalProjection::centred_on(std::iter::empty()).is_none());
        // The origin projects to (0, 0).
        let o = p.project(57.0, 10.0);
        assert!(o.x.abs() < 1e-9 && o.y.abs() < 1e-9);
    }
}
