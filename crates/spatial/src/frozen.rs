//! Cache-compact immutable serving representation of a [`Graph`].
//!
//! The builder [`Graph`] keeps three parallel structures per direction
//! (`out_targets`, `out_edge_ids`, `edge_records`), so relaxing one arc
//! costs three dependent loads plus a division
//! (`length_m / (speed_kmh / 3.6)`) to derive the travel time. A
//! [`FrozenGraph`] collapses all of that into one merged forward/backward
//! CSR whose arc entries inline everything the inner Dijkstra/A* loop
//! needs — `(target, edge_id, length_m, travel_time_s)` — so relaxation
//! touches exactly one contiguous array and pays zero divisions.
//!
//! Weights are precomputed with *exactly* the expressions
//! [`crate::graph::CostModel::edge_cost`] uses (`travel_time_s` is
//! `length_m / (speed_kmh / 3.6)`, evaluated once at freeze time), and
//! arcs are laid out in the same order the builder CSR enumerates them,
//! so a search over the frozen form settles vertices in the same order,
//! breaks ties the same way, and returns bit-identical distances and
//! paths. [`crate::algo::engine::QueryEngine`] exploits this: when a
//! frozen graph is mounted and its weights epoch matches, `Plain` and
//! `Alt` searches run on the frozen arcs transparently.
//!
//! The frozen form also carries `f32` vertex coordinates — enough
//! precision for snapping geometry and half the footprint — and is the
//! unit of persistence for the fixed-width binary section in
//! [`crate::io`] (designed so a future loader can map the arc array
//! straight off disk).

use crate::geometry::Point;
use crate::graph::{Graph, VertexId};

/// One directed arc of a [`FrozenGraph`]: everything the relaxation loop
/// needs, inline, in 24 bytes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrozenArc {
    /// Head vertex of the arc (tail vertex for backward arcs).
    pub target: u32,
    /// Id of the underlying [`Graph`] edge — indexes `Custom` cost
    /// slices and recovers the [`crate::graph::EdgeRecord`].
    pub edge_id: u32,
    /// Edge length in metres (the `Length` metric weight).
    pub length_m: f64,
    /// Free-flow travel time in seconds (the `TravelTime` metric
    /// weight), precomputed as `length_m / (speed_kmh / 3.6)` — bit
    /// identical to [`crate::graph::EdgeAttrs::travel_time_s`].
    pub travel_time_s: f64,
}

/// Immutable merged-CSR serving graph; see the [module docs](self).
///
/// Built with [`FrozenGraph::freeze`]; persisted by
/// [`crate::io::write_frozen`] / [`crate::io::read_frozen`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenGraph {
    pub(crate) vertex_count: u32,
    pub(crate) edge_count: u32,
    /// `n + 1` offsets into the forward block of `arcs`.
    pub(crate) fwd_offsets: Vec<u32>,
    /// `n + 1` *absolute* offsets into `arcs`; the backward block
    /// occupies `arcs[m..2m]`, so `bwd_offsets[0] == m`.
    pub(crate) bwd_offsets: Vec<u32>,
    /// Forward arcs for all vertices, then backward arcs — `2m` total,
    /// each block in the same order the builder CSR enumerates.
    pub(crate) arcs: Vec<FrozenArc>,
    /// Vertex coordinates narrowed to `f32` — snapping geometry only;
    /// exact routing heuristics keep using the builder graph's `f64`
    /// coordinates.
    pub(crate) coords_f32: Vec<(f32, f32)>,
    /// Weights epoch of the [`Graph`] this was frozen from; the query
    /// layer refuses to pair a mutated graph with a stale frozen form.
    pub(crate) weights_epoch: u64,
}

impl FrozenGraph {
    /// Derives the frozen serving form of `g`.
    ///
    /// Arc order within each vertex's slice is copied verbatim from the
    /// builder CSR, and weights are computed with the exact expressions
    /// [`crate::graph::CostModel::edge_cost`] uses, so searches over the
    /// result are bit-identical to searches over `g`.
    pub fn freeze(g: &Graph) -> FrozenGraph {
        let n = g.vertex_count();
        let m = g.edge_count();
        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut bwd_offsets = Vec::with_capacity(n + 1);
        let mut arcs = Vec::with_capacity(2 * m);
        for v in g.vertices() {
            fwd_offsets.push(arcs.len() as u32);
            for (head, e) in g.out_edges(v) {
                let attrs = g.edge(e).attrs;
                arcs.push(FrozenArc {
                    target: head.0,
                    edge_id: e.0,
                    length_m: attrs.length_m,
                    travel_time_s: attrs.travel_time_s(),
                });
            }
        }
        fwd_offsets.push(arcs.len() as u32);
        debug_assert_eq!(arcs.len(), m);
        for v in g.vertices() {
            bwd_offsets.push(arcs.len() as u32);
            for (tail, e) in g.in_edges(v) {
                let attrs = g.edge(e).attrs;
                arcs.push(FrozenArc {
                    target: tail.0,
                    edge_id: e.0,
                    length_m: attrs.length_m,
                    travel_time_s: attrs.travel_time_s(),
                });
            }
        }
        bwd_offsets.push(arcs.len() as u32);
        debug_assert_eq!(arcs.len(), 2 * m);
        let coords_f32 = g
            .coords()
            .iter()
            .map(|p| (p.x as f32, p.y as f32))
            .collect();
        FrozenGraph {
            vertex_count: n as u32,
            edge_count: m as u32,
            fwd_offsets,
            bwd_offsets,
            arcs,
            coords_f32,
            weights_epoch: g.weights_epoch(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count as usize
    }

    /// Number of directed edges of the source graph (the arc array holds
    /// twice this: forward block then backward block).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count as usize
    }

    /// Weights epoch of the source [`Graph`] at freeze time.
    #[inline]
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// Whether this frozen form was derived from a graph shaped like `g`
    /// (same vertex and edge counts) and is still weight-current.
    #[inline]
    pub fn current_for(&self, g: &Graph) -> bool {
        self.vertex_count() == g.vertex_count()
            && self.edge_count() == g.edge_count()
            && self.weights_epoch == g.weights_epoch()
    }

    /// Outgoing arcs of `v`, in builder-CSR order.
    #[inline]
    pub fn out_arcs(&self, v: VertexId) -> &[FrozenArc] {
        let lo = self.fwd_offsets[v.index()] as usize;
        let hi = self.fwd_offsets[v.index() + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Incoming arcs of `v` (each arc's `target` is the *tail* vertex),
    /// in builder-CSR order.
    #[inline]
    pub fn in_arcs(&self, v: VertexId) -> &[FrozenArc] {
        let lo = self.bwd_offsets[v.index()] as usize;
        let hi = self.bwd_offsets[v.index() + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Vertex coordinate narrowed to `f32`.
    #[inline]
    pub fn coord_f32(&self, v: VertexId) -> (f32, f32) {
        self.coords_f32[v.index()]
    }

    /// All `f32` vertex coordinates, indexed by vertex id.
    #[inline]
    pub fn coords_f32(&self) -> &[(f32, f32)] {
        &self.coords_f32
    }

    /// Vertex coordinate widened back to a [`Point`] (snapping-precision
    /// only — roughly 7 significant digits survive the `f32` round trip).
    #[inline]
    pub fn coord(&self, v: VertexId) -> Point {
        let (x, y) = self.coords_f32[v.index()];
        Point::new(x as f64, y as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{CostModel, EdgeAttrs, RoadCategory};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 50.0));
        let v2 = b.add_vertex(Point::new(100.0, -50.0));
        let v3 = b.add_vertex(Point::new(200.0, 0.0));
        for (a, z, len, cat) in [
            (v0, v1, 120.0, RoadCategory::Residential),
            (v0, v2, 115.0, RoadCategory::Arterial),
            (v1, v3, 130.0, RoadCategory::Residential),
            (v2, v3, 118.0, RoadCategory::Highway),
            (v3, v0, 210.0, RoadCategory::Rural),
        ] {
            b.add_edge(a, z, EdgeAttrs::with_default_speed(len, cat))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn frozen_mirrors_builder_csr_order_and_weights() {
        let g = diamond();
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(fz.vertex_count(), g.vertex_count());
        assert_eq!(fz.edge_count(), g.edge_count());
        assert_eq!(fz.weights_epoch(), g.weights_epoch());
        assert_eq!(fz.arcs.len(), 2 * g.edge_count());
        for v in g.vertices() {
            let fwd: Vec<_> = g.out_edges(v).collect();
            let arcs = fz.out_arcs(v);
            assert_eq!(arcs.len(), fwd.len());
            for ((head, e), arc) in fwd.iter().zip(arcs) {
                assert_eq!(arc.target, head.0);
                assert_eq!(arc.edge_id, e.0);
                let attrs = g.edge(*e).attrs;
                assert_eq!(arc.length_m.to_bits(), attrs.length_m.to_bits());
                assert_eq!(arc.travel_time_s.to_bits(), attrs.travel_time_s().to_bits());
                assert_eq!(
                    arc.length_m.to_bits(),
                    CostModel::Length.edge_cost(&g, *e).to_bits()
                );
                assert_eq!(
                    arc.travel_time_s.to_bits(),
                    CostModel::TravelTime.edge_cost(&g, *e).to_bits()
                );
            }
            let bwd: Vec<_> = g.in_edges(v).collect();
            let arcs = fz.in_arcs(v);
            assert_eq!(arcs.len(), bwd.len());
            for ((tail, e), arc) in bwd.iter().zip(arcs) {
                assert_eq!(arc.target, tail.0);
                assert_eq!(arc.edge_id, e.0);
            }
        }
    }

    #[test]
    fn frozen_coords_narrow_to_f32() {
        let g = diamond();
        let fz = FrozenGraph::freeze(&g);
        for v in g.vertices() {
            let p = g.coord(v);
            assert_eq!(fz.coord_f32(v), (p.x as f32, p.y as f32));
            assert!((fz.coord(v).x - p.x).abs() < 1e-3);
        }
    }

    #[test]
    fn frozen_staleness_follows_the_weights_epoch() {
        let mut g = diamond();
        let fz = FrozenGraph::freeze(&g);
        assert!(fz.current_for(&g));
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        g.set_edge_speed(e, 55.0);
        assert!(!fz.current_for(&g));
        let refrozen = FrozenGraph::freeze(&g);
        assert!(refrozen.current_for(&g));
        assert_eq!(refrozen.weights_epoch(), 1);
    }

    #[test]
    fn frozen_empty_graph() {
        let g = GraphBuilder::new().build();
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(fz.vertex_count(), 0);
        assert_eq!(fz.edge_count(), 0);
        assert_eq!(fz.fwd_offsets, vec![0]);
        assert_eq!(fz.bwd_offsets, vec![0]);
        assert!(fz.arcs.is_empty());
    }
}
