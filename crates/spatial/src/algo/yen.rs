//! Yen's algorithm for the top-k loopless shortest paths.
//!
//! Exposed as a lazy iterator ([`YenIter`]) because the diversified top-k
//! strategy (the paper's D-TkDI) consumes shortest paths in cost order until
//! it has accumulated k *diverse* ones — which may require scanning far more
//! than k candidates. The plain TkDI strategy is the first k items of the
//! same iterator ([`yen_k_shortest`]).
//!
//! Yen's algorithm is the crate's heaviest [`SearchSpace`] customer: every
//! accepted path triggers one constrained spur search per prefix vertex, so
//! a top-10 query on a trunk-road pair easily fires hundreds of Dijkstra
//! runs. All of them reuse one [`QueryEngine`] — either an engine borrowed
//! from the caller ([`QueryEngine::yen_iter`]) or a transient one owned by
//! the iterator ([`YenIter::new`]).
//!
//! [`SearchSpace`]: crate::algo::engine::SearchSpace

use std::collections::{BinaryHeap, HashSet};

use crate::algo::engine::QueryEngine;
use crate::graph::{CostModel, Graph, VertexId};
use crate::path::Path;
use crate::util::{BitSet, MinCost};

/// The engine a [`YenIter`] runs its searches on: its own, or one lent by
/// the caller so spur searches share state with the caller's other queries.
enum EngineRef<'g, 'e> {
    /// Boxed so the iterator stays small when the engine is borrowed.
    Owned(Box<QueryEngine<'g>>),
    Borrowed(&'e mut QueryEngine<'g>),
}

impl<'g> EngineRef<'g, '_> {
    fn get(&mut self) -> &mut QueryEngine<'g> {
        match self {
            EngineRef::Owned(engine) => engine,
            EngineRef::Borrowed(engine) => engine,
        }
    }
}

/// Lazily yields the loopless shortest paths from `source` to `target` in
/// non-decreasing cost order, each with its total cost.
///
/// ```
/// use pathrank_spatial::algo::yen::YenIter;
/// use pathrank_spatial::generators::{grid_network, GridConfig};
/// use pathrank_spatial::graph::{CostModel, VertexId};
///
/// let g = grid_network(&GridConfig::small_test(), 3);
/// let mut it = YenIter::new(&g, VertexId(0), VertexId(12), CostModel::Length);
/// let (best, c1) = it.next().unwrap();
/// let (_second, c2) = it.next().unwrap();
/// assert!(c1 <= c2);
/// assert!(best.is_simple());
/// ```
pub struct YenIter<'g, 'e, 'c> {
    engine: EngineRef<'g, 'e>,
    cost: CostModel<'c>,
    source: VertexId,
    target: VertexId,
    /// Accepted paths (the `A` list of Yen's algorithm), in cost order.
    accepted: Vec<(Path, f64)>,
    /// Candidate heap (the `B` set), deduplicated via `candidate_seen`.
    candidates: BinaryHeap<MinCost<Path>>,
    candidate_seen: HashSet<Vec<VertexId>>,
    banned_vertices: BitSet,
    banned_edges: BitSet,
    started: bool,
    exhausted: bool,
}

impl<'g, 'c> YenIter<'g, 'g, 'c> {
    /// Creates the iterator over a transient engine of its own; no search
    /// happens until the first `next()`. When the surrounding code already
    /// holds a [`QueryEngine`], prefer [`QueryEngine::yen_iter`], which
    /// reuses it.
    pub fn new(
        g: &'g Graph,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'c>,
    ) -> YenIter<'g, 'g, 'c> {
        Self::with_engine(
            EngineRef::Owned(Box::new(QueryEngine::new(g))),
            source,
            target,
            cost,
        )
    }
}

impl<'g, 'e, 'c> YenIter<'g, 'e, 'c> {
    /// Creates the iterator on a borrowed engine (see
    /// [`QueryEngine::yen_iter`]).
    pub(crate) fn on_engine(
        engine: &'e mut QueryEngine<'g>,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'c>,
    ) -> YenIter<'g, 'e, 'c> {
        Self::with_engine(EngineRef::Borrowed(engine), source, target, cost)
    }

    fn with_engine(
        mut engine: EngineRef<'g, 'e>,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'c>,
    ) -> YenIter<'g, 'e, 'c> {
        let g = engine.get().graph();
        let (nv, ne) = (g.vertex_count(), g.edge_count());
        YenIter {
            engine,
            cost,
            source,
            target,
            accepted: Vec::new(),
            candidates: BinaryHeap::new(),
            candidate_seen: HashSet::new(),
            banned_vertices: BitSet::new(nv),
            banned_edges: BitSet::new(ne),
            started: false,
            exhausted: false,
        }
    }

    /// Paths accepted so far (in cost order).
    pub fn accepted(&self) -> &[(Path, f64)] {
        &self.accepted
    }

    /// Generates spur candidates off the most recently accepted path.
    fn generate_candidates(&mut self) {
        let (prev, _) = self
            .accepted
            .last()
            .expect("called after first acceptance")
            .clone();
        let prev_vertices = prev.vertices().to_vec();
        let g = self.engine.get().graph();

        for i in 0..prev.len() {
            let spur_node = prev_vertices[i];
            let root_vertices = &prev_vertices[..=i];

            self.banned_vertices.clear();
            self.banned_edges.clear();

            // Ban the next edge of every accepted path sharing this root, so
            // the spur search cannot reproduce a known path.
            for (p, _) in &self.accepted {
                let pv = p.vertices();
                if pv.len() > i && &pv[..=i] == root_vertices {
                    self.banned_edges.insert(p.edges()[i].0);
                }
            }
            // Ban the root's vertices (except the spur node) to keep the
            // final path loopless.
            for v in &root_vertices[..i] {
                self.banned_vertices.insert(v.0);
            }

            let Some(spur) = self.engine.get().constrained_shortest_path(
                spur_node,
                self.target,
                self.cost,
                &self.banned_vertices,
                &self.banned_edges,
            ) else {
                continue;
            };

            let total = if i == 0 {
                spur
            } else {
                let root = prev.prefix(i).expect("i in 1..len");
                root.concat(&spur).expect("root ends at spur node")
            };
            debug_assert!(total.is_simple(), "Yen candidates must be loopless");

            if self.candidate_seen.insert(total.vertices().to_vec()) {
                let c = total.cost(g, self.cost);
                self.candidates.push(MinCost {
                    cost: c,
                    item: total,
                });
            }
        }
    }
}

impl Iterator for YenIter<'_, '_, '_> {
    type Item = (Path, f64);

    fn next(&mut self) -> Option<(Path, f64)> {
        if self.exhausted {
            return None;
        }
        if !self.started {
            self.started = true;
            let g = self.engine.get().graph();
            match self
                .engine
                .get()
                .shortest_path(self.source, self.target, self.cost)
            {
                Some(p) => {
                    let c = p.cost(g, self.cost);
                    self.accepted.push((p.clone(), c));
                    return Some((p, c));
                }
                None => {
                    self.exhausted = true;
                    return None;
                }
            }
        }
        self.generate_candidates();
        match self.candidates.pop() {
            Some(MinCost { cost, item }) => {
                self.accepted.push((item.clone(), cost));
                Some((item, cost))
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }
}

/// The k cheapest loopless paths from `source` to `target` (fewer if the
/// graph does not contain k distinct simple paths).
pub fn yen_k_shortest(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
    k: usize,
) -> Vec<(Path, f64)> {
    YenIter::new(g, source, target, cost).take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{grid_network, GridConfig};
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};

    /// The classic Yen example graph (Wikipedia): C-D-E-F-G-H with known
    /// top-3: C-E-F-H (5), C-E-G-H (7), C-D-F-H (8).
    fn yen_example() -> (Graph, [VertexId; 6]) {
        let mut b = GraphBuilder::new();
        let c = b.add_vertex(Point::new(0.0, 0.0));
        let d = b.add_vertex(Point::new(1.0, 1.0));
        let e = b.add_vertex(Point::new(1.0, -1.0));
        let f = b.add_vertex(Point::new(2.0, 0.0));
        let g = b.add_vertex(Point::new(2.0, -2.0));
        let h = b.add_vertex(Point::new(3.0, 0.0));
        let a = |w: f64| EdgeAttrs::with_default_speed(w, RoadCategory::Rural);
        b.add_edge(c, d, a(3.0)).unwrap();
        b.add_edge(c, e, a(2.0)).unwrap();
        b.add_edge(d, f, a(4.0)).unwrap();
        b.add_edge(e, d, a(1.0)).unwrap();
        b.add_edge(e, f, a(2.0)).unwrap();
        b.add_edge(e, g, a(3.0)).unwrap();
        b.add_edge(f, g, a(2.0)).unwrap();
        b.add_edge(f, h, a(1.0)).unwrap();
        b.add_edge(g, h, a(2.0)).unwrap();
        (b.build(), [c, d, e, f, g, h])
    }

    #[test]
    fn classic_example_top3() {
        let (g, [c, d, e, f, gg, h]) = yen_example();
        let paths = yen_k_shortest(&g, c, h, CostModel::Length, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].0.vertices(), &[c, e, f, h]);
        assert!((paths[0].1 - 5.0).abs() < 1e-12);
        assert_eq!(paths[1].0.vertices(), &[c, e, gg, h]);
        assert!((paths[1].1 - 7.0).abs() < 1e-12);
        assert_eq!(paths[2].0.vertices(), &[c, d, f, h]);
        assert!((paths[2].1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn engine_yen_matches_free_function() {
        let (g, [c, _, _, _, _, h]) = yen_example();
        let free = yen_k_shortest(&g, c, h, CostModel::Length, 10);
        let mut engine = QueryEngine::new(&g);
        let on_engine = engine.yen_k_shortest(c, h, CostModel::Length, 10);
        assert_eq!(free.len(), on_engine.len());
        for ((pa, ca), (pb, cb)) in free.iter().zip(on_engine.iter()) {
            assert_eq!(pa.vertices(), pb.vertices());
            assert!((ca - cb).abs() < 1e-12);
        }
        // The engine stays usable for ordinary queries afterwards.
        assert!(engine.shortest_path(c, h, CostModel::Length).is_some());
    }

    #[test]
    fn costs_are_non_decreasing_and_paths_unique() {
        let g = grid_network(&GridConfig::small_test(), 99);
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let paths = yen_k_shortest(&g, s, t, CostModel::Length, 12);
        assert!(paths.len() >= 2, "grid has many alternatives");
        let mut seen = HashSet::new();
        let mut last = 0.0f64;
        for (p, c) in &paths {
            p.validate(&g).unwrap();
            assert!(p.is_simple(), "Yen paths must be loopless");
            assert_eq!(p.source(), s);
            assert_eq!(p.target(), t);
            assert!((p.cost(&g, CostModel::Length) - c).abs() < 1e-9);
            assert!(*c + 1e-9 >= last, "costs must be non-decreasing");
            last = *c;
            assert!(seen.insert(p.vertices().to_vec()), "paths must be distinct");
        }
    }

    #[test]
    fn exhausts_small_graphs() {
        // A diamond has exactly 3 simple paths 0 -> 3.
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4)
            .map(|i| b.add_vertex(Point::new(i as f64, 0.0)))
            .collect();
        let a = |w: f64| EdgeAttrs::with_default_speed(w, RoadCategory::Rural);
        b.add_edge(v[0], v[1], a(1.0)).unwrap();
        b.add_edge(v[1], v[3], a(1.0)).unwrap();
        b.add_edge(v[0], v[2], a(2.0)).unwrap();
        b.add_edge(v[2], v[3], a(2.0)).unwrap();
        b.add_edge(v[0], v[3], a(10.0)).unwrap();
        let g = b.build();
        let paths = yen_k_shortest(&g, v[0], v[3], CostModel::Length, 10);
        assert_eq!(paths.len(), 3);
        assert!((paths[0].1 - 2.0).abs() < 1e-12);
        assert!((paths[1].1 - 4.0).abs() < 1e-12);
        assert!((paths[2].1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_yields_nothing() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(
            v1,
            v0,
            EdgeAttrs::with_default_speed(1.0, RoadCategory::Rural),
        )
        .unwrap();
        let g = b.build();
        assert!(yen_k_shortest(&g, v0, v1, CostModel::Length, 5).is_empty());
    }

    #[test]
    fn iterator_is_fused_after_exhaustion() {
        let (g, [c, _, _, _, _, h]) = yen_example();
        let mut it = YenIter::new(&g, c, h, CostModel::Length);
        let mut count = 0;
        while it.next().is_some() {
            count += 1;
            assert!(count < 1000, "must terminate");
        }
        assert!(it.next().is_none());
        assert!(it.next().is_none());
        assert_eq!(it.accepted().len(), count);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};
    use proptest::prelude::*;

    /// Brute-force enumeration of all simple paths (oracle, tiny graphs
    /// only).
    fn all_simple_paths(g: &Graph, s: VertexId, t: VertexId) -> Vec<f64> {
        fn dfs(
            g: &Graph,
            cur: VertexId,
            t: VertexId,
            visited: &mut Vec<bool>,
            cost: f64,
            out: &mut Vec<f64>,
        ) {
            if cur == t {
                out.push(cost);
                return;
            }
            for (v, e) in g.out_edges(cur) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    dfs(g, v, t, visited, cost + g.edge(e).attrs.length_m, out);
                    visited[v.index()] = false;
                }
            }
        }
        let mut visited = vec![false; g.vertex_count()];
        visited[s.index()] = true;
        let mut out = Vec::new();
        dfs(g, s, t, &mut visited, 0.0, &mut out);
        out.sort_by(f64::total_cmp);
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn yen_enumerates_exactly_the_simple_paths_in_order(
            n in 2usize..7,
            edges in proptest::collection::vec((0usize..7, 0usize..7, 1u32..50), 1..18),
        ) {
            let mut b = GraphBuilder::new();
            let vs: Vec<_> = (0..n).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
            let mut dedup = std::collections::HashSet::new();
            for (f, t, w) in edges {
                let (f, t) = (f % n, t % n);
                if f != t && dedup.insert((f, t)) {
                    b.add_edge(
                        vs[f],
                        vs[t],
                        EdgeAttrs::with_default_speed(w as f64, RoadCategory::Rural),
                    )
                    .unwrap();
                }
            }
            let g = b.build();
            let s = vs[0];
            let t = vs[n - 1];
            if s == t { return Ok(()); }
            let oracle = all_simple_paths(&g, s, t);
            let yen: Vec<f64> = YenIter::new(&g, s, t, CostModel::Length)
                .map(|(_, c)| c)
                .collect();
            prop_assert_eq!(yen.len(), oracle.len(),
                "Yen must enumerate every simple path exactly once");
            for (a, b) in yen.iter().zip(oracle.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "cost sequence mismatch: {} vs {}", a, b);
            }
        }
    }
}
