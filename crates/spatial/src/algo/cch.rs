//! Customizable contraction hierarchies (CCH): a metric-independent
//! contraction phase plus a millisecond re-weighting pass.
//!
//! The plain hierarchy in [`crate::algo::ch`] bakes its metric into the
//! contraction: witness searches prune shortcuts that are not needed
//! *under the build weights*, so any weight change — live traffic, a
//! learned [`CostModel::Custom`] vector, a perturbation experiment —
//! invalidates the whole index and costs a full rebuild (~100 ms at paper
//! scale). The customizable variant splits the work instead
//! (Dibbelt, Strasser & Wagner, "Customizable Contraction Hierarchies"):
//!
//! 1. **Preprocessing** ([`CchTopology::build`]) fixes a contraction
//!    order using the same deterministic edge-difference + lazy-update
//!    ordering as `ch.rs`, but run on *topology only* (an arc between a
//!    pair of uncontracted neighbours exists or it does not — no witness
//!    searches, no weights). Contracting `v` inserts an arc `u -> w` for
//!    every in/out neighbour pair and records the **lower triangle**
//!    `(u -> w, u -> v, v -> w)`; the full chordal shortcut topology and
//!    its supporting-arc links are materialised exactly once.
//! 2. **Customization** ([`CchTopology::customize`] /
//!    [`CchTopology::customize_weights`]) re-derives every arc weight for
//!    a concrete metric: initialise each arc from its cheapest parallel
//!    original edge, then relax all recorded triangles
//!    (`w(a) = min(w(a), w(b) + w(c))`) bottom-up over the fixed order.
//!    Arcs are processed level by level (the elimination-tree depth of
//!    their lower-ranked endpoint), which makes same-level arcs
//!    independent — the pass parallelises over the existing crossbeam
//!    worker pattern and is bit-identical for any thread count. At paper
//!    scale this runs in single-digit milliseconds, ≥10x faster than a
//!    metric-aware rebuild. When only a few edges moved — the live
//!    telemetry shape — [`Cch::apply_delta`] skips even that: it seeds
//!    the arcs owning the changed edges and chases the change upward
//!    through the triangle DAG, stopping wherever a recomputed weight
//!    lands on the same bits, sub-millisecond for percent-level deltas.
//! 3. **Queries** reuse the stall-on-demand bidirectional upward search
//!    of [`ContractionHierarchy`] unchanged: a customized [`Cch`] embeds
//!    a real `ContractionHierarchy` whose arc pool and CSR search graphs
//!    were re-weighted in place, so point-to-point queries, shortcut
//!    unpacking and the bucket-based many-to-many sweeps all run on the
//!    battle-tested code paths and stay exact.
//!
//! The price of skipping witness searches is a denser search graph (every
//! chordal fill-in arc is kept, where CH would prune witnessed ones), so
//! per-query latency is somewhat higher than a metric-built CH. The
//! trade-off wins whenever weights move faster than queries amortise a
//! rebuild: live-traffic routing, per-driver custom cost vectors, and
//! perturbation sweeps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crossbeam::thread;

use crate::algo::ch::{ChArc, ChArcKind, ChSearch, ContractionHierarchy};
use crate::algo::landmarks::LandmarkMetric;
use crate::graph::{CostModel, EdgeId, Graph, VertexId};

/// Tuning knobs for CCH preprocessing and customization.
#[derive(Debug, Clone)]
pub struct CchConfig {
    /// Worker threads for the initial-priority sweep and for per-level
    /// triangle relaxation during customization.
    pub threads: usize,
}

impl Default for CchConfig {
    fn default() -> Self {
        CchConfig { threads: 4 }
    }
}

/// Minimum same-level arcs per customization worker: below this the
/// per-level crossbeam spawn costs more than the relaxation it splits.
const PAR_GRAIN: usize = 256;

/// One arc of the metric-independent topology in raw (pre-finalise)
/// form: endpoints, the parallel original edges it merges, and the lower
/// triangles supporting it. Shared between the builder and the io
/// deserialiser ([`CchTopology::from_raw`]).
pub(crate) struct RawArc {
    pub(crate) from: VertexId,
    pub(crate) to: VertexId,
    /// Original graph edges `from -> to` (ascending `EdgeId`); empty for
    /// pure fill-in arcs.
    pub(crate) originals: Vec<EdgeId>,
    /// Supporting lower triangles `(b, c)`: this arc is at most
    /// `w(b) + w(c)` where `b = from -> v` and `c = v -> to` for some
    /// intermediate `v` ranked below both endpoints.
    pub(crate) triangles: Vec<(u32, u32)>,
}

/// The metric-independent half of a customizable contraction hierarchy:
/// contraction order, merged chordal arc topology, supporting-triangle
/// links, and a pre-assembled per-rank up/down CSR skeleton.
///
/// Build (or load via [`crate::io::read_cch`]) once per graph topology,
/// wrap in an [`Arc`], then [`CchTopology::customize`] per metric or
/// live-weight epoch — the expensive ordering work is never repeated.
#[derive(Debug, Clone)]
pub struct CchTopology {
    /// Customization worker threads (from [`CchConfig`]).
    threads: usize,
    /// Arc -> merged original edges, CSR.
    orig_offsets: Vec<u32>,
    orig_edges: Vec<EdgeId>,
    /// Arc -> supporting lower triangles `(b, c)`, CSR.
    tri_offsets: Vec<u32>,
    tri_pairs: Vec<(u32, u32)>,
    /// Arc ids are renumbered level-contiguously: arcs whose lower
    /// endpoint has elimination level `l` occupy
    /// `level_offsets[l]..level_offsets[l + 1]`. Triangle relaxation
    /// sweeps levels in order; within a level all arcs are independent.
    level_offsets: Vec<u32>,
    /// Original edge -> the (unique) arc that merged it; `u32::MAX` for
    /// edges the topology dropped (self-loops). The entry point of a
    /// sparse delta: a changed edge cost seeds exactly this arc.
    edge_arc: Vec<u32>,
    /// Reverse triangle index, CSR over arcs: supporting arc `b` -> the
    /// arcs whose recorded triangles contain `b`. Every dependent lives
    /// on a strictly higher elimination level (triangles only reference
    /// strictly lower-level supports), so dependents always carry larger
    /// arc ids — what lets [`Cch::apply_delta`] pop a min-heap of arc
    /// ids and know every support is final before its dependents
    /// recompute.
    dep_offsets: Vec<u32>,
    dep_arcs: Vec<u32>,
    dep_pairs: Vec<(u32, u32)>,
    /// Arc id -> its slot in the skeleton's rank-space search segments
    /// (`seg_arcs`). The topology keeps exactly one arc per directed
    /// vertex pair, so assembly dedupes nothing and the map is a
    /// bijection; partial customization uses it to sync a changed arc's
    /// segment weight without the full-sweep `seg_arcs` pass.
    arc_to_seg: Vec<u32>,
    /// Pre-assembled search-graph skeleton: the final arc pool and
    /// per-rank CSR with placeholder weights. [`CchTopology::customize`]
    /// clones it and rewrites weights/expansion rules in place — arc ids
    /// and CSR layout are weight-independent because the topology keeps
    /// exactly one arc per directed vertex pair.
    skeleton: ContractionHierarchy,
}

/// Build-time working state: dynamic chordal adjacency among
/// uncontracted vertices. Mirrors `ch::Builder`, minus weights and
/// witness searches.
struct TopoBuilder {
    /// Arc endpoints, one entry per directed vertex pair ever connected.
    arcs: Vec<(VertexId, VertexId)>,
    /// Per-arc merged original edges (empty for fill-ins).
    originals: Vec<Vec<EdgeId>>,
    /// `(a, b, c)` triangles in creation order.
    triangles: Vec<(u32, u32, u32)>,
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    /// `u32::MAX` while uncontracted, final rank afterwards.
    rank: Vec<u32>,
    deleted_neighbors: Vec<u32>,
    level: Vec<u32>,
}

/// Per-worker gather buffers for the ordering loop.
#[derive(Default)]
struct TopoScratch {
    /// Distinct uncontracted in-neighbours of the probed vertex, with
    /// the (unique) connecting arc.
    ins: Vec<(VertexId, u32)>,
    outs: Vec<(VertexId, u32)>,
}

impl TopoBuilder {
    fn new(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(g.edge_count());
        let mut originals: Vec<Vec<EdgeId>> = Vec::with_capacity(g.edge_count());
        let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in g.edges().enumerate() {
            let id = EdgeId(i as u32);
            // Self-loops can never lie on a shortest path (weights are
            // non-negative) and would break the chordal invariants; drop
            // them from the topology outright.
            if e.from == e.to {
                continue;
            }
            match out_adj[e.from.index()]
                .iter()
                .find(|&&a| arcs[a as usize].1 == e.to)
            {
                Some(&a) => originals[a as usize].push(id),
                None => {
                    let a = arcs.len() as u32;
                    arcs.push((e.from, e.to));
                    originals.push(vec![id]);
                    out_adj[e.from.index()].push(a);
                    in_adj[e.to.index()].push(a);
                }
            }
        }
        TopoBuilder {
            arcs,
            originals,
            triangles: Vec::new(),
            out_adj,
            in_adj,
            rank: vec![u32::MAX; n],
            deleted_neighbors: vec![0; n],
            level: vec![0; n],
        }
    }

    #[inline]
    fn contracted(&self, v: VertexId) -> bool {
        self.rank[v.index()] != u32::MAX
    }

    /// Gathers `v`'s uncontracted in/out neighbours. Arcs are unique per
    /// directed pair, so no parallel-arc dedupe is needed.
    fn gather_neighbors(&self, v: VertexId, scratch: &mut TopoScratch) {
        scratch.ins.clear();
        scratch.outs.clear();
        for &a in &self.in_adj[v.index()] {
            let (from, _) = self.arcs[a as usize];
            if from != v && !self.contracted(from) {
                scratch.ins.push((from, a));
            }
        }
        for &a in &self.out_adj[v.index()] {
            let (_, to) = self.arcs[a as usize];
            if to != v && !self.contracted(to) {
                scratch.outs.push((to, a));
            }
        }
    }

    /// Whether a live arc `from -> to` already exists.
    fn has_arc(&self, from: VertexId, to: VertexId) -> bool {
        self.out_adj[from.index()]
            .iter()
            .any(|&a| self.arcs[a as usize].1 == to)
    }

    /// The lazy-update priority of `v`: same shape as the weighted
    /// builder's (twice the edge difference plus uniformity terms), with
    /// "shortcuts needed" counted by pure arc existence instead of
    /// witness searches. Pure, so the initial sweep runs it from many
    /// threads.
    fn priority(&self, v: VertexId, scratch: &mut TopoScratch) -> i64 {
        self.gather_neighbors(v, scratch);
        let removed = scratch.ins.len() + scratch.outs.len();
        let mut added = 0i64;
        for &(u, _) in &scratch.ins {
            for &(w, _) in &scratch.outs {
                if w != u && !self.has_arc(u, w) {
                    added += 1;
                }
            }
        }
        2 * (added - removed as i64)
            + self.deleted_neighbors[v.index()] as i64
            + 8 * self.level[v.index()] as i64
    }

    /// Contracts `v` at `rank`: completes the chordal clique among its
    /// uncontracted neighbours (inserting fill-in arcs where missing),
    /// records one lower triangle per `(in, out)` pair, then bumps and
    /// prunes the neighbourhood exactly like the weighted builder.
    fn contract(&mut self, v: VertexId, rank: u32, scratch: &mut TopoScratch) {
        self.gather_neighbors(v, scratch);
        self.rank[v.index()] = rank;
        let ins = std::mem::take(&mut scratch.ins);
        let outs = std::mem::take(&mut scratch.outs);
        for &(u, a_in) in &ins {
            for &(w, a_out) in &outs {
                if w == u {
                    continue;
                }
                let a = match self.out_adj[u.index()]
                    .iter()
                    .find(|&&a| self.arcs[a as usize].1 == w)
                {
                    Some(&a) => a,
                    None => {
                        let a = self.arcs.len() as u32;
                        self.arcs.push((u, w));
                        self.originals.push(Vec::new());
                        self.out_adj[u.index()].push(a);
                        self.in_adj[w.index()].push(a);
                        a
                    }
                };
                self.triangles.push((a, a_in, a_out));
            }
        }
        scratch.ins = ins;
        scratch.outs = outs;

        let mut neighbors: Vec<VertexId> = Vec::new();
        for &(nb, _) in scratch.ins.iter().chain(&scratch.outs) {
            if !neighbors.contains(&nb) {
                neighbors.push(nb);
            }
        }
        for nb in neighbors {
            self.deleted_neighbors[nb.index()] += 1;
            let bumped = self.level[v.index()] + 1;
            if self.level[nb.index()] < bumped {
                self.level[nb.index()] = bumped;
            }
            let arcs = &self.arcs;
            let rank = &self.rank;
            let live = |a: &u32| {
                let (from, to) = arcs[*a as usize];
                rank[from.index()] == u32::MAX && rank[to.index()] == u32::MAX
            };
            self.out_adj[nb.index()].retain(live);
            self.in_adj[nb.index()].retain(live);
        }
    }
}

impl CchTopology {
    /// Runs the metric-independent preprocessing: fixes the contraction
    /// order (edge-difference + lazy updates on topology only, initial
    /// priorities fanned out over `cfg.threads` workers) and materialises
    /// the full chordal shortcut topology with its supporting triangles.
    /// Deterministic and bit-identical for any thread count.
    pub fn build(g: &Graph, cfg: &CchConfig) -> Self {
        let n = g.vertex_count();
        let mut b = TopoBuilder::new(g);

        let threads = cfg.threads.max(1).min(n.max(1));
        let mut init_prio = vec![0i64; n];
        if n > 0 {
            let per = n.div_ceil(threads);
            let bref = &b;
            thread::scope(|scope| {
                for (ci, chunk) in init_prio.chunks_mut(per).enumerate() {
                    scope.spawn(move |_| {
                        let mut scratch = TopoScratch::default();
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let v = VertexId((ci * per + j) as u32);
                            *slot = bref.priority(v, &mut scratch);
                        }
                    });
                }
            })
            .expect("CCH priority worker panicked");
        }

        let mut queue: BinaryHeap<Reverse<(i64, u32)>> = init_prio
            .iter()
            .enumerate()
            .map(|(v, &p)| Reverse((p, v as u32)))
            .collect();

        let mut scratch = TopoScratch::default();
        let mut next_rank = 0u32;
        while let Some(Reverse((_stale_prio, v))) = queue.pop() {
            let v = VertexId(v);
            if b.contracted(v) {
                continue;
            }
            let prio = b.priority(v, &mut scratch);
            if let Some(&Reverse((top, _))) = queue.peek() {
                if prio > top {
                    queue.push(Reverse((prio, v.0)));
                    continue;
                }
            }
            b.contract(v, next_rank, &mut scratch);
            next_rank += 1;
        }
        debug_assert_eq!(next_rank as usize, n);

        // Regroup creation-ordered triangles per owning arc (stable, so
        // each arc keeps its triangles in creation order).
        let arc_count = b.arcs.len();
        let mut tris: Vec<Vec<(u32, u32)>> = vec![Vec::new(); arc_count];
        for &(a, lo, hi) in &b.triangles {
            tris[a as usize].push((lo, hi));
        }
        let raw: Vec<RawArc> = b
            .arcs
            .into_iter()
            .zip(b.originals)
            .zip(tris)
            .map(|(((from, to), originals), triangles)| RawArc {
                from,
                to,
                originals,
                triangles,
            })
            .collect();
        Self::from_raw(g.edge_count(), b.rank, raw, cfg.threads)
    }

    /// Finalises a topology from raw arcs: computes elimination levels,
    /// renumbers arcs level-contiguously and assembles the CSR skeleton.
    /// Shared by [`CchTopology::build`] (trusted input) and the io
    /// deserialiser (which validates structurally first).
    pub(crate) fn from_raw(m: usize, rank: Vec<u32>, raw: Vec<RawArc>, threads: usize) -> Self {
        let n = rank.len();
        let arc_count = raw.len();

        // Vertex elimination levels over the chordal graph: one more
        // than the deepest lower-ranked neighbour, scanned in rank order
        // so dependencies are always resolved.
        let mut lower_nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for arc in &raw {
            let (f, t) = (arc.from.index(), arc.to.index());
            if rank[f] < rank[t] {
                lower_nbrs[t].push(f as u32);
            } else {
                lower_nbrs[f].push(t as u32);
            }
        }
        let mut by_rank = vec![0u32; n];
        for (v, &r) in rank.iter().enumerate() {
            by_rank[r as usize] = v as u32;
        }
        let mut vlevel = vec![0u32; n];
        for &v in &by_rank {
            let lvl = lower_nbrs[v as usize]
                .iter()
                .map(|&u| vlevel[u as usize] + 1)
                .max()
                .unwrap_or(0);
            vlevel[v as usize] = lvl;
        }

        // Renumber arcs so each elimination level is contiguous
        // (stable: creation order preserved within a level).
        let arc_level = |a: &RawArc| {
            let (rf, rt) = (rank[a.from.index()], rank[a.to.index()]);
            let lower = if rf < rt { a.from } else { a.to };
            vlevel[lower.index()]
        };
        let mut perm: Vec<u32> = (0..arc_count as u32).collect();
        perm.sort_by_key(|&i| arc_level(&raw[i as usize]));
        let mut new_id = vec![0u32; arc_count];
        for (new, &old) in perm.iter().enumerate() {
            new_id[old as usize] = new as u32;
        }

        let levels = raw
            .iter()
            .map(arc_level)
            .max()
            .map_or(0, |l| l as usize + 1);
        let mut level_offsets = vec![0u32; levels + 1];
        let mut orig_offsets = Vec::with_capacity(arc_count + 1);
        let mut orig_edges = Vec::new();
        let mut tri_offsets = Vec::with_capacity(arc_count + 1);
        let mut tri_pairs = Vec::new();
        let mut skel_arcs: Vec<ChArc> = Vec::with_capacity(arc_count);
        orig_offsets.push(0u32);
        tri_offsets.push(0u32);
        for &old in &perm {
            let a = &raw[old as usize];
            level_offsets[arc_level(a) as usize + 1] += 1;
            orig_edges.extend_from_slice(&a.originals);
            orig_offsets.push(orig_edges.len() as u32);
            tri_pairs.extend(
                a.triangles
                    .iter()
                    .map(|&(b, c)| (new_id[b as usize], new_id[c as usize])),
            );
            tri_offsets.push(tri_pairs.len() as u32);
            // Placeholder weight/expansion; every customization pass
            // rewrites both. A fill-in arc always has at least one
            // supporting triangle (the pair recorded when it was
            // created), so the placeholder expansion is well-formed.
            let kind = match a.originals.first() {
                Some(&e) => ChArcKind::Original(e),
                None => {
                    let (b, c) = a.triangles[0];
                    ChArcKind::Shortcut(new_id[b as usize], new_id[c as usize])
                }
            };
            skel_arcs.push(ChArc {
                from: a.from,
                to: a.to,
                weight: f64::INFINITY,
                kind,
            });
        }
        for l in 0..levels {
            level_offsets[l + 1] += level_offsets[l];
        }

        let skeleton = ContractionHierarchy::assemble(LandmarkMetric::Length, m, rank, skel_arcs);

        // Reverse indexes for sparse partial customization. All three
        // are pure functions of the CSRs above, so the io layer's
        // on-disk format is untouched — loaded topologies recompute them
        // here just like built ones.
        let mut edge_arc = vec![u32::MAX; m];
        for a in 0..arc_count {
            let lo = orig_offsets[a] as usize;
            let hi = orig_offsets[a + 1] as usize;
            for &e in &orig_edges[lo..hi] {
                edge_arc[e.index()] = a as u32;
            }
        }
        let mut dep_offsets = vec![0u32; arc_count + 1];
        for &(b, c) in &tri_pairs {
            dep_offsets[b as usize + 1] += 1;
            dep_offsets[c as usize + 1] += 1;
        }
        for i in 0..arc_count {
            dep_offsets[i + 1] += dep_offsets[i];
        }
        let mut cursor: Vec<u32> = dep_offsets[..arc_count].to_vec();
        let mut dep_arcs = vec![0u32; tri_pairs.len() * 2];
        let mut dep_pairs = vec![(0u32, 0u32); tri_pairs.len() * 2];
        for a in 0..arc_count {
            let lo = tri_offsets[a] as usize;
            let hi = tri_offsets[a + 1] as usize;
            for &(b, c) in &tri_pairs[lo..hi] {
                dep_arcs[cursor[b as usize] as usize] = a as u32;
                dep_pairs[cursor[b as usize] as usize] = (b, c);
                cursor[b as usize] += 1;
                dep_arcs[cursor[c as usize] as usize] = a as u32;
                dep_pairs[cursor[c as usize] as usize] = (b, c);
                cursor[c as usize] += 1;
            }
        }
        let mut arc_to_seg = vec![u32::MAX; arc_count];
        for (i, sa) in skeleton.seg_arcs.iter().enumerate() {
            debug_assert_eq!(
                arc_to_seg[sa.arc as usize],
                u32::MAX,
                "CCH arcs are unique per directed pair, so each owns one segment slot"
            );
            arc_to_seg[sa.arc as usize] = i as u32;
        }

        CchTopology {
            threads: threads.max(1),
            orig_offsets,
            orig_edges,
            tri_offsets,
            tri_pairs,
            level_offsets,
            edge_arc,
            dep_offsets,
            dep_arcs,
            dep_pairs,
            arc_to_seg,
            skeleton,
        }
    }

    /// Vertex count of the graph the topology was built for.
    pub fn vertex_count(&self) -> usize {
        self.skeleton.vertex_count()
    }

    /// Edge count of the graph the topology was built for (attach-time
    /// fingerprint).
    pub fn edge_count(&self) -> usize {
        self.skeleton.edge_count()
    }

    /// Total arcs in the chordal topology (merged originals plus
    /// fill-ins).
    pub fn arc_count(&self) -> usize {
        self.orig_offsets.len() - 1
    }

    /// Fill-in arcs: chordal shortcuts with no underlying original edge.
    pub fn fill_in_count(&self) -> usize {
        (0..self.arc_count())
            .filter(|&a| self.originals_of(a).is_empty())
            .count()
    }

    /// Recorded lower triangles (the customization work list).
    pub fn triangle_count(&self) -> usize {
        self.tri_pairs.len()
    }

    /// Number of elimination levels (the depth of the parallel
    /// customization sweep).
    pub fn level_count(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Contraction rank of every vertex, indexed by vertex id.
    pub fn ranks(&self) -> &[u32] {
        self.skeleton.ranks()
    }

    /// Merged original edges of arc `a` (ascending `EdgeId`).
    pub(crate) fn originals_of(&self, a: usize) -> &[EdgeId] {
        let lo = self.orig_offsets[a] as usize;
        let hi = self.orig_offsets[a + 1] as usize;
        &self.orig_edges[lo..hi]
    }

    /// Supporting triangles of arc `a`.
    pub(crate) fn triangles_of(&self, a: usize) -> &[(u32, u32)] {
        let lo = self.tri_offsets[a] as usize;
        let hi = self.tri_offsets[a + 1] as usize;
        &self.tri_pairs[lo..hi]
    }

    /// The arc that merged original edge `e` (`None` when the topology
    /// dropped the edge, i.e. a self-loop).
    pub(crate) fn arc_of_edge(&self, e: EdgeId) -> Option<u32> {
        let a = self.edge_arc[e.index()];
        (a != u32::MAX).then_some(a)
    }

    /// Arcs whose supporting triangles contain arc `a` — all on strictly
    /// higher elimination levels, hence strictly larger arc ids. Each
    /// link carries the triangle's stored `(b, c)` support pair so the
    /// partial pass can classify the event (defining-support check on
    /// increases, candidate check on decreases) without re-scanning the
    /// dependent's full triangle list.
    pub(crate) fn dependents_of(&self, a: usize) -> impl Iterator<Item = (u32, (u32, u32))> + '_ {
        let lo = self.dep_offsets[a] as usize;
        let hi = self.dep_offsets[a + 1] as usize;
        self.dep_arcs[lo..hi]
            .iter()
            .copied()
            .zip(self.dep_pairs[lo..hi].iter().copied())
    }

    /// Arc endpoints in final (level-contiguous) order — the io layer's
    /// serialisation view.
    pub(crate) fn arc_endpoints(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.skeleton.arcs().iter().map(|a| (a.from, a.to))
    }

    /// Customizes the topology for `cost`, deriving every arc weight
    /// from the current graph weights. `Custom` cost vectors are
    /// supported directly (this is what finally makes them fast); the
    /// resulting [`Cch`] records the graph's weights epoch so the query
    /// layer can refuse it after further mutations.
    pub fn customize(self: &Arc<Self>, g: &Graph, cost: &CostModel<'_>) -> Cch {
        if let CostModel::Custom(w) = cost {
            return self.customize_weights(g, w);
        }
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH topology was built for a different graph"
        );
        let metric = match cost {
            CostModel::Length => LandmarkMetric::Length,
            CostModel::TravelTime => LandmarkMetric::TravelTime,
            CostModel::Custom(_) => unreachable!(),
        };
        self.finish(Some(metric), None, g.weights_epoch(), |e| {
            cost.edge_cost(g, e)
        })
    }

    /// Customizes the topology for an explicit per-edge weight vector
    /// (indexed by `EdgeId`; every weight must be finite and
    /// non-negative). The resulting [`Cch`] serves
    /// [`CostModel::Custom`] queries whose vector is bitwise equal to
    /// `weights`.
    pub fn customize_weights(self: &Arc<Self>, g: &Graph, weights: &[f64]) -> Cch {
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH topology was built for a different graph"
        );
        assert_eq!(
            weights.len(),
            self.edge_count(),
            "custom weight vector length must match the edge count"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "custom weights must be finite and non-negative"
        );
        self.finish(None, Some(weights.to_vec()), g.weights_epoch(), |e| {
            weights[e.index()]
        })
    }

    fn finish(
        self: &Arc<Self>,
        metric: Option<LandmarkMetric>,
        custom: Option<Vec<f64>>,
        weights_epoch: u64,
        edge_cost: impl Fn(EdgeId) -> f64,
    ) -> Cch {
        let (weights, kinds) = self.derive(edge_cost);
        let mut inner = self.skeleton.clone();
        for (arc, (w, k)) in inner.arcs_mut().iter_mut().zip(weights.iter().zip(&kinds)) {
            arc.weight = *w;
            arc.kind = *k;
        }
        for sa in inner.seg_arcs.iter_mut() {
            sa.weight = weights[sa.arc as usize];
        }
        inner.set_weights_epoch(weights_epoch);
        Cch {
            topo: Arc::clone(self),
            metric,
            custom,
            weights_epoch,
            inner,
            scratch: CustomizeScratch::default(),
        }
    }

    /// The customization core: per-arc init from the cheapest parallel
    /// original (lowest `EdgeId` on ties), then bottom-up triangle
    /// relaxation level by level. Same-level arcs only read strictly
    /// lower-level weights, so each level parallelises over disjoint
    /// chunks — the result is bit-identical for any thread count.
    fn derive(&self, edge_cost: impl Fn(EdgeId) -> f64) -> (Vec<f64>, Vec<ChArcKind>) {
        let mut weights = Vec::new();
        let mut kinds = Vec::new();
        self.derive_into(edge_cost, &mut weights, &mut kinds);
        (weights, kinds)
    }

    /// [`CchTopology::derive`] into caller-owned buffers: steady-state
    /// re-customization ([`Cch::recustomize`]) hands the same two
    /// vectors back every epoch, so after the first pass the full
    /// customization allocates nothing.
    fn derive_into(
        &self,
        edge_cost: impl Fn(EdgeId) -> f64,
        weights: &mut Vec<f64>,
        kinds: &mut Vec<ChArcKind>,
    ) {
        let arc_count = self.arc_count();
        weights.clear();
        weights.resize(arc_count, f64::INFINITY);
        kinds.clear();
        kinds.resize(arc_count, ChArcKind::Shortcut(u32::MAX, u32::MAX));
        for a in 0..arc_count {
            for &e in self.originals_of(a) {
                let c = edge_cost(e);
                if c < weights[a] {
                    weights[a] = c;
                    kinds[a] = ChArcKind::Original(e);
                }
            }
        }
        for l in 1..self.level_count() {
            let lo = self.level_offsets[l] as usize;
            let hi = self.level_offsets[l + 1] as usize;
            let len = hi - lo;
            if len == 0 {
                continue;
            }
            let (done, rest_w) = weights.split_at_mut(lo);
            let cur_w = &mut rest_w[..len];
            let cur_k = &mut kinds[lo..hi];
            let done: &[f64] = done;
            let workers = self.threads.min(len.div_ceil(PAR_GRAIN)).max(1);
            if workers == 1 {
                for (j, (w, k)) in cur_w.iter_mut().zip(cur_k.iter_mut()).enumerate() {
                    relax_arc(self.triangles_of(lo + j), done, w, k);
                }
            } else {
                let per = len.div_ceil(workers);
                thread::scope(|scope| {
                    for (ci, (wc, kc)) in
                        cur_w.chunks_mut(per).zip(cur_k.chunks_mut(per)).enumerate()
                    {
                        scope.spawn(move |_| {
                            for (j, (w, k)) in wc.iter_mut().zip(kc.iter_mut()).enumerate() {
                                relax_arc(self.triangles_of(lo + ci * per + j), done, w, k);
                            }
                        });
                    }
                })
                .expect("CCH customization worker panicked");
            }
        }
        debug_assert!(
            weights.iter().all(|w| w.is_finite()),
            "every arc must end customization with a finite weight"
        );
    }
}

/// The sparse-delta customization core: sweeps a pending-arc bitset in
/// ascending id order (supports are final before dependents — see
/// `CchTopology::dep_offsets`), fully recomputes each pending arc
/// exactly like `CchTopology::derive` visits it (cheapest original in
/// ascending `EdgeId`, then every recorded triangle in stored order,
/// strict `<` in both phases), and classifies each dependent link when
/// an arc's weight *bits* changed rather than marking all of them:
///
/// - weight **increased**: only a dependent whose stored expansion rule
///   is exactly this triangle can be affected — every other candidate
///   of that dependent is bitwise-unchanged and its previous winner
///   (the earliest scan-order candidate reaching the minimum) still
///   wins, because a worsened non-winning candidate stays non-winning.
/// - weight **decreased**: the triangle's new candidate only matters
///   when it is `<=` the dependent's current weight — strictly below
///   moves the weight, equality can still flip the stored rule to an
///   earlier scan-order triangle, and anything above can never win. A
///   pending co-support re-offers the triangle when it is popped later
///   (it has a larger id than this arc but smaller than the dependent),
///   so a stale candidate here is never load-bearing.
///
/// Marked arcs always run the full derive-order recompute (weight and
/// expansion rule), so arcs never marked keep bitwise-unchanged inputs
/// and the fixed point is bit-identical to a full customization.
/// Returns how many arcs were recomputed.
fn partial_customize(
    topo: &CchTopology,
    inner: &mut ContractionHierarchy,
    scratch: &mut CustomizeScratch,
    seeds: impl IntoIterator<Item = u32>,
    edge_cost: impl Fn(EdgeId) -> f64,
) -> usize {
    let arc_count = topo.arc_count();
    // Lazily (re)build the packed per-arc weight shadow: dense f64
    // reads in the triangle loop instead of striding over `ChArc`s.
    // Every write path below (and `refinish`) keeps it bitwise in sync
    // with the hierarchy's arcs, so an existing full-length shadow is
    // always current.
    if scratch.weights.len() != arc_count {
        scratch.weights.clear();
        scratch
            .weights
            .extend(inner.arcs().iter().map(|a| a.weight));
    }
    let words = arc_count.div_ceil(64);
    scratch.pending.clear();
    scratch.pending.resize(words, 0u64);
    let mut lo = arc_count;
    for a in seeds {
        let ai = a as usize;
        scratch.pending[ai >> 6] |= 1u64 << (ai & 63);
        lo = lo.min(ai);
    }
    // Single ascending sweep over the pending bitset: a dependent's id
    // is always strictly larger than its support's, so bits set while
    // processing are never behind the cursor — popping the lowest set
    // bit per word visits arcs in exactly ascending order.
    let mut recomputed = 0usize;
    let mut wi = lo >> 6;
    while wi < words {
        let word = scratch.pending[wi];
        if word == 0 {
            wi += 1;
            continue;
        }
        let bit = word.trailing_zeros() as usize;
        scratch.pending[wi] &= !(1u64 << bit);
        let ai = (wi << 6) | bit;
        recomputed += 1;
        let mut w = f64::INFINITY;
        let mut k = ChArcKind::Shortcut(u32::MAX, u32::MAX);
        for &e in topo.originals_of(ai) {
            let c = edge_cost(e);
            if c < w {
                w = c;
                k = ChArcKind::Original(e);
            }
        }
        let shadow = &scratch.weights;
        for &(b, c) in topo.triangles_of(ai) {
            let cand = shadow[b as usize] + shadow[c as usize];
            if cand < w {
                w = cand;
                k = ChArcKind::Shortcut(b, c);
            }
        }
        let old_w = shadow[ai];
        let changed = old_w.to_bits() != w.to_bits();
        scratch.weights[ai] = w;
        let arcs = inner.arcs_mut();
        arcs[ai].weight = w;
        arcs[ai].kind = k;
        let seg = topo.arc_to_seg[ai];
        if seg != u32::MAX {
            inner.seg_arcs[seg as usize].weight = w;
        }
        if changed {
            // `-0.0` never bit-matches a stored weight here (costs are
            // sums of non-negative edge costs), so a bits-changed,
            // numerically-equal pair falls through to the conservative
            // decrease path.
            let increased = w > old_w;
            let arcs = inner.arcs();
            let shadow = &scratch.weights;
            for (d, (b, c)) in topo.dependents_of(ai) {
                let di = d as usize;
                let mask = 1u64 << (di & 63);
                if scratch.pending[di >> 6] & mask != 0 {
                    continue;
                }
                let hit = if increased {
                    arcs[di].kind == ChArcKind::Shortcut(b, c)
                } else {
                    shadow[b as usize] + shadow[c as usize] <= shadow[di]
                };
                if hit {
                    scratch.pending[di >> 6] |= mask;
                }
            }
        }
    }
    recomputed
}

/// Reusable buffers for in-place partial and full (re-)customization,
/// kept inside each [`Cch`] so steady-state traffic epochs allocate
/// nothing. Cloning a customized index (e.g. the serve layer's
/// double-buffered staging copy) deliberately resets the scratch instead
/// of copying it — the buffers are rebuilt lazily on the next pass.
#[derive(Debug, Default)]
struct CustomizeScratch {
    /// Pending-arc bitset for [`Cch::apply_delta`], one bit per arc,
    /// swept ascending (drains back to all-zero).
    pending: Vec<u64>,
    /// Packed per-arc weights, bitwise in sync with the hierarchy's
    /// arcs whenever full-length: the partial pass reads triangle
    /// supports from this dense shadow, and the full in-place pass
    /// ([`Cch::recustomize`]) derives straight into it.
    weights: Vec<f64>,
    /// Full-recustomization expansion-rule buffer.
    kinds: Vec<ChArcKind>,
}

impl Clone for CustomizeScratch {
    fn clone(&self) -> Self {
        CustomizeScratch::default()
    }
}

/// Relaxes every supporting triangle of one arc against the completed
/// lower levels.
#[inline]
fn relax_arc(triangles: &[(u32, u32)], done: &[f64], w: &mut f64, k: &mut ChArcKind) {
    for &(b, c) in triangles {
        let cand = done[b as usize] + done[c as usize];
        if cand < *w {
            *w = cand;
            *k = ChArcKind::Shortcut(b, c);
        }
    }
}

/// A customized contraction hierarchy: shared metric-independent
/// [`CchTopology`] plus concrete arc weights for one metric (or custom
/// weight vector) at one weights epoch.
///
/// `Sync` and immutable through `&Cch`; wrap in an [`Arc`] and hand a
/// clone to every worker's
/// [`crate::algo::engine::QueryEngine::with_cch`]. Queries run on the
/// embedded re-weighted [`ContractionHierarchy`], so they are exactly as
/// exact as plain CH queries — just on weights that may have changed
/// milliseconds ago. A uniquely owned copy additionally re-weights *in
/// place*: [`Cch::apply_delta`] / [`Cch::apply_weight_delta`] chase a
/// sparse changed-edge delta through only the triangles it touches, and
/// [`Cch::recustomize`] re-runs the full pass allocation-free — both
/// bit-identical to a fresh customization, which is what lets a serving
/// layer double-buffer one mutable staging copy and atomically publish
/// immutable snapshots of it.
#[derive(Debug, Clone)]
pub struct Cch {
    topo: Arc<CchTopology>,
    /// The graph metric customized for, when derived from
    /// [`CostModel::Length`] / [`CostModel::TravelTime`].
    metric: Option<LandmarkMetric>,
    /// The exact custom weight vector customized for, when derived from
    /// [`CostModel::Custom`] (gating is bitwise).
    custom: Option<Vec<f64>>,
    /// Weights epoch of the graph at customization time.
    weights_epoch: u64,
    /// The re-weighted search hierarchy queries run on.
    inner: ContractionHierarchy,
    /// Reusable buffers for [`Cch::apply_delta`] / [`Cch::recustomize`];
    /// empty until the first in-place pass, reset (not copied) by
    /// `clone`.
    scratch: CustomizeScratch,
}

impl Cch {
    /// The shared metric-independent topology.
    pub fn topology(&self) -> &Arc<CchTopology> {
        &self.topo
    }

    /// The metric customized for (`None` when customized from an
    /// explicit weight vector).
    pub fn metric(&self) -> Option<LandmarkMetric> {
        self.metric
    }

    /// Weights epoch of the graph this customization was derived from
    /// (see [`Graph::weights_epoch`]).
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// Vertex count of the graph the index was built for.
    pub fn vertex_count(&self) -> usize {
        self.topo.vertex_count()
    }

    /// Edge count of the graph the index was built for.
    pub fn edge_count(&self) -> usize {
        self.topo.edge_count()
    }

    /// Whether queries under `cost` may use this customization:
    /// `Length`/`TravelTime` match the customized metric, `Custom`
    /// matches when the query's weight vector is bitwise identical to
    /// the customized one. (The query layer separately checks the
    /// weights epoch against the live graph.)
    pub fn usable_for(&self, cost: &CostModel<'_>) -> bool {
        if self.vertex_count() == 0 {
            return false;
        }
        match cost {
            CostModel::Length => self.metric == Some(LandmarkMetric::Length),
            CostModel::TravelTime => self.metric == Some(LandmarkMetric::TravelTime),
            CostModel::Custom(w) => self.custom.as_deref().is_some_and(|c| {
                c.len() == w.len()
                    && c.iter()
                        .zip(w.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }),
        }
    }

    /// The embedded re-weighted hierarchy — the engine and the
    /// many-to-many module run queries and sweeps directly on it. Its
    /// own metric tag is a placeholder; gating must go through
    /// [`Cch::usable_for`].
    pub(crate) fn hierarchy(&self) -> &ContractionHierarchy {
        &self.inner
    }

    /// Applies a sparse live-speed delta in place: `changed` lists the
    /// edges whose (post-clamp) speed moved since this index was last
    /// (re-)customized — exactly what
    /// [`Graph::set_edge_speeds`](crate::graph::Graph::set_edge_speeds)
    /// returns. The arcs owning those edges are seeded into a worklist
    /// that propagates upward through the triangle DAG in arc-id
    /// (elimination-level) order; an arc's lower triangles re-relax only
    /// when a support's weight actually changed, and propagation stops
    /// wherever a recomputed weight is bit-unchanged. The result is
    /// bit-identical to a full [`CchTopology::customize`] on the current
    /// graph — the `cch_partial_` property harness asserts this; the hot
    /// path never re-checks. Returns the number of arcs recomputed.
    ///
    /// `changed` must cover every edge whose speed changed since
    /// [`Cch::weights_epoch`]; later duplicates win, and entries whose
    /// cost did not actually move are harmless (they recompute to the
    /// same bits and stop immediately). Only metric customizations
    /// accept speed deltas — an index customized from an explicit weight
    /// vector moves through [`Cch::apply_weight_delta`] instead.
    pub fn apply_delta(&mut self, g: &Graph, changed: &[(EdgeId, f64)]) -> usize {
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH was customized for a different graph"
        );
        let metric = self.metric.expect(
            "apply_delta needs a metric customization; \
             use apply_weight_delta for custom weight vectors",
        );
        let epoch = g.weights_epoch();
        let recomputed = match metric {
            // Speed telemetry never moves length weights; the delta only
            // restamps the epoch so the gate re-admits us.
            LandmarkMetric::Length => 0,
            LandmarkMetric::TravelTime => {
                let topo = Arc::clone(&self.topo);
                let cost = CostModel::TravelTime;
                partial_customize(
                    &topo,
                    &mut self.inner,
                    &mut self.scratch,
                    changed.iter().filter_map(|&(e, _)| topo.arc_of_edge(e)),
                    |e| cost.edge_cost(g, e),
                )
            }
        };
        self.inner.set_weights_epoch(epoch);
        self.weights_epoch = epoch;
        recomputed
    }

    /// Sparse form of [`CchTopology::customize_weights`] against this
    /// index's current custom vector: applies `updates` (later
    /// duplicates win) to the stored vector in place and propagates the
    /// touched arcs exactly like [`Cch::apply_delta`]. The weights epoch
    /// is untouched — the graph itself did not change; afterwards
    /// [`Cch::usable_for`] gates on the updated vector. A bit-identical
    /// echo (an update equal to the stored weight) seeds nothing.
    /// Returns the number of arcs recomputed.
    pub fn apply_weight_delta(&mut self, updates: &[(EdgeId, f64)]) -> usize {
        let m = self.edge_count();
        assert!(
            updates
                .iter()
                .all(|&(e, w)| e.index() < m && w.is_finite() && w >= 0.0),
            "weight updates must name real edges with finite, non-negative weights"
        );
        let topo = Arc::clone(&self.topo);
        let custom = self.custom.as_mut().expect(
            "apply_weight_delta needs a custom-vector customization; \
             use apply_delta for metric customizations",
        );
        let mut seeds: Vec<u32> = Vec::with_capacity(updates.len());
        for &(e, w) in updates {
            let slot = &mut custom[e.index()];
            if slot.to_bits() != w.to_bits() {
                *slot = w;
                if let Some(a) = topo.arc_of_edge(e) {
                    seeds.push(a);
                }
            }
        }
        let custom: &[f64] = self.custom.as_deref().expect("checked above");
        partial_customize(&topo, &mut self.inner, &mut self.scratch, seeds, |e| {
            custom[e.index()]
        })
    }

    /// Re-derives every arc weight in place for `cost` at the graph's
    /// current weights epoch — the allocation-free steady-state form of
    /// [`CchTopology::customize`]: no skeleton clone, no fresh weight
    /// buffers; the scratch persists inside the index across epochs.
    /// Bit-identical to a fresh customization.
    pub fn recustomize(&mut self, g: &Graph, cost: &CostModel<'_>) {
        if let CostModel::Custom(w) = cost {
            return self.recustomize_weights(g, w);
        }
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH was customized for a different graph"
        );
        self.metric = Some(match cost {
            CostModel::Length => LandmarkMetric::Length,
            CostModel::TravelTime => LandmarkMetric::TravelTime,
            CostModel::Custom(_) => unreachable!(),
        });
        self.custom = None;
        self.refinish(g.weights_epoch(), |e| cost.edge_cost(g, e));
    }

    /// In-place form of [`CchTopology::customize_weights`] (see
    /// [`Cch::recustomize`]); the stored custom vector's allocation is
    /// reused when the length matches.
    pub fn recustomize_weights(&mut self, g: &Graph, weights: &[f64]) {
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH was customized for a different graph"
        );
        assert_eq!(
            weights.len(),
            self.edge_count(),
            "custom weight vector length must match the edge count"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "custom weights must be finite and non-negative"
        );
        match &mut self.custom {
            Some(c) if c.len() == weights.len() => c.copy_from_slice(weights),
            slot => *slot = Some(weights.to_vec()),
        }
        self.metric = None;
        self.refinish(g.weights_epoch(), |e| weights[e.index()]);
    }

    /// Shared tail of the in-place full paths: full derive into the
    /// persistent scratch buffers, then rewrite arc weights/expansions
    /// and segment weights.
    fn refinish(&mut self, epoch: u64, edge_cost: impl Fn(EdgeId) -> f64) {
        let topo = Arc::clone(&self.topo);
        let mut w = std::mem::take(&mut self.scratch.weights);
        let mut k = std::mem::take(&mut self.scratch.kinds);
        topo.derive_into(edge_cost, &mut w, &mut k);
        for (arc, (wv, kv)) in self.inner.arcs_mut().iter_mut().zip(w.iter().zip(&k)) {
            arc.weight = *wv;
            arc.kind = *kv;
        }
        for sa in self.inner.seg_arcs.iter_mut() {
            sa.weight = w[sa.arc as usize];
        }
        self.inner.set_weights_epoch(epoch);
        self.weights_epoch = epoch;
        self.scratch.weights = w;
        self.scratch.kinds = k;
    }

    /// Cheapest `source -> target` distance as the sum of arc weights
    /// (see [`ContractionHierarchy::query_cost`]).
    pub fn query_cost(
        &self,
        search: &mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<f64> {
        self.inner.query_cost(search, source, target)
    }

    /// Cheapest `source -> target` path as the unpacked original-edge
    /// sequence (see [`ContractionHierarchy::query_edges`]).
    pub fn query_edges<'s>(
        &self,
        search: &'s mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<&'s [EdgeId]> {
        self.inner.query_edges(search, source, target)
    }

    /// Like [`Cch::query_edges`], also handing back the matching vertex
    /// sequence (see [`ContractionHierarchy::query_path`]).
    pub fn query_path<'s>(
        &self,
        search: &'s mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<(&'s [EdgeId], &'s [VertexId])> {
        self.inner.query_path(search, source, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};
    use crate::graph::EdgeId;

    fn region() -> Graph {
        region_network(&RegionConfig::small_test(), 11)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn cch_ranks_are_a_permutation() {
        let g = region();
        let topo = CchTopology::build(&g, &CchConfig::default());
        let mut ranks: Vec<u32> = topo.ranks().to_vec();
        ranks.sort_unstable();
        let expect: Vec<u32> = (0..g.vertex_count() as u32).collect();
        assert_eq!(ranks, expect, "ranks must be a permutation of 0..n");
        assert_eq!(topo.vertex_count(), g.vertex_count());
        assert_eq!(topo.edge_count(), g.edge_count());
        assert!(topo.arc_count() > 0);
        assert!(topo.triangle_count() > 0);
        assert!(topo.level_count() > 1);
    }

    #[test]
    fn cch_build_deterministic_across_thread_counts() {
        let g = region();
        let a = CchTopology::build(&g, &CchConfig { threads: 1 });
        let b = CchTopology::build(&g, &CchConfig { threads: 8 });
        assert_eq!(a.ranks(), b.ranks(), "ordering must not depend on threads");
        assert_eq!(a.arc_count(), b.arc_count());
        assert_eq!(a.tri_pairs, b.tri_pairs);
        assert_eq!(a.level_offsets, b.level_offsets);
    }

    #[test]
    fn cch_customize_parallel_bitwise_identical() {
        // A grid large enough that at least one level crosses PAR_GRAIN,
        // so the parallel relaxation path actually runs.
        let g = grid_network(
            &GridConfig {
                nx: 24,
                ny: 24,
                ..GridConfig::small_test()
            },
            5,
        );
        let seq = Arc::new(CchTopology::build(&g, &CchConfig { threads: 1 }));
        let par = Arc::new(CchTopology::build(&g, &CchConfig { threads: 8 }));
        for cost in [CostModel::Length, CostModel::TravelTime] {
            let a = seq.customize(&g, &cost);
            let b = par.customize(&g, &cost);
            let wa: Vec<u64> = a
                .hierarchy()
                .arcs()
                .iter()
                .map(|x| x.weight.to_bits())
                .collect();
            let wb: Vec<u64> = b
                .hierarchy()
                .arcs()
                .iter()
                .map(|x| x.weight.to_bits())
                .collect();
            assert_eq!(wa, wb, "customized weights must not depend on threads");
        }
    }

    #[test]
    fn cch_queries_match_dijkstra() {
        let g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut search = ChSearch::new(g.vertex_count());
        for cost in [CostModel::Length, CostModel::TravelTime] {
            let cch = topo.customize(&g, &cost);
            let n = g.vertex_count() as u32;
            for (s, t) in [(0, n - 1), (1, n / 2), (n / 3, 2 * n / 3), (n - 1, 0)] {
                let (s, t) = (VertexId(s), VertexId(t));
                let expect = shortest_path(&g, s, t, cost).map(|p| p.cost(&g, cost));
                let got = cch.query_cost(&mut search, s, t);
                match (expect, got) {
                    (None, None) => {}
                    (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                    other => panic!("reachability mismatch: {other:?}"),
                }
                if let Some((edges, vertices)) = cch.query_path(&mut search, s, t) {
                    assert_eq!(vertices.len(), edges.len() + 1);
                    assert_eq!(vertices[0], s);
                    assert_eq!(*vertices.last().unwrap(), t);
                    for (i, &e) in edges.iter().enumerate() {
                        let rec = g.edge(e);
                        assert_eq!(rec.from, vertices[i]);
                        assert_eq!(rec.to, vertices[i + 1]);
                    }
                }
            }
        }
    }

    #[test]
    fn cch_recustomize_after_speed_perturbation() {
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut search = ChSearch::new(g.vertex_count());
        for round in 0..3u64 {
            let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
                .step_by(3 + round as usize)
                .map(|i| {
                    let e = EdgeId(i as u32);
                    (e, g.edge(e).attrs.speed_kmh * 0.5)
                })
                .collect();
            g.set_edge_speeds(&updates);
            let cch = topo.customize(&g, &CostModel::TravelTime);
            assert_eq!(cch.weights_epoch(), g.weights_epoch());
            let n = g.vertex_count() as u32;
            for (s, t) in [(0, n - 1), (n / 4, 3 * n / 4)] {
                let (s, t) = (VertexId(s), VertexId(t));
                let expect = shortest_path(&g, s, t, CostModel::TravelTime)
                    .map(|p| p.cost(&g, CostModel::TravelTime));
                let got = cch.query_cost(&mut search, s, t);
                match (expect, got) {
                    (None, None) => {}
                    (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                    other => panic!("reachability mismatch: {other:?}"),
                }
            }
        }
        assert_eq!(g.weights_epoch(), 3);
    }

    #[test]
    fn cch_zero_ish_speed_update_cannot_poison_customization() {
        // Regression: a zero/denormal speed used to reach the edge
        // records unclamped, turning TravelTime weights into `inf`,
        // which customization then propagated into every shortcut above
        // the poisoned edge. The mutation-boundary clamp must keep every
        // customized weight finite and every query answer exact.
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        // Denormal speeds: positive and finite, but `length / (speed/3.6)`
        // overflows to infinity without the clamp.
        let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
            .step_by(5)
            .map(|i| (EdgeId(i as u32), 1e-308))
            .collect();
        g.set_edge_speeds(&updates);
        for e in 0..g.edge_count() {
            let tt = g.edge(EdgeId(e as u32)).attrs.travel_time_s();
            assert!(tt.is_finite(), "edge {e} travel time must stay finite");
        }
        let cch = topo.customize(&g, &CostModel::TravelTime);
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 3, 2 * n / 3), (n / 2, 1)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let expect = shortest_path(&g, s, t, CostModel::TravelTime)
                .map(|p| p.cost(&g, CostModel::TravelTime));
            let got = cch.query_cost(&mut search, s, t);
            match (expect, got) {
                (None, None) => {}
                (Some(e), Some(c)) => {
                    assert!(e.is_finite() && c.is_finite(), "poisoned weights: {e} {c}");
                    assert!(close(e, c), "{e} vs {c}");
                }
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn cch_custom_weights_gating_is_bitwise() {
        let g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let weights: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 7) as f64).collect();
        let cch = topo.customize_weights(&g, &weights);
        assert!(cch.usable_for(&CostModel::Custom(&weights)));
        assert!(!cch.usable_for(&CostModel::Length));
        assert!(!cch.usable_for(&CostModel::TravelTime));
        let mut other = weights.clone();
        other[0] += 1.0;
        assert!(!cch.usable_for(&CostModel::Custom(&other)));
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, n / 5)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let cost = CostModel::Custom(&weights);
            let expect = shortest_path(&g, s, t, cost).map(|p| p.cost(&g, cost));
            let got = cch.query_cost(&mut search, s, t);
            match (expect, got) {
                (None, None) => {}
                (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
        let length = topo.customize(&g, &CostModel::Length);
        assert!(length.usable_for(&CostModel::Length));
        assert!(!length.usable_for(&CostModel::Custom(&weights)));
    }

    /// Full bitwise comparison of two customized indexes: arc weights,
    /// expansion rules and search-segment weights.
    fn assert_bit_identical(a: &Cch, b: &Cch, what: &str) {
        let aa = a.hierarchy().arcs();
        let bb = b.hierarchy().arcs();
        assert_eq!(aa.len(), bb.len(), "{what}: arc count");
        for (i, (x, y)) in aa.iter().zip(bb).enumerate() {
            assert_eq!(
                x.weight.to_bits(),
                y.weight.to_bits(),
                "{what}: arc {i} weight {} vs {}",
                x.weight,
                y.weight
            );
            assert_eq!(x.kind, y.kind, "{what}: arc {i} expansion rule");
        }
        for (i, (x, y)) in a
            .hierarchy()
            .seg_arcs
            .iter()
            .zip(&b.hierarchy().seg_arcs)
            .enumerate()
        {
            assert_eq!(
                x.weight.to_bits(),
                y.weight.to_bits(),
                "{what}: segment {i} weight"
            );
        }
    }

    #[test]
    fn cch_apply_delta_bit_identical_to_full_customize() {
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut partial = topo.customize(&g, &CostModel::TravelTime);
        // Chained sparse epochs: the partial index must track the full
        // one bit for bit through every delta.
        for round in 0..4u32 {
            let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
                .skip(round as usize)
                .step_by(7)
                .map(|i| {
                    let e = EdgeId(i as u32);
                    (
                        e,
                        g.edge(e).attrs.speed_kmh * if round % 2 == 0 { 0.5 } else { 1.9 },
                    )
                })
                .collect();
            let delta = g.set_edge_speeds(&updates);
            assert!(!delta.is_empty());
            let recomputed = partial.apply_delta(&g, &delta);
            assert!(recomputed > 0, "round {round}: delta must touch arcs");
            assert!(
                recomputed < topo.arc_count(),
                "round {round}: a sparse delta must not recompute everything"
            );
            assert_eq!(partial.weights_epoch(), g.weights_epoch());
            let full = topo.customize(&g, &CostModel::TravelTime);
            assert_bit_identical(&partial, &full, &format!("round {round}"));
        }
    }

    #[test]
    fn cch_apply_delta_empty_and_echo_deltas_are_noops() {
        let g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut cch = topo.customize(&g, &CostModel::TravelTime);
        assert_eq!(cch.apply_delta(&g, &[]), 0);
        // An echo (unchanged speed) recomputes the owning arc but can
        // never propagate.
        let e = EdgeId(0);
        let speed = g.edge(e).attrs.speed_kmh;
        let recomputed = cch.apply_delta(&g, &[(e, speed)]);
        assert!(recomputed <= 1, "an echo must stop at the seeded arc");
        let full = topo.customize(&g, &CostModel::TravelTime);
        assert_bit_identical(&cch, &full, "echo delta");
    }

    #[test]
    fn cch_apply_delta_length_metric_restamps_only() {
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut cch = topo.customize(&g, &CostModel::Length);
        let delta = g.set_edge_speeds(&[(EdgeId(1), 7.5)]);
        assert_eq!(cch.apply_delta(&g, &delta), 0);
        assert_eq!(cch.weights_epoch(), g.weights_epoch());
        let full = topo.customize(&g, &CostModel::Length);
        assert_bit_identical(&cch, &full, "length restamp");
    }

    #[test]
    fn cch_apply_weight_delta_bit_identical_and_regates() {
        let g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut weights: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 9) as f64).collect();
        let mut sparse = topo.customize_weights(&g, &weights);
        // Sparse updates, including a duplicate where the later entry
        // must win.
        let updates = vec![
            (EdgeId(2), 25.0),
            (EdgeId(5), 0.5),
            (EdgeId(2), 3.25),
            (EdgeId((g.edge_count() - 1) as u32), 11.0),
        ];
        for &(e, w) in &updates {
            weights[e.index()] = w;
        }
        let recomputed = sparse.apply_weight_delta(&updates);
        assert!(recomputed > 0);
        let full = topo.customize_weights(&g, &weights);
        assert_bit_identical(&sparse, &full, "weight delta");
        assert!(
            sparse.usable_for(&CostModel::Custom(&weights)),
            "gating must follow the updated vector"
        );
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, n / 5)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let cost = CostModel::Custom(&weights);
            let expect = shortest_path(&g, s, t, cost).map(|p| p.cost(&g, cost));
            let got = sparse.query_cost(&mut search, s, t);
            match (expect, got) {
                (None, None) => {}
                (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn cch_recustomize_in_place_bit_identical() {
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut live = topo.customize(&g, &CostModel::TravelTime);
        for round in 0..3u32 {
            let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
                .step_by(4 + round as usize)
                .map(|i| {
                    let e = EdgeId(i as u32);
                    (e, g.edge(e).attrs.speed_kmh * 0.75)
                })
                .collect();
            g.set_edge_speeds(&updates);
            live.recustomize(&g, &CostModel::TravelTime);
            let full = topo.customize(&g, &CostModel::TravelTime);
            assert_eq!(live.weights_epoch(), g.weights_epoch());
            assert_bit_identical(&live, &full, &format!("recustomize round {round}"));
        }
        // Metric switches in place, including to a custom vector and
        // back.
        let weights: Vec<f64> = (0..g.edge_count()).map(|i| 2.0 + (i % 5) as f64).collect();
        live.recustomize(&g, &CostModel::Custom(&weights));
        assert!(live.usable_for(&CostModel::Custom(&weights)));
        assert!(!live.usable_for(&CostModel::TravelTime));
        let full = topo.customize_weights(&g, &weights);
        assert_bit_identical(&live, &full, "recustomize to custom");
        live.recustomize(&g, &CostModel::Length);
        assert!(live.usable_for(&CostModel::Length));
        let full = topo.customize(&g, &CostModel::Length);
        assert_bit_identical(&live, &full, "recustomize to length");
    }

    #[test]
    fn cch_empty_graph() {
        let g = crate::builder::GraphBuilder::new().build();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        assert_eq!(topo.arc_count(), 0);
        let cch = topo.customize(&g, &CostModel::Length);
        assert!(!cch.usable_for(&CostModel::Length));
    }
}
