//! Customizable contraction hierarchies (CCH): a metric-independent
//! contraction phase plus a millisecond re-weighting pass.
//!
//! The plain hierarchy in [`crate::algo::ch`] bakes its metric into the
//! contraction: witness searches prune shortcuts that are not needed
//! *under the build weights*, so any weight change — live traffic, a
//! learned [`CostModel::Custom`] vector, a perturbation experiment —
//! invalidates the whole index and costs a full rebuild (~100 ms at paper
//! scale). The customizable variant splits the work instead
//! (Dibbelt, Strasser & Wagner, "Customizable Contraction Hierarchies"):
//!
//! 1. **Preprocessing** ([`CchTopology::build`]) fixes a contraction
//!    order using the same deterministic edge-difference + lazy-update
//!    ordering as `ch.rs`, but run on *topology only* (an arc between a
//!    pair of uncontracted neighbours exists or it does not — no witness
//!    searches, no weights). Contracting `v` inserts an arc `u -> w` for
//!    every in/out neighbour pair and records the **lower triangle**
//!    `(u -> w, u -> v, v -> w)`; the full chordal shortcut topology and
//!    its supporting-arc links are materialised exactly once.
//! 2. **Customization** ([`CchTopology::customize`] /
//!    [`CchTopology::customize_weights`]) re-derives every arc weight for
//!    a concrete metric: initialise each arc from its cheapest parallel
//!    original edge, then relax all recorded triangles
//!    (`w(a) = min(w(a), w(b) + w(c))`) bottom-up over the fixed order.
//!    Arcs are processed level by level (the elimination-tree depth of
//!    their lower-ranked endpoint), which makes same-level arcs
//!    independent — the pass parallelises over the existing crossbeam
//!    worker pattern and is bit-identical for any thread count. At paper
//!    scale this runs in single-digit milliseconds, ≥10x faster than a
//!    metric-aware rebuild.
//! 3. **Queries** reuse the stall-on-demand bidirectional upward search
//!    of [`ContractionHierarchy`] unchanged: a customized [`Cch`] embeds
//!    a real `ContractionHierarchy` whose arc pool and CSR search graphs
//!    were re-weighted in place, so point-to-point queries, shortcut
//!    unpacking and the bucket-based many-to-many sweeps all run on the
//!    battle-tested code paths and stay exact.
//!
//! The price of skipping witness searches is a denser search graph (every
//! chordal fill-in arc is kept, where CH would prune witnessed ones), so
//! per-query latency is somewhat higher than a metric-built CH. The
//! trade-off wins whenever weights move faster than queries amortise a
//! rebuild: live-traffic routing, per-driver custom cost vectors, and
//! perturbation sweeps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crossbeam::thread;

use crate::algo::ch::{ChArc, ChArcKind, ChSearch, ContractionHierarchy};
use crate::algo::landmarks::LandmarkMetric;
use crate::graph::{CostModel, EdgeId, Graph, VertexId};

/// Tuning knobs for CCH preprocessing and customization.
#[derive(Debug, Clone)]
pub struct CchConfig {
    /// Worker threads for the initial-priority sweep and for per-level
    /// triangle relaxation during customization.
    pub threads: usize,
}

impl Default for CchConfig {
    fn default() -> Self {
        CchConfig { threads: 4 }
    }
}

/// Minimum same-level arcs per customization worker: below this the
/// per-level crossbeam spawn costs more than the relaxation it splits.
const PAR_GRAIN: usize = 256;

/// One arc of the metric-independent topology in raw (pre-finalise)
/// form: endpoints, the parallel original edges it merges, and the lower
/// triangles supporting it. Shared between the builder and the io
/// deserialiser ([`CchTopology::from_raw`]).
pub(crate) struct RawArc {
    pub(crate) from: VertexId,
    pub(crate) to: VertexId,
    /// Original graph edges `from -> to` (ascending `EdgeId`); empty for
    /// pure fill-in arcs.
    pub(crate) originals: Vec<EdgeId>,
    /// Supporting lower triangles `(b, c)`: this arc is at most
    /// `w(b) + w(c)` where `b = from -> v` and `c = v -> to` for some
    /// intermediate `v` ranked below both endpoints.
    pub(crate) triangles: Vec<(u32, u32)>,
}

/// The metric-independent half of a customizable contraction hierarchy:
/// contraction order, merged chordal arc topology, supporting-triangle
/// links, and a pre-assembled per-rank up/down CSR skeleton.
///
/// Build (or load via [`crate::io::read_cch`]) once per graph topology,
/// wrap in an [`Arc`], then [`CchTopology::customize`] per metric or
/// live-weight epoch — the expensive ordering work is never repeated.
#[derive(Debug, Clone)]
pub struct CchTopology {
    /// Customization worker threads (from [`CchConfig`]).
    threads: usize,
    /// Arc -> merged original edges, CSR.
    orig_offsets: Vec<u32>,
    orig_edges: Vec<EdgeId>,
    /// Arc -> supporting lower triangles `(b, c)`, CSR.
    tri_offsets: Vec<u32>,
    tri_pairs: Vec<(u32, u32)>,
    /// Arc ids are renumbered level-contiguously: arcs whose lower
    /// endpoint has elimination level `l` occupy
    /// `level_offsets[l]..level_offsets[l + 1]`. Triangle relaxation
    /// sweeps levels in order; within a level all arcs are independent.
    level_offsets: Vec<u32>,
    /// Pre-assembled search-graph skeleton: the final arc pool and
    /// per-rank CSR with placeholder weights. [`CchTopology::customize`]
    /// clones it and rewrites weights/expansion rules in place — arc ids
    /// and CSR layout are weight-independent because the topology keeps
    /// exactly one arc per directed vertex pair.
    skeleton: ContractionHierarchy,
}

/// Build-time working state: dynamic chordal adjacency among
/// uncontracted vertices. Mirrors `ch::Builder`, minus weights and
/// witness searches.
struct TopoBuilder {
    /// Arc endpoints, one entry per directed vertex pair ever connected.
    arcs: Vec<(VertexId, VertexId)>,
    /// Per-arc merged original edges (empty for fill-ins).
    originals: Vec<Vec<EdgeId>>,
    /// `(a, b, c)` triangles in creation order.
    triangles: Vec<(u32, u32, u32)>,
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    /// `u32::MAX` while uncontracted, final rank afterwards.
    rank: Vec<u32>,
    deleted_neighbors: Vec<u32>,
    level: Vec<u32>,
}

/// Per-worker gather buffers for the ordering loop.
#[derive(Default)]
struct TopoScratch {
    /// Distinct uncontracted in-neighbours of the probed vertex, with
    /// the (unique) connecting arc.
    ins: Vec<(VertexId, u32)>,
    outs: Vec<(VertexId, u32)>,
}

impl TopoBuilder {
    fn new(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(g.edge_count());
        let mut originals: Vec<Vec<EdgeId>> = Vec::with_capacity(g.edge_count());
        let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in g.edges().enumerate() {
            let id = EdgeId(i as u32);
            // Self-loops can never lie on a shortest path (weights are
            // non-negative) and would break the chordal invariants; drop
            // them from the topology outright.
            if e.from == e.to {
                continue;
            }
            match out_adj[e.from.index()]
                .iter()
                .find(|&&a| arcs[a as usize].1 == e.to)
            {
                Some(&a) => originals[a as usize].push(id),
                None => {
                    let a = arcs.len() as u32;
                    arcs.push((e.from, e.to));
                    originals.push(vec![id]);
                    out_adj[e.from.index()].push(a);
                    in_adj[e.to.index()].push(a);
                }
            }
        }
        TopoBuilder {
            arcs,
            originals,
            triangles: Vec::new(),
            out_adj,
            in_adj,
            rank: vec![u32::MAX; n],
            deleted_neighbors: vec![0; n],
            level: vec![0; n],
        }
    }

    #[inline]
    fn contracted(&self, v: VertexId) -> bool {
        self.rank[v.index()] != u32::MAX
    }

    /// Gathers `v`'s uncontracted in/out neighbours. Arcs are unique per
    /// directed pair, so no parallel-arc dedupe is needed.
    fn gather_neighbors(&self, v: VertexId, scratch: &mut TopoScratch) {
        scratch.ins.clear();
        scratch.outs.clear();
        for &a in &self.in_adj[v.index()] {
            let (from, _) = self.arcs[a as usize];
            if from != v && !self.contracted(from) {
                scratch.ins.push((from, a));
            }
        }
        for &a in &self.out_adj[v.index()] {
            let (_, to) = self.arcs[a as usize];
            if to != v && !self.contracted(to) {
                scratch.outs.push((to, a));
            }
        }
    }

    /// Whether a live arc `from -> to` already exists.
    fn has_arc(&self, from: VertexId, to: VertexId) -> bool {
        self.out_adj[from.index()]
            .iter()
            .any(|&a| self.arcs[a as usize].1 == to)
    }

    /// The lazy-update priority of `v`: same shape as the weighted
    /// builder's (twice the edge difference plus uniformity terms), with
    /// "shortcuts needed" counted by pure arc existence instead of
    /// witness searches. Pure, so the initial sweep runs it from many
    /// threads.
    fn priority(&self, v: VertexId, scratch: &mut TopoScratch) -> i64 {
        self.gather_neighbors(v, scratch);
        let removed = scratch.ins.len() + scratch.outs.len();
        let mut added = 0i64;
        for &(u, _) in &scratch.ins {
            for &(w, _) in &scratch.outs {
                if w != u && !self.has_arc(u, w) {
                    added += 1;
                }
            }
        }
        2 * (added - removed as i64)
            + self.deleted_neighbors[v.index()] as i64
            + 8 * self.level[v.index()] as i64
    }

    /// Contracts `v` at `rank`: completes the chordal clique among its
    /// uncontracted neighbours (inserting fill-in arcs where missing),
    /// records one lower triangle per `(in, out)` pair, then bumps and
    /// prunes the neighbourhood exactly like the weighted builder.
    fn contract(&mut self, v: VertexId, rank: u32, scratch: &mut TopoScratch) {
        self.gather_neighbors(v, scratch);
        self.rank[v.index()] = rank;
        let ins = std::mem::take(&mut scratch.ins);
        let outs = std::mem::take(&mut scratch.outs);
        for &(u, a_in) in &ins {
            for &(w, a_out) in &outs {
                if w == u {
                    continue;
                }
                let a = match self.out_adj[u.index()]
                    .iter()
                    .find(|&&a| self.arcs[a as usize].1 == w)
                {
                    Some(&a) => a,
                    None => {
                        let a = self.arcs.len() as u32;
                        self.arcs.push((u, w));
                        self.originals.push(Vec::new());
                        self.out_adj[u.index()].push(a);
                        self.in_adj[w.index()].push(a);
                        a
                    }
                };
                self.triangles.push((a, a_in, a_out));
            }
        }
        scratch.ins = ins;
        scratch.outs = outs;

        let mut neighbors: Vec<VertexId> = Vec::new();
        for &(nb, _) in scratch.ins.iter().chain(&scratch.outs) {
            if !neighbors.contains(&nb) {
                neighbors.push(nb);
            }
        }
        for nb in neighbors {
            self.deleted_neighbors[nb.index()] += 1;
            let bumped = self.level[v.index()] + 1;
            if self.level[nb.index()] < bumped {
                self.level[nb.index()] = bumped;
            }
            let arcs = &self.arcs;
            let rank = &self.rank;
            let live = |a: &u32| {
                let (from, to) = arcs[*a as usize];
                rank[from.index()] == u32::MAX && rank[to.index()] == u32::MAX
            };
            self.out_adj[nb.index()].retain(live);
            self.in_adj[nb.index()].retain(live);
        }
    }
}

impl CchTopology {
    /// Runs the metric-independent preprocessing: fixes the contraction
    /// order (edge-difference + lazy updates on topology only, initial
    /// priorities fanned out over `cfg.threads` workers) and materialises
    /// the full chordal shortcut topology with its supporting triangles.
    /// Deterministic and bit-identical for any thread count.
    pub fn build(g: &Graph, cfg: &CchConfig) -> Self {
        let n = g.vertex_count();
        let mut b = TopoBuilder::new(g);

        let threads = cfg.threads.max(1).min(n.max(1));
        let mut init_prio = vec![0i64; n];
        if n > 0 {
            let per = n.div_ceil(threads);
            let bref = &b;
            thread::scope(|scope| {
                for (ci, chunk) in init_prio.chunks_mut(per).enumerate() {
                    scope.spawn(move |_| {
                        let mut scratch = TopoScratch::default();
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let v = VertexId((ci * per + j) as u32);
                            *slot = bref.priority(v, &mut scratch);
                        }
                    });
                }
            })
            .expect("CCH priority worker panicked");
        }

        let mut queue: BinaryHeap<Reverse<(i64, u32)>> = init_prio
            .iter()
            .enumerate()
            .map(|(v, &p)| Reverse((p, v as u32)))
            .collect();

        let mut scratch = TopoScratch::default();
        let mut next_rank = 0u32;
        while let Some(Reverse((_stale_prio, v))) = queue.pop() {
            let v = VertexId(v);
            if b.contracted(v) {
                continue;
            }
            let prio = b.priority(v, &mut scratch);
            if let Some(&Reverse((top, _))) = queue.peek() {
                if prio > top {
                    queue.push(Reverse((prio, v.0)));
                    continue;
                }
            }
            b.contract(v, next_rank, &mut scratch);
            next_rank += 1;
        }
        debug_assert_eq!(next_rank as usize, n);

        // Regroup creation-ordered triangles per owning arc (stable, so
        // each arc keeps its triangles in creation order).
        let arc_count = b.arcs.len();
        let mut tris: Vec<Vec<(u32, u32)>> = vec![Vec::new(); arc_count];
        for &(a, lo, hi) in &b.triangles {
            tris[a as usize].push((lo, hi));
        }
        let raw: Vec<RawArc> = b
            .arcs
            .into_iter()
            .zip(b.originals)
            .zip(tris)
            .map(|(((from, to), originals), triangles)| RawArc {
                from,
                to,
                originals,
                triangles,
            })
            .collect();
        Self::from_raw(g.edge_count(), b.rank, raw, cfg.threads)
    }

    /// Finalises a topology from raw arcs: computes elimination levels,
    /// renumbers arcs level-contiguously and assembles the CSR skeleton.
    /// Shared by [`CchTopology::build`] (trusted input) and the io
    /// deserialiser (which validates structurally first).
    pub(crate) fn from_raw(m: usize, rank: Vec<u32>, raw: Vec<RawArc>, threads: usize) -> Self {
        let n = rank.len();
        let arc_count = raw.len();

        // Vertex elimination levels over the chordal graph: one more
        // than the deepest lower-ranked neighbour, scanned in rank order
        // so dependencies are always resolved.
        let mut lower_nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for arc in &raw {
            let (f, t) = (arc.from.index(), arc.to.index());
            if rank[f] < rank[t] {
                lower_nbrs[t].push(f as u32);
            } else {
                lower_nbrs[f].push(t as u32);
            }
        }
        let mut by_rank = vec![0u32; n];
        for (v, &r) in rank.iter().enumerate() {
            by_rank[r as usize] = v as u32;
        }
        let mut vlevel = vec![0u32; n];
        for &v in &by_rank {
            let lvl = lower_nbrs[v as usize]
                .iter()
                .map(|&u| vlevel[u as usize] + 1)
                .max()
                .unwrap_or(0);
            vlevel[v as usize] = lvl;
        }

        // Renumber arcs so each elimination level is contiguous
        // (stable: creation order preserved within a level).
        let arc_level = |a: &RawArc| {
            let (rf, rt) = (rank[a.from.index()], rank[a.to.index()]);
            let lower = if rf < rt { a.from } else { a.to };
            vlevel[lower.index()]
        };
        let mut perm: Vec<u32> = (0..arc_count as u32).collect();
        perm.sort_by_key(|&i| arc_level(&raw[i as usize]));
        let mut new_id = vec![0u32; arc_count];
        for (new, &old) in perm.iter().enumerate() {
            new_id[old as usize] = new as u32;
        }

        let levels = raw
            .iter()
            .map(arc_level)
            .max()
            .map_or(0, |l| l as usize + 1);
        let mut level_offsets = vec![0u32; levels + 1];
        let mut orig_offsets = Vec::with_capacity(arc_count + 1);
        let mut orig_edges = Vec::new();
        let mut tri_offsets = Vec::with_capacity(arc_count + 1);
        let mut tri_pairs = Vec::new();
        let mut skel_arcs: Vec<ChArc> = Vec::with_capacity(arc_count);
        orig_offsets.push(0u32);
        tri_offsets.push(0u32);
        for &old in &perm {
            let a = &raw[old as usize];
            level_offsets[arc_level(a) as usize + 1] += 1;
            orig_edges.extend_from_slice(&a.originals);
            orig_offsets.push(orig_edges.len() as u32);
            tri_pairs.extend(
                a.triangles
                    .iter()
                    .map(|&(b, c)| (new_id[b as usize], new_id[c as usize])),
            );
            tri_offsets.push(tri_pairs.len() as u32);
            // Placeholder weight/expansion; every customization pass
            // rewrites both. A fill-in arc always has at least one
            // supporting triangle (the pair recorded when it was
            // created), so the placeholder expansion is well-formed.
            let kind = match a.originals.first() {
                Some(&e) => ChArcKind::Original(e),
                None => {
                    let (b, c) = a.triangles[0];
                    ChArcKind::Shortcut(new_id[b as usize], new_id[c as usize])
                }
            };
            skel_arcs.push(ChArc {
                from: a.from,
                to: a.to,
                weight: f64::INFINITY,
                kind,
            });
        }
        for l in 0..levels {
            level_offsets[l + 1] += level_offsets[l];
        }

        let skeleton = ContractionHierarchy::assemble(LandmarkMetric::Length, m, rank, skel_arcs);
        CchTopology {
            threads: threads.max(1),
            orig_offsets,
            orig_edges,
            tri_offsets,
            tri_pairs,
            level_offsets,
            skeleton,
        }
    }

    /// Vertex count of the graph the topology was built for.
    pub fn vertex_count(&self) -> usize {
        self.skeleton.vertex_count()
    }

    /// Edge count of the graph the topology was built for (attach-time
    /// fingerprint).
    pub fn edge_count(&self) -> usize {
        self.skeleton.edge_count()
    }

    /// Total arcs in the chordal topology (merged originals plus
    /// fill-ins).
    pub fn arc_count(&self) -> usize {
        self.orig_offsets.len() - 1
    }

    /// Fill-in arcs: chordal shortcuts with no underlying original edge.
    pub fn fill_in_count(&self) -> usize {
        (0..self.arc_count())
            .filter(|&a| self.originals_of(a).is_empty())
            .count()
    }

    /// Recorded lower triangles (the customization work list).
    pub fn triangle_count(&self) -> usize {
        self.tri_pairs.len()
    }

    /// Number of elimination levels (the depth of the parallel
    /// customization sweep).
    pub fn level_count(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Contraction rank of every vertex, indexed by vertex id.
    pub fn ranks(&self) -> &[u32] {
        self.skeleton.ranks()
    }

    /// Merged original edges of arc `a` (ascending `EdgeId`).
    pub(crate) fn originals_of(&self, a: usize) -> &[EdgeId] {
        let lo = self.orig_offsets[a] as usize;
        let hi = self.orig_offsets[a + 1] as usize;
        &self.orig_edges[lo..hi]
    }

    /// Supporting triangles of arc `a`.
    pub(crate) fn triangles_of(&self, a: usize) -> &[(u32, u32)] {
        let lo = self.tri_offsets[a] as usize;
        let hi = self.tri_offsets[a + 1] as usize;
        &self.tri_pairs[lo..hi]
    }

    /// Arc endpoints in final (level-contiguous) order — the io layer's
    /// serialisation view.
    pub(crate) fn arc_endpoints(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.skeleton.arcs().iter().map(|a| (a.from, a.to))
    }

    /// Customizes the topology for `cost`, deriving every arc weight
    /// from the current graph weights. `Custom` cost vectors are
    /// supported directly (this is what finally makes them fast); the
    /// resulting [`Cch`] records the graph's weights epoch so the query
    /// layer can refuse it after further mutations.
    pub fn customize(self: &Arc<Self>, g: &Graph, cost: &CostModel<'_>) -> Cch {
        if let CostModel::Custom(w) = cost {
            return self.customize_weights(g, w);
        }
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH topology was built for a different graph"
        );
        let metric = match cost {
            CostModel::Length => LandmarkMetric::Length,
            CostModel::TravelTime => LandmarkMetric::TravelTime,
            CostModel::Custom(_) => unreachable!(),
        };
        self.finish(Some(metric), None, g.weights_epoch(), |e| {
            cost.edge_cost(g, e)
        })
    }

    /// Customizes the topology for an explicit per-edge weight vector
    /// (indexed by `EdgeId`; every weight must be finite and
    /// non-negative). The resulting [`Cch`] serves
    /// [`CostModel::Custom`] queries whose vector is bitwise equal to
    /// `weights`.
    pub fn customize_weights(self: &Arc<Self>, g: &Graph, weights: &[f64]) -> Cch {
        assert_eq!(
            (self.vertex_count(), self.edge_count()),
            (g.vertex_count(), g.edge_count()),
            "CCH topology was built for a different graph"
        );
        assert_eq!(
            weights.len(),
            self.edge_count(),
            "custom weight vector length must match the edge count"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "custom weights must be finite and non-negative"
        );
        self.finish(None, Some(weights.to_vec()), g.weights_epoch(), |e| {
            weights[e.index()]
        })
    }

    fn finish(
        self: &Arc<Self>,
        metric: Option<LandmarkMetric>,
        custom: Option<Vec<f64>>,
        weights_epoch: u64,
        edge_cost: impl Fn(EdgeId) -> f64,
    ) -> Cch {
        let (weights, kinds) = self.derive(edge_cost);
        let mut inner = self.skeleton.clone();
        for (arc, (w, k)) in inner.arcs_mut().iter_mut().zip(weights.iter().zip(&kinds)) {
            arc.weight = *w;
            arc.kind = *k;
        }
        for sa in inner.seg_arcs.iter_mut() {
            sa.weight = weights[sa.arc as usize];
        }
        inner.set_weights_epoch(weights_epoch);
        Cch {
            topo: Arc::clone(self),
            metric,
            custom,
            weights_epoch,
            inner,
        }
    }

    /// The customization core: per-arc init from the cheapest parallel
    /// original (lowest `EdgeId` on ties), then bottom-up triangle
    /// relaxation level by level. Same-level arcs only read strictly
    /// lower-level weights, so each level parallelises over disjoint
    /// chunks — the result is bit-identical for any thread count.
    fn derive(&self, edge_cost: impl Fn(EdgeId) -> f64) -> (Vec<f64>, Vec<ChArcKind>) {
        let arc_count = self.arc_count();
        let mut weights = vec![f64::INFINITY; arc_count];
        let mut kinds = vec![ChArcKind::Shortcut(u32::MAX, u32::MAX); arc_count];
        for a in 0..arc_count {
            for &e in self.originals_of(a) {
                let c = edge_cost(e);
                if c < weights[a] {
                    weights[a] = c;
                    kinds[a] = ChArcKind::Original(e);
                }
            }
        }
        for l in 1..self.level_count() {
            let lo = self.level_offsets[l] as usize;
            let hi = self.level_offsets[l + 1] as usize;
            let len = hi - lo;
            if len == 0 {
                continue;
            }
            let (done, rest_w) = weights.split_at_mut(lo);
            let cur_w = &mut rest_w[..len];
            let cur_k = &mut kinds[lo..hi];
            let done: &[f64] = done;
            let workers = self.threads.min(len.div_ceil(PAR_GRAIN)).max(1);
            if workers == 1 {
                for (j, (w, k)) in cur_w.iter_mut().zip(cur_k.iter_mut()).enumerate() {
                    relax_arc(self.triangles_of(lo + j), done, w, k);
                }
            } else {
                let per = len.div_ceil(workers);
                thread::scope(|scope| {
                    for (ci, (wc, kc)) in
                        cur_w.chunks_mut(per).zip(cur_k.chunks_mut(per)).enumerate()
                    {
                        scope.spawn(move |_| {
                            for (j, (w, k)) in wc.iter_mut().zip(kc.iter_mut()).enumerate() {
                                relax_arc(self.triangles_of(lo + ci * per + j), done, w, k);
                            }
                        });
                    }
                })
                .expect("CCH customization worker panicked");
            }
        }
        debug_assert!(
            weights.iter().all(|w| w.is_finite()),
            "every arc must end customization with a finite weight"
        );
        (weights, kinds)
    }
}

/// Relaxes every supporting triangle of one arc against the completed
/// lower levels.
#[inline]
fn relax_arc(triangles: &[(u32, u32)], done: &[f64], w: &mut f64, k: &mut ChArcKind) {
    for &(b, c) in triangles {
        let cand = done[b as usize] + done[c as usize];
        if cand < *w {
            *w = cand;
            *k = ChArcKind::Shortcut(b, c);
        }
    }
}

/// A customized contraction hierarchy: shared metric-independent
/// [`CchTopology`] plus concrete arc weights for one metric (or custom
/// weight vector) at one weights epoch.
///
/// Immutable and `Sync`; wrap in an [`Arc`] and hand a clone to every
/// worker's [`crate::algo::engine::QueryEngine::with_cch`]. Queries run
/// on the embedded re-weighted [`ContractionHierarchy`], so they are
/// exactly as exact as plain CH queries — just on weights that may have
/// changed milliseconds ago.
#[derive(Debug, Clone)]
pub struct Cch {
    topo: Arc<CchTopology>,
    /// The graph metric customized for, when derived from
    /// [`CostModel::Length`] / [`CostModel::TravelTime`].
    metric: Option<LandmarkMetric>,
    /// The exact custom weight vector customized for, when derived from
    /// [`CostModel::Custom`] (gating is bitwise).
    custom: Option<Vec<f64>>,
    /// Weights epoch of the graph at customization time.
    weights_epoch: u64,
    /// The re-weighted search hierarchy queries run on.
    inner: ContractionHierarchy,
}

impl Cch {
    /// The shared metric-independent topology.
    pub fn topology(&self) -> &Arc<CchTopology> {
        &self.topo
    }

    /// The metric customized for (`None` when customized from an
    /// explicit weight vector).
    pub fn metric(&self) -> Option<LandmarkMetric> {
        self.metric
    }

    /// Weights epoch of the graph this customization was derived from
    /// (see [`Graph::weights_epoch`]).
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// Vertex count of the graph the index was built for.
    pub fn vertex_count(&self) -> usize {
        self.topo.vertex_count()
    }

    /// Edge count of the graph the index was built for.
    pub fn edge_count(&self) -> usize {
        self.topo.edge_count()
    }

    /// Whether queries under `cost` may use this customization:
    /// `Length`/`TravelTime` match the customized metric, `Custom`
    /// matches when the query's weight vector is bitwise identical to
    /// the customized one. (The query layer separately checks the
    /// weights epoch against the live graph.)
    pub fn usable_for(&self, cost: &CostModel<'_>) -> bool {
        if self.vertex_count() == 0 {
            return false;
        }
        match cost {
            CostModel::Length => self.metric == Some(LandmarkMetric::Length),
            CostModel::TravelTime => self.metric == Some(LandmarkMetric::TravelTime),
            CostModel::Custom(w) => self.custom.as_deref().is_some_and(|c| {
                c.len() == w.len()
                    && c.iter()
                        .zip(w.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }),
        }
    }

    /// The embedded re-weighted hierarchy — the engine and the
    /// many-to-many module run queries and sweeps directly on it. Its
    /// own metric tag is a placeholder; gating must go through
    /// [`Cch::usable_for`].
    pub(crate) fn hierarchy(&self) -> &ContractionHierarchy {
        &self.inner
    }

    /// Cheapest `source -> target` distance as the sum of arc weights
    /// (see [`ContractionHierarchy::query_cost`]).
    pub fn query_cost(
        &self,
        search: &mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<f64> {
        self.inner.query_cost(search, source, target)
    }

    /// Cheapest `source -> target` path as the unpacked original-edge
    /// sequence (see [`ContractionHierarchy::query_edges`]).
    pub fn query_edges<'s>(
        &self,
        search: &'s mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<&'s [EdgeId]> {
        self.inner.query_edges(search, source, target)
    }

    /// Like [`Cch::query_edges`], also handing back the matching vertex
    /// sequence (see [`ContractionHierarchy::query_path`]).
    pub fn query_path<'s>(
        &self,
        search: &'s mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<(&'s [EdgeId], &'s [VertexId])> {
        self.inner.query_path(search, source, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};
    use crate::graph::EdgeId;

    fn region() -> Graph {
        region_network(&RegionConfig::small_test(), 11)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn cch_ranks_are_a_permutation() {
        let g = region();
        let topo = CchTopology::build(&g, &CchConfig::default());
        let mut ranks: Vec<u32> = topo.ranks().to_vec();
        ranks.sort_unstable();
        let expect: Vec<u32> = (0..g.vertex_count() as u32).collect();
        assert_eq!(ranks, expect, "ranks must be a permutation of 0..n");
        assert_eq!(topo.vertex_count(), g.vertex_count());
        assert_eq!(topo.edge_count(), g.edge_count());
        assert!(topo.arc_count() > 0);
        assert!(topo.triangle_count() > 0);
        assert!(topo.level_count() > 1);
    }

    #[test]
    fn cch_build_deterministic_across_thread_counts() {
        let g = region();
        let a = CchTopology::build(&g, &CchConfig { threads: 1 });
        let b = CchTopology::build(&g, &CchConfig { threads: 8 });
        assert_eq!(a.ranks(), b.ranks(), "ordering must not depend on threads");
        assert_eq!(a.arc_count(), b.arc_count());
        assert_eq!(a.tri_pairs, b.tri_pairs);
        assert_eq!(a.level_offsets, b.level_offsets);
    }

    #[test]
    fn cch_customize_parallel_bitwise_identical() {
        // A grid large enough that at least one level crosses PAR_GRAIN,
        // so the parallel relaxation path actually runs.
        let g = grid_network(
            &GridConfig {
                nx: 24,
                ny: 24,
                ..GridConfig::small_test()
            },
            5,
        );
        let seq = Arc::new(CchTopology::build(&g, &CchConfig { threads: 1 }));
        let par = Arc::new(CchTopology::build(&g, &CchConfig { threads: 8 }));
        for cost in [CostModel::Length, CostModel::TravelTime] {
            let a = seq.customize(&g, &cost);
            let b = par.customize(&g, &cost);
            let wa: Vec<u64> = a
                .hierarchy()
                .arcs()
                .iter()
                .map(|x| x.weight.to_bits())
                .collect();
            let wb: Vec<u64> = b
                .hierarchy()
                .arcs()
                .iter()
                .map(|x| x.weight.to_bits())
                .collect();
            assert_eq!(wa, wb, "customized weights must not depend on threads");
        }
    }

    #[test]
    fn cch_queries_match_dijkstra() {
        let g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut search = ChSearch::new(g.vertex_count());
        for cost in [CostModel::Length, CostModel::TravelTime] {
            let cch = topo.customize(&g, &cost);
            let n = g.vertex_count() as u32;
            for (s, t) in [(0, n - 1), (1, n / 2), (n / 3, 2 * n / 3), (n - 1, 0)] {
                let (s, t) = (VertexId(s), VertexId(t));
                let expect = shortest_path(&g, s, t, cost).map(|p| p.cost(&g, cost));
                let got = cch.query_cost(&mut search, s, t);
                match (expect, got) {
                    (None, None) => {}
                    (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                    other => panic!("reachability mismatch: {other:?}"),
                }
                if let Some((edges, vertices)) = cch.query_path(&mut search, s, t) {
                    assert_eq!(vertices.len(), edges.len() + 1);
                    assert_eq!(vertices[0], s);
                    assert_eq!(*vertices.last().unwrap(), t);
                    for (i, &e) in edges.iter().enumerate() {
                        let rec = g.edge(e);
                        assert_eq!(rec.from, vertices[i]);
                        assert_eq!(rec.to, vertices[i + 1]);
                    }
                }
            }
        }
    }

    #[test]
    fn cch_recustomize_after_speed_perturbation() {
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut search = ChSearch::new(g.vertex_count());
        for round in 0..3u64 {
            let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
                .step_by(3 + round as usize)
                .map(|i| {
                    let e = EdgeId(i as u32);
                    (e, g.edge(e).attrs.speed_kmh * 0.5)
                })
                .collect();
            g.set_edge_speeds(&updates);
            let cch = topo.customize(&g, &CostModel::TravelTime);
            assert_eq!(cch.weights_epoch(), g.weights_epoch());
            let n = g.vertex_count() as u32;
            for (s, t) in [(0, n - 1), (n / 4, 3 * n / 4)] {
                let (s, t) = (VertexId(s), VertexId(t));
                let expect = shortest_path(&g, s, t, CostModel::TravelTime)
                    .map(|p| p.cost(&g, CostModel::TravelTime));
                let got = cch.query_cost(&mut search, s, t);
                match (expect, got) {
                    (None, None) => {}
                    (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                    other => panic!("reachability mismatch: {other:?}"),
                }
            }
        }
        assert_eq!(g.weights_epoch(), 3);
    }

    #[test]
    fn cch_zero_ish_speed_update_cannot_poison_customization() {
        // Regression: a zero/denormal speed used to reach the edge
        // records unclamped, turning TravelTime weights into `inf`,
        // which customization then propagated into every shortcut above
        // the poisoned edge. The mutation-boundary clamp must keep every
        // customized weight finite and every query answer exact.
        let mut g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        // Denormal speeds: positive and finite, but `length / (speed/3.6)`
        // overflows to infinity without the clamp.
        let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
            .step_by(5)
            .map(|i| (EdgeId(i as u32), 1e-308))
            .collect();
        g.set_edge_speeds(&updates);
        for e in 0..g.edge_count() {
            let tt = g.edge(EdgeId(e as u32)).attrs.travel_time_s();
            assert!(tt.is_finite(), "edge {e} travel time must stay finite");
        }
        let cch = topo.customize(&g, &CostModel::TravelTime);
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 3, 2 * n / 3), (n / 2, 1)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let expect = shortest_path(&g, s, t, CostModel::TravelTime)
                .map(|p| p.cost(&g, CostModel::TravelTime));
            let got = cch.query_cost(&mut search, s, t);
            match (expect, got) {
                (None, None) => {}
                (Some(e), Some(c)) => {
                    assert!(e.is_finite() && c.is_finite(), "poisoned weights: {e} {c}");
                    assert!(close(e, c), "{e} vs {c}");
                }
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn cch_custom_weights_gating_is_bitwise() {
        let g = region();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let weights: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 7) as f64).collect();
        let cch = topo.customize_weights(&g, &weights);
        assert!(cch.usable_for(&CostModel::Custom(&weights)));
        assert!(!cch.usable_for(&CostModel::Length));
        assert!(!cch.usable_for(&CostModel::TravelTime));
        let mut other = weights.clone();
        other[0] += 1.0;
        assert!(!cch.usable_for(&CostModel::Custom(&other)));
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, n / 5)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let cost = CostModel::Custom(&weights);
            let expect = shortest_path(&g, s, t, cost).map(|p| p.cost(&g, cost));
            let got = cch.query_cost(&mut search, s, t);
            match (expect, got) {
                (None, None) => {}
                (Some(e), Some(c)) => assert!(close(e, c), "{e} vs {c}"),
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
        let length = topo.customize(&g, &CostModel::Length);
        assert!(length.usable_for(&CostModel::Length));
        assert!(!length.usable_for(&CostModel::Custom(&weights)));
    }

    #[test]
    fn cch_empty_graph() {
        let g = crate::builder::GraphBuilder::new().build();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        assert_eq!(topo.arc_count(), 0);
        let cch = topo.customize(&g, &CostModel::Length);
        assert!(!cch.usable_for(&CostModel::Length));
    }
}
