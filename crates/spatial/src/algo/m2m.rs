//! Bucket-based many-to-many distance tables over a
//! [`ContractionHierarchy`] — the batched counterpart of the CH
//! point-to-point query.
//!
//! The HMM transition model of map matching, candidate diagnostics and
//! any matrix-shaped serving workload all ask the same question: the
//! shortest-path distance for **every pair** of an `S`-element source set
//! and a `T`-element target set. Issuing `S × T` independent CH queries
//! repeats almost all of the work: every query from the same source
//! climbs the same upward closure, and every query *to* the same target
//! descends the same one.
//!
//! The classic bucket algorithm (Knopp et al., "Computing Many-to-Many
//! Shortest Paths Using Highway Hierarchies") factors that repetition
//! out:
//!
//! 1. **Target phase** — one *backward upward* sweep per target `t_j`
//!    deposits an entry `(j, d(v, t_j))` in a per-rank **bucket** at
//!    every vertex `v` the sweep settles.
//! 2. **Source phase** — one *forward upward* sweep per source `s_i`
//!    scans, at every settled vertex `v`, the bucket left by phase 1 and
//!    improves `table[i][j]` with `d(s_i, v) + d(v, t_j)`.
//!
//! `T` backward sweeps plus `S` forward sweeps — each the size of a
//! *half* point-to-point query — replace `S × T` full queries. The meet
//! logic is exactly the one-to-one query's: a sweep settles stalled
//! vertices with valid (possibly suboptimal) labels and still
//! deposits/scans them, so every bucket sum is the cost of a real path
//! and the canonical up-down meeting vertex of each pair closes the
//! exact optimum (the same stall-on-demand argument as
//! [`ContractionHierarchy::query_cost`]).
//!
//! Entries are **raw arc-weight sums** (`d_fwd + d_bucket`), exact up to
//! float association of shortcut weights — on integer-weight graphs they
//! are bit-identical to Dijkstra (locked in by `tests/m2m_exactness.rs`).
//! Callers that need a pair's *path* (e.g. stitching the transitions the
//! HMM actually selected) unpack it on demand via
//! [`ContractionHierarchy::m2m_path`], which recomputes the cost in
//! Dijkstra's fold order like every engine entry point.
//!
//! The scratch state ([`M2mSearch`]) is epoch-stamped like
//! [`ChSearch`]/`SearchSpace`: buckets and sweep labels invalidate in
//! O(1), so steady-state tables perform **no per-call `O(V)` work** —
//! only the `S × T` output allocation. Prepared target buckets can also
//! be streamed against ([`ContractionHierarchy::prepare_targets`] +
//! [`ContractionHierarchy::distances_from`]): a server batching
//! one-to-many requests against a fixed target set pays the target phase
//! once.

use crate::algo::ch::{ChSearch, ChSide, ContractionHierarchy};
use crate::graph::{EdgeId, VertexId};
use crate::util::MinCost;

/// An `S × T` matrix of exact shortest-path distances, row-major:
/// `dist(i, j)` is the cost of the cheapest `sources[i] -> targets[j]`
/// path under the hierarchy's build metric, `f64::INFINITY` when
/// unreachable (`0.0` on the diagonal pairs where source and target
/// coincide).
#[derive(Debug, Clone)]
pub struct DistanceTable {
    sources: Vec<VertexId>,
    targets: Vec<VertexId>,
    dist: Vec<f64>,
}

impl DistanceTable {
    /// The source vertices, in row order.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// The target vertices, in column order.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// `(rows, columns)` = `(sources, targets)` counts.
    pub fn shape(&self) -> (usize, usize) {
        (self.sources.len(), self.targets.len())
    }

    /// Distance of the pair `sources[i] -> targets[j]`;
    /// `f64::INFINITY` when unreachable.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.targets.len() + j]
    }

    /// Row `i`: distances from `sources[i]` to every target.
    pub fn row(&self, i: usize) -> &[f64] {
        let t = self.targets.len();
        &self.dist[i * t..(i + 1) * t]
    }

    /// Distance of the pair `(source, target)` looked up by vertex id
    /// (linear scan over the endpoint lists — fine for the table sizes
    /// the batched workloads build); `None` when either endpoint is not
    /// part of the table.
    pub fn dist_between(&self, source: VertexId, target: VertexId) -> Option<f64> {
        let i = self.sources.iter().position(|&v| v == source)?;
        let j = self.targets.iter().position(|&v| v == target)?;
        Some(self.dist(i, j))
    }
}

/// One bucket entry: the target's column index and the exact backward
/// upward distance from the bucket's vertex to that target.
#[derive(Debug, Clone, Copy)]
struct BucketEntry {
    col: u32,
    dist: f64,
}

/// Reusable scratch for bucket-based many-to-many queries: one
/// epoch-stamped sweep side, per-rank buckets with O(1) bulk
/// invalidation, the streamed row buffer and (lazily) an unpack scratch.
///
/// Create once per worker ([`M2mSearch::new`] with the graph's vertex
/// count) and reuse across tables; like the engine's `SearchSpace`,
/// steady-state calls allocate nothing `O(V)`.
#[derive(Debug)]
pub struct M2mSearch {
    /// Shared sweep state (targets first, then sources — the phases never
    /// overlap, so one side suffices).
    side: ChSide,
    /// Bucket generation; `buckets[r]` is live iff
    /// `bucket_stamp[r] == bucket_epoch`, which invalidates every bucket
    /// at once when a new target set is prepared.
    bucket_epoch: u32,
    bucket_stamp: Vec<u32>,
    /// Per-rank deposits of the current target phase. Entries appear in
    /// ascending column order (targets are swept in order).
    buckets: Vec<Vec<BucketEntry>>,
    /// Number of targets in the currently prepared set.
    prepared: usize,
    /// Reused output row of [`ContractionHierarchy::distances_from`].
    row: Vec<f64>,
    /// Point-to-point scratch for [`ContractionHierarchy::m2m_path`],
    /// allocated on first use.
    unpack: Option<ChSearch>,
}

impl M2mSearch {
    /// Creates scratch state for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        M2mSearch {
            side: ChSide::new(n),
            bucket_epoch: 0,
            bucket_stamp: vec![0; n],
            buckets: vec![Vec::new(); n],
            prepared: 0,
            row: Vec::new(),
            unpack: None,
        }
    }

    /// Number of vertex slots.
    pub fn capacity(&self) -> usize {
        self.bucket_stamp.len()
    }

    /// Number of targets in the currently prepared bucket set.
    pub fn prepared_targets(&self) -> usize {
        self.prepared
    }
}

impl ContractionHierarchy {
    /// Runs the target phase: one backward upward sweep per target,
    /// depositing `(column, distance)` bucket entries at every settled
    /// rank. Invalidates any previously prepared target set in O(1).
    ///
    /// Follow with any number of [`ContractionHierarchy::distances_from`]
    /// calls — a batched one-to-many workload against a fixed target set
    /// pays this phase once.
    pub fn prepare_targets(&self, search: &mut M2mSearch, targets: &[VertexId]) {
        debug_assert_eq!(
            search.capacity(),
            self.vertex_count(),
            "m2m search sized for another graph"
        );
        // Bump the bucket generation (re-zero on 32-bit wraparound, the
        // same amortised-zero discipline as the sweep sides).
        if search.bucket_epoch == u32::MAX {
            for s in search.bucket_stamp.iter_mut() {
                *s = 0;
            }
            search.bucket_epoch = 0;
        }
        search.bucket_epoch += 1;
        search.prepared = targets.len();

        let M2mSearch {
            side,
            bucket_epoch,
            bucket_stamp,
            buckets,
            ..
        } = search;
        for (j, &t) in targets.iter().enumerate() {
            let col = j as u32;
            side.begin();
            let root = VertexId(self.rank[t.index()]);
            side.relax(root, 0.0, u32::MAX);
            side.heap.push(MinCost {
                cost: 0.0,
                item: root,
            });
            // Backward upward closure (the one-to-one query's phase 2,
            // run to exhaustion and without a `best` bound — every pair
            // shares these labels).
            while let Some(MinCost { cost: d, item: u }) = side.heap.pop() {
                if side.is_settled(u) {
                    continue;
                }
                side.settle(u);
                // Deposit before the stall check: a stalled label is
                // still the cost of a real `u -> t` path, exactly like
                // the labels the one-to-one meet checks read.
                let bucket = &mut buckets[u.index()];
                if bucket_stamp[u.index()] != *bucket_epoch {
                    bucket_stamp[u.index()] = *bucket_epoch;
                    bucket.clear();
                }
                bucket.push(BucketEntry { col, dist: d });
                let lo = self.seg_offsets[u.index()] as usize;
                let mid = self.seg_mid[u.index()] as usize;
                let hi = self.seg_offsets[u.index() + 1] as usize;
                let stalled = self.seg_arcs[lo..mid]
                    .iter()
                    .any(|sa| side.dist(VertexId(sa.other)) + sa.weight < d);
                if stalled {
                    continue;
                }
                for sa in &self.seg_arcs[mid..hi] {
                    let v = VertexId(sa.other);
                    if side.is_settled(v) {
                        continue;
                    }
                    let nd = d + sa.weight;
                    if nd < side.dist(v) {
                        side.relax(v, nd, sa.arc);
                        side.heap.push(MinCost { cost: nd, item: v });
                    }
                }
            }
        }
    }

    /// Runs one source phase against the prepared target buckets: a
    /// forward upward sweep from `source` that scans every settled
    /// rank's bucket. Returns the distances to the prepared targets, in
    /// preparation order (borrowed from the search's reusable row buffer;
    /// valid until the next call).
    pub fn distances_from<'s>(&self, search: &'s mut M2mSearch, source: VertexId) -> &'s [f64] {
        debug_assert_eq!(
            search.capacity(),
            self.vertex_count(),
            "m2m search sized for another graph"
        );
        let M2mSearch {
            side,
            bucket_epoch,
            bucket_stamp,
            buckets,
            prepared,
            row,
            ..
        } = search;
        row.clear();
        row.resize(*prepared, f64::INFINITY);
        side.begin();
        let root = VertexId(self.rank[source.index()]);
        side.relax(root, 0.0, u32::MAX);
        side.heap.push(MinCost {
            cost: 0.0,
            item: root,
        });
        while let Some(MinCost { cost: d, item: u }) = side.heap.pop() {
            if side.is_settled(u) {
                continue;
            }
            side.settle(u);
            // Scan before the stall check, mirroring the deposits.
            if bucket_stamp[u.index()] == *bucket_epoch {
                for e in &buckets[u.index()] {
                    let total = d + e.dist;
                    if total < row[e.col as usize] {
                        row[e.col as usize] = total;
                    }
                }
            }
            let lo = self.seg_offsets[u.index()] as usize;
            let mid = self.seg_mid[u.index()] as usize;
            let hi = self.seg_offsets[u.index() + 1] as usize;
            let stalled = self.seg_arcs[mid..hi]
                .iter()
                .any(|sa| side.dist(VertexId(sa.other)) + sa.weight < d);
            if stalled {
                continue;
            }
            for sa in &self.seg_arcs[lo..mid] {
                let v = VertexId(sa.other);
                if side.is_settled(v) {
                    continue;
                }
                let nd = d + sa.weight;
                if nd < side.dist(v) {
                    side.relax(v, nd, sa.arc);
                    side.heap.push(MinCost { cost: nd, item: v });
                }
            }
        }
        row
    }

    /// The full `sources × targets` [`DistanceTable`]:
    /// [`ContractionHierarchy::prepare_targets`] once, then one
    /// [`ContractionHierarchy::distances_from`] sweep per source.
    ///
    /// `T` backward plus `S` forward upward sweeps replace `S × T`
    /// point-to-point queries — the asymptotic win behind the batched
    /// HMM transition blocks.
    pub fn many_to_many(
        &self,
        search: &mut M2mSearch,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> DistanceTable {
        self.prepare_targets(search, targets);
        let mut dist = Vec::with_capacity(sources.len() * targets.len());
        for &s in sources {
            dist.extend_from_slice(self.distances_from(search, s));
        }
        DistanceTable {
            sources: sources.to_vec(),
            targets: targets.to_vec(),
            dist,
        }
    }

    /// Batched one-to-many: distances from `source` to every target, in
    /// target order (`f64::INFINITY` for unreachable ones). One target
    /// phase plus a single forward sweep — for bounded target sets this
    /// beats a full one-to-all Dijkstra by the hierarchy's usual margin.
    pub fn one_to_many(
        &self,
        search: &mut M2mSearch,
        source: VertexId,
        targets: &[VertexId],
    ) -> Vec<f64> {
        self.prepare_targets(search, targets);
        self.distances_from(search, source).to_vec()
    }

    /// Unpacks the cheapest `source -> target` path for one selected
    /// pair (the transitions the HMM actually keeps): a point-to-point
    /// CH query on the search's embedded unpack scratch. Returns the
    /// original-edge and vertex sequences (borrowed; valid until the
    /// next call), `None` when unreachable or `source == target`.
    pub fn m2m_path<'s>(
        &self,
        search: &'s mut M2mSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<(&'s [EdgeId], &'s [VertexId])> {
        let n = self.vertex_count();
        let unpack = search.unpack.get_or_insert_with(|| ChSearch::new(n));
        self.query_path(unpack, source, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::ch::ChConfig;
    use crate::algo::dijkstra::shortest_path;
    use crate::algo::landmarks::LandmarkMetric;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};
    use crate::graph::{CostModel, Graph};
    use crate::path::Path;

    fn table_vs_pairwise(g: &Graph, sources: &[VertexId], targets: &[VertexId]) {
        let ch = ContractionHierarchy::build(g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = M2mSearch::new(g.vertex_count());
        let table = ch.many_to_many(&mut search, sources, targets);
        assert_eq!(table.shape(), (sources.len(), targets.len()));
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                let plain = shortest_path(g, s, t, CostModel::Length)
                    .map(|p| p.length_m(g))
                    .unwrap_or(if s == t { 0.0 } else { f64::INFINITY });
                let got = table.dist(i, j);
                assert!(
                    (plain - got).abs() < 1e-6 || (plain.is_infinite() && got.is_infinite()),
                    "{s:?}->{t:?}: dijkstra {plain} vs m2m {got}"
                );
            }
        }
    }

    #[test]
    fn m2m_table_matches_pairwise_dijkstra_bitwise_on_integer_weights() {
        // Integer-metre edges: every path cost sums to exactly the same
        // f64 under any association, so the raw bucket sums must equal
        // Dijkstra bit-for-bit (the same trick as tests/ch_exactness.rs).
        use crate::builder::GraphBuilder;
        use crate::geometry::Point;
        use crate::graph::{EdgeAttrs, RoadCategory};
        let mut b = GraphBuilder::new();
        let nv = 30usize;
        let vs: Vec<VertexId> = (0..nv)
            .map(|i| b.add_vertex(Point::new((i % 6) as f64 * 90.0, (i / 6) as f64 * 110.0)))
            .collect();
        // Deterministic pseudo-random integer weights and endpoints.
        let mut x = 0x9e37u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for _ in 0..110 {
            let (f, t, w) = (rnd() % nv, rnd() % nv, 1 + rnd() % 97);
            if f != t {
                let _ = b.add_edge(
                    vs[f],
                    vs[t],
                    EdgeAttrs::with_default_speed(w as f64, RoadCategory::Rural),
                );
            }
        }
        let g = b.build();
        let n = g.vertex_count() as u32;
        let sources: Vec<VertexId> = (0..6).map(|i| VertexId(i * (n / 6))).collect();
        let targets: Vec<VertexId> = (0..7).map(|i| VertexId(n - 1 - i * (n / 8))).collect();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = M2mSearch::new(g.vertex_count());
        let table = ch.many_to_many(&mut search, &sources, &targets);
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                let plain = if s == t {
                    0.0
                } else {
                    shortest_path(&g, s, t, CostModel::Length)
                        .map(|p| p.length_m(&g))
                        .unwrap_or(f64::INFINITY)
                };
                assert_eq!(
                    plain.to_bits(),
                    table.dist(i, j).to_bits(),
                    "{s:?}->{t:?} diverged"
                );
            }
        }
    }

    #[test]
    fn m2m_table_matches_pairwise_on_region() {
        let g = region_network(&RegionConfig::small_test(), 11);
        let n = g.vertex_count() as u32;
        let sources: Vec<VertexId> = (0..5).map(|i| VertexId(i * (n / 5))).collect();
        let targets: Vec<VertexId> = (0..5).map(|i| VertexId(n - 1 - i * (n / 7))).collect();
        table_vs_pairwise(&g, &sources, &targets);
    }

    #[test]
    fn m2m_scratch_reuse_is_clean_across_tables() {
        // A second table on the same scratch must not see the first
        // table's buckets or labels.
        let g = region_network(&RegionConfig::small_test(), 11);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let n = g.vertex_count() as u32;
        let mut reused = M2mSearch::new(g.vertex_count());
        let set_a: Vec<VertexId> = (0..4).map(|i| VertexId(i * (n / 4))).collect();
        let set_b: Vec<VertexId> = (0..3).map(|i| VertexId(n / 2 + i)).collect();
        ch.many_to_many(&mut reused, &set_a, &set_b);
        let second = ch.many_to_many(&mut reused, &set_b, &set_a);
        let mut fresh = M2mSearch::new(g.vertex_count());
        let expect = ch.many_to_many(&mut fresh, &set_b, &set_a);
        for i in 0..set_b.len() {
            for j in 0..set_a.len() {
                assert_eq!(
                    expect.dist(i, j).to_bits(),
                    second.dist(i, j).to_bits(),
                    "scratch state leaked between tables"
                );
            }
        }
    }

    #[test]
    fn m2m_streamed_sources_match_batched_table() {
        let g = region_network(&RegionConfig::small_test(), 11);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let n = g.vertex_count() as u32;
        let sources: Vec<VertexId> = (0..4).map(|i| VertexId(1 + i * (n / 5))).collect();
        let targets: Vec<VertexId> = (0..6).map(|i| VertexId(n - 2 - i * (n / 9))).collect();
        let mut s1 = M2mSearch::new(g.vertex_count());
        let table = ch.many_to_many(&mut s1, &sources, &targets);
        let mut s2 = M2mSearch::new(g.vertex_count());
        ch.prepare_targets(&mut s2, &targets);
        assert_eq!(s2.prepared_targets(), targets.len());
        for (i, &s) in sources.iter().enumerate() {
            let row = ch.distances_from(&mut s2, s);
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(table.dist(i, j).to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn m2m_one_to_many_matches_point_queries() {
        let g = region_network(&RegionConfig::small_test(), 7);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let n = g.vertex_count() as u32;
        let targets: Vec<VertexId> = (0..8).map(|i| VertexId(i * (n / 8))).collect();
        let mut m2m = M2mSearch::new(g.vertex_count());
        let mut p2p = ChSearch::new(g.vertex_count());
        let source = VertexId(n / 3);
        let dists = ch.one_to_many(&mut m2m, source, &targets);
        assert_eq!(dists.len(), targets.len());
        for (j, &t) in targets.iter().enumerate() {
            let expect = ch.query_cost(&mut p2p, source, t).unwrap_or(f64::INFINITY);
            assert!(
                (expect - dists[j]).abs() < 1e-9
                    || (expect.is_infinite() && dists[j].is_infinite()),
                "{source:?}->{t:?}: p2p {expect} vs one_to_many {}",
                dists[j]
            );
        }
    }

    #[test]
    fn m2m_self_pairs_and_unreachable_pairs() {
        use crate::builder::GraphBuilder;
        use crate::geometry::Point;
        use crate::graph::{EdgeAttrs, RoadCategory};
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex(Point::new(0.0, 0.0));
        let a1 = b.add_vertex(Point::new(100.0, 0.0));
        let c0 = b.add_vertex(Point::new(0.0, 9000.0));
        let c1 = b.add_vertex(Point::new(100.0, 9000.0));
        let attrs = || EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential);
        b.add_bidirectional(a0, a1, attrs()).unwrap();
        b.add_bidirectional(c0, c1, attrs()).unwrap();
        let g = b.build();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = M2mSearch::new(g.vertex_count());
        let everyone = [a0, a1, c0, c1];
        let table = ch.many_to_many(&mut search, &everyone, &everyone);
        for (i, &s) in everyone.iter().enumerate() {
            for (j, &t) in everyone.iter().enumerate() {
                let d = table.dist(i, j);
                if s == t {
                    assert_eq!(d, 0.0, "diagonal must be zero");
                } else if (i < 2) == (j < 2) {
                    assert_eq!(d, 100.0, "within-component distance");
                } else {
                    assert!(d.is_infinite(), "cross-component must be INFINITY");
                }
            }
        }
    }

    #[test]
    fn m2m_path_unpacks_selected_pairs() {
        let g = region_network(&RegionConfig::small_test(), 11);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let n = g.vertex_count() as u32;
        let sources = [VertexId(0), VertexId(n / 2)];
        let targets = [VertexId(n - 1), VertexId(n / 3)];
        let mut search = M2mSearch::new(g.vertex_count());
        let table = ch.many_to_many(&mut search, &sources, &targets);
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                if s == t || !table.dist(i, j).is_finite() {
                    continue;
                }
                let (edges, vertices) = ch.m2m_path(&mut search, s, t).expect("finite pair");
                let p = Path::from_edges(&g, edges.to_vec()).expect("contiguous unpack");
                assert_eq!(p.source(), s);
                assert_eq!(p.target(), t);
                assert_eq!(vertices.first(), Some(&s));
                assert_eq!(vertices.last(), Some(&t));
                // The unpacked length agrees with the table entry (up to
                // shortcut-weight association).
                assert!((p.length_m(&g) - table.dist(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn m2m_dist_between_matches_positional_lookup() {
        let g = region_network(&RegionConfig::small_test(), 11);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let n = g.vertex_count() as u32;
        let sources: Vec<VertexId> = (0..4).map(|i| VertexId(i * (n / 4))).collect();
        let targets: Vec<VertexId> = (0..5).map(|i| VertexId(n - 1 - i * (n / 6))).collect();
        let mut search = M2mSearch::new(g.vertex_count());
        let table = ch.many_to_many(&mut search, &sources, &targets);
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    table.dist(i, j).to_bits(),
                    table.dist_between(s, t).expect("pair in table").to_bits()
                );
            }
        }
        assert_eq!(table.dist_between(VertexId(n - 2), sources[0]), None);
    }

    #[test]
    fn m2m_empty_sets_yield_empty_tables() {
        let g = grid_network(&GridConfig::small_test(), 3);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = M2mSearch::new(g.vertex_count());
        let none: [VertexId; 0] = [];
        let some = [VertexId(0)];
        assert_eq!(ch.many_to_many(&mut search, &none, &some).shape(), (0, 1));
        let t = ch.many_to_many(&mut search, &some, &none);
        assert_eq!(t.shape(), (1, 0));
        assert!(t.row(0).is_empty());
        assert!(ch.one_to_many(&mut search, VertexId(0), &none).is_empty());
    }
}
