//! Dijkstra shortest paths: one-to-one, one-to-all, and a constrained
//! variant used as Yen's spur-path engine.
//!
//! The functions here are one-shot conveniences: each allocates a
//! transient [`QueryEngine`] for a single search. Query-heavy code
//! (top-k, map matching, candidate generation) should hold a
//! [`QueryEngine`] instead and reuse its [`SearchSpace`] across queries —
//! that is where the `O(V)` per-query setup cost actually matters.
//!
//! [`SearchSpace`]: crate::algo::engine::SearchSpace

use crate::algo::engine::QueryEngine;
use crate::graph::{CostModel, EdgeId, Graph, VertexId};
use crate::path::Path;
use crate::util::BitSet;

/// A one-to-all shortest path tree rooted at some source.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The root of the tree.
    pub source: VertexId,
    /// `dist[v]` = cost of the cheapest path from the source to `v`,
    /// `f64::INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// `parent[v]` = predecessor vertex and connecting edge on a cheapest
    /// path, `None` for the source and unreachable vertices.
    pub parent: Vec<Option<(VertexId, EdgeId)>>,
}

impl ShortestPathTree {
    /// Whether `v` was reached from the source.
    pub fn reached(&self, v: VertexId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// Extracts the tree path from the source to `t`, if reachable (and
    /// `t != source`).
    pub fn path_to(&self, t: VertexId) -> Option<Path> {
        if !self.reached(t) || t == self.source {
            return None;
        }
        let mut vertices = vec![t];
        let mut edges = Vec::new();
        let mut cur = t;
        while let Some((prev, e)) = self.parent[cur.index()] {
            vertices.push(prev);
            edges.push(e);
            cur = prev;
        }
        debug_assert_eq!(cur, self.source, "parent chain must reach the source");
        vertices.reverse();
        edges.reverse();
        Some(Path::from_parts_unchecked(vertices, edges))
    }
}

/// Runs Dijkstra from `source` to every vertex.
///
/// One-shot convenience over [`QueryEngine::shortest_path_tree`]; reuse an
/// engine (and its allocation-free [`QueryEngine::one_to_all`] view) when
/// running many trees against one graph.
pub fn shortest_path_tree(g: &Graph, source: VertexId, cost: CostModel<'_>) -> ShortestPathTree {
    QueryEngine::new(g).shortest_path_tree(source, cost)
}

/// Cheapest path from `source` to `target` under `cost`, or `None` if
/// unreachable or `source == target`.
///
/// One-shot convenience over [`QueryEngine::shortest_path`].
pub fn shortest_path(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
) -> Option<Path> {
    QueryEngine::new(g).shortest_path(source, target, cost)
}

/// Cheapest `source -> target` path avoiding banned vertices and edges.
///
/// `banned_vertices` must not contain `source` or `target` for a path to
/// exist. This is the spur-path shape of [`super::yen`], as a one-shot
/// plain-Dijkstra search. [`QueryEngine::constrained_shortest_path`]
/// additionally directs the search with a cached A* bound (worth it only
/// when the engine is reused — the bound costs an `O(E)` scan) and may
/// therefore tie-break equal-cost optima differently.
pub fn constrained_shortest_path(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
    banned_vertices: &BitSet,
    banned_edges: &BitSet,
) -> Option<Path> {
    QueryEngine::new(g).constrained_shortest_path_dijkstra(
        source,
        target,
        cost,
        banned_vertices,
        banned_edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};

    /// Classic 5-vertex test graph with a known shortest path structure.
    ///
    /// ```text
    ///      (1)--1--(2)
    ///      / \       \
    ///     4   2       3
    ///    /     \       \
    ///  (0)--8--(3)--1--(4)
    /// ```
    fn weighted() -> Graph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..5)
            .map(|i| b.add_vertex(Point::new(i as f64, 0.0)))
            .collect();
        let mut add = |f: usize, t: usize, w: f64| {
            b.add_bidirectional(
                v[f],
                v[t],
                EdgeAttrs::with_default_speed(w, RoadCategory::Residential),
            )
            .unwrap();
        };
        add(0, 1, 4.0);
        add(1, 2, 1.0);
        add(1, 3, 2.0);
        add(0, 3, 8.0);
        add(3, 4, 1.0);
        add(2, 4, 3.0);
        b.build()
    }

    #[test]
    fn one_to_one_matches_hand_result() {
        let g = weighted();
        let p = shortest_path(&g, VertexId(0), VertexId(4), CostModel::Length).unwrap();
        // 0 -> 1 -> 3 -> 4 with cost 4 + 2 + 1 = 7 beats 0 -> 3 -> 4 = 9.
        assert_eq!(
            p.vertices(),
            &[VertexId(0), VertexId(1), VertexId(3), VertexId(4)]
        );
        assert!((p.length_m(&g) - 7.0).abs() < 1e-12);
        p.validate(&g).unwrap();
    }

    #[test]
    fn tree_distances_are_consistent() {
        let g = weighted();
        let tree = shortest_path_tree(&g, VertexId(0), CostModel::Length);
        let expect = [0.0, 4.0, 5.0, 6.0, 7.0];
        for (i, &d) in expect.iter().enumerate() {
            assert!(
                (tree.dist[i] - d).abs() < 1e-12,
                "dist[{i}] = {} != {d}",
                tree.dist[i]
            );
        }
        // Every tree path's cost equals the recorded distance.
        for v in 1..5u32 {
            let p = tree.path_to(VertexId(v)).unwrap();
            assert!((p.length_m(&g) - tree.dist[v as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn source_equals_target_is_none() {
        let g = weighted();
        assert!(shortest_path(&g, VertexId(2), VertexId(2), CostModel::Length).is_none());
    }

    #[test]
    fn unreachable_target() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::with_default_speed(1.0, RoadCategory::Rural),
        )
        .unwrap();
        let g = b.build();
        assert!(shortest_path(&g, v0, v2, CostModel::Length).is_none());
        let tree = shortest_path_tree(&g, v0, CostModel::Length);
        assert!(!tree.reached(v2));
        assert!(tree.path_to(v2).is_none());
    }

    #[test]
    fn banned_vertex_forces_detour() {
        let g = weighted();
        let mut bv = BitSet::new(g.vertex_count());
        let be = BitSet::new(g.edge_count());
        bv.insert(1); // ban vertex 1, killing 0-1-3-4
        let p =
            constrained_shortest_path(&g, VertexId(0), VertexId(4), CostModel::Length, &bv, &be)
                .unwrap();
        assert_eq!(p.vertices(), &[VertexId(0), VertexId(3), VertexId(4)]);
        assert!((p.length_m(&g) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn banned_edge_forces_detour() {
        let g = weighted();
        let bv = BitSet::new(g.vertex_count());
        let mut be = BitSet::new(g.edge_count());
        // Ban the directed edge 1 -> 3 (find its id).
        let e13 = g.find_edge(VertexId(1), VertexId(3)).unwrap();
        be.insert(e13.0);
        let p =
            constrained_shortest_path(&g, VertexId(0), VertexId(4), CostModel::Length, &bv, &be)
                .unwrap();
        // Best remaining: 0-1-2-4 = 4+1+3 = 8 vs 0-3-4 = 9.
        assert!((p.length_m(&g) - 8.0).abs() < 1e-12);
        assert_eq!(
            p.vertices(),
            &[VertexId(0), VertexId(1), VertexId(2), VertexId(4)]
        );
    }

    #[test]
    fn banned_source_or_target_returns_none() {
        let g = weighted();
        let mut bv = BitSet::new(g.vertex_count());
        let be = BitSet::new(g.edge_count());
        bv.insert(0);
        assert!(constrained_shortest_path(
            &g,
            VertexId(0),
            VertexId(4),
            CostModel::Length,
            &bv,
            &be
        )
        .is_none());
    }

    #[test]
    fn travel_time_model_prefers_fast_roads() {
        // Two routes of equal length, one on a highway: fastest differs
        // from shortest.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(500.0, 500.0));
        let v2 = b.add_vertex(Point::new(500.0, -500.0));
        let v3 = b.add_vertex(Point::new(1000.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::with_default_speed(1000.0, RoadCategory::Residential),
        )
        .unwrap();
        b.add_edge(
            v1,
            v3,
            EdgeAttrs::with_default_speed(1000.0, RoadCategory::Residential),
        )
        .unwrap();
        b.add_edge(
            v0,
            v2,
            EdgeAttrs::with_default_speed(1100.0, RoadCategory::Highway),
        )
        .unwrap();
        b.add_edge(
            v2,
            v3,
            EdgeAttrs::with_default_speed(1100.0, RoadCategory::Highway),
        )
        .unwrap();
        let g = b.build();
        let short = shortest_path(&g, v0, v3, CostModel::Length).unwrap();
        let fast = shortest_path(&g, v0, v3, CostModel::TravelTime).unwrap();
        assert_eq!(short.vertices()[1], v1);
        assert_eq!(fast.vertices()[1], v2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};
    use proptest::prelude::*;

    /// Bellman–Ford oracle for distances (slow but obviously correct).
    fn bellman_ford(g: &Graph, s: VertexId) -> Vec<f64> {
        let n = g.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[s.index()] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for e in 0..g.edge_count() {
                let rec = g.edge(EdgeId(e as u32));
                let w = rec.attrs.length_m;
                if dist[rec.from.index()] + w < dist[rec.to.index()] {
                    dist[rec.to.index()] = dist[rec.from.index()] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    /// Random connected-ish digraph: a Hamiltonian cycle (guaranteeing
    /// strong connectivity) plus random extra edges.
    fn random_graph(n: usize, extra: Vec<(usize, usize, u32)>) -> Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64, (i * i % 7) as f64)))
            .collect();
        for i in 0..n {
            b.add_edge(
                vs[i],
                vs[(i + 1) % n],
                EdgeAttrs::with_default_speed(10.0 + i as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
        for (f, t, w) in extra {
            let (f, t) = (f % n, t % n);
            if f != t {
                let _ = b.add_edge(
                    vs[f],
                    vs[t],
                    EdgeAttrs::with_default_speed(1.0 + (w % 100) as f64, RoadCategory::Rural),
                );
            }
        }
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dijkstra_matches_bellman_ford(
            n in 2usize..24,
            extra in proptest::collection::vec((0usize..24, 0usize..24, 0u32..1000), 0..40),
            s in 0usize..24,
        ) {
            let g = random_graph(n, extra);
            let s = VertexId((s % n) as u32);
            let tree = shortest_path_tree(&g, s, CostModel::Length);
            let oracle = bellman_ford(&g, s);
            for (v, (&bf, &dj)) in oracle.iter().zip(tree.dist.iter()).enumerate() {
                if bf.is_finite() {
                    prop_assert!((dj - bf).abs() < 1e-9,
                        "dist[{v}]: dijkstra {} vs bf {}", dj, bf);
                } else {
                    prop_assert!(!dj.is_finite());
                }
            }
        }

        #[test]
        fn tree_paths_cost_equals_distance(
            n in 2usize..20,
            extra in proptest::collection::vec((0usize..20, 0usize..20, 0u32..1000), 0..30),
        ) {
            let g = random_graph(n, extra);
            let s = VertexId(0);
            let tree = shortest_path_tree(&g, s, CostModel::Length);
            for v in 1..n {
                if let Some(p) = tree.path_to(VertexId(v as u32)) {
                    p.validate(&g).unwrap();
                    prop_assert!(p.is_simple(), "shortest paths are simple");
                    prop_assert!((p.length_m(&g) - tree.dist[v]).abs() < 1e-9);
                }
            }
        }
    }
}
