//! Diversified top-k shortest paths — the paper's **D-TkDI** training-data
//! strategy.
//!
//! Plain top-k shortest paths in a road network are nearly identical to each
//! other (they differ by one detour around a single block), which makes poor
//! training data: all candidates carry almost the same label. The
//! diversified variant enumerates loopless shortest paths in cost order (via
//! [`super::yen::YenIter`]) but **keeps** a path only if its similarity with
//! every already-kept path does not exceed a threshold. The result is a
//! compact set of genuinely different alternatives, which the paper shows
//! trains a markedly better ranking model (Tables 1 and 2).

use crate::algo::engine::QueryEngine;
use crate::graph::{CostModel, Graph, VertexId};
use crate::path::Path;
use crate::similarity::{weighted_jaccard, EdgeWeight};

/// Parameters of diversified top-k selection.
#[derive(Debug, Clone, Copy)]
pub struct DiversifiedConfig {
    /// Number of paths to keep.
    pub k: usize,
    /// Maximum allowed weighted-Jaccard similarity between any kept pair.
    /// `1.0` disables diversification (keeps the plain top-k), `0.0` demands
    /// edge-disjoint paths.
    pub threshold: f64,
    /// Upper bound on how many enumerated paths may be *examined* before
    /// giving up; bounds worst-case work when fewer than `k` diverse paths
    /// exist.
    pub max_scan: usize,
    /// Edge weighting for the similarity test.
    pub weight: EdgeWeight,
}

impl DiversifiedConfig {
    /// The paper-style default: k = 10, similarity threshold 0.8,
    /// length-weighted Jaccard, scanning at most `40 × k` candidates.
    pub fn with_k(k: usize) -> Self {
        DiversifiedConfig {
            k,
            threshold: 0.8,
            max_scan: 40 * k.max(1),
            weight: EdgeWeight::Length,
        }
    }
}

/// Selects up to `cfg.k` diverse loopless shortest paths from `source` to
/// `target`, in cost order, each with its cost. The first (overall
/// cheapest) path is always kept.
///
/// One-shot convenience over [`QueryEngine::diversified_top_k`].
pub fn diversified_top_k(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
    cfg: &DiversifiedConfig,
) -> Vec<(Path, f64)> {
    diversified_top_k_with(&mut QueryEngine::new(g), source, target, cost, cfg)
}

/// [`diversified_top_k`] on a caller-provided engine: the underlying Yen
/// enumeration (typically scanning several times `cfg.k` paths, each of
/// which fires a batch of spur searches) reuses the engine's
/// [`crate::algo::engine::SearchSpace`].
pub fn diversified_top_k_with(
    engine: &mut QueryEngine<'_>,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
    cfg: &DiversifiedConfig,
) -> Vec<(Path, f64)> {
    let g = engine.graph();
    let mut kept: Vec<(Path, f64)> = Vec::with_capacity(cfg.k);
    if cfg.k == 0 {
        return kept;
    }
    let mut scanned = 0usize;
    for (p, c) in engine.yen_iter(source, target, cost) {
        scanned += 1;
        let diverse = kept
            .iter()
            .all(|(q, _)| weighted_jaccard(g, &p, q, cfg.weight) <= cfg.threshold + 1e-12);
        if diverse {
            kept.push((p, c));
            if kept.len() >= cfg.k {
                break;
            }
        }
        if scanned >= cfg.max_scan {
            break;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::yen::yen_k_shortest;
    use crate::generators::{grid_network, GridConfig};

    fn setup() -> (Graph, VertexId, VertexId) {
        let g = grid_network(&GridConfig::small_test(), 7);
        let t = VertexId((g.vertex_count() - 1) as u32);
        (g, VertexId(0), t)
    }

    #[test]
    fn threshold_one_equals_plain_top_k() {
        let (g, s, t) = setup();
        let cfg = DiversifiedConfig {
            k: 5,
            threshold: 1.0,
            max_scan: 1000,
            weight: EdgeWeight::Length,
        };
        let div = diversified_top_k(&g, s, t, CostModel::Length, &cfg);
        let plain = yen_k_shortest(&g, s, t, CostModel::Length, 5);
        assert_eq!(div.len(), plain.len());
        for ((dp, dc), (pp, pc)) in div.iter().zip(plain.iter()) {
            assert!(dp.same_route(pp));
            assert!((dc - pc).abs() < 1e-12);
        }
    }

    #[test]
    fn all_kept_pairs_respect_threshold() {
        let (g, s, t) = setup();
        let cfg = DiversifiedConfig::with_k(6);
        let kept = diversified_top_k(&g, s, t, CostModel::Length, &cfg);
        assert!(!kept.is_empty());
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                let sim = weighted_jaccard(&g, &kept[i].0, &kept[j].0, cfg.weight);
                assert!(
                    sim <= cfg.threshold + 1e-9,
                    "pair ({i},{j}) violates threshold: {sim}"
                );
            }
        }
    }

    #[test]
    fn diversified_is_more_diverse_than_plain() {
        let (g, s, t) = setup();
        let k = 5;
        let plain = yen_k_shortest(&g, s, t, CostModel::Length, k);
        let cfg = DiversifiedConfig {
            k,
            threshold: 0.5,
            max_scan: 2000,
            weight: EdgeWeight::Length,
        };
        let div = diversified_top_k(&g, s, t, CostModel::Length, &cfg);
        let mean_sim = |set: &[(Path, f64)]| {
            let mut total = 0.0;
            let mut count = 0usize;
            for i in 0..set.len() {
                for j in (i + 1)..set.len() {
                    total += weighted_jaccard(&g, &set[i].0, &set[j].0, EdgeWeight::Length);
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                total / count as f64
            }
        };
        assert!(
            mean_sim(&div) <= mean_sim(&plain) + 1e-12,
            "diversified set must not be more self-similar than the plain top-k"
        );
    }

    #[test]
    fn costs_stay_sorted_and_first_is_optimal() {
        let (g, s, t) = setup();
        let cfg = DiversifiedConfig::with_k(5);
        let kept = diversified_top_k(&g, s, t, CostModel::Length, &cfg);
        let best = yen_k_shortest(&g, s, t, CostModel::Length, 1);
        assert!(
            kept[0].0.same_route(&best[0].0),
            "cheapest path is always kept"
        );
        for w in kept.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9);
        }
    }

    #[test]
    fn k_zero_and_max_scan_bound() {
        let (g, s, t) = setup();
        let cfg = DiversifiedConfig {
            k: 0,
            threshold: 0.5,
            max_scan: 10,
            weight: EdgeWeight::Length,
        };
        assert!(diversified_top_k(&g, s, t, CostModel::Length, &cfg).is_empty());
        // With an impossible threshold and a small scan budget we still
        // terminate quickly with just the first path.
        let cfg = DiversifiedConfig {
            k: 50,
            threshold: 0.0,
            max_scan: 5,
            weight: EdgeWeight::Length,
        };
        let kept = diversified_top_k(&g, s, t, CostModel::Length, &cfg);
        assert!(!kept.is_empty() && kept.len() <= 5);
    }
}
