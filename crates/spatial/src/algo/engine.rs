//! Reusable query engine: generation-stamped search state shared across
//! routing queries.
//!
//! Every routing algorithm in this crate needs the same per-search state —
//! tentative distances, parent pointers, a settled set and a priority
//! queue. Allocating and zero-filling those `O(V)` structures for every
//! query dominates workloads that fire *many* queries against one graph:
//! Yen's top-k runs hundreds of constrained spur searches per
//! origin/destination pair, HMM map matching probes many-to-many shortest
//! paths between candidate layers, and the training-data pipeline does all
//! of the above per trajectory.
//!
//! [`SearchSpace`] keeps those arrays alive across queries and resets them
//! in O(1) with a query-epoch counter: each vertex slot carries the epoch
//! that last wrote it, so stale entries from earlier queries are simply
//! never read. [`QueryEngine`] owns one space per search direction plus a
//! reusable heap and exposes every algorithm of this crate as a method;
//! the free functions in the sibling modules remain as thin wrappers that
//! allocate a transient engine, so one-shot callers keep working
//! unchanged.
//!
//! # Example
//!
//! ```
//! use pathrank_spatial::algo::engine::QueryEngine;
//! use pathrank_spatial::generators::{grid_network, GridConfig};
//! use pathrank_spatial::graph::{CostModel, VertexId};
//!
//! let g = grid_network(&GridConfig::small_test(), 7);
//! let mut engine = QueryEngine::new(&g);
//! // Repeated queries reuse the same search arrays — no per-query O(V)
//! // allocation after the first.
//! let a = engine.shortest_path(VertexId(0), VertexId(24), CostModel::Length).unwrap();
//! let b = engine.shortest_path(VertexId(24), VertexId(3), CostModel::TravelTime).unwrap();
//! assert!(a.length_m(&g) > 0.0 && b.length_m(&g) > 0.0);
//! ```

use std::collections::BinaryHeap;
use std::sync::Arc;

use pathrank_obs::{Counter, Registry};

use crate::algo::cch::Cch;
use crate::algo::ch::{ChSearch, ContractionHierarchy};
use crate::algo::dijkstra::ShortestPathTree;
use crate::algo::diversified::{diversified_top_k_with, DiversifiedConfig};
use crate::algo::landmarks::{LandmarkTable, NodeVectors};
use crate::algo::m2m::{DistanceTable, M2mSearch};
use crate::algo::yen::YenIter;
use crate::frozen::{FrozenArc, FrozenGraph};
use crate::geometry::Point;
use crate::graph::{CostModel, EdgeId, Graph, VertexId};
use crate::path::Path;
use crate::util::{BitSet, MinCost};

/// Sentinel parent entry marking a search root (or an untouched slot).
const NO_PARENT: (u32, u32) = (u32::MAX, u32::MAX);

/// Generation-stamped single-search state: distances, parents, settled
/// flags and the priority queue, reusable across queries with O(1) reset.
///
/// A slot is only meaningful when its stamp matches the current query
/// epoch; [`SearchSpace::begin`] bumps the epoch, which invalidates every
/// slot at once without touching memory. The settled flag is packed into
/// the stamp's low bit, so the whole per-vertex bookkeeping is 24 bytes.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Current query epoch. Slot `v` is live iff `stamp[v] >> 1 == epoch`.
    epoch: u64,
    /// `(last-touching epoch << 1) | settled-bit`, per vertex.
    stamp: Vec<u64>,
    /// Tentative (then final) cost from the query source, per vertex.
    dist: Vec<f64>,
    /// `(parent vertex, connecting edge)` ids; `u32::MAX` marks the root.
    parent: Vec<(u32, u32)>,
    /// Reusable priority queue (cleared, not reallocated, between queries).
    heap: BinaryHeap<MinCost<VertexId>>,
    /// Lifetime count of settled vertices, across all queries on this
    /// space. A plain (non-atomic) increment inside [`SearchSpace::settle`]
    /// — the engine reads deltas around a query to report per-query work
    /// without touching the hot loop with atomics.
    settled_total: u64,
    /// Lifetime count of relaxations (each enqueues one heap entry).
    pushed_total: u64,
}

impl SearchSpace {
    /// Creates a space for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        SearchSpace {
            epoch: 0,
            stamp: vec![0; n],
            dist: vec![f64::INFINITY; n],
            parent: vec![NO_PARENT; n],
            heap: BinaryHeap::new(),
            settled_total: 0,
            pushed_total: 0,
        }
    }

    /// Lifetime `(settled vertices, heap pushes)` across every query run
    /// on this space; monotone, never reset. Callers difference two
    /// readings to get per-query or per-window work.
    pub fn work_counters(&self) -> (u64, u64) {
        (self.settled_total, self.pushed_total)
    }

    /// Number of vertex slots.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Starts a new query: O(1) — bumps the epoch and clears the heap
    /// (which keeps its backing allocation).
    pub fn begin(&mut self) {
        // With stamps packed as `epoch << 1 | settled`, epoch 2^63 would
        // overflow the shift; at one query per nanosecond that is ~292
        // years, so a plain increment is safe for any real workload.
        self.epoch += 1;
        self.heap.clear();
    }

    /// Whether `v` was touched (relaxed) by the current query.
    #[inline]
    pub fn reached(&self, v: VertexId) -> bool {
        self.stamp[v.index()] >> 1 == self.epoch
    }

    /// Distance from the current query's source to `v`;
    /// `f64::INFINITY` when unreached.
    #[inline]
    pub fn dist(&self, v: VertexId) -> f64 {
        if self.reached(v) {
            self.dist[v.index()]
        } else {
            f64::INFINITY
        }
    }

    /// Parent vertex and connecting edge of `v` on the current search
    /// tree; `None` for the source and unreached vertices.
    #[inline]
    pub fn parent_of(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        if !self.reached(v) {
            return None;
        }
        let (pv, pe) = self.parent[v.index()];
        if pv == u32::MAX {
            None
        } else {
            Some((VertexId(pv), EdgeId(pe)))
        }
    }

    /// Whether `v` was settled (popped with final distance) this query.
    #[inline]
    fn is_settled(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == (self.epoch << 1) | 1
    }

    #[inline]
    fn settle(&mut self, v: VertexId) {
        debug_assert!(self.reached(v), "settling an unreached vertex");
        self.stamp[v.index()] |= 1;
        self.settled_total += 1;
    }

    #[inline]
    fn relax(&mut self, v: VertexId, d: f64, parent: (u32, u32)) {
        let i = v.index();
        self.stamp[i] = self.epoch << 1;
        self.dist[i] = d;
        self.parent[i] = parent;
        self.pushed_total += 1;
    }

    /// The minimum key still on the heap, skipping entries already
    /// settled (stale duplicates); `INFINITY` when the frontier is empty.
    fn frontier_min(&mut self) -> f64 {
        while let Some(top) = self.heap.peek() {
            if self.is_settled(top.item) {
                self.heap.pop();
            } else {
                return top.cost;
            }
        }
        f64::INFINITY
    }

    /// Full unconstrained sweep: Dijkstra from `source` with no target
    /// and no banned sets, the one-to-all shape. A dedicated tight loop
    /// — no per-pop target comparison, no per-edge `Option` ban checks —
    /// because full sweeps settle every reachable vertex, so the
    /// per-relaxation constant is all that matters. Relaxation order is
    /// identical to [`SearchSpace::run_dijkstra`] with `target: None`,
    /// so distances and parents are bit-identical.
    fn run_dijkstra_all(
        &mut self,
        g: &Graph,
        source: VertexId,
        cost: CostModel<'_>,
        reverse: bool,
    ) {
        debug_assert_eq!(
            self.capacity(),
            g.vertex_count(),
            "space sized for another graph"
        );
        self.begin();
        self.relax(source, 0.0, NO_PARENT);
        self.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });
        while let Some(MinCost { cost: d, item: u }) = self.heap.pop() {
            if self.is_settled(u) {
                continue; // stale heap entry
            }
            self.settle(u);
            macro_rules! relax_edges {
                ($edges:ident) => {
                    for (v, e) in g.$edges(u) {
                        if self.is_settled(v) {
                            continue;
                        }
                        let nd = d + cost.edge_cost(g, e);
                        if nd < self.dist(v) {
                            self.relax(v, nd, (u.0, e.0));
                            self.heap.push(MinCost { cost: nd, item: v });
                        }
                    }
                };
            }
            if reverse {
                relax_edges!(in_edges);
            } else {
                relax_edges!(out_edges);
            }
        }
    }

    /// Dijkstra from `source`, stopping early once `target` is settled
    /// (when given) and skipping banned vertices/edges (when given).
    /// Starts a fresh query epoch. With `reverse` the search runs over
    /// incoming edges, yielding distances *into* `source` (the parent
    /// chain then points forward: `parent_of(v)` is the next hop on a
    /// cheapest `v -> source` path).
    #[allow(clippy::too_many_arguments)]
    fn run_dijkstra(
        &mut self,
        g: &Graph,
        source: VertexId,
        target: Option<VertexId>,
        cost: CostModel<'_>,
        banned_vertices: Option<&BitSet>,
        banned_edges: Option<&BitSet>,
        reverse: bool,
    ) {
        debug_assert_eq!(
            self.capacity(),
            g.vertex_count(),
            "space sized for another graph"
        );
        self.begin();
        self.relax(source, 0.0, NO_PARENT);
        self.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });

        while let Some(MinCost { cost: d, item: u }) = self.heap.pop() {
            if self.is_settled(u) {
                continue; // stale heap entry
            }
            self.settle(u);
            if target == Some(u) {
                break;
            }
            macro_rules! relax_edges {
                ($edges:ident) => {
                    for (v, e) in g.$edges(u) {
                        if self.is_settled(v) {
                            continue;
                        }
                        if let Some(bv) = banned_vertices {
                            if bv.contains(v.0) {
                                continue;
                            }
                        }
                        if let Some(be) = banned_edges {
                            if be.contains(e.0) {
                                continue;
                            }
                        }
                        let w = cost.edge_cost(g, e);
                        debug_assert!(
                            w >= 0.0,
                            "Dijkstra requires non-negative edge costs, got {w}"
                        );
                        let nd = d + w;
                        if nd < self.dist(v) {
                            self.relax(v, nd, (u.0, e.0));
                            self.heap.push(MinCost { cost: nd, item: v });
                        }
                    }
                };
            }
            if reverse {
                relax_edges!(in_edges);
            } else {
                relax_edges!(out_edges);
            }
        }
    }

    /// A* from `source` to `target` under an admissible, consistent
    /// [`Heuristic`]: `dist` holds g-scores, the heap is keyed on
    /// f-scores. Starts a fresh epoch. Banned sets (when given) only
    /// shrink the edge set, which can only *increase* true distances, so
    /// any full-graph lower bound — Euclidean or ALT — stays admissible.
    fn run_astar(
        &mut self,
        g: &Graph,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        heuristic: &Heuristic<'_>,
        banned: Option<(&BitSet, &BitSet)>,
    ) {
        let (banned_vertices, banned_edges) = match banned {
            Some((bv, be)) => (Some(bv), Some(be)),
            None => (None, None),
        };
        debug_assert_eq!(
            self.capacity(),
            g.vertex_count(),
            "space sized for another graph"
        );
        let h = |v: VertexId| heuristic.eval(g, v);

        self.begin();
        self.relax(source, 0.0, NO_PARENT);
        self.heap.push(MinCost {
            cost: h(source),
            item: source,
        });

        while let Some(MinCost { item: u, .. }) = self.heap.pop() {
            if self.is_settled(u) {
                continue;
            }
            self.settle(u);
            if u == target {
                break;
            }
            let du = self.dist[u.index()];
            for (v, e) in g.out_edges(u) {
                if self.is_settled(v) {
                    continue;
                }
                if let Some(bv) = banned_vertices {
                    if bv.contains(v.0) {
                        continue;
                    }
                }
                if let Some(be) = banned_edges {
                    if be.contains(e.0) {
                        continue;
                    }
                }
                let nd = du + cost.edge_cost(g, e);
                if nd < self.dist(v) {
                    self.relax(v, nd, (u.0, e.0));
                    self.heap.push(MinCost {
                        cost: nd + h(v),
                        item: v,
                    });
                }
            }
        }
    }

    /// Frozen-graph counterpart of [`SearchSpace::run_dijkstra_all`]:
    /// the same full sweep over the merged-CSR arcs of a
    /// [`FrozenGraph`]. Arc order and inlined weights mirror the builder
    /// graph exactly (see [`crate::frozen`]), so heap evolution,
    /// settle order, distances and parents are all bit-identical — the
    /// only difference is that each relaxation reads one contiguous
    /// array instead of three and pays no travel-time division.
    fn run_dijkstra_all_frozen(
        &mut self,
        fz: &FrozenGraph,
        source: VertexId,
        cost: CostModel<'_>,
        reverse: bool,
    ) {
        // Dispatch the metric once per query, not once per relaxation:
        // each arm hands the inner loop a direct field read.
        match cost {
            CostModel::Length => {
                self.run_dijkstra_all_frozen_with(fz, source, reverse, |a| a.length_m)
            }
            CostModel::TravelTime => {
                self.run_dijkstra_all_frozen_with(fz, source, reverse, |a| a.travel_time_s)
            }
            CostModel::Custom(costs) => {
                self.run_dijkstra_all_frozen_with(fz, source, reverse, |a| {
                    costs[a.edge_id as usize]
                })
            }
        }
    }

    fn run_dijkstra_all_frozen_with<W: Fn(&FrozenArc) -> f64>(
        &mut self,
        fz: &FrozenGraph,
        source: VertexId,
        reverse: bool,
        weight: W,
    ) {
        debug_assert_eq!(
            self.capacity(),
            fz.vertex_count(),
            "space sized for another graph"
        );
        self.begin();
        self.relax(source, 0.0, NO_PARENT);
        self.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });
        while let Some(MinCost { cost: d, item: u }) = self.heap.pop() {
            if self.is_settled(u) {
                continue; // stale heap entry
            }
            self.settle(u);
            let arcs = if reverse {
                fz.in_arcs(u)
            } else {
                fz.out_arcs(u)
            };
            for arc in arcs {
                let v = VertexId(arc.target);
                if self.is_settled(v) {
                    continue;
                }
                let nd = d + weight(arc);
                if nd < self.dist(v) {
                    self.relax(v, nd, (u.0, arc.edge_id));
                    self.heap.push(MinCost { cost: nd, item: v });
                }
            }
        }
    }

    /// Frozen-graph counterpart of [`SearchSpace::run_dijkstra`] for the
    /// unbanned forward shape (the `Plain` point-to-point arm): early
    /// exit once `target` settles, relaxation over the frozen arcs.
    /// Bit-identical to the builder-graph search for the same reasons as
    /// [`SearchSpace::run_dijkstra_all_frozen`].
    fn run_dijkstra_frozen(
        &mut self,
        fz: &FrozenGraph,
        source: VertexId,
        target: Option<VertexId>,
        cost: CostModel<'_>,
    ) {
        match cost {
            CostModel::Length => self.run_dijkstra_frozen_with(fz, source, target, |a| a.length_m),
            CostModel::TravelTime => {
                self.run_dijkstra_frozen_with(fz, source, target, |a| a.travel_time_s)
            }
            CostModel::Custom(costs) => {
                self.run_dijkstra_frozen_with(fz, source, target, |a| costs[a.edge_id as usize])
            }
        }
    }

    fn run_dijkstra_frozen_with<W: Fn(&FrozenArc) -> f64>(
        &mut self,
        fz: &FrozenGraph,
        source: VertexId,
        target: Option<VertexId>,
        weight: W,
    ) {
        debug_assert_eq!(
            self.capacity(),
            fz.vertex_count(),
            "space sized for another graph"
        );
        self.begin();
        self.relax(source, 0.0, NO_PARENT);
        self.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });
        while let Some(MinCost { cost: d, item: u }) = self.heap.pop() {
            if self.is_settled(u) {
                continue; // stale heap entry
            }
            self.settle(u);
            if target == Some(u) {
                break;
            }
            for arc in fz.out_arcs(u) {
                let v = VertexId(arc.target);
                if self.is_settled(v) {
                    continue;
                }
                let w = weight(arc);
                debug_assert!(
                    w >= 0.0,
                    "Dijkstra requires non-negative edge costs, got {w}"
                );
                let nd = d + w;
                if nd < self.dist(v) {
                    self.relax(v, nd, (u.0, arc.edge_id));
                    self.heap.push(MinCost { cost: nd, item: v });
                }
            }
        }
    }

    /// Frozen-graph counterpart of [`SearchSpace::run_astar`] (unbanned):
    /// relaxation runs over the frozen arcs while the heuristic keeps
    /// evaluating on the builder graph's full-precision `f64` coordinates
    /// (the frozen form's `f32` coords are snapping-only — a narrowed
    /// anchor could produce different f-score tie-breaking).
    fn run_astar_frozen(
        &mut self,
        g: &Graph,
        fz: &FrozenGraph,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        heuristic: &Heuristic<'_>,
    ) {
        match cost {
            CostModel::Length => {
                self.run_astar_frozen_with(g, fz, source, target, heuristic, |a| a.length_m)
            }
            CostModel::TravelTime => {
                self.run_astar_frozen_with(g, fz, source, target, heuristic, |a| a.travel_time_s)
            }
            CostModel::Custom(costs) => {
                self.run_astar_frozen_with(g, fz, source, target, heuristic, |a| {
                    costs[a.edge_id as usize]
                })
            }
        }
    }

    fn run_astar_frozen_with<W: Fn(&FrozenArc) -> f64>(
        &mut self,
        g: &Graph,
        fz: &FrozenGraph,
        source: VertexId,
        target: VertexId,
        heuristic: &Heuristic<'_>,
        weight: W,
    ) {
        debug_assert_eq!(
            self.capacity(),
            fz.vertex_count(),
            "space sized for another graph"
        );
        let h = |v: VertexId| heuristic.eval(g, v);

        self.begin();
        self.relax(source, 0.0, NO_PARENT);
        self.heap.push(MinCost {
            cost: h(source),
            item: source,
        });

        while let Some(MinCost { item: u, .. }) = self.heap.pop() {
            if self.is_settled(u) {
                continue;
            }
            self.settle(u);
            if u == target {
                break;
            }
            let du = self.dist[u.index()];
            for arc in fz.out_arcs(u) {
                let v = VertexId(arc.target);
                if self.is_settled(v) {
                    continue;
                }
                let nd = du + weight(arc);
                if nd < self.dist(v) {
                    self.relax(v, nd, (u.0, arc.edge_id));
                    self.heap.push(MinCost {
                        cost: nd + h(v),
                        item: v,
                    });
                }
            }
        }
    }

    /// Extracts the tree path `source -> target` recorded by the last
    /// query, `None` when `target` is unreached or equals `source`.
    fn extract_path(&self, source: VertexId, target: VertexId) -> Option<Path> {
        if !self.reached(target) || target == source {
            return None;
        }
        let mut vertices = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((prev, e)) = self.parent_of(cur) {
            vertices.push(prev);
            edges.push(e);
            cur = prev;
        }
        debug_assert_eq!(cur, source, "parent chain must reach the source");
        vertices.reverse();
        edges.reverse();
        Some(Path::from_parts_unchecked(vertices, edges))
    }
}

/// An admissible, consistent lower bound on the remaining distance to a
/// search's goal endpoint — the abstraction every target-directed search
/// in this crate consumes (A*, Yen/diversified spur searches via
/// [`QueryEngine::constrained_shortest_path`], and the pruning rule of
/// [`QueryEngine::bidirectional_shortest_path`]).
///
/// Variants are ordered from weakest to strongest: `None` degenerates the
/// search to plain Dijkstra; `Euclid` is straight-line distance scaled by
/// [`safe_heuristic_bound`]; `Alt` is the landmark triangle-inequality
/// bound maxed with the Euclidean one, so attaching landmarks can only
/// tighten the search. All variants are exact: they never overestimate,
/// so every guided search returns cost-optimal paths (tie-breaking among
/// equal-cost optima may differ between variants).
#[derive(Debug)]
pub enum Heuristic<'a> {
    /// No usable bound (e.g. [`CostModel::Custom`] with no landmark
    /// table): the search runs as plain Dijkstra.
    None,
    /// `h(v) = euclid(v, anchor) · per_meter` with the cached
    /// [`safe_heuristic_bound`] rate.
    Euclid {
        /// The goal endpoint's coordinates.
        anchor: Point,
        /// Admissible cost-per-metre rate (see [`safe_heuristic_bound`]).
        per_meter: f64,
    },
    /// `h(v) = max(ALT triangle bound, euclid(v, anchor) · per_meter)`.
    Alt {
        /// The landmark distance table (metric-checked by the engine).
        table: &'a LandmarkTable,
        /// Cached distance vectors for the goal endpoint.
        cache: &'a NodeVectors,
        /// `false`: bound on `d(v, endpoint)` (forward search toward the
        /// target); `true`: bound on `d(endpoint, v)` (the backward side
        /// of a bidirectional search, whose goal is the source).
        reverse: bool,
        /// The goal endpoint's coordinates.
        anchor: Point,
        /// Admissible cost-per-metre rate for the Euclidean floor.
        per_meter: f64,
    },
}

impl Heuristic<'_> {
    /// Whether the heuristic provides any guidance (an inactive one makes
    /// `run_astar` pointless — callers run plain Dijkstra instead).
    #[inline]
    pub fn is_active(&self) -> bool {
        !matches!(self, Heuristic::None)
    }

    /// Whether this is the landmark-backed variant.
    #[inline]
    pub fn is_alt(&self) -> bool {
        matches!(self, Heuristic::Alt { .. })
    }

    /// Lower bound on the distance between `v` and the goal endpoint.
    /// May legitimately return `INFINITY` (the ALT vectors prove the
    /// endpoint unreachable from `v`); never NaN.
    #[inline]
    pub fn eval(&self, g: &Graph, v: VertexId) -> f64 {
        match self {
            Heuristic::None => 0.0,
            Heuristic::Euclid { anchor, per_meter } => g.coord(v).distance(anchor) * per_meter,
            Heuristic::Alt {
                table,
                cache,
                reverse,
                anchor,
                per_meter,
            } => {
                let alt = if *reverse {
                    table.bound_from_node(cache, v)
                } else {
                    table.bound_to_node(cache, v)
                };
                alt.max(g.coord(v).distance(anchor) * per_meter)
            }
        }
    }
}

/// The index-backed search regime a point-to-point query dispatches
/// through, resolved **per query** from the engine's attached indexes and
/// the query's cost model ([`QueryEngine::backend_for`]).
///
/// Variants are ordered from weakest to strongest. Resolution picks the
/// strongest backend whose exactness precondition holds:
///
/// * [`SearchBackend::Ch`] — a [`ContractionHierarchy`] is attached and
///   its metric matches the query's cost model. Only *unconstrained*
///   queries qualify: shortcuts bake full-graph paths into single arcs,
///   so a banned vertex or edge could hide inside one
///   ([`QueryEngine::constrained_backend_for`] therefore never returns
///   `Ch`).
/// * [`SearchBackend::Cch`] — a customized [`Cch`] is attached and covers
///   the cost model: the metric it was customized for, or — uniquely
///   among the index backends — a [`CostModel::Custom`] vector bitwise
///   equal to the customized one. Same unconstrained-only rule as `Ch`
///   (its arcs are shortcuts too); ranked below `Ch` because the
///   witness-free chordal search graph is denser.
/// * [`SearchBackend::Alt`] — a [`LandmarkTable`] is attached and covers
///   the cost model. Landmark lower bounds survive banned sets (bans
///   only shrink the graph), so this is also the strongest constrained
///   regime.
/// * [`SearchBackend::Plain`] — no usable index: plain Dijkstra, or A*
///   under the cached Euclidean [`safe_heuristic_bound`] where the entry
///   point is explicitly goal-directed.
///
/// Every index backend additionally requires its build-time weights
/// epoch to match the live graph's ([`Graph::weights_epoch`]): an index
/// prewarmed before a weight mutation is silently skipped rather than
/// allowed to serve stale costs.
///
/// Every regime is exact: backends change how much work a query does,
/// never which cost it returns (tie-breaking among equal-cost optima may
/// differ — locked in by `tests/alt_exactness.rs` and
/// `tests/ch_exactness.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBackend {
    /// No index: Dijkstra / cached-Euclidean A*.
    Plain,
    /// ALT landmark triangle-inequality bounds.
    Alt,
    /// Customizable-CH bidirectional upward search on re-customized
    /// weights (see [`crate::algo::cch`]).
    Cch,
    /// Contraction-hierarchy bidirectional upward search.
    Ch,
}

/// Cloneable metric handles for [`QueryEngine`] instrumentation,
/// registered once against a [`pathrank_obs::Registry`] and cloned into
/// every worker engine ([`QueryEngine::with_obs`]).
///
/// The engine's hot loops stay atomics-free: [`SearchSpace`] and
/// [`crate::algo::ch::ChSearch`] keep plain lifetime work counters, and
/// the per-query instrumentation differences them around the dispatch,
/// folding the delta into sharded registry counters — two relaxed
/// atomic adds per *query*, zero per settled vertex. Handles from
/// [`EngineObs::disabled`] (the default on every new engine) are no-op
/// sinks, so un-instrumented callers pay one predictable branch.
///
/// Registered families:
/// * `pathrank_engine_queries_total{backend}` — point-to-point queries
///   by resolved [`SearchBackend`].
/// * `pathrank_engine_fallback_total{index, reason}` — queries that
///   skipped an attached index, by index (`ch`/`cch`/`alt`) and reason
///   (`stale_weights` when the index predates the graph's weights
///   epoch, `metric_mismatch` when it does not cover the cost model).
/// * `pathrank_engine_settled_nodes_total` /
///   `pathrank_engine_heap_pushes_total` — search work, summed over
///   every space the query touched.
#[derive(Clone)]
pub struct EngineObs {
    enabled: bool,
    /// Counter shard pinned at construction ([`Counter::shard_hint`]):
    /// engines are effectively thread-affine, so resolving the shard
    /// once lets every record skip the per-add thread-local lookup.
    shard: usize,
    /// Indexed by [`EngineObs::backend_slot`]: plain, alt, cch, ch.
    queries: [Counter; 4],
    /// `[ch, cch, alt] × [stale_weights, metric_mismatch]`.
    fallback: [[Counter; 2]; 3],
    settled: Counter,
    pushed: Counter,
}

impl EngineObs {
    /// Registers the engine metric families on `registry` (idempotent —
    /// workers may each call this) and returns live handles. A disabled
    /// registry yields the same no-op handles as [`EngineObs::disabled`].
    pub fn new(registry: &Registry) -> Self {
        let backend = |b: &str| {
            registry.counter(
                "pathrank_engine_queries_total",
                "Point-to-point queries served, by resolved search backend",
                &[("backend", b)],
            )
        };
        let fb = |ix: &str, reason: &str| {
            registry.counter(
                "pathrank_engine_fallback_total",
                "Queries that skipped an attached index, by index and reason",
                &[("index", ix), ("reason", reason)],
            )
        };
        EngineObs {
            enabled: registry.is_enabled(),
            shard: Counter::shard_hint(),
            queries: [
                backend("plain"),
                backend("alt"),
                backend("cch"),
                backend("ch"),
            ],
            fallback: [
                [fb("ch", "stale_weights"), fb("ch", "metric_mismatch")],
                [fb("cch", "stale_weights"), fb("cch", "metric_mismatch")],
                [fb("alt", "stale_weights"), fb("alt", "metric_mismatch")],
            ],
            settled: registry.counter(
                "pathrank_engine_settled_nodes_total",
                "Vertices settled by point-to-point queries, all backends",
                &[],
            ),
            pushed: registry.counter(
                "pathrank_engine_heap_pushes_total",
                "Heap pushes (relaxations) by point-to-point queries, all backends",
                &[],
            ),
        }
    }

    /// The no-op sink every new engine starts with.
    pub fn disabled() -> Self {
        EngineObs {
            enabled: false,
            shard: 0,
            queries: [
                Counter::noop(),
                Counter::noop(),
                Counter::noop(),
                Counter::noop(),
            ],
            fallback: [
                [Counter::noop(), Counter::noop()],
                [Counter::noop(), Counter::noop()],
                [Counter::noop(), Counter::noop()],
            ],
            settled: Counter::noop(),
            pushed: Counter::noop(),
        }
    }

    /// Whether these handles actually record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Strength ordinal doubling as the `queries` array slot.
    fn backend_slot(backend: SearchBackend) -> usize {
        match backend {
            SearchBackend::Plain => 0,
            SearchBackend::Alt => 1,
            SearchBackend::Cch => 2,
            SearchBackend::Ch => 3,
        }
    }
}

impl Default for EngineObs {
    fn default() -> Self {
        EngineObs::disabled()
    }
}

/// Borrowed read-only view of a completed one-to-all search.
///
/// Unlike [`ShortestPathTree`] this does not copy the `O(V)` arrays; it
/// reads straight from the engine's [`SearchSpace`], so a reused engine
/// performs no per-query allocation for one-to-all queries either.
#[derive(Debug)]
pub struct TreeView<'a> {
    space: &'a SearchSpace,
    source: VertexId,
    /// Reverse sweeps ([`QueryEngine::one_to_all_rev`]) store next-hops,
    /// not predecessors; a forward `Path` cannot be extracted from them.
    reverse: bool,
}

impl TreeView<'_> {
    /// The search root.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Whether this view came from a reverse sweep
    /// ([`QueryEngine::one_to_all_rev`]): `dist(v)` is then `d(v, root)`
    /// and `parent_of(v)` the next hop *toward* the root.
    pub fn is_reverse(&self) -> bool {
        self.reverse
    }

    /// Whether `v` was reached from the source.
    #[inline]
    pub fn reached(&self, v: VertexId) -> bool {
        self.space.reached(v)
    }

    /// Cost of the cheapest path to `v`, `INFINITY` when unreachable.
    #[inline]
    pub fn dist(&self, v: VertexId) -> f64 {
        self.space.dist(v)
    }

    /// Predecessor vertex and edge on a cheapest path to `v` (next hop on
    /// reverse views).
    #[inline]
    pub fn parent_of(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        self.space.parent_of(v)
    }

    /// Extracts the tree path to `t` (allocates only the returned path).
    /// Always `None` on reverse views — their parent chains run toward
    /// the root with forward-directed edges, so a `source -> t` path
    /// cannot be assembled from them (debug builds assert instead of
    /// silently returning nothing).
    pub fn path_to(&self, t: VertexId) -> Option<Path> {
        debug_assert!(
            !self.reverse,
            "path_to is not meaningful on a reverse TreeView"
        );
        if self.reverse {
            return None;
        }
        self.space.extract_path(self.source, t)
    }
}

/// A reusable routing facade over one graph: owns a forward and (lazily) a
/// backward [`SearchSpace`] and runs every algorithm of this crate on
/// them.
///
/// Create one per worker thread and keep it for the thread's lifetime;
/// queries may freely interleave cost models, sources and constraint sets
/// — the epoch stamps guarantee queries never observe each other's state
/// (asserted bit-for-bit by `tests/engine_reuse.rs`).
pub struct QueryEngine<'g> {
    g: &'g Graph,
    fwd: SearchSpace,
    /// Backward space, allocated on the first bidirectional query.
    bwd: Option<SearchSpace>,
    /// Cached admissible A* bounds (see [`safe_heuristic_bound`]) for the
    /// two graph-derived cost models — an `O(E)` scan per model that a
    /// transient engine would redo on every query.
    length_bound: Option<f64>,
    travel_time_bound: Option<f64>,
    /// Optional shared ALT landmark table (see
    /// [`QueryEngine::with_landmarks`]); queries whose cost model does
    /// not match the table's metric fall back to the non-ALT heuristics.
    landmarks: Option<Arc<LandmarkTable>>,
    /// Optional shared contraction hierarchy (see [`QueryEngine::with_ch`]):
    /// the strongest backend for unconstrained point-to-point queries,
    /// gated per query exactly like the landmark table.
    ch: Option<Arc<ContractionHierarchy>>,
    /// Optional shared customized CCH (see [`QueryEngine::with_cch`]):
    /// covers whatever metric or custom weight vector it was customized
    /// for; ranked between `Ch` and `Alt`.
    cch: Option<Arc<Cch>>,
    /// Optional shared frozen serving graph (see
    /// [`QueryEngine::with_frozen`]): when mounted and weight-current,
    /// `Plain` and `Alt` searches relax the cache-compact merged-CSR
    /// arcs instead of the builder graph's triple-indirect CSR — same
    /// results bit-for-bit, fewer cache misses per relaxation. Not a
    /// [`SearchBackend`] of its own: it changes the memory layout a
    /// search walks, never which search runs.
    frozen: Option<Arc<FrozenGraph>>,
    /// CH/CCH scratch state, allocated on the first hierarchy-backed
    /// query (both hierarchies share one scratch — it is keyed only on
    /// the vertex count).
    ch_search: Option<ChSearch>,
    /// Bucket-based many-to-many scratch, allocated on the first batched
    /// query (see [`QueryEngine::many_to_many`]).
    m2m_search: Option<M2mSearch>,
    /// Which index filled the m2m target buckets for the *streaming*
    /// many-to-many API (see [`QueryEngine::prepare_m2m_targets`]), so
    /// [`QueryEngine::m2m_distances_from`] can refuse to scan buckets
    /// that a later index swap or cost-model change invalidated.
    m2m_prepared: Option<PreparedM2m>,
    /// Landmark vectors cached for the current query *target* (forward
    /// searches aim at it; refilled only when the target changes, so
    /// Yen's same-target spur storm gathers them once).
    alt_target: NodeVectors,
    /// Landmark vectors cached for the current query *source* (consulted
    /// by the backward half of bidirectional searches).
    alt_source: NodeVectors,
    /// Metric handles ([`EngineObs::disabled`] unless attached) —
    /// per-backend query counts, fallback reasons and search work.
    obs: EngineObs,
}

/// Bookkeeping for the streaming many-to-many API: records *which*
/// hierarchy deposited the current target buckets so the forward sweeps
/// refuse to run against buckets from a swapped-out index or a cost
/// model the same index no longer covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PreparedM2m {
    /// `true` when the buckets were filled via the customized CCH,
    /// `false` when via the metric-built CH.
    via_cch: bool,
    /// Number of prepared targets — the length of every row
    /// [`QueryEngine::m2m_distances_from`] returns.
    targets: usize,
}

/// The largest `B` such that `cost(e) >= B · euclid(e.from, e.to)` holds
/// for every edge — i.e. `min_e cost(e) / euclid(e)`, ignoring
/// zero-length hops. With it, `h(v) = euclid(v, target) · B` is an
/// admissible *and consistent* A* heuristic on **any** graph (each edge
/// of a path costs at least `B ·` its straight-line span, and spans
/// chain through the triangle inequality), unlike a fixed
/// `1 metre = 1 cost` assumption, which over-estimates on networks with
/// shortcut edges shorter than their geometry. Returns `0.0` (heuristic
/// off, A* degenerates to Dijkstra) when no edge constrains the bound.
pub fn safe_heuristic_bound(g: &Graph, cost: CostModel<'_>) -> f64 {
    let mut bound = f64::INFINITY;
    for (i, e) in g.edges().enumerate() {
        let span = g.coord(e.from).distance(&g.coord(e.to));
        if span > 1e-9 {
            bound = bound.min(cost.edge_cost(g, EdgeId(i as u32)) / span);
        }
    }
    if bound.is_finite() {
        bound.max(0.0)
    } else {
        0.0
    }
}

impl<'g> QueryEngine<'g> {
    /// Creates an engine for `g`. This is the only `O(V)` allocation; all
    /// queries afterwards reuse it.
    pub fn new(g: &'g Graph) -> Self {
        QueryEngine {
            g,
            fwd: SearchSpace::new(g.vertex_count()),
            bwd: None,
            length_bound: None,
            travel_time_bound: None,
            landmarks: None,
            ch: None,
            cch: None,
            frozen: None,
            ch_search: None,
            m2m_search: None,
            m2m_prepared: None,
            alt_target: NodeVectors::new(),
            alt_source: NodeVectors::new(),
            obs: EngineObs::disabled(),
        }
    }

    /// Attaches metric handles: subsequent point-to-point queries count
    /// themselves per backend, record fallback reasons and fold their
    /// settled/push work into the registry (see [`EngineObs`]).
    pub fn with_obs(mut self, obs: EngineObs) -> Self {
        self.obs = obs;
        self
    }

    /// Non-consuming form of [`QueryEngine::with_obs`] for engines living
    /// inside worker pools.
    pub fn set_obs(&mut self, obs: EngineObs) {
        self.obs = obs;
    }

    /// Attaches a precomputed ALT landmark table: every target-directed
    /// query whose cost model matches the table's metric upgrades its
    /// heuristic to `max(ALT triangle bound, Euclidean bound)` — strictly
    /// at least as tight, so searches settle no more vertices and stay
    /// exact. Queries under any other cost model (notably
    /// [`CostModel::Custom`], whose per-edge costs can change between
    /// queries and would break the precomputed metric) silently fall back
    /// to the engine's non-ALT behaviour.
    ///
    /// The table is `Arc`-shared: build once, clone the handle into every
    /// worker's engine.
    ///
    /// # Panics
    /// If the table's graph fingerprint (vertex and edge counts) does not
    /// match this engine's graph — a wrong-graph table would pass every
    /// per-query check yet silently return suboptimal paths.
    pub fn with_landmarks(mut self, table: Arc<LandmarkTable>) -> Self {
        self.set_landmarks(Some(table));
        self
    }

    /// Non-consuming form of [`QueryEngine::with_landmarks`] for engines
    /// that live inside worker pools and cannot be rebuilt by value:
    /// attaches (or with `None`, detaches) the shared ALT table in place,
    /// invalidating the per-query landmark caches. Same fingerprint
    /// panic as the builder form.
    pub fn set_landmarks(&mut self, table: Option<Arc<LandmarkTable>>) {
        if let Some(table) = &table {
            assert_eq!(
                (table.vertex_count(), table.edge_count()),
                (self.g.vertex_count(), self.g.edge_count()),
                "landmark table built for a different graph"
            );
        }
        self.alt_target.invalidate();
        self.alt_source.invalidate();
        self.landmarks = table;
    }

    /// The attached landmark table, if any.
    pub fn landmark_table(&self) -> Option<&Arc<LandmarkTable>> {
        self.landmarks.as_ref()
    }

    /// Whether a query under `cost` would consult the ALT table (i.e. a
    /// table is attached and its metric matches). Exposed so tests and
    /// benchmarks can assert which heuristic regime a query runs in.
    pub fn uses_alt(&self, cost: CostModel<'_>) -> bool {
        self.landmarks
            .as_ref()
            .is_some_and(|t| t.usable_for(&cost) && t.weights_epoch() == self.g.weights_epoch())
    }

    /// Attaches a prebuilt contraction hierarchy: every *unconstrained*
    /// point-to-point query whose cost model matches the hierarchy's
    /// metric dispatches to the CH bidirectional upward search
    /// ([`SearchBackend::Ch`]) instead of Dijkstra/A*. Constrained
    /// searches (Yen spur searches with banned sets) and queries under
    /// any other cost model keep their ALT or plain regime — see
    /// [`SearchBackend`] for the full fallback rules.
    ///
    /// The hierarchy is `Arc`-shared: build once, clone the handle into
    /// every worker's engine. Composes with
    /// [`QueryEngine::with_landmarks`] — attach both and each query gets
    /// the strongest backend it qualifies for.
    ///
    /// # Panics
    /// If the hierarchy's graph fingerprint (vertex and edge counts)
    /// does not match this engine's graph.
    pub fn with_ch(mut self, ch: Arc<ContractionHierarchy>) -> Self {
        self.set_ch(Some(ch));
        self
    }

    /// Non-consuming form of [`QueryEngine::with_ch`]: swaps the shared
    /// hierarchy in place (or detaches it with `None`), dropping the
    /// CH/m2m scratch and any streaming-m2m buckets the old index
    /// deposited. Same fingerprint panic as the builder form.
    pub fn set_ch(&mut self, ch: Option<Arc<ContractionHierarchy>>) {
        if let Some(ch) = &ch {
            assert_eq!(
                (ch.vertex_count(), ch.edge_count()),
                (self.g.vertex_count(), self.g.edge_count()),
                "contraction hierarchy built for a different graph"
            );
        }
        self.ch_search = None;
        self.m2m_search = None;
        self.m2m_prepared = None;
        self.ch = ch;
    }

    /// The attached contraction hierarchy, if any.
    pub fn ch_index(&self) -> Option<&Arc<ContractionHierarchy>> {
        self.ch.as_ref()
    }

    /// Whether an unconstrained query under `cost` would run on the CH.
    pub fn uses_ch(&self, cost: CostModel<'_>) -> bool {
        self.ch
            .as_ref()
            .is_some_and(|c| c.usable_for(&cost) && c.weights_epoch() == self.g.weights_epoch())
    }

    /// Attaches a customized contraction hierarchy
    /// ([`crate::algo::cch::CchTopology::customize`]): every
    /// *unconstrained* point-to-point query whose cost model the
    /// customization covers — including a bitwise-matching
    /// [`CostModel::Custom`] vector, which no other index backend can
    /// serve — dispatches to the CH bidirectional upward search on the
    /// re-customized weights. Gated per query on the weights epoch like
    /// every index, so a `Cch` customized before the latest
    /// [`Graph::set_edge_speeds`] call is skipped, never stale.
    ///
    /// Composes with [`QueryEngine::with_ch`] and
    /// [`QueryEngine::with_landmarks`]; a metric-built `Ch` outranks the
    /// denser witness-free CCH when both cover a query.
    ///
    /// # Panics
    /// If the customization's graph fingerprint (vertex and edge counts)
    /// does not match this engine's graph.
    pub fn with_cch(mut self, cch: Arc<Cch>) -> Self {
        self.set_cch(Some(cch));
        self
    }

    /// Non-consuming form of [`QueryEngine::with_cch`]: swaps the
    /// customized hierarchy in place (or detaches it with `None`). This
    /// is the entry point the serving layer uses to roll a freshly
    /// re-customized CCH into long-lived worker engines — the swap drops
    /// the CH/m2m scratch and streaming buckets, so no later query can
    /// mix old-weight buckets with new-weight sweeps. Same fingerprint
    /// panic as the builder form.
    pub fn set_cch(&mut self, cch: Option<Arc<Cch>>) {
        if let Some(cch) = &cch {
            assert_eq!(
                (cch.vertex_count(), cch.edge_count()),
                (self.g.vertex_count(), self.g.edge_count()),
                "CCH customized for a different graph"
            );
        }
        self.ch_search = None;
        self.m2m_search = None;
        self.m2m_prepared = None;
        self.cch = cch;
    }

    /// The attached customized CCH, if any.
    pub fn cch_index(&self) -> Option<&Arc<Cch>> {
        self.cch.as_ref()
    }

    /// Whether an unconstrained query under `cost` would run on the CCH.
    pub fn uses_cch(&self, cost: CostModel<'_>) -> bool {
        self.cch
            .as_ref()
            .is_some_and(|c| c.usable_for(&cost) && c.weights_epoch() == self.g.weights_epoch())
    }

    /// Mounts a [`FrozenGraph`] — the cache-compact serving form of this
    /// engine's graph ([`FrozenGraph::freeze`]). Every `Plain`/`Alt`
    /// search (point-to-point, A*, one-to-all, one-to-all-reverse) then
    /// relaxes the frozen merged-CSR arcs instead of the builder CSR;
    /// results are bit-identical because the frozen form copies arc
    /// order verbatim and precomputes weights with the exact
    /// [`CostModel::edge_cost`] expressions. Constrained (banned-set)
    /// and bidirectional searches keep using the builder graph, and
    /// CH/CCH backends already own their merged CSRs.
    ///
    /// Like every attached index, the frozen form is gated per query on
    /// [`Graph::weights_epoch`]: after a live weight mutation it is
    /// silently skipped until a re-frozen form is mounted.
    ///
    /// # Panics
    /// If the frozen form's vertex/edge counts do not match this
    /// engine's graph.
    pub fn with_frozen(mut self, frozen: Arc<FrozenGraph>) -> Self {
        self.set_frozen(Some(frozen));
        self
    }

    /// Non-consuming form of [`QueryEngine::with_frozen`]: swaps the
    /// shared frozen graph in place (or detaches it with `None`). Same
    /// fingerprint panic as the builder form.
    pub fn set_frozen(&mut self, frozen: Option<Arc<FrozenGraph>>) {
        if let Some(fz) = &frozen {
            assert_eq!(
                (fz.vertex_count(), fz.edge_count()),
                (self.g.vertex_count(), self.g.edge_count()),
                "frozen graph derived from a different graph"
            );
        }
        self.frozen = frozen;
    }

    /// The mounted frozen serving graph, if any.
    pub fn frozen_graph(&self) -> Option<&Arc<FrozenGraph>> {
        self.frozen.as_ref()
    }

    /// Whether `Plain`/`Alt` searches currently relax frozen arcs (a
    /// frozen form is mounted and weight-current). Cost-model
    /// independent: the frozen arcs inline both graph metrics and index
    /// `Custom` slices by edge id.
    pub fn uses_frozen(&self) -> bool {
        self.frozen
            .as_ref()
            .is_some_and(|f| f.weights_epoch() == self.g.weights_epoch())
    }

    /// The frozen graph to relax this query, if current — an `Arc`
    /// clone, so callers can keep it alive across a mutable borrow of
    /// the search spaces.
    fn usable_frozen(&self) -> Option<Arc<FrozenGraph>> {
        self.frozen
            .as_ref()
            .filter(|f| f.weights_epoch() == self.g.weights_epoch())
            .cloned()
    }

    /// Resolves the [`SearchBackend`] an unconstrained point-to-point
    /// query under `cost` dispatches through: the strongest attached
    /// index whose metric covers the cost model.
    pub fn backend_for(&self, cost: CostModel<'_>) -> SearchBackend {
        if self.uses_ch(cost) {
            SearchBackend::Ch
        } else if self.uses_cch(cost) {
            SearchBackend::Cch
        } else if self.uses_alt(cost) {
            SearchBackend::Alt
        } else {
            SearchBackend::Plain
        }
    }

    /// Lifetime `(settled, pushed)` work summed over every search space
    /// this engine owns. Monotone; instrumentation differences two
    /// readings around a query.
    fn total_work(&self) -> (u64, u64) {
        let (mut s, mut p) = self.fwd.work_counters();
        if let Some(bwd) = &self.bwd {
            let (s2, p2) = bwd.work_counters();
            s += s2;
            p += p2;
        }
        if let Some(ch) = &self.ch_search {
            let (s2, p2) = ch.work_counters();
            s += s2;
            p += p2;
        }
        (s, p)
    }

    /// Counts a dispatched point-to-point query and, for every attached
    /// index that outranks the resolved backend yet was skipped, the
    /// reason it was skipped. An index that covers the cost model can
    /// only have been skipped for a stale weights epoch; one that does
    /// not cover it was a metric mismatch.
    fn record_dispatch(&self, backend: SearchBackend, cost: CostModel<'_>) {
        if !self.obs.enabled {
            return;
        }
        let shard = self.obs.shard;
        let resolved = EngineObs::backend_slot(backend);
        self.obs.queries[resolved].add_in_shard(shard, 1);
        if resolved < EngineObs::backend_slot(SearchBackend::Ch) {
            if let Some(ch) = &self.ch {
                let reason = if ch.usable_for(&cost) { 0 } else { 1 };
                self.obs.fallback[0][reason].add_in_shard(shard, 1);
            }
        }
        if resolved < EngineObs::backend_slot(SearchBackend::Cch) {
            if let Some(cch) = &self.cch {
                let reason = if cch.usable_for(&cost) { 0 } else { 1 };
                self.obs.fallback[1][reason].add_in_shard(shard, 1);
            }
        }
        if resolved < EngineObs::backend_slot(SearchBackend::Alt) {
            if let Some(alt) = &self.landmarks {
                let reason = if alt.usable_for(&cost) { 0 } else { 1 };
                self.obs.fallback[2][reason].add_in_shard(shard, 1);
            }
        }
    }

    /// Resolves the backend for a *constrained* search (banned vertex or
    /// edge sets — Yen and diversified spur searches). Never
    /// [`SearchBackend::Ch`]: a banned edge may hide inside a shortcut,
    /// so shortcuts are unsound under bans, while ALT lower bounds stay
    /// admissible (bans only shrink the graph).
    pub fn constrained_backend_for(&self, cost: CostModel<'_>) -> SearchBackend {
        if self.uses_alt(cost) {
            SearchBackend::Alt
        } else {
            SearchBackend::Plain
        }
    }

    /// Runs the CH query for `source -> target` and leaves the unpacked
    /// original-edge sequence in the scratch buffer (borrowed).
    fn ch_edges(&mut self, source: VertexId, target: VertexId) -> Option<&[EdgeId]> {
        let ch = self
            .ch
            .as_ref()
            .expect("CH backend resolved without an index");
        let n = self.g.vertex_count();
        let search = self.ch_search.get_or_insert_with(|| ChSearch::new(n));
        ch.query_edges(search, source, target)
    }

    /// CH-backed [`QueryEngine::shortest_path`]: unpacks the shortcut
    /// chain into a real [`Path`] (both sequences come straight out of
    /// the unpack buffers — no graph lookups).
    fn ch_shortest_path(&mut self, source: VertexId, target: VertexId) -> Option<Path> {
        let ch = self
            .ch
            .as_ref()
            .expect("CH backend resolved without an index");
        let n = self.g.vertex_count();
        let search = self.ch_search.get_or_insert_with(|| ChSearch::new(n));
        let (edges, vertices) = ch.query_path(search, source, target)?;
        Some(Path::from_parts_unchecked(
            vertices.to_vec(),
            edges.to_vec(),
        ))
    }

    /// CH-backed cost probe. The cost is recomputed left-to-right over
    /// the unpacked edges — the same fold order as Dijkstra's relaxation
    /// chain — so it is bit-identical to the plain engine whenever the
    /// optimum is unique (shortcut-weight sums alone could differ in the
    /// last bits through float re-association).
    fn ch_shortest_path_cost(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<f64> {
        let g = self.g;
        let edges = self.ch_edges(source, target)?;
        Some(edges.iter().fold(0.0, |acc, &e| acc + cost.edge_cost(g, e)))
    }

    /// CCH-backed variants of the three `ch_*` helpers: identical shapes,
    /// running on the customized hierarchy (and sharing the same scratch —
    /// it is keyed only on the vertex count).
    fn cch_edges(&mut self, source: VertexId, target: VertexId) -> Option<&[EdgeId]> {
        let cch = self
            .cch
            .as_ref()
            .expect("CCH backend resolved without an index");
        let n = self.g.vertex_count();
        let search = self.ch_search.get_or_insert_with(|| ChSearch::new(n));
        cch.query_edges(search, source, target)
    }

    fn cch_shortest_path(&mut self, source: VertexId, target: VertexId) -> Option<Path> {
        let cch = self
            .cch
            .as_ref()
            .expect("CCH backend resolved without an index");
        let n = self.g.vertex_count();
        let search = self.ch_search.get_or_insert_with(|| ChSearch::new(n));
        let (edges, vertices) = cch.query_path(search, source, target)?;
        Some(Path::from_parts_unchecked(
            vertices.to_vec(),
            edges.to_vec(),
        ))
    }

    /// CCH-backed cost probe; recomputed left-to-right over the unpacked
    /// edges like [`QueryEngine::ch_shortest_path_cost`], so it is
    /// bit-identical to plain Dijkstra on the current (possibly freshly
    /// customized) weights.
    fn cch_shortest_path_cost(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<f64> {
        let g = self.g;
        let edges = self.cch_edges(source, target)?;
        Some(edges.iter().fold(0.0, |acc, &e| acc + cost.edge_cost(g, e)))
    }

    /// The graph this engine routes on.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Builds the strongest available forward heuristic for a
    /// `source -> target` query, preparing the target-side landmark cache
    /// when ALT applies. A free-standing fn over disjoint fields so
    /// callers can keep `self.fwd` mutably borrowed alongside the result.
    #[allow(clippy::too_many_arguments)]
    fn forward_heuristic<'a>(
        g: &Graph,
        landmarks: &'a Option<Arc<LandmarkTable>>,
        cache: &'a mut NodeVectors,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        per_meter: f64,
    ) -> Heuristic<'a> {
        match landmarks {
            Some(table) if table.usable_for(&cost) => {
                table.prepare(cache, target);
                table.select_active(cache, source, true);
                Heuristic::Alt {
                    table,
                    cache,
                    reverse: false,
                    anchor: g.coord(target),
                    per_meter,
                }
            }
            _ if per_meter > 0.0 => Heuristic::Euclid {
                anchor: g.coord(target),
                per_meter,
            },
            _ => Heuristic::None,
        }
    }

    /// Cheapest `source -> target` path, or `None` if unreachable or
    /// `source == target`. Engine counterpart of
    /// [`crate::algo::dijkstra::shortest_path`], dispatched through
    /// [`QueryEngine::backend_for`]: CH bidirectional upward search,
    /// ALT-guided A*, or plain early-exit Dijkstra (same optimal cost in
    /// every regime; tie-breaking among equal-cost optima may differ).
    pub fn shortest_path(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<Path> {
        if source == target {
            return None;
        }
        let backend = self.backend_for(cost);
        self.record_dispatch(backend, cost);
        let work_before = self.obs.enabled.then(|| self.total_work());
        let path = match backend {
            SearchBackend::Ch => self.ch_shortest_path(source, target),
            SearchBackend::Cch => self.cch_shortest_path(source, target),
            SearchBackend::Alt => {
                self.run_alt_one_to_one(source, target, cost);
                self.fwd.extract_path(source, target)
            }
            SearchBackend::Plain => {
                match self.usable_frozen() {
                    Some(fz) => self
                        .fwd
                        .run_dijkstra_frozen(&fz, source, Some(target), cost),
                    None => {
                        self.fwd
                            .run_dijkstra(self.g, source, Some(target), cost, None, None, false)
                    }
                }
                self.fwd.extract_path(source, target)
            }
        };
        if let Some((s0, p0)) = work_before {
            let (s1, p1) = self.total_work();
            self.obs.settled.add_in_shard(self.obs.shard, s1 - s0);
            self.obs.pushed.add_in_shard(self.obs.shard, p1 - p0);
        }
        path
    }

    /// Cost of the cheapest `source -> target` path without materialising
    /// it — the probe map matching uses for its HMM transition model.
    /// Backend-dispatched exactly like [`QueryEngine::shortest_path`]; on
    /// the CH backend this is the single biggest win (the probe is pure
    /// search, and the CH search settles orders of magnitude fewer
    /// vertices).
    pub fn shortest_path_cost(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<f64> {
        if source == target {
            return Some(0.0);
        }
        let backend = self.backend_for(cost);
        self.record_dispatch(backend, cost);
        let work_before = self.obs.enabled.then(|| self.total_work());
        let out = match backend {
            SearchBackend::Ch => self.ch_shortest_path_cost(source, target, cost),
            SearchBackend::Cch => self.cch_shortest_path_cost(source, target, cost),
            SearchBackend::Alt => {
                self.run_alt_one_to_one(source, target, cost);
                let d = self.fwd.dist(target);
                d.is_finite().then_some(d)
            }
            SearchBackend::Plain => {
                match self.usable_frozen() {
                    Some(fz) => self
                        .fwd
                        .run_dijkstra_frozen(&fz, source, Some(target), cost),
                    None => {
                        self.fwd
                            .run_dijkstra(self.g, source, Some(target), cost, None, None, false)
                    }
                }
                let d = self.fwd.dist(target);
                d.is_finite().then_some(d)
            }
        };
        if let Some((s0, p0)) = work_before {
            let (s1, p1) = self.total_work();
            self.obs.settled.add_in_shard(self.obs.shard, s1 - s0);
            self.obs.pushed.add_in_shard(self.obs.shard, p1 - p0);
        }
        out
    }

    /// ALT-guided one-to-one A* on the forward space (the
    /// [`SearchBackend::Alt`] arm of the point-to-point dispatch).
    fn run_alt_one_to_one(&mut self, source: VertexId, target: VertexId, cost: CostModel<'_>) {
        debug_assert!(self.uses_alt(cost));
        let per_meter = self.heuristic_bound(cost);
        let fz = self.usable_frozen();
        let h = Self::forward_heuristic(
            self.g,
            &self.landmarks,
            &mut self.alt_target,
            source,
            target,
            cost,
            per_meter,
        );
        match &fz {
            Some(fz) => self
                .fwd
                .run_astar_frozen(self.g, fz, source, target, cost, &h),
            None => self.fwd.run_astar(self.g, source, target, cost, &h, None),
        }
    }

    /// One-to-all Dijkstra, returned as a borrowed [`TreeView`] (no
    /// per-query `O(V)` allocation). Runs the dedicated full-sweep loop
    /// on the reusable scratch ([`SearchSpace::run_dijkstra_all`] — no
    /// target or ban checks in the hot loop). The view is valid until
    /// the next query on this engine.
    pub fn one_to_all(&mut self, source: VertexId, cost: CostModel<'_>) -> TreeView<'_> {
        match self.usable_frozen() {
            Some(fz) => self.fwd.run_dijkstra_all_frozen(&fz, source, cost, false),
            None => self.fwd.run_dijkstra_all(self.g, source, cost, false),
        }
        TreeView {
            space: &self.fwd,
            source,
            reverse: false,
        }
    }

    /// Batched one-to-many: distances from `source` to every target, in
    /// target order (`f64::INFINITY` for unreachable pairs). `Some` only
    /// when the attached [`ContractionHierarchy`] covers `cost` — the
    /// bucket algorithm then runs one backward upward sweep per target
    /// plus a single forward sweep, far below a full one-to-all for
    /// bounded target sets. `None` means no usable hierarchy: callers
    /// fall back to [`QueryEngine::one_to_all`] or pairwise probes.
    pub fn one_to_many(
        &mut self,
        source: VertexId,
        targets: &[VertexId],
        cost: CostModel<'_>,
    ) -> Option<Vec<f64>> {
        let hierarchy = if self.uses_ch(cost) {
            self.ch.as_deref().expect("uses_ch implies an index")
        } else if self.uses_cch(cost) {
            self.cch
                .as_deref()
                .expect("uses_cch implies an index")
                .hierarchy()
        } else {
            return None;
        };
        let n = self.g.vertex_count();
        // Re-deposits buckets for *these* targets, invalidating any
        // streaming preparation (see `prepare_m2m_targets`).
        self.m2m_prepared = None;
        let search = self.m2m_search.get_or_insert_with(|| M2mSearch::new(n));
        Some(hierarchy.one_to_many(search, source, targets))
    }

    /// Batched many-to-many: the exact `sources × targets`
    /// [`DistanceTable`] via the bucket algorithm
    /// ([`ContractionHierarchy::many_to_many`] on the engine's reusable
    /// scratch) — `T` backward plus `S` forward upward sweeps instead of
    /// `S × T` point-to-point queries. `Some` only when the attached
    /// hierarchy covers `cost` (the same per-query metric gate as every
    /// other backend decision); `None` means the caller keeps its
    /// pairwise path — map matching falls back to its shared sp-cache.
    pub fn many_to_many(
        &mut self,
        sources: &[VertexId],
        targets: &[VertexId],
        cost: CostModel<'_>,
    ) -> Option<DistanceTable> {
        let hierarchy = if self.uses_ch(cost) {
            self.ch.as_deref().expect("uses_ch implies an index")
        } else if self.uses_cch(cost) {
            self.cch
                .as_deref()
                .expect("uses_cch implies an index")
                .hierarchy()
        } else {
            return None;
        };
        let n = self.g.vertex_count();
        // Re-deposits buckets for *these* targets, invalidating any
        // streaming preparation (see `prepare_m2m_targets`).
        self.m2m_prepared = None;
        let search = self.m2m_search.get_or_insert_with(|| M2mSearch::new(n));
        Some(hierarchy.many_to_many(search, sources, targets))
    }

    /// Streaming half of the bucket many-to-many: runs the `T` backward
    /// upward sweeps once and leaves the target buckets in the engine's
    /// scratch, so callers can stream sources one at a time through
    /// [`QueryEngine::m2m_distances_from`] without deciding the full
    /// source set up front (the shape a batching route server needs —
    /// requests demux as each forward sweep finishes, instead of waiting
    /// for a whole [`DistanceTable`]). Returns `false` when no attached
    /// hierarchy covers `cost`, i.e. exactly when
    /// [`QueryEngine::many_to_many`] would return `None`.
    pub fn prepare_m2m_targets(&mut self, targets: &[VertexId], cost: CostModel<'_>) -> bool {
        self.m2m_prepared = None;
        let (hierarchy, via_cch) = if self.uses_ch(cost) {
            (self.ch.as_deref().expect("uses_ch implies an index"), false)
        } else if self.uses_cch(cost) {
            let cch = self.cch.as_deref().expect("uses_cch implies an index");
            (cch.hierarchy(), true)
        } else {
            return false;
        };
        let n = self.g.vertex_count();
        let search = self.m2m_search.get_or_insert_with(|| M2mSearch::new(n));
        hierarchy.prepare_targets(search, targets);
        self.m2m_prepared = Some(PreparedM2m {
            via_cch,
            targets: targets.len(),
        });
        true
    }

    /// Number of targets the streaming buckets currently cover (the row
    /// length of [`QueryEngine::m2m_distances_from`]), or `None` when no
    /// prepared buckets are live.
    pub fn prepared_m2m_targets(&self) -> Option<usize> {
        self.m2m_prepared.map(|p| p.targets)
    }

    /// One forward upward sweep over the buckets deposited by the last
    /// [`QueryEngine::prepare_m2m_targets`]: distances from `source` to
    /// every prepared target, in preparation order (`f64::INFINITY` for
    /// unreachable pairs), borrowed from the scratch until the next
    /// engine call. Values are bit-identical to the corresponding
    /// [`QueryEngine::many_to_many`] row — both run the same sweep over
    /// the same buckets.
    ///
    /// Returns `None` when the buckets are not safe to scan under
    /// `cost`: nothing prepared yet, an index swap
    /// ([`QueryEngine::set_ch`]/[`QueryEngine::set_cch`]) dropped them,
    /// or the index that filled them no longer covers `cost` (e.g. a
    /// CCH customized for a different weight vector). Callers fall back
    /// to re-preparing or to point-to-point probes.
    pub fn m2m_distances_from(&mut self, source: VertexId, cost: CostModel<'_>) -> Option<&[f64]> {
        let prep = self.m2m_prepared?;
        let hierarchy = if !prep.via_cch && self.uses_ch(cost) {
            self.ch.as_deref().expect("uses_ch implies an index")
        } else if prep.via_cch && self.uses_cch(cost) {
            self.cch
                .as_deref()
                .expect("uses_cch implies an index")
                .hierarchy()
        } else {
            return None;
        };
        let search = self
            .m2m_search
            .as_mut()
            .expect("prepared buckets imply scratch");
        Some(hierarchy.distances_from(search, source))
    }

    /// One-to-all *reverse* Dijkstra: `dist(v)` on the returned view is
    /// the cost of the cheapest `v -> target` path, and `parent_of(v)` is
    /// the *next hop* toward `target` (so `path_to` returns `None` on
    /// reverse views). Runs on the backward space, so it does not disturb
    /// a forward view. This is the sweep the ALT preprocessing
    /// ([`crate::algo::landmarks::LandmarkTable::build`]) fans out across
    /// worker engines.
    pub fn one_to_all_rev(&mut self, target: VertexId, cost: CostModel<'_>) -> TreeView<'_> {
        let n = self.g.vertex_count();
        let fz = self.usable_frozen();
        let bwd = self.bwd.get_or_insert_with(|| SearchSpace::new(n));
        match &fz {
            Some(fz) => bwd.run_dijkstra_all_frozen(fz, target, cost, true),
            None => bwd.run_dijkstra_all(self.g, target, cost, true),
        }
        TreeView {
            space: bwd,
            source: target,
            reverse: true,
        }
    }

    /// One-to-all Dijkstra materialised into an owned
    /// [`ShortestPathTree`] (compatibility shape; prefer
    /// [`QueryEngine::one_to_all`] in reuse-heavy code).
    pub fn shortest_path_tree(
        &mut self,
        source: VertexId,
        cost: CostModel<'_>,
    ) -> ShortestPathTree {
        match self.usable_frozen() {
            Some(fz) => self.fwd.run_dijkstra_all_frozen(&fz, source, cost, false),
            None => self.fwd.run_dijkstra_all(self.g, source, cost, false),
        }
        let n = self.g.vertex_count();
        let mut dist = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let v = VertexId(i);
            dist.push(self.fwd.dist(v));
            parent.push(self.fwd.parent_of(v));
        }
        ShortestPathTree {
            source,
            dist,
            parent,
        }
    }

    /// Cheapest `source -> target` path avoiding banned vertices and
    /// edges — Yen's spur-search engine. Engine counterpart of
    /// [`crate::algo::dijkstra::constrained_shortest_path`].
    ///
    /// Spur searches are strongly target-directed, so this runs A* with
    /// the strongest [`Heuristic`] the engine can justify: the ALT
    /// triangle bound (maxed with the Euclidean bound) when landmarks are
    /// attached and cover the cost model, the cached
    /// [`safe_heuristic_bound`] alone otherwise; `Custom` costs without
    /// landmarks fall back to plain Dijkstra. Bans only remove
    /// edges/vertices — true distances can only grow — so every variant
    /// stays admissible and the returned path is cost-optimal among the
    /// non-banned paths, though tie-breaking among equal-cost optima can
    /// differ between variants.
    ///
    /// An attached [`ContractionHierarchy`] is deliberately **never**
    /// consulted here ([`QueryEngine::constrained_backend_for`]): a
    /// banned edge may hide inside a shortcut, so CH answers would be
    /// unsound under bans.
    pub fn constrained_shortest_path(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        banned_vertices: &BitSet,
        banned_edges: &BitSet,
    ) -> Option<Path> {
        debug_assert_ne!(self.constrained_backend_for(cost), SearchBackend::Ch);
        if source == target
            || banned_vertices.contains(source.0)
            || banned_vertices.contains(target.0)
        {
            return None;
        }
        let per_meter = self.heuristic_bound(cost);
        let h = Self::forward_heuristic(
            self.g,
            &self.landmarks,
            &mut self.alt_target,
            source,
            target,
            cost,
            per_meter,
        );
        if h.is_active() {
            self.fwd.run_astar(
                self.g,
                source,
                target,
                cost,
                &h,
                Some((banned_vertices, banned_edges)),
            );
        } else {
            self.fwd.run_dijkstra(
                self.g,
                source,
                Some(target),
                cost,
                Some(banned_vertices),
                Some(banned_edges),
                false,
            );
        }
        self.fwd.extract_path(source, target)
    }

    /// Plain-Dijkstra variant of
    /// [`QueryEngine::constrained_shortest_path`], skipping the `O(E)`
    /// heuristic-bound scan. The one-shot free wrapper uses this: a
    /// transient engine serves exactly one search, so a whole-graph
    /// precompute cannot amortize there.
    pub(crate) fn constrained_shortest_path_dijkstra(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        banned_vertices: &BitSet,
        banned_edges: &BitSet,
    ) -> Option<Path> {
        if source == target
            || banned_vertices.contains(source.0)
            || banned_vertices.contains(target.0)
        {
            return None;
        }
        self.fwd.run_dijkstra(
            self.g,
            source,
            Some(target),
            cost,
            Some(banned_vertices),
            Some(banned_edges),
            false,
        );
        self.fwd.extract_path(source, target)
    }

    /// The cached [`safe_heuristic_bound`] for `cost`: computed on first
    /// use for `Length`/`TravelTime`, always `0.0` for `Custom` (whose
    /// per-edge costs can change between queries).
    fn heuristic_bound(&mut self, cost: CostModel<'_>) -> f64 {
        let g = self.g;
        match cost {
            CostModel::Length => *self
                .length_bound
                .get_or_insert_with(|| safe_heuristic_bound(g, CostModel::Length)),
            CostModel::TravelTime => *self
                .travel_time_bound
                .get_or_insert_with(|| safe_heuristic_bound(g, CostModel::TravelTime)),
            CostModel::Custom(_) => 0.0,
        }
    }

    /// Goal-directed point-to-point query. Engine counterpart of
    /// [`crate::algo::astar::astar_shortest_path`], dispatched through
    /// [`QueryEngine::backend_for`]: the CH search when a hierarchy
    /// covers `cost`, otherwise A* under the strongest [`Heuristic`] the
    /// engine can justify (ALT triangle bound, or the cached
    /// [`safe_heuristic_bound`] — sound on arbitrary graphs, not just the
    /// generators' geometry-consistent ones).
    pub fn astar_shortest_path(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<Path> {
        if source == target {
            return None;
        }
        match self.backend_for(cost) {
            SearchBackend::Ch => return self.ch_shortest_path(source, target),
            SearchBackend::Cch => return self.cch_shortest_path(source, target),
            _ => {}
        }
        let per_meter = self.heuristic_bound(cost);
        let fz = self.usable_frozen();
        let h = Self::forward_heuristic(
            self.g,
            &self.landmarks,
            &mut self.alt_target,
            source,
            target,
            cost,
            per_meter,
        );
        match (&fz, h.is_active()) {
            (Some(fz), true) => self
                .fwd
                .run_astar_frozen(self.g, fz, source, target, cost, &h),
            (Some(fz), false) => self.fwd.run_dijkstra_frozen(fz, source, Some(target), cost),
            (None, true) => self.fwd.run_astar(self.g, source, target, cost, &h, None),
            (None, false) => {
                self.fwd
                    .run_dijkstra(self.g, source, Some(target), cost, None, None, false)
            }
        }
        self.fwd.extract_path(source, target)
    }

    /// Bidirectional Dijkstra over the forward and backward spaces.
    /// Engine counterpart of
    /// [`crate::algo::bidijkstra::bidirectional_shortest_path`].
    ///
    /// When landmarks are attached and cover `cost`, both directions
    /// apply goal-directed *pruning*: a settled vertex `u` whose
    /// `dist(u) + lower-bound(remaining)` already reaches the best
    /// connection found is not expanded. Unlike potential-based
    /// bidirectional A*, this keeps both frontiers Dijkstra-ordered, so
    /// the classic `fmin + bmin >= best` termination stays valid and the
    /// result stays exact: no vertex on a strictly better path can ever
    /// be pruned (its `dist + bound` is below that path's cost, which is
    /// below `best`).
    pub fn bidirectional_shortest_path(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
    ) -> Option<Path> {
        if source == target {
            return None;
        }
        // The CH query *is* a bidirectional search — over the upward
        // search graphs — so the hierarchy backends replace this entirely.
        match self.backend_for(cost) {
            SearchBackend::Ch => return self.ch_shortest_path(source, target),
            SearchBackend::Cch => return self.cch_shortest_path(source, target),
            _ => {}
        }
        let g = self.g;
        let use_alt = self.uses_alt(cost);
        let per_meter = if use_alt {
            self.heuristic_bound(cost)
        } else {
            0.0
        };
        let (hf, hb) = match self.landmarks.as_deref() {
            Some(table) if use_alt => {
                table.prepare(&mut self.alt_target, target);
                table.select_active(&mut self.alt_target, source, true);
                table.prepare(&mut self.alt_source, source);
                table.select_active(&mut self.alt_source, target, false);
                (
                    Heuristic::Alt {
                        table,
                        cache: &self.alt_target,
                        reverse: false,
                        anchor: g.coord(target),
                        per_meter,
                    },
                    Heuristic::Alt {
                        table,
                        cache: &self.alt_source,
                        reverse: true,
                        anchor: g.coord(source),
                        per_meter,
                    },
                )
            }
            _ => (Heuristic::None, Heuristic::None),
        };
        let n = g.vertex_count();
        let bwd = self.bwd.get_or_insert_with(|| SearchSpace::new(n));
        let fwd = &mut self.fwd;

        fwd.begin();
        fwd.relax(source, 0.0, NO_PARENT);
        fwd.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });
        bwd.begin();
        bwd.relax(target, 0.0, NO_PARENT);
        bwd.heap.push(MinCost {
            cost: 0.0,
            item: target,
        });

        let mut best = f64::INFINITY;
        let mut meet: Option<VertexId> = None;

        loop {
            let fmin = fwd.frontier_min();
            let bmin = bwd.frontier_min();
            if fmin + bmin >= best || (fmin.is_infinite() && bmin.is_infinite()) {
                break;
            }
            // Expand the side with the smaller frontier minimum.
            let forward = fmin <= bmin;
            let (side, other): (&mut SearchSpace, &mut SearchSpace) =
                if forward { (fwd, bwd) } else { (bwd, fwd) };

            let Some(MinCost { cost: d, item: u }) = side.heap.pop() else {
                break;
            };
            if side.is_settled(u) {
                continue;
            }
            side.settle(u);

            if other.reached(u) {
                let total = d + other.dist(u);
                if total < best {
                    best = total;
                    meet = Some(u);
                }
            }

            // ALT pruning: every s-t path through u costs at least
            // dist(u) + bound(remaining); when that can no longer beat
            // the best connection, skip the expansion. `Heuristic::None`
            // evaluates to 0, where `d >= best` implies the loop's
            // termination condition anyway, so the plain search is
            // bit-identical to the pre-landmark engine.
            let remaining = if forward {
                hf.eval(g, u)
            } else {
                hb.eval(g, u)
            };
            if remaining > 0.0 && d + remaining >= best {
                continue;
            }

            // Relax the neighbourhood, then re-check meetings through the
            // just-relaxed vertices (meets can happen on unsettled ones).
            macro_rules! expand {
                ($edges:ident) => {
                    for (v, e) in g.$edges(u) {
                        if side.is_settled(v) {
                            continue;
                        }
                        let nd = d + cost.edge_cost(g, e);
                        if nd < side.dist(v) {
                            side.relax(v, nd, (u.0, e.0));
                            side.heap.push(MinCost { cost: nd, item: v });
                        }
                        if other.reached(v) && side.reached(v) {
                            let total = side.dist(v) + other.dist(v);
                            if total < best {
                                best = total;
                                meet = Some(v);
                            }
                        }
                    }
                };
            }
            if forward {
                expand!(out_edges);
            } else {
                expand!(in_edges);
            }
        }

        let meet = meet?;
        // Reconstruct: source -> meet from the forward tree, meet ->
        // target from the backward tree (its parents point at the target).
        let mut vertices = Vec::new();
        let mut edges = Vec::new();
        let mut cur = meet;
        while let Some((prev, e)) = fwd.parent_of(cur) {
            vertices.push(cur);
            edges.push(e);
            cur = prev;
        }
        vertices.push(cur);
        debug_assert_eq!(cur, source);
        vertices.reverse();
        edges.reverse();

        let mut cur = meet;
        while let Some((next, e)) = bwd.parent_of(cur) {
            vertices.push(next);
            edges.push(e);
            cur = next;
        }
        debug_assert_eq!(cur, target);
        Some(Path::from_parts_unchecked(vertices, edges))
    }

    /// Lazy Yen top-k iterator whose spur searches all reuse this
    /// engine's forward space. Engine counterpart of
    /// [`crate::algo::yen::YenIter::new`].
    pub fn yen_iter<'e, 'c>(
        &'e mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'c>,
    ) -> YenIter<'g, 'e, 'c> {
        YenIter::on_engine(self, source, target, cost)
    }

    /// The k cheapest loopless paths. Engine counterpart of
    /// [`crate::algo::yen::yen_k_shortest`].
    pub fn yen_k_shortest(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        k: usize,
    ) -> Vec<(Path, f64)> {
        self.yen_iter(source, target, cost).take(k).collect()
    }

    /// Diversified top-k (the paper's D-TkDI). Engine counterpart of
    /// [`crate::algo::diversified::diversified_top_k`].
    pub fn diversified_top_k(
        &mut self,
        source: VertexId,
        target: VertexId,
        cost: CostModel<'_>,
        cfg: &DiversifiedConfig,
    ) -> Vec<(Path, f64)> {
        diversified_top_k_with(self, source, target, cost, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{grid_network, GridConfig};
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};

    fn line_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_bidirectional(
                w[0],
                w[1],
                EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential),
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn epoch_reset_isolates_queries() {
        // Query 1 reaches the whole line; query 2 early-exits after one
        // hop. Distances from query 1 must not leak into query 2's view.
        let g = line_graph(50);
        let mut engine = QueryEngine::new(&g);
        let far = engine.one_to_all(VertexId(0), CostModel::Length);
        assert!(far.reached(VertexId(49)));
        assert!((far.dist(VertexId(49)) - 4900.0).abs() < 1e-9);

        engine
            .shortest_path(VertexId(0), VertexId(1), CostModel::Length)
            .unwrap();
        // Early exit: vertex 49 is unreached in the *current* epoch even
        // though its slot still physically holds query 1's values.
        assert!(!engine.fwd.reached(VertexId(49)));
        assert_eq!(engine.fwd.dist(VertexId(49)), f64::INFINITY);
        assert!(engine.fwd.parent_of(VertexId(49)).is_none());
    }

    #[test]
    fn interleaved_cost_models_stay_correct() {
        let g = grid_network(&GridConfig::small_test(), 7);
        let custom: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 5) as f64).collect();
        let n = g.vertex_count() as u32;
        let mut engine = QueryEngine::new(&g);
        for (s, t) in [(0, n - 1), (n - 1, 0), (3, n / 2), (n / 2, 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            for cost in [
                CostModel::Length,
                CostModel::Custom(&custom),
                CostModel::TravelTime,
            ] {
                let fresh = crate::algo::dijkstra::shortest_path(&g, s, t, cost);
                let reused = engine.shortest_path(s, t, cost);
                match (fresh, reused) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.vertices(), b.vertices(), "{s:?}->{t:?}");
                        assert_eq!(a.edges(), b.edges());
                    }
                    (None, None) => {}
                    (a, b) => panic!("reachability mismatch: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn one_to_all_view_matches_materialised_tree() {
        let g = grid_network(&GridConfig::small_test(), 9);
        let mut engine = QueryEngine::new(&g);
        let tree = engine.shortest_path_tree(VertexId(0), CostModel::Length);
        let view_dists: Vec<f64> = {
            let view = engine.one_to_all(VertexId(0), CostModel::Length);
            g.vertices().map(|v| view.dist(v)).collect()
        };
        assert_eq!(tree.dist, view_dists);
        let view = engine.one_to_all(VertexId(0), CostModel::Length);
        for v in g.vertices() {
            assert_eq!(tree.parent[v.index()], view.parent_of(v));
            if v != VertexId(0) && view.reached(v) {
                let p = view.path_to(v).unwrap();
                p.validate(&g).unwrap();
                assert!((p.length_m(&g) - view.dist(v)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shortest_path_cost_matches_path_cost() {
        let g = grid_network(&GridConfig::small_test(), 5);
        let n = g.vertex_count() as u32;
        let mut engine = QueryEngine::new(&g);
        for (s, t) in [(0, n - 1), (2, n / 3), (n - 1, 1)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let c = engine.shortest_path_cost(s, t, CostModel::Length);
            let p = engine.shortest_path(s, t, CostModel::Length);
            match (c, p) {
                (Some(c), Some(p)) => assert!((c - p.length_m(&g)).abs() < 1e-9),
                (None, None) => {}
                (c, p) => panic!("mismatch: cost {c:?} vs path {p:?}"),
            }
        }
        assert_eq!(
            engine.shortest_path_cost(VertexId(3), VertexId(3), CostModel::Length),
            Some(0.0)
        );
    }

    #[test]
    fn disconnected_target_stays_unreached_after_reuse() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::with_default_speed(1.0, RoadCategory::Rural),
        )
        .unwrap();
        b.add_edge(
            v2,
            v0,
            EdgeAttrs::with_default_speed(1.0, RoadCategory::Rural),
        )
        .unwrap();
        let g = b.build();
        let mut engine = QueryEngine::new(&g);
        // First query from v2 reaches everything (v2 -> v0 -> v1)...
        assert!(engine.shortest_path(v2, v1, CostModel::Length).is_some());
        // ...which must not make v2 look reachable from v0 afterwards.
        assert!(engine.shortest_path(v0, v2, CostModel::Length).is_none());
        assert!(engine
            .shortest_path_cost(v0, v2, CostModel::Length)
            .is_none());
    }

    #[test]
    fn yen_accepts_short_lived_custom_costs_on_long_lived_engine() {
        // Regression guard for the lifetime decoupling: a per-worker
        // engine outliving many per-iteration cost slices (the
        // simulate_fleet pattern) must also work for the Yen/diversified
        // family, not just shortest_path.
        let g = grid_network(&GridConfig::small_test(), 2);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let mut engine = QueryEngine::new(&g);
        for round in 0..3u64 {
            let costs: Vec<f64> = (0..g.edge_count())
                .map(|i| 1.0 + ((i as u64 + round) % 7) as f64)
                .collect();
            let top = engine.yen_k_shortest(VertexId(0), t, CostModel::Custom(&costs), 3);
            assert!(!top.is_empty());
            let div = engine.diversified_top_k(
                VertexId(0),
                t,
                CostModel::Custom(&costs),
                &crate::algo::diversified::DiversifiedConfig::with_k(2),
            );
            assert!(!div.is_empty());
        }
    }

    #[test]
    fn safe_bound_keeps_astar_exact_on_shortcut_edges() {
        // A "shortcut" edge whose length undercuts its straight-line span:
        // under the naive 1-cost-per-metre heuristic, A* would
        // over-estimate through v1 and return the wrong path. The safe
        // bound (min cost/span = 100/1000) keeps the search exact.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1000.0, 0.0));
        let v2 = b.add_vertex(Point::new(2000.0, 0.0));
        let a = |len| EdgeAttrs::with_default_speed(len, RoadCategory::Rural);
        b.add_edge(v0, v1, a(100.0)).unwrap(); // shortcut: 100 m over a 1 km span
        b.add_edge(v1, v2, a(100.0)).unwrap();
        b.add_edge(v0, v2, a(900.0)).unwrap(); // direct but costlier (100+100 < 900)
        let g = b.build();
        assert!((safe_heuristic_bound(&g, CostModel::Length) - 0.1).abs() < 1e-12);
        let mut engine = QueryEngine::new(&g);
        let astar = engine
            .astar_shortest_path(v0, v2, CostModel::Length)
            .unwrap();
        let dijkstra = engine.shortest_path(v0, v2, CostModel::Length).unwrap();
        assert_eq!(astar.vertices(), dijkstra.vertices(), "A* must stay exact");
        assert_eq!(astar.vertices(), &[v0, v1, v2]);
    }

    #[test]
    fn safe_bound_degenerate_graphs() {
        // All edges span zero distance: no usable bound, A* must fall
        // back to Dijkstra rather than divide by zero.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(5.0, 5.0));
        let v1 = b.add_vertex(Point::new(5.0, 5.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::with_default_speed(3.0, RoadCategory::Rural),
        )
        .unwrap();
        let g = b.build();
        assert_eq!(safe_heuristic_bound(&g, CostModel::Length), 0.0);
        let mut engine = QueryEngine::new(&g);
        let p = engine
            .astar_shortest_path(v0, v1, CostModel::Length)
            .unwrap();
        assert_eq!(p.vertices(), &[v0, v1]);
    }

    #[test]
    fn bidirectional_lazily_allocates_and_matches() {
        let g = grid_network(&GridConfig::small_test(), 3);
        let n = g.vertex_count() as u32;
        let mut engine = QueryEngine::new(&g);
        assert!(engine.bwd.is_none());
        for (s, t) in [(0, n - 1), (n / 2, 0), (1, n - 2)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let uni = engine.shortest_path(s, t, CostModel::Length).unwrap();
            let bi = engine
                .bidirectional_shortest_path(s, t, CostModel::Length)
                .unwrap();
            bi.validate(&g).unwrap();
            assert!((uni.length_m(&g) - bi.length_m(&g)).abs() < 1e-9);
        }
        assert!(engine.bwd.is_some());
        assert!(engine
            .bidirectional_shortest_path(VertexId(0), VertexId(0), CostModel::Length)
            .is_none());
    }

    #[test]
    fn alt_engine_costs_match_plain_engine_on_grid() {
        // A grid maximises equal-cost ties; ALT may tie-break differently
        // but every cost must be bit-identical (uniform 100 m edges sum
        // exactly in f64).
        use crate::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
        let g = grid_network(&GridConfig::small_test(), 13);
        let table = Arc::new(LandmarkTable::build(
            &g,
            LandmarkMetric::Length,
            &LandmarkConfig::default(),
        ));
        let mut plain = QueryEngine::new(&g);
        let mut alt = QueryEngine::new(&g).with_landmarks(table);
        assert!(alt.uses_alt(CostModel::Length));
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n - 1, 0), (3, n / 2), (n / 3, 2 * n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            for run in [
                QueryEngine::shortest_path,
                QueryEngine::astar_shortest_path,
                QueryEngine::bidirectional_shortest_path,
            ] {
                let a = run(&mut plain, s, t, CostModel::Length).map(|p| p.length_m(&g));
                let b = run(&mut alt, s, t, CostModel::Length).map(|p| p.length_m(&g));
                assert_eq!(a, b, "{s:?}->{t:?} cost diverged under ALT");
            }
            let ca = plain.shortest_path_cost(s, t, CostModel::Length);
            let cb = alt.shortest_path_cost(s, t, CostModel::Length);
            assert_eq!(ca, cb, "{s:?}->{t:?} cost probe diverged under ALT");
            let ya = plain.yen_k_shortest(s, t, CostModel::Length, 5);
            let yb = alt.yen_k_shortest(s, t, CostModel::Length, 5);
            assert_eq!(ya.len(), yb.len());
            for ((_, a), (_, b)) in ya.iter().zip(yb.iter()) {
                assert_eq!(a, b, "{s:?}->{t:?} Yen cost sequence diverged");
            }
        }
    }

    #[test]
    fn alt_falls_back_on_metric_mismatch_and_custom_costs() {
        use crate::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
        let g = grid_network(&GridConfig::small_test(), 5);
        let table = Arc::new(LandmarkTable::build(
            &g,
            LandmarkMetric::Length,
            &LandmarkConfig::default(),
        ));
        let custom: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut alt = QueryEngine::new(&g).with_landmarks(Arc::clone(&table));
        assert!(alt.uses_alt(CostModel::Length));
        assert!(!alt.uses_alt(CostModel::TravelTime));
        assert!(!alt.uses_alt(CostModel::Custom(&custom)));
        // Fallback is plain Dijkstra: paths (not just costs) must be
        // bit-identical to an engine without landmarks.
        let mut plain = QueryEngine::new(&g);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let a = plain
            .shortest_path(VertexId(0), t, CostModel::Custom(&custom))
            .unwrap();
        let b = alt
            .shortest_path(VertexId(0), t, CostModel::Custom(&custom))
            .unwrap();
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn alt_one_to_all_rev_matches_forward_on_bidirectional_graph() {
        let g = grid_network(&GridConfig::small_test(), 9);
        let mut engine = QueryEngine::new(&g);
        let t = VertexId(7);
        let fwd: Vec<f64> = {
            let view = engine.one_to_all(t, CostModel::Length);
            g.vertices().map(|v| view.dist(v)).collect()
        };
        let rev: Vec<f64> = {
            let view = engine.one_to_all_rev(t, CostModel::Length);
            g.vertices().map(|v| view.dist(v)).collect()
        };
        // The grid generator adds every edge bidirectionally with equal
        // length, so d(t, v) == d(v, t) bit-for-bit.
        assert_eq!(fwd, rev);
        // And the reverse sweep must not disturb the forward space.
        let before = engine.one_to_all(VertexId(0), CostModel::Length).dist(t);
        engine.one_to_all_rev(t, CostModel::Length);
        // Forward space epoch moved on: the old view is gone, but a fresh
        // forward query still answers identically.
        let after = engine.one_to_all(VertexId(0), CostModel::Length).dist(t);
        assert_eq!(before, after);
    }

    #[test]
    fn heap_allocation_is_reused_across_queries() {
        let g = grid_network(&GridConfig::small_test(), 1);
        let n = g.vertex_count() as u32;
        let mut engine = QueryEngine::new(&g);
        // First sweep establishes the workload's high-water mark...
        for i in 0..n {
            engine.one_to_all(VertexId(i), CostModel::Length);
        }
        let cap_after_sweep = engine.fwd.heap.capacity();
        assert!(cap_after_sweep > 0);
        // ...after which repeating the same queries must not reallocate.
        for i in 0..n {
            engine.one_to_all(VertexId(i), CostModel::Length);
        }
        assert_eq!(
            engine.fwd.heap.capacity(),
            cap_after_sweep,
            "steady-state queries must not regrow the heap"
        );
    }

    #[test]
    fn streaming_m2m_matches_table_rows_bitwise() {
        use crate::algo::ch::{ChConfig, ContractionHierarchy};
        use crate::algo::landmarks::LandmarkMetric;
        use std::sync::Arc;

        let g = grid_network(&GridConfig::small_test(), 11);
        let n = g.vertex_count() as u32;
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig::default(),
        ));
        let mut engine = QueryEngine::new(&g).with_ch(ch);

        let sources: Vec<VertexId> = [0, 3, n / 2, n - 1].map(VertexId).to_vec();
        let targets: Vec<VertexId> = [1, n / 3, 2 * n / 3, n - 2, 7].map(VertexId).to_vec();
        let table = engine
            .many_to_many(&sources, &targets, CostModel::Length)
            .expect("CH covers Length");

        assert!(engine.prepare_m2m_targets(&targets, CostModel::Length));
        assert_eq!(engine.prepared_m2m_targets(), Some(targets.len()));
        for (i, &s) in sources.iter().enumerate() {
            let row = engine
                .m2m_distances_from(s, CostModel::Length)
                .expect("prepared buckets cover Length");
            assert_eq!(row, table.row(i), "row {i} must match bit-for-bit");
        }

        // A cost model the CH does not cover refuses to scan the buckets.
        assert!(engine
            .m2m_distances_from(sources[0], CostModel::TravelTime)
            .is_none());
        // The monolithic entry points overwrite the buckets, so the
        // streaming tag must drop with them.
        engine.many_to_many(&sources[..1], &targets[..2], CostModel::Length);
        assert_eq!(engine.prepared_m2m_targets(), None);
        assert!(engine
            .m2m_distances_from(sources[0], CostModel::Length)
            .is_none());
        // And an index swap clears everything.
        assert!(engine.prepare_m2m_targets(&targets, CostModel::Length));
        engine.set_ch(None);
        assert!(engine
            .m2m_distances_from(sources[0], CostModel::Length)
            .is_none());
    }

    #[test]
    fn frozen_searches_match_plain_bitwise() {
        use crate::frozen::FrozenGraph;
        use std::sync::Arc;

        let g = grid_network(&GridConfig::small_test(), 9);
        let n = g.vertex_count() as u32;
        let fz = Arc::new(FrozenGraph::freeze(&g));
        let mut plain = QueryEngine::new(&g);
        let mut frozen = QueryEngine::new(&g).with_frozen(fz);
        assert!(frozen.uses_frozen());

        let custom: Vec<f64> = (0..g.edge_count())
            .map(|i| 1.0 + (i % 17) as f64 * 0.31)
            .collect();
        let models = [
            CostModel::Length,
            CostModel::TravelTime,
            CostModel::Custom(&custom),
        ];
        for cost in models {
            for (s, t) in [(0, n - 1), (3, n / 2), (n / 3, 1)] {
                let (s, t) = (VertexId(s), VertexId(t));
                let a = plain.shortest_path(s, t, cost);
                let b = frozen.shortest_path(s, t, cost);
                assert_eq!(a, b, "paths must be identical, not just equal-cost");
                let ca = plain.shortest_path_cost(s, t, cost);
                let cb = frozen.shortest_path_cost(s, t, cost);
                assert_eq!(ca.map(f64::to_bits), cb.map(f64::to_bits));
            }
            for v in [VertexId(0), VertexId(n / 2)] {
                plain.one_to_all(v, cost);
                frozen.one_to_all(v, cost);
                for u in g.vertices() {
                    assert_eq!(plain.fwd.dist(u).to_bits(), frozen.fwd.dist(u).to_bits());
                    assert_eq!(plain.fwd.parent_of(u), frozen.fwd.parent_of(u));
                }
            }
        }
    }

    #[test]
    fn frozen_is_skipped_after_weight_mutation() {
        use crate::frozen::FrozenGraph;
        use std::sync::Arc;

        let mut g = grid_network(&GridConfig::small_test(), 5);
        let fz = Arc::new(FrozenGraph::freeze(&g));
        {
            let engine = QueryEngine::new(&g).with_frozen(fz.clone());
            assert!(engine.uses_frozen());
        }
        g.set_edge_speed(EdgeId(0), 99.0);
        let mut engine = QueryEngine::new(&g).with_frozen(fz);
        assert!(!engine.uses_frozen(), "stale frozen form must be gated out");
        // Queries still succeed — on the builder graph.
        let t = VertexId(g.vertex_count() as u32 - 1);
        assert!(engine
            .shortest_path(VertexId(0), t, CostModel::TravelTime)
            .is_some());
        // Re-freezing at the new epoch re-enables the fast layout.
        engine.set_frozen(Some(Arc::new(FrozenGraph::freeze(&g))));
        assert!(engine.uses_frozen());
    }
}
