//! Bidirectional Dijkstra.
//!
//! Runs a forward search from the source and a backward search (over
//! incoming edges) from the target simultaneously, stopping when the sum of
//! the two frontier minima can no longer improve the best meeting point.
//! Returns a path with exactly the same cost as the unidirectional search
//! while typically settling about half as many vertices.

use crate::algo::engine::QueryEngine;
use crate::graph::{CostModel, Graph, VertexId};
use crate::path::Path;

/// Cheapest `source -> target` path via bidirectional Dijkstra, or `None`
/// if unreachable or `source == target`.
///
/// One-shot convenience over
/// [`QueryEngine::bidirectional_shortest_path`], which keeps one
/// [`crate::algo::engine::SearchSpace`] per direction alive across
/// queries.
pub fn bidirectional_shortest_path(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
) -> Option<Path> {
    QueryEngine::new(g).bidirectional_shortest_path(source, target, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::generators::{grid_network, GridConfig};

    #[test]
    fn matches_unidirectional_costs_on_grid() {
        let g = grid_network(&GridConfig::small_test(), 23);
        let n = g.vertex_count() as u32;
        let pairs = [(0, n - 1), (1, n / 2), (n - 2, 3), (n / 4, 3 * n / 4)];
        for (s, t) in pairs {
            let (s, t) = (VertexId(s), VertexId(t));
            if s == t {
                continue;
            }
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let d = shortest_path(&g, s, t, cost);
                let b = bidirectional_shortest_path(&g, s, t, cost);
                match (d, b) {
                    (Some(dp), Some(bp)) => {
                        bp.validate(&g).unwrap();
                        assert_eq!(bp.source(), s);
                        assert_eq!(bp.target(), t);
                        assert!(
                            (dp.cost(&g, cost) - bp.cost(&g, cost)).abs() < 1e-6,
                            "cost mismatch for {s:?} -> {t:?}"
                        );
                    }
                    (None, None) => {}
                    (d, b) => panic!("reachability mismatch: {d:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn trivial_cases() {
        let g = grid_network(&GridConfig::small_test(), 23);
        assert!(
            bidirectional_shortest_path(&g, VertexId(0), VertexId(0), CostModel::Length).is_none()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};
    use proptest::prelude::*;

    fn random_graph(n: usize, extra: Vec<(usize, usize, u32)>) -> Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64, 0.0)))
            .collect();
        for i in 0..n {
            b.add_edge(
                vs[i],
                vs[(i + 1) % n],
                EdgeAttrs::with_default_speed(5.0 + (i % 5) as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
        for (f, t, w) in extra {
            let (f, t) = (f % n, t % n);
            if f != t {
                let _ = b.add_edge(
                    vs[f],
                    vs[t],
                    EdgeAttrs::with_default_speed(1.0 + (w % 50) as f64, RoadCategory::Rural),
                );
            }
        }
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn bidirectional_equals_dijkstra(
            n in 2usize..20,
            extra in proptest::collection::vec((0usize..20, 0usize..20, 0u32..100), 0..30),
            s in 0usize..20,
            t in 0usize..20,
        ) {
            let g = random_graph(n, extra);
            let s = VertexId((s % n) as u32);
            let t = VertexId((t % n) as u32);
            prop_assume!(s != t);
            let d = shortest_path(&g, s, t, CostModel::Length);
            let b = bidirectional_shortest_path(&g, s, t, CostModel::Length);
            match (d, b) {
                (Some(dp), Some(bp)) => {
                    bp.validate(&g).unwrap();
                    prop_assert!((dp.length_m(&g) - bp.length_m(&g)).abs() < 1e-9);
                }
                (None, None) => {}
                (d, b) => prop_assert!(false, "mismatch: {d:?} vs {b:?}"),
            }
        }
    }
}
