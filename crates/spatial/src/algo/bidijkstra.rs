//! Bidirectional Dijkstra.
//!
//! Runs a forward search from the source and a backward search (over
//! incoming edges) from the target simultaneously, stopping when the sum of
//! the two frontier minima can no longer improve the best meeting point.
//! Returns a path with exactly the same cost as the unidirectional search
//! while typically settling about half as many vertices.

use std::collections::BinaryHeap;

use crate::graph::{CostModel, EdgeId, Graph, VertexId};
use crate::path::Path;
use crate::util::{BitSet, MinCost};

struct Side {
    dist: Vec<f64>,
    parent: Vec<Option<(VertexId, EdgeId)>>,
    settled: BitSet,
    heap: BinaryHeap<MinCost<VertexId>>,
}

impl Side {
    fn new(n: usize, start: VertexId) -> Self {
        let mut dist = vec![f64::INFINITY; n];
        dist[start.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(MinCost { cost: 0.0, item: start });
        Side { dist, parent: vec![None; n], settled: BitSet::new(n), heap }
    }

    fn frontier_min(&mut self) -> f64 {
        // Skip stale entries so the stopping test uses a live bound.
        while let Some(top) = self.heap.peek() {
            if self.settled.contains(top.item.0) {
                self.heap.pop();
            } else {
                return top.cost;
            }
        }
        f64::INFINITY
    }
}

/// Cheapest `source -> target` path via bidirectional Dijkstra, or `None`
/// if unreachable or `source == target`.
pub fn bidirectional_shortest_path(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
) -> Option<Path> {
    if source == target {
        return None;
    }
    let n = g.vertex_count();
    let mut fwd = Side::new(n, source);
    let mut bwd = Side::new(n, target);
    let mut best = f64::INFINITY;
    let mut meet: Option<VertexId> = None;

    loop {
        let fmin = fwd.frontier_min();
        let bmin = bwd.frontier_min();
        if fmin + bmin >= best || (fmin.is_infinite() && bmin.is_infinite()) {
            break;
        }
        // Expand the side with the smaller frontier minimum.
        let forward = fmin <= bmin;
        let (side, other): (&mut Side, &mut Side) =
            if forward { (&mut fwd, &mut bwd) } else { (&mut bwd, &mut fwd) };

        let Some(MinCost { cost: d, item: u }) = side.heap.pop() else { break };
        if side.settled.contains(u.0) {
            continue;
        }
        side.settled.insert(u.0);

        if other.dist[u.index()].is_finite() {
            let total = d + other.dist[u.index()];
            if total < best {
                best = total;
                meet = Some(u);
            }
        }

        let relax = |v: VertexId, e: EdgeId, side: &mut Side, other: &Side| {
            let w = cost.edge_cost(g, e);
            let nd = d + w;
            if nd < side.dist[v.index()] {
                side.dist[v.index()] = nd;
                side.parent[v.index()] = Some((u, e));
                side.heap.push(MinCost { cost: nd, item: v });
            }
            let _ = other;
        };
        if forward {
            for (v, e) in g.out_edges(u) {
                if !side.settled.contains(v.0) {
                    relax(v, e, side, other);
                }
            }
        } else {
            for (v, e) in g.in_edges(u) {
                if !side.settled.contains(v.0) {
                    relax(v, e, side, other);
                }
            }
        }
        // Meeting can also happen on relaxed-but-unsettled vertices; check
        // the just-relaxed neighbourhood cheaply through dist arrays.
        if forward {
            for (v, _) in g.out_edges(u) {
                if fwd.dist[v.index()].is_finite() && bwd.dist[v.index()].is_finite() {
                    let total = fwd.dist[v.index()] + bwd.dist[v.index()];
                    if total < best {
                        best = total;
                        meet = Some(v);
                    }
                }
            }
        } else {
            for (v, _) in g.in_edges(u) {
                if fwd.dist[v.index()].is_finite() && bwd.dist[v.index()].is_finite() {
                    let total = fwd.dist[v.index()] + bwd.dist[v.index()];
                    if total < best {
                        best = total;
                        meet = Some(v);
                    }
                }
            }
        }
    }

    let meet = meet?;
    // Reconstruct: source -> meet from the forward tree, meet -> target
    // from the backward tree (whose parents point towards the target).
    let mut vertices = Vec::new();
    let mut edges = Vec::new();
    let mut cur = meet;
    while let Some((prev, e)) = fwd.parent[cur.index()] {
        vertices.push(cur);
        edges.push(e);
        cur = prev;
    }
    vertices.push(cur);
    debug_assert_eq!(cur, source);
    vertices.reverse();
    edges.reverse();

    let mut cur = meet;
    while let Some((next, e)) = bwd.parent[cur.index()] {
        vertices.push(next);
        edges.push(e);
        cur = next;
    }
    debug_assert_eq!(cur, target);
    Some(Path::from_parts_unchecked(vertices, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::generators::{grid_network, GridConfig};

    #[test]
    fn matches_unidirectional_costs_on_grid() {
        let g = grid_network(&GridConfig::small_test(), 23);
        let n = g.vertex_count() as u32;
        let pairs = [(0, n - 1), (1, n / 2), (n - 2, 3), (n / 4, 3 * n / 4)];
        for (s, t) in pairs {
            let (s, t) = (VertexId(s), VertexId(t));
            if s == t {
                continue;
            }
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let d = shortest_path(&g, s, t, cost);
                let b = bidirectional_shortest_path(&g, s, t, cost);
                match (d, b) {
                    (Some(dp), Some(bp)) => {
                        bp.validate(&g).unwrap();
                        assert_eq!(bp.source(), s);
                        assert_eq!(bp.target(), t);
                        assert!(
                            (dp.cost(&g, cost) - bp.cost(&g, cost)).abs() < 1e-6,
                            "cost mismatch for {s:?} -> {t:?}"
                        );
                    }
                    (None, None) => {}
                    (d, b) => panic!("reachability mismatch: {d:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn trivial_cases() {
        let g = grid_network(&GridConfig::small_test(), 23);
        assert!(bidirectional_shortest_path(&g, VertexId(0), VertexId(0), CostModel::Length)
            .is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};
    use proptest::prelude::*;

    fn random_graph(n: usize, extra: Vec<(usize, usize, u32)>) -> Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
        for i in 0..n {
            b.add_edge(
                vs[i],
                vs[(i + 1) % n],
                EdgeAttrs::with_default_speed(5.0 + (i % 5) as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
        for (f, t, w) in extra {
            let (f, t) = (f % n, t % n);
            if f != t {
                let _ = b.add_edge(
                    vs[f],
                    vs[t],
                    EdgeAttrs::with_default_speed(1.0 + (w % 50) as f64, RoadCategory::Rural),
                );
            }
        }
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn bidirectional_equals_dijkstra(
            n in 2usize..20,
            extra in proptest::collection::vec((0usize..20, 0usize..20, 0u32..100), 0..30),
            s in 0usize..20,
            t in 0usize..20,
        ) {
            let g = random_graph(n, extra);
            let s = VertexId((s % n) as u32);
            let t = VertexId((t % n) as u32);
            prop_assume!(s != t);
            let d = shortest_path(&g, s, t, CostModel::Length);
            let b = bidirectional_shortest_path(&g, s, t, CostModel::Length);
            match (d, b) {
                (Some(dp), Some(bp)) => {
                    bp.validate(&g).unwrap();
                    prop_assert!((dp.length_m(&g) - bp.length_m(&g)).abs() < 1e-9);
                }
                (None, None) => {}
                (d, b) => prop_assert!(false, "mismatch: {d:?} vs {b:?}"),
            }
        }
    }
}
