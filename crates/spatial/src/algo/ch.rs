//! Contraction hierarchies: preprocessing-based exact point-to-point
//! routing, an order of magnitude past what ALT's goal direction buys.
//!
//! A contraction hierarchy (CH) assigns every vertex a *rank* and
//! "contracts" vertices in rank order: removing a vertex from the
//! remaining graph and inserting **shortcut arcs** between its neighbours
//! wherever the removed vertex was on their only shortest path (decided
//! by a local *witness search*). A point-to-point query then runs two
//! tiny Dijkstra searches that only ever relax arcs leading to
//! higher-ranked vertices — forward from the source, backward from the
//! target — and meets near the top of the hierarchy; the best meeting
//! vertex closes an exact shortest path. Shortcuts *unpack* recursively
//! into the original [`EdgeId`] sequence, so callers still receive real
//! [`crate::path::Path`]s.
//!
//! Design choices mirroring [`crate::algo::landmarks::LandmarkTable`]:
//!
//! * **Exactness is metric-bound.** The hierarchy is built under one
//!   [`LandmarkMetric`]; queries under any other cost model (notably
//!   [`CostModel::Custom`]) must not consult it —
//!   [`ContractionHierarchy::usable_for`] is the per-query gate the
//!   engine checks, falling back to ALT or plain search.
//! * **Constrained searches never use the CH.** Unlike ALT lower bounds,
//!   which survive banned vertex/edge sets, shortcuts bake full-graph
//!   paths into single arcs: a banned edge may hide inside a shortcut.
//!   The engine therefore keeps Yen spur searches on their ALT path and
//!   reserves the CH for unconstrained probes.
//! * **Deterministic, parallel-friendly build.** The node order is
//!   edge-difference with lazy updates and lowest-id tie-breaks; initial
//!   priorities (one independent simulated contraction per vertex) are
//!   computed across `threads` workers, and the result is bit-identical
//!   for any thread count (asserted by the unit tests).
//!
//! A witness search is capped ([`ChConfig::witness_settle_cap`]); hitting
//! the cap may insert a redundant shortcut but can never drop a needed
//! one, so caps trade index size for build time without touching
//! correctness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crossbeam::thread;

use crate::algo::landmarks::LandmarkMetric;
use crate::graph::{CostModel, EdgeId, Graph, VertexId};
use crate::util::MinCost;

/// Parameters of hierarchy construction.
#[derive(Debug, Clone, Copy)]
pub struct ChConfig {
    /// Worker threads for the initial-priority sweep.
    pub threads: usize,
    /// Settled-vertex cap per witness search. Larger caps prove more
    /// witnesses (fewer shortcuts, smaller index) at higher build cost;
    /// any cap is exact.
    pub witness_settle_cap: usize,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            threads: 4,
            witness_settle_cap: 128,
        }
    }
}

/// What an arc expands to: an original graph edge, or the concatenation
/// of two lower-level arcs (the pair a contracted vertex joined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChArcKind {
    /// A real edge of the underlying graph.
    Original(EdgeId),
    /// A shortcut: expands to arc `.0` followed by arc `.1`.
    Shortcut(u32, u32),
}

/// One arc of the hierarchy's search graph (original edge or shortcut).
#[derive(Debug, Clone, Copy)]
pub struct ChArc {
    /// Tail vertex.
    pub from: VertexId,
    /// Head vertex.
    pub to: VertexId,
    /// Arc weight under the build metric (for shortcuts, the sum of the
    /// two child arc weights as computed at contraction time).
    pub weight: f64,
    /// Expansion rule.
    pub kind: ChArcKind,
}

/// A built contraction hierarchy over one graph and one metric.
///
/// Build once per (graph, metric), wrap in an `Arc`, and hand a clone to
/// every worker's `QueryEngine::with_ch` — the index is immutable and
/// `Sync`, so sharing is free. Queries need a per-worker [`ChSearch`]
/// scratch state (the engine owns one lazily).
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    metric: LandmarkMetric,
    /// Vertex count of the graph the hierarchy was built for.
    n: usize,
    /// Edge count of the graph the hierarchy was built for (attach-time
    /// fingerprint against wrong-graph indexes).
    m: usize,
    /// Weights epoch of the graph at build time (see
    /// [`Graph::weights_epoch`]); 0 for hierarchies loaded from disk. The
    /// engine skips the index when the graph has been mutated since.
    weights_epoch: u64,
    /// `rank[v]` = contraction position of `v` (0 contracted first).
    pub(crate) rank: Vec<u32>,
    /// Arc pool: original edges first (`arc i` = `EdgeId(i)` for `i < m`),
    /// shortcuts appended in creation order.
    arcs: Vec<ChArc>,
    // Search graph in CSR form, one contiguous segment per rank holding
    // the *upward out-arcs* (to higher-ranked heads) followed by the
    // *downward in-arcs* (from higher-ranked tails). The forward search
    // expands the first part and stall-checks the second; the backward
    // search does the reverse — so every settle reads one contiguous
    // memory region (the query is cache-line-bound). `pub(crate)` so the
    // bucket-based many-to-many module ([`crate::algo::m2m`]) runs its
    // sweeps over the same CSR.
    pub(crate) seg_offsets: Vec<u32>,
    pub(crate) seg_mid: Vec<u32>,
    pub(crate) seg_arcs: Vec<SearchArc>,
}

/// One adjacency entry of the query-time search graphs, with the data
/// the hot loop needs inlined (endpoint + weight), so a query reads the
/// CSR sequentially and touches the arc pool only during unpacking.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SearchArc {
    /// The *rank* of the arc's other endpoint: head on upward entries,
    /// tail on downward ones (the query loop runs entirely in rank
    /// space, see [`ContractionHierarchy::assemble`]).
    pub(crate) other: u32,
    /// Index into the arc pool (for parent chains / unpacking).
    pub(crate) arc: u32,
    /// Arc weight under the build metric.
    pub(crate) weight: f64,
}

/// Per-vertex slot of a [`ChSide`]: stamp, distance and parent packed
/// into one 16-byte entry so a vertex touch costs one cache line, not
/// three (the query is memory-bound on exactly these random accesses).
/// Slots are indexed by *rank*, not vertex id — see
/// [`ContractionHierarchy::assemble`].
#[derive(Debug, Clone, Copy)]
struct ChEntry {
    /// `(last-touching epoch << 1) | settled-bit`.
    stamp: u32,
    /// Arc that reached the vertex; `u32::MAX` marks the search root.
    parent_arc: u32,
    /// Tentative (then final) distance in the current epoch.
    dist: f64,
}

/// Epoch-stamped scratch state for one direction of a CH query
/// (`pub(crate)`: also the per-sweep state of the bucket-based
/// many-to-many module, [`crate::algo::m2m`]).
#[derive(Debug, Clone)]
pub(crate) struct ChSide {
    epoch: u32,
    entries: Vec<ChEntry>,
    pub(crate) heap: BinaryHeap<MinCost<VertexId>>,
    /// Lifetime settle count across every query on this side — plain
    /// increments mirroring `SearchSpace`'s work counters, differenced
    /// by the engine for per-query work reporting.
    settled_total: u64,
    /// Lifetime relaxation (enqueue) count.
    pushed_total: u64,
}

impl ChSide {
    pub(crate) fn new(n: usize) -> Self {
        ChSide {
            epoch: 0,
            entries: vec![
                ChEntry {
                    stamp: 0,
                    parent_arc: u32::MAX,
                    dist: f64::INFINITY,
                };
                n
            ],
            heap: BinaryHeap::new(),
            settled_total: 0,
            pushed_total: 0,
        }
    }

    pub(crate) fn begin(&mut self) {
        // The 31-bit epoch wraps after ~2^31 queries; re-zeroing the
        // stamps then keeps the invalidation sound at amortised zero
        // cost.
        if self.epoch >= (u32::MAX >> 1) - 1 {
            for e in self.entries.iter_mut() {
                e.stamp = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
    }

    #[inline]
    pub(crate) fn reached(&self, v: VertexId) -> bool {
        self.entries[v.index()].stamp >> 1 == self.epoch
    }

    #[inline]
    pub(crate) fn dist(&self, v: VertexId) -> f64 {
        let e = &self.entries[v.index()];
        if e.stamp >> 1 == self.epoch {
            e.dist
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    pub(crate) fn parent_arc(&self, v: VertexId) -> u32 {
        self.entries[v.index()].parent_arc
    }

    #[inline]
    pub(crate) fn is_settled(&self, v: VertexId) -> bool {
        self.entries[v.index()].stamp == (self.epoch << 1) | 1
    }

    #[inline]
    pub(crate) fn settle(&mut self, v: VertexId) {
        self.entries[v.index()].stamp |= 1;
        self.settled_total += 1;
    }

    #[inline]
    pub(crate) fn relax(&mut self, v: VertexId, d: f64, parent_arc: u32) {
        self.entries[v.index()] = ChEntry {
            stamp: self.epoch << 1,
            dist: d,
            parent_arc,
        };
        self.pushed_total += 1;
    }
}

/// Reusable per-worker scratch state for CH queries: two stamped search
/// sides plus the unpack buffers. Create once
/// ([`ChSearch::new`] with the graph's vertex count) and reuse across
/// queries — steady-state queries perform no `O(V)` allocation, matching
/// the engine's `SearchSpace` discipline.
#[derive(Debug, Clone)]
pub struct ChSearch {
    fwd: ChSide,
    bwd: ChSide,
    /// Unpacked original-edge sequence of the last successful query.
    edge_buf: Vec<EdgeId>,
    /// Matching vertex sequence (`edge_buf.len() + 1` entries), emitted
    /// during unpacking so path assembly never re-reads the graph.
    vertex_buf: Vec<VertexId>,
    /// Explicit expansion stack (recursion-free shortcut unpacking).
    unpack_stack: Vec<u32>,
    /// Forward parent-arc chain scratch (meet back to the source).
    chain_buf: Vec<u32>,
}

impl ChSearch {
    /// Creates scratch state for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        ChSearch {
            fwd: ChSide::new(n),
            bwd: ChSide::new(n),
            edge_buf: Vec::new(),
            vertex_buf: Vec::new(),
            unpack_stack: Vec::new(),
            chain_buf: Vec::new(),
        }
    }

    /// Number of vertex slots.
    pub fn capacity(&self) -> usize {
        self.fwd.entries.len()
    }

    /// Lifetime `(settled vertices, heap pushes)` summed over both
    /// search sides; monotone, never reset (see
    /// [`crate::algo::engine::SearchSpace::work_counters`]).
    pub fn work_counters(&self) -> (u64, u64) {
        (
            self.fwd.settled_total + self.bwd.settled_total,
            self.fwd.pushed_total + self.bwd.pushed_total,
        )
    }
}

/// Build-time working state: dynamic adjacency among uncontracted
/// vertices, in arc-index form over the growing arc pool.
struct Builder {
    arcs: Vec<ChArc>,
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    /// `u32::MAX` while uncontracted, final rank afterwards.
    rank: Vec<u32>,
    /// Contracted-neighbour count (the "deleted neighbours" uniformity
    /// term of the priority).
    deleted_neighbors: Vec<u32>,
    /// Hierarchy depth below the vertex (`max(level of contracted
    /// neighbours) + 1`): penalising it keeps the hierarchy flat, which
    /// directly bounds how many arcs a query's upward closure crosses.
    level: Vec<u32>,
    cap: usize,
}

/// Scratch for witness searches; per worker during the parallel
/// initial-priority sweep, then reused by the sequential contraction
/// loop.
struct WitnessSpace {
    epoch: u64,
    stamp: Vec<u64>,
    dist: Vec<f64>,
    heap: BinaryHeap<MinCost<VertexId>>,
    /// Deduplicated `(neighbor, best arc, best weight)` gather buffers.
    ins: Vec<(VertexId, u32, f64)>,
    outs: Vec<(VertexId, u32, f64)>,
}

impl WitnessSpace {
    fn new(n: usize) -> Self {
        WitnessSpace {
            epoch: 0,
            stamp: vec![0; n],
            dist: vec![f64::INFINITY; n],
            heap: BinaryHeap::new(),
            ins: Vec::new(),
            outs: Vec::new(),
        }
    }
}

impl Builder {
    fn new(g: &Graph, metric: LandmarkMetric, cap: usize) -> Self {
        let n = g.vertex_count();
        let cost = metric.cost_model();
        let mut arcs = Vec::with_capacity(g.edge_count());
        let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in g.edges().enumerate() {
            let id = EdgeId(i as u32);
            arcs.push(ChArc {
                from: e.from,
                to: e.to,
                weight: cost.edge_cost(g, id),
                kind: ChArcKind::Original(id),
            });
            out_adj[e.from.index()].push(i as u32);
            in_adj[e.to.index()].push(i as u32);
        }
        Builder {
            arcs,
            out_adj,
            in_adj,
            rank: vec![u32::MAX; n],
            deleted_neighbors: vec![0; n],
            level: vec![0; n],
            cap,
        }
    }

    #[inline]
    fn contracted(&self, v: VertexId) -> bool {
        self.rank[v.index()] != u32::MAX
    }

    /// Gathers `v`'s uncontracted in/out neighbours into `space.ins` /
    /// `space.outs`, deduplicating parallel arcs onto the cheapest one
    /// (lowest arc id on weight ties, for determinism).
    fn gather_neighbors(&self, v: VertexId, space: &mut WitnessSpace) {
        fn push_min(buf: &mut Vec<(VertexId, u32, f64)>, nb: VertexId, arc: u32, w: f64) {
            for slot in buf.iter_mut() {
                if slot.0 == nb {
                    if w < slot.2 {
                        *slot = (nb, arc, w);
                    }
                    return;
                }
            }
            buf.push((nb, arc, w));
        }
        space.ins.clear();
        space.outs.clear();
        for &a in &self.in_adj[v.index()] {
            let arc = self.arcs[a as usize];
            if arc.from != v && !self.contracted(arc.from) {
                push_min(&mut space.ins, arc.from, a, arc.weight);
            }
        }
        for &a in &self.out_adj[v.index()] {
            let arc = self.arcs[a as usize];
            if arc.to != v && !self.contracted(arc.to) {
                push_min(&mut space.outs, arc.to, a, arc.weight);
            }
        }
    }

    /// Local Dijkstra from `source` among uncontracted vertices, skipping
    /// `avoid`, bounded by `limit` and the settle cap. Leaves tentative
    /// distances in `space` (upper bounds on the true local distance —
    /// safe for witness tests even when the cap truncates the search).
    fn witness_search(
        &self,
        space: &mut WitnessSpace,
        source: VertexId,
        avoid: VertexId,
        limit: f64,
    ) {
        space.epoch += 1;
        space.heap.clear();
        let e = space.epoch;
        space.stamp[source.index()] = e << 1;
        space.dist[source.index()] = 0.0;
        space.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });
        let mut settled = 0usize;
        while let Some(MinCost { cost: d, item: u }) = space.heap.pop() {
            if space.stamp[u.index()] == (e << 1) | 1 {
                continue;
            }
            space.stamp[u.index()] |= 1;
            settled += 1;
            if d > limit || settled >= self.cap {
                break;
            }
            for &a in &self.out_adj[u.index()] {
                let arc = self.arcs[a as usize];
                let v = arc.to;
                if v == avoid || self.contracted(v) || space.stamp[v.index()] == (e << 1) | 1 {
                    continue;
                }
                let nd = d + arc.weight;
                let live = space.stamp[v.index()] >> 1 == e;
                if nd <= limit && (!live || nd < space.dist[v.index()]) {
                    space.stamp[v.index()] = e << 1;
                    space.dist[v.index()] = nd;
                    space.heap.push(MinCost { cost: nd, item: v });
                }
            }
        }
    }

    /// Simulates contracting `v`: fills `needed` with the shortcuts the
    /// contraction would insert and returns the number of incident arcs
    /// it would remove. Pure (does not mutate the builder), so the
    /// initial-priority sweep can run it from many threads.
    fn plan_contraction(
        &self,
        v: VertexId,
        space: &mut WitnessSpace,
        needed: &mut Vec<(u32, u32, f64)>,
    ) -> usize {
        needed.clear();
        self.gather_neighbors(v, space);
        let removed = space.ins.len() + space.outs.len();
        if space.ins.is_empty() || space.outs.is_empty() {
            return removed;
        }
        let max_out = space
            .outs
            .iter()
            .map(|&(_, _, w)| w)
            .fold(f64::NEG_INFINITY, f64::max);
        let ins = std::mem::take(&mut space.ins);
        let outs = std::mem::take(&mut space.outs);
        for &(u, a_in, duv) in &ins {
            self.witness_search(space, u, v, duv + max_out);
            for &(w, a_out, dvw) in &outs {
                if w == u {
                    continue;
                }
                let via = duv + dvw;
                let witness = if space.stamp[w.index()] >> 1 == space.epoch {
                    space.dist[w.index()]
                } else {
                    f64::INFINITY
                };
                if witness > via {
                    needed.push((a_in, a_out, via));
                }
            }
        }
        space.ins = ins;
        space.outs = outs;
        removed
    }

    /// The lazy-update priority of `v`: twice the edge difference plus
    /// the deleted-neighbours uniformity term.
    fn priority(
        &self,
        v: VertexId,
        space: &mut WitnessSpace,
        needed: &mut Vec<(u32, u32, f64)>,
    ) -> i64 {
        let removed = self.plan_contraction(v, space, needed);
        2 * (needed.len() as i64 - removed as i64)
            + self.deleted_neighbors[v.index()] as i64
            + 8 * self.level[v.index()] as i64
    }

    /// Contracts `v` at `rank`: inserts the planned shortcuts, bumps the
    /// neighbours' deleted counters and prunes their adjacency of arcs
    /// into contracted territory.
    fn contract(&mut self, v: VertexId, rank: u32, needed: &[(u32, u32, f64)]) {
        self.rank[v.index()] = rank;
        for &(a_in, a_out, weight) in needed {
            let from = self.arcs[a_in as usize].from;
            let to = self.arcs[a_out as usize].to;
            let id = self.arcs.len() as u32;
            self.arcs.push(ChArc {
                from,
                to,
                weight,
                kind: ChArcKind::Shortcut(a_in, a_out),
            });
            self.out_adj[from.index()].push(id);
            self.in_adj[to.index()].push(id);
        }
        // Bump + prune each distinct uncontracted neighbour once.
        let mut neighbors: Vec<VertexId> = Vec::new();
        for &a in self.in_adj[v.index()]
            .iter()
            .chain(&self.out_adj[v.index()])
        {
            let arc = self.arcs[a as usize];
            for nb in [arc.from, arc.to] {
                if nb != v && !self.contracted(nb) && !neighbors.contains(&nb) {
                    neighbors.push(nb);
                }
            }
        }
        for nb in neighbors {
            self.deleted_neighbors[nb.index()] += 1;
            let bumped = self.level[v.index()] + 1;
            if self.level[nb.index()] < bumped {
                self.level[nb.index()] = bumped;
            }
            let arcs = &self.arcs;
            let rank = &self.rank;
            let live = |a: &u32| {
                let arc = arcs[*a as usize];
                rank[arc.from.index()] == u32::MAX && rank[arc.to.index()] == u32::MAX
            };
            self.out_adj[nb.index()].retain(live);
            self.in_adj[nb.index()].retain(live);
        }
    }
}

impl ContractionHierarchy {
    /// Builds the hierarchy under `metric`.
    ///
    /// Node order is edge-difference + deleted-neighbours with lazy
    /// updates (ties broken on the lowest vertex id); the initial
    /// priority of every vertex is an independent simulated contraction,
    /// fanned out over `cfg.threads` workers. The result is bit-identical
    /// for any thread count.
    pub fn build(g: &Graph, metric: LandmarkMetric, cfg: &ChConfig) -> Self {
        let n = g.vertex_count();
        let mut b = Builder::new(g, metric, cfg.witness_settle_cap.max(2));

        // Initial priorities: pure per-vertex simulations, parallelised.
        let threads = cfg.threads.max(1).min(n.max(1));
        let mut init_prio = vec![0i64; n];
        if n > 0 {
            let per = n.div_ceil(threads);
            let bref = &b;
            thread::scope(|scope| {
                for (ci, chunk) in init_prio.chunks_mut(per).enumerate() {
                    scope.spawn(move |_| {
                        let mut space = WitnessSpace::new(n);
                        let mut needed = Vec::new();
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let v = VertexId((ci * per + j) as u32);
                            *slot = bref.priority(v, &mut space, &mut needed);
                        }
                    });
                }
            })
            .expect("CH priority worker panicked");
        }

        let mut queue: BinaryHeap<Reverse<(i64, u32)>> = init_prio
            .iter()
            .enumerate()
            .map(|(v, &p)| Reverse((p, v as u32)))
            .collect();

        let mut space = WitnessSpace::new(n);
        let mut needed = Vec::new();
        let mut next_rank = 0u32;
        while let Some(Reverse((_stale_prio, v))) = queue.pop() {
            let v = VertexId(v);
            if b.contracted(v) {
                continue;
            }
            // Lazy update: contracting other vertices may have changed
            // v's priority; recompute, and if v no longer wins, requeue.
            let prio = b.priority(v, &mut space, &mut needed);
            if let Some(&Reverse((top, _))) = queue.peek() {
                if prio > top {
                    queue.push(Reverse((prio, v.0)));
                    continue;
                }
            }
            b.contract(v, next_rank, &needed);
            next_rank += 1;
        }
        debug_assert_eq!(next_rank as usize, n);

        let mut ch = Self::assemble(metric, g.edge_count(), b.rank, b.arcs);
        ch.weights_epoch = g.weights_epoch();
        ch
    }

    /// Builds the CSR search graphs from the rank array and arc pool
    /// (shared by [`ContractionHierarchy::build`] and the io layer's
    /// deserialiser).
    ///
    /// The search graphs live in **rank space**: CSR buckets and
    /// [`SearchArc::other`] use a vertex's rank, not its id. Every query
    /// climbs into the same top-of-hierarchy vertices, so rank-ordering
    /// the per-vertex state and adjacency clusters that shared hot
    /// region into a few contiguous cache lines (a large constant-factor
    /// win on the memory-bound query loop). The arc *pool* stays in
    /// vertex space for unpacking.
    pub(crate) fn assemble(
        metric: LandmarkMetric,
        m: usize,
        rank: Vec<u32>,
        arcs: Vec<ChArc>,
    ) -> Self {
        let n = rank.len();
        let mut up: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut down: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, arc) in arcs.iter().enumerate() {
            let (rf, rt) = (rank[arc.from.index()], rank[arc.to.index()]);
            if rf < rt {
                up[rf as usize].push(i as u32);
            } else {
                down[rt as usize].push(i as u32);
            }
        }
        // Contraction can leave several parallel arcs between one vertex
        // pair (an original edge plus successively cheaper shortcuts);
        // only the cheapest can ever lie on a shortest path, so the
        // search graphs keep just that one (lowest arc id on ties, for
        // determinism — buckets hold ids in ascending order). The arc
        // *pool* keeps everything: dominated arcs may still be children
        // of shortcuts and are needed for unpacking.
        let dedupe = |bucket: &mut Vec<u32>, key: fn(&ChArc) -> VertexId| {
            let mut keep: Vec<u32> = Vec::with_capacity(bucket.len());
            for &a in bucket.iter() {
                let arc = &arcs[a as usize];
                match keep
                    .iter_mut()
                    .find(|b| key(&arcs[(**b) as usize]) == key(arc))
                {
                    Some(b) => {
                        if arc.weight < arcs[*b as usize].weight {
                            *b = a;
                        }
                    }
                    None => keep.push(a),
                }
            }
            *bucket = keep;
        };
        for bucket in up.iter_mut() {
            dedupe(bucket, |a| a.to);
        }
        for bucket in down.iter_mut() {
            dedupe(bucket, |a| a.from);
        }
        let mut seg_offsets = Vec::with_capacity(n + 1);
        let mut seg_mid = Vec::with_capacity(n);
        let mut seg_arcs: Vec<SearchArc> =
            Vec::with_capacity(up.iter().chain(&down).map(Vec::len).sum());
        seg_offsets.push(0u32);
        for r in 0..n {
            for (bucket, upward) in [(&up[r], true), (&down[r], false)] {
                for &a in bucket {
                    let arc = &arcs[a as usize];
                    let other = if upward { arc.to } else { arc.from };
                    seg_arcs.push(SearchArc {
                        other: rank[other.index()],
                        arc: a,
                        weight: arc.weight,
                    });
                }
                if upward {
                    seg_mid.push(seg_arcs.len() as u32);
                }
            }
            seg_offsets.push(seg_arcs.len() as u32);
        }
        ContractionHierarchy {
            metric,
            n,
            m,
            weights_epoch: 0,
            rank,
            arcs,
            seg_offsets,
            seg_mid,
            seg_arcs,
        }
    }

    /// The metric the hierarchy was built under.
    pub fn metric(&self) -> LandmarkMetric {
        self.metric
    }

    /// Vertex count of the graph the hierarchy was built for.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Edge count of the graph the hierarchy was built for.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Weights epoch of the graph this hierarchy was built against
    /// (0 for hierarchies loaded from disk).
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// Number of shortcut arcs the contraction inserted.
    pub fn shortcut_count(&self) -> usize {
        self.arcs.len() - self.m
    }

    /// The full arc pool (original edges first, then shortcuts).
    pub fn arcs(&self) -> &[ChArc] {
        &self.arcs
    }

    /// Mutable arc pool, for the customizable-CH layer
    /// ([`crate::algo::cch`]): customization rewrites arc weights and
    /// expansion rules in place over a fixed topology. Keep
    /// [`ContractionHierarchy::seg_arcs`] weights in sync.
    pub(crate) fn arcs_mut(&mut self) -> &mut [ChArc] {
        &mut self.arcs
    }

    /// Stamps the weights epoch (customization layer).
    pub(crate) fn set_weights_epoch(&mut self, epoch: u64) {
        self.weights_epoch = epoch;
    }

    /// Contraction rank of `v` (higher = contracted later = nearer the
    /// top of the hierarchy).
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v.index()]
    }

    /// The rank array, indexed by vertex id.
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// Whether queries under `cost` may use this hierarchy — the same
    /// gate as [`crate::algo::landmarks::LandmarkTable::usable_for`]:
    /// only the build metric matches, `Custom` never does.
    pub fn usable_for(&self, cost: &CostModel<'_>) -> bool {
        self.n > 0 && self.metric.matches(cost)
    }

    /// Runs the upward bidirectional query and returns the meeting
    /// vertex (as a *rank*) and total arc-weight distance; `None` when
    /// unreachable. The whole search operates in rank space.
    fn run_query(
        &self,
        search: &mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<(VertexId, f64)> {
        debug_assert_eq!(search.capacity(), self.n, "search sized for another graph");
        let source = VertexId(self.rank[source.index()]);
        let target = VertexId(self.rank[target.index()]);
        let fwd = &mut search.fwd;
        let bwd = &mut search.bwd;
        fwd.begin();
        bwd.begin();
        fwd.relax(source, 0.0, u32::MAX);
        fwd.heap.push(MinCost {
            cost: 0.0,
            item: source,
        });
        bwd.relax(target, 0.0, u32::MAX);
        bwd.heap.push(MinCost {
            cost: 0.0,
            item: target,
        });

        // Two-phase query. On a well-contracted hierarchy the *full*
        // upward closure of a vertex is tiny (a few dozen vertices at
        // paper scale — measured smaller than what an alternating
        // bidirectional loop settles), so exhausting the forward side
        // first and then sweeping the backward side beats interleaving:
        // each phase runs a tight single-side loop over state that stays
        // cache-hot, with no per-iteration frontier comparisons or
        // cross-side reads.
        //
        // Phase 1: forward upward closure, stall-on-demand (a vertex
        // whose label is beaten through a higher-ranked neighbour keeps
        // its label — a valid path cost, fine for meet checks — but is
        // not expanded; no shortest path continues through it).
        while let Some(MinCost { cost: d, item: u }) = fwd.heap.pop() {
            if fwd.is_settled(u) {
                continue;
            }
            fwd.settle(u);
            let lo = self.seg_offsets[u.index()] as usize;
            let mid = self.seg_mid[u.index()] as usize;
            let hi = self.seg_offsets[u.index() + 1] as usize;
            let stalled = self.seg_arcs[mid..hi]
                .iter()
                .any(|sa| fwd.dist(VertexId(sa.other)) + sa.weight < d);
            if stalled {
                continue;
            }
            for sa in &self.seg_arcs[lo..mid] {
                let v = VertexId(sa.other);
                if fwd.is_settled(v) {
                    continue;
                }
                let nd = d + sa.weight;
                if nd < fwd.dist(v) {
                    fwd.relax(v, nd, sa.arc);
                    fwd.heap.push(MinCost { cost: nd, item: v });
                }
            }
        }

        // Phase 2: backward upward closure with meet checks against the
        // completed forward side; prunes on the best connection found.
        let mut best = f64::INFINITY;
        let mut meet: Option<VertexId> = None;
        while let Some(MinCost { cost: d, item: u }) = bwd.heap.pop() {
            if bwd.is_settled(u) {
                continue;
            }
            // Heap keys are non-decreasing: nothing below `best` left.
            if d >= best {
                break;
            }
            bwd.settle(u);
            if fwd.reached(u) {
                let total = d + fwd.dist(u);
                if total < best {
                    best = total;
                    meet = Some(u);
                }
            }
            let lo = self.seg_offsets[u.index()] as usize;
            let mid = self.seg_mid[u.index()] as usize;
            let hi = self.seg_offsets[u.index() + 1] as usize;
            let stalled = self.seg_arcs[lo..mid]
                .iter()
                .any(|sa| bwd.dist(VertexId(sa.other)) + sa.weight < d);
            if stalled {
                continue;
            }
            for sa in &self.seg_arcs[mid..hi] {
                let v = VertexId(sa.other);
                if bwd.is_settled(v) {
                    continue;
                }
                let nd = d + sa.weight;
                // A label at or past `best` can never improve the meet
                // (the forward distance is non-negative).
                if nd < bwd.dist(v) && nd < best {
                    bwd.relax(v, nd, sa.arc);
                    bwd.heap.push(MinCost { cost: nd, item: v });
                }
            }
        }
        meet.map(|m| (m, best))
    }

    /// Expands `arc` into original edges appended to `edges`, emitting
    /// each edge's head vertex into `vertices` alongside (explicit
    /// stack; shortcut nesting can be deep). Original-edge arcs carry
    /// their endpoints in the pool, so no graph lookups are needed.
    fn expand_arc(
        &self,
        arc: u32,
        stack: &mut Vec<u32>,
        edges: &mut Vec<EdgeId>,
        vertices: &mut Vec<VertexId>,
    ) {
        stack.clear();
        stack.push(arc);
        while let Some(a) = stack.pop() {
            let rec = &self.arcs[a as usize];
            match rec.kind {
                ChArcKind::Original(e) => {
                    edges.push(e);
                    vertices.push(rec.to);
                }
                ChArcKind::Shortcut(first, second) => {
                    stack.push(second);
                    stack.push(first);
                }
            }
        }
    }

    /// Cheapest `source -> target` distance as the sum of arc weights.
    ///
    /// This is the raw query result (exact up to float association of
    /// shortcut sums); the engine recomputes costs left-to-right over the
    /// unpacked edges so they are bit-identical to Dijkstra's fold order.
    pub fn query_cost(
        &self,
        search: &mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<f64> {
        if source == target {
            return Some(0.0);
        }
        self.run_query(search, source, target).map(|(_, d)| d)
    }

    /// Cheapest `source -> target` path as the unpacked original-edge
    /// sequence (borrowed from the search's reusable buffer; valid until
    /// the next query). `None` when unreachable or `source == target`.
    pub fn query_edges<'s>(
        &self,
        search: &'s mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<&'s [EdgeId]> {
        self.query_path(search, source, target).map(|(e, _)| e)
    }

    /// Like [`ContractionHierarchy::query_edges`], also handing back the
    /// matching vertex sequence (`edges.len() + 1` entries, source
    /// first) assembled during unpacking.
    pub fn query_path<'s>(
        &self,
        search: &'s mut ChSearch,
        source: VertexId,
        target: VertexId,
    ) -> Option<(&'s [EdgeId], &'s [VertexId])> {
        if source == target {
            return None;
        }
        let (meet, _) = self.run_query(search, source, target)?;
        // Forward chain: arcs source -> meet, gathered top-down. The
        // parent chains live in rank space; the pool arcs they name are
        // in vertex space.
        let mut chain = std::mem::take(&mut search.chain_buf);
        chain.clear();
        let mut cur = meet;
        loop {
            let a = search.fwd.parent_arc(cur);
            if a == u32::MAX {
                break;
            }
            chain.push(a);
            cur = VertexId(self.rank[self.arcs[a as usize].from.index()]);
        }
        debug_assert_eq!(
            cur.0,
            self.rank[source.index()],
            "forward chain must reach the source"
        );
        let mut edges = std::mem::take(&mut search.edge_buf);
        let mut vertices = std::mem::take(&mut search.vertex_buf);
        let mut stack = std::mem::take(&mut search.unpack_stack);
        edges.clear();
        vertices.clear();
        vertices.push(source);
        for &a in chain.iter().rev() {
            self.expand_arc(a, &mut stack, &mut edges, &mut vertices);
        }
        // Backward chain: arcs meet -> target, already in path order.
        let mut cur = meet;
        loop {
            let a = search.bwd.parent_arc(cur);
            if a == u32::MAX {
                break;
            }
            self.expand_arc(a, &mut stack, &mut edges, &mut vertices);
            cur = VertexId(self.rank[self.arcs[a as usize].to.index()]);
        }
        debug_assert_eq!(
            cur.0,
            self.rank[target.index()],
            "backward chain must reach the target"
        );
        search.chain_buf = chain;
        search.edge_buf = edges;
        search.vertex_buf = vertices;
        search.unpack_stack = stack;
        Some((&search.edge_buf, &search.vertex_buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::builder::GraphBuilder;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};
    use crate::path::Path;

    fn region() -> Graph {
        region_network(&RegionConfig::small_test(), 11)
    }

    #[test]
    fn ch_ranks_are_a_permutation() {
        let g = region();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut ranks: Vec<u32> = g.vertices().map(|v| ch.rank(v)).collect();
        ranks.sort_unstable();
        let expect: Vec<u32> = (0..g.vertex_count() as u32).collect();
        assert_eq!(ranks, expect, "ranks must be a permutation of 0..n");
        assert_eq!(ch.vertex_count(), g.vertex_count());
        assert_eq!(ch.edge_count(), g.edge_count());
        assert!(ch.arcs().len() >= g.edge_count());
    }

    #[test]
    fn ch_parallel_build_matches_sequential_bitwise() {
        let g = region();
        let seq = ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig {
                threads: 1,
                ..ChConfig::default()
            },
        );
        let par = ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig {
                threads: 4,
                ..ChConfig::default()
            },
        );
        assert_eq!(seq.rank, par.rank, "node order must not depend on threads");
        assert_eq!(seq.arcs.len(), par.arcs.len());
        for (a, b) in seq.arcs.iter().zip(par.arcs.iter()) {
            assert_eq!((a.from, a.to, a.kind), (b.from, b.to, b.kind));
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn ch_queries_match_dijkstra_on_grid() {
        // A grid maximises equal-cost ties; costs (recomputed over the
        // unpacked edges) must still match exactly.
        let g = grid_network(&GridConfig::small_test(), 13);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n - 1, 0), (3, n / 2), (n / 3, 2 * n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let plain = shortest_path(&g, s, t, CostModel::Length).map(|p| p.length_m(&g));
            let ch_cost = ch
                .query_edges(&mut search, s, t)
                .map(|edges| edges.iter().map(|&e| g.edge(e).attrs.length_m).sum::<f64>());
            assert_eq!(plain, ch_cost, "{s:?}->{t:?} CH cost diverged");
        }
    }

    #[test]
    fn ch_unpacked_paths_are_contiguous_and_valid() {
        let g = region();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        assert!(ch.shortcut_count() > 0, "region CH should need shortcuts");
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        let mut checked = 0usize;
        for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3), (7 % n, n - 2)] {
            let (s, t) = (VertexId(s), VertexId(t));
            if let Some(edges) = ch.query_edges(&mut search, s, t) {
                let p = Path::from_edges(&g, edges.to_vec())
                    .expect("unpacked edges must form a contiguous path");
                assert_eq!(p.source(), s);
                assert_eq!(p.target(), t);
                p.validate(&g).unwrap();
                let plain = shortest_path(&g, s, t, CostModel::Length).unwrap();
                assert_eq!(p.length_m(&g), plain.length_m(&g), "{s:?}->{t:?}");
                checked += 1;
            }
        }
        assert!(checked >= 2, "region pairs should mostly be routable");
    }

    #[test]
    fn ch_travel_time_metric_queries_are_exact() {
        let g = region();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::TravelTime, &ChConfig::default());
        assert!(ch.usable_for(&CostModel::TravelTime));
        assert!(!ch.usable_for(&CostModel::Length));
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 1)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let plain = shortest_path(&g, s, t, CostModel::TravelTime)
                .map(|p| p.cost(&g, CostModel::TravelTime));
            let ch_cost = ch.query_edges(&mut search, s, t).map(|edges| {
                edges
                    .iter()
                    .fold(0.0, |a, &e| a + CostModel::TravelTime.edge_cost(&g, e))
            });
            match (plain, ch_cost) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{s:?}->{t:?}: {a} vs {b}"),
                (None, None) => {}
                (a, b) => panic!("reachability mismatch {s:?}->{t:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn ch_metric_gate() {
        let g = region();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        assert!(ch.usable_for(&CostModel::Length));
        assert!(!ch.usable_for(&CostModel::TravelTime));
        let custom = vec![1.0; g.edge_count()];
        assert!(!ch.usable_for(&CostModel::Custom(&custom)));
        assert_eq!(ch.metric(), LandmarkMetric::Length);
    }

    #[test]
    fn ch_disconnected_components_and_self_queries() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex(Point::new(0.0, 0.0));
        let a1 = b.add_vertex(Point::new(100.0, 0.0));
        let c0 = b.add_vertex(Point::new(0.0, 9000.0));
        let c1 = b.add_vertex(Point::new(100.0, 9000.0));
        let attrs = || EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential);
        b.add_bidirectional(a0, a1, attrs()).unwrap();
        b.add_bidirectional(c0, c1, attrs()).unwrap();
        let g = b.build();
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = ChSearch::new(g.vertex_count());
        assert!(ch.query_edges(&mut search, a0, c1).is_none());
        assert!(ch.query_cost(&mut search, a1, c0).is_none());
        assert_eq!(ch.query_cost(&mut search, a0, a0), Some(0.0));
        assert!(ch.query_edges(&mut search, a0, a0).is_none());
        let within = ch.query_cost(&mut search, a0, a1);
        assert_eq!(within, Some(100.0));
    }

    #[test]
    fn ch_search_state_reuse_is_clean_across_queries() {
        // An early-exiting query right after a full sweep must not see
        // stale distances — the ChSide epoch discipline mirrors the
        // engine's SearchSpace.
        let g = grid_network(&GridConfig::small_test(), 7);
        let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        let mut search = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        let pairs = [(0, n - 1), (1, 2), (n - 1, 0), (n / 2, n / 2 + 1)];
        // Interleave: fresh scratch state must agree with reused one.
        for &(s, t) in &pairs {
            let (s, t) = (VertexId(s), VertexId(t));
            let reused = ch.query_cost(&mut search, s, t);
            let mut fresh = ChSearch::new(g.vertex_count());
            let expect = ch.query_cost(&mut fresh, s, t);
            assert_eq!(reused, expect, "{s:?}->{t:?} state leaked across queries");
        }
    }

    #[test]
    fn ch_witness_cap_trades_size_not_correctness() {
        let g = region();
        let tight = ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig {
                witness_settle_cap: 2,
                ..ChConfig::default()
            },
        );
        let roomy = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
        assert!(
            tight.shortcut_count() >= roomy.shortcut_count(),
            "a tighter witness cap can only add shortcuts"
        );
        let mut st = ChSearch::new(g.vertex_count());
        let mut sr = ChSearch::new(g.vertex_count());
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 3, 2 * n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = tight.query_cost(&mut st, s, t);
            let b = roomy.query_cost(&mut sr, s, t);
            match (a, b) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                (a, b) => panic!("cap changed reachability: {a:?} vs {b:?}"),
            }
        }
    }
}
