//! Routing algorithms over [`crate::graph::Graph`].
//!
//! * [`engine`] — the reusable query layer every algorithm runs on: a
//!   generation-stamped [`engine::SearchSpace`] (O(1) reset, no per-query
//!   `O(V)` allocation) behind the [`engine::QueryEngine`] facade;
//! * [`dijkstra`] — textbook Dijkstra (one-to-one with early exit,
//!   one-to-all trees, and a constrained variant that honours banned
//!   vertex/edge sets — the inner engine of Yen's algorithm);
//! * [`astar`] — A* with an admissible straight-line-distance heuristic;
//! * [`landmarks`] — ALT preprocessing: landmark distance tables whose
//!   triangle-inequality bounds upgrade every target-directed search on a
//!   [`engine::QueryEngine`] (see [`engine::Heuristic`] and
//!   [`engine::QueryEngine::with_landmarks`]) while provably preserving
//!   exactness;
//! * [`cch`] — customizable contraction hierarchies: a metric-independent
//!   contraction order plus millisecond triangle-relaxation customization,
//!   so live weight changes (traffic, custom cost vectors) re-weight the
//!   index instead of rebuilding it (see
//!   [`engine::QueryEngine::with_cch`]);
//! * [`ch`] — contraction hierarchies: shortcut-based preprocessing that
//!   turns unconstrained point-to-point queries into two tiny upward
//!   searches (see [`engine::SearchBackend`] and
//!   [`engine::QueryEngine::with_ch`]), with shortcut unpacking back to
//!   original edge sequences;
//! * [`m2m`] — bucket-based many-to-many distance tables over a
//!   contraction hierarchy: `T` backward plus `S` forward upward sweeps
//!   fill an exact `S × T` [`m2m::DistanceTable`] instead of `S × T`
//!   full queries (the HMM transition-matrix and batched one-to-many
//!   shape; see [`engine::QueryEngine::many_to_many`]);
//! * [`bidijkstra`] — bidirectional Dijkstra;
//! * [`yen`] — Yen's algorithm for the top-k loopless shortest paths,
//!   exposed as a lazy iterator (the paper's TkDI training-data strategy);
//! * [`diversified`] — diversified top-k shortest paths (the paper's
//!   D-TkDI strategy): enumerate in cost order, keep a path only if it is
//!   dissimilar enough from every path kept so far.
//!
//! The per-algorithm modules export free functions for one-shot queries;
//! each is a thin wrapper that allocates a transient engine. Query-heavy
//! callers hold a [`engine::QueryEngine`] (one per worker thread) and use
//! its methods instead.

pub mod astar;
pub mod bidijkstra;
pub mod cch;
pub mod ch;
pub mod dijkstra;
pub mod diversified;
pub mod engine;
pub mod landmarks;
pub mod m2m;
pub mod yen;

pub use astar::astar_shortest_path;
pub use bidijkstra::bidirectional_shortest_path;
pub use cch::{Cch, CchConfig, CchTopology};
pub use ch::{ChConfig, ChSearch, ContractionHierarchy};
pub use dijkstra::{
    constrained_shortest_path, shortest_path, shortest_path_tree, ShortestPathTree,
};
pub use diversified::{diversified_top_k, diversified_top_k_with, DiversifiedConfig};
pub use engine::{
    safe_heuristic_bound, EngineObs, Heuristic, QueryEngine, SearchBackend, SearchSpace, TreeView,
};
pub use landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable, NodeVectors};
pub use m2m::{DistanceTable, M2mSearch};
pub use yen::{yen_k_shortest, YenIter};
