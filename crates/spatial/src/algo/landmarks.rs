//! ALT preprocessing: landmark distance tables for goal-directed search.
//!
//! ALT (A*, Landmarks, Triangle inequality) precomputes, for a small set
//! of landmark vertices `L`, the full one-to-all distance vectors
//! `d(L, ·)` and `d(·, L)` under one cost metric. The triangle inequality
//! then yields an admissible *and consistent* lower bound on any
//! remaining distance:
//!
//! ```text
//! d(v, t) >= d(L, t) - d(L, v)      (go through v on the way from L)
//! d(v, t) >= d(v, L) - d(t, L)      (go through t on the way to L)
//! ```
//!
//! Maximised over landmarks, this bound is usually far tighter than the
//! straight-line heuristic on real road networks — it "knows about"
//! rivers, ring roads and one-way systems because it is made of true
//! network distances. The engine layer
//! ([`crate::algo::engine::QueryEngine::with_landmarks`]) takes the max
//! of the ALT bound and the cached
//! [`crate::algo::engine::safe_heuristic_bound`] Euclidean bound, so an
//! ALT-guided search is never less directed than the plain cached-A*
//! search it replaces.
//!
//! Two properties make the table safe to share and reuse:
//!
//! * **Exactness is metric-bound.** The vectors are true distances under
//!   *one* [`CostModel`] ([`LandmarkMetric::Length`] or
//!   [`LandmarkMetric::TravelTime`]); a query under any other model must
//!   not consult them. [`LandmarkMetric::matches`] is the gate the engine
//!   checks per query, falling back to its non-ALT heuristics.
//! * **Bans only shrink the graph.** Removing edges or vertices can only
//!   *increase* true distances, so a full-graph lower bound stays a lower
//!   bound under Yen's banned spur sets — ALT-guided spur searches remain
//!   exact (locked in by `tests/alt_exactness.rs`).
//!
//! Landmark selection is farthest-point sampling on network distance
//! (deterministic per seed), and the table rows are one-to-all Dijkstra
//! runs computed on per-worker [`QueryEngine`]s across `threads` OS
//! threads.

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algo::engine::QueryEngine;
use crate::graph::{CostModel, Graph, VertexId};

/// Number of landmarks actually consulted per query (the best few for the
/// query's geometry); bounds the per-relaxation cost of the ALT heuristic
/// while keeping most of its directedness.
pub const ACTIVE_LANDMARKS: usize = 4;

/// The cost metric a [`LandmarkTable`] was precomputed under.
///
/// Only graph-derived metrics can be tabulated: a
/// [`CostModel::Custom`] slice may change between queries, which would
/// silently break the triangle inequality against stale vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LandmarkMetric {
    /// Distances in metres ([`CostModel::Length`]).
    Length,
    /// Free-flow travel times in seconds ([`CostModel::TravelTime`]).
    TravelTime,
}

impl LandmarkMetric {
    /// The corresponding cost model.
    pub fn cost_model(&self) -> CostModel<'static> {
        match self {
            LandmarkMetric::Length => CostModel::Length,
            LandmarkMetric::TravelTime => CostModel::TravelTime,
        }
    }

    /// Whether a query under `cost` may consult vectors built under
    /// `self`. `Custom` never matches — the engine must fall back.
    pub fn matches(&self, cost: &CostModel<'_>) -> bool {
        matches!(
            (self, cost),
            (LandmarkMetric::Length, CostModel::Length)
                | (LandmarkMetric::TravelTime, CostModel::TravelTime)
        )
    }
}

/// Parameters of landmark selection and table construction.
#[derive(Debug, Clone, Copy)]
pub struct LandmarkConfig {
    /// Number of landmarks (clamped to the vertex count).
    pub count: usize,
    /// Seed for the farthest-point sampling start vertex.
    pub seed: u64,
    /// Worker threads for the one-to-all sweeps.
    pub threads: usize,
}

impl Default for LandmarkConfig {
    fn default() -> Self {
        LandmarkConfig {
            count: 8,
            seed: 0xa17,
            threads: 4,
        }
    }
}

/// Precomputed forward/backward landmark distance vectors.
///
/// Build once per (graph, metric), wrap in an `Arc`, and hand a clone to
/// every worker's [`QueryEngine::with_landmarks`] — the table is
/// immutable and `Sync`, so sharing is free.
#[derive(Debug, Clone)]
pub struct LandmarkTable {
    metric: LandmarkMetric,
    /// Vertex count of the graph the table was built for.
    n: usize,
    /// Edge count of the graph the table was built for (an extra
    /// attach-time fingerprint against wrong-graph tables, whose stale
    /// "distances" would silently break admissibility).
    m: usize,
    /// Weights epoch of the graph at build time (see
    /// [`Graph::weights_epoch`]); 0 for deserialised tables. The engine
    /// skips the table when the graph has been mutated since.
    weights_epoch: u64,
    landmarks: Vec<VertexId>,
    /// `d(L_l, v)` at `[l * n + v]` (one-to-all from each landmark).
    from_landmark: Vec<f64>,
    /// `d(v, L_l)` at `[l * n + v]` (reverse one-to-all into each landmark).
    to_landmark: Vec<f64>,
}

impl LandmarkTable {
    /// Selects landmarks by farthest-point sampling under `metric` and
    /// tabulates their forward and backward distance vectors.
    ///
    /// Selection is inherently sequential (each pick maximises the
    /// minimum network distance to the landmarks chosen so far) and
    /// produces the forward vectors as a by-product; the backward sweep
    /// is parallelised over `cfg.threads` workers, each running reverse
    /// one-to-all Dijkstra on its own [`QueryEngine`]. The result is
    /// bit-identical for any thread count (asserted by the unit tests).
    pub fn build(g: &Graph, metric: LandmarkMetric, cfg: &LandmarkConfig) -> Self {
        let n = g.vertex_count();
        let k = cfg.count.min(n);
        let cost = metric.cost_model();
        let mut landmarks: Vec<VertexId> = Vec::with_capacity(k);
        let mut from_landmark: Vec<f64> = Vec::with_capacity(k * n);

        if k > 0 {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut engine = QueryEngine::new(g);
            // Coverage[v] = min over chosen landmarks of d(L, v); the next
            // landmark is the worst-covered vertex. Unreached (infinite)
            // vertices win outright, which plants a landmark in every
            // weakly separated component; ties break on the lowest id so
            // the selection is deterministic.
            let mut coverage = vec![f64::INFINITY; n];
            let mut next = VertexId(rng.gen_range(0..n as u32));
            loop {
                landmarks.push(next);
                let view = engine.one_to_all(next, cost);
                for (v, slot) in coverage.iter_mut().enumerate() {
                    let d = view.dist(VertexId(v as u32));
                    from_landmark.push(d);
                    if d < *slot {
                        *slot = d;
                    }
                }
                if landmarks.len() >= k {
                    break;
                }
                let mut best: Option<(f64, u32)> = None;
                for (v, &c) in coverage.iter().enumerate() {
                    if landmarks.iter().any(|l| l.index() == v) {
                        continue;
                    }
                    if best.is_none_or(|(bc, _)| c > bc) {
                        best = Some((c, v as u32));
                    }
                }
                match best {
                    Some((_, v)) => next = VertexId(v),
                    None => break, // k > n cannot happen; defensive
                }
            }
        }

        let k = landmarks.len();
        let mut to_landmark = vec![f64::INFINITY; k * n];
        let threads = cfg.threads.max(1).min(k.max(1));
        if k > 0 {
            let per = k.div_ceil(threads);
            thread::scope(|scope| {
                for (block, ls) in to_landmark.chunks_mut(per * n).zip(landmarks.chunks(per)) {
                    scope.spawn(move |_| {
                        let mut engine = QueryEngine::new(g);
                        for (row, &l) in block.chunks_mut(n).zip(ls) {
                            let view = engine.one_to_all_rev(l, cost);
                            for (v, slot) in row.iter_mut().enumerate() {
                                *slot = view.dist(VertexId(v as u32));
                            }
                        }
                    });
                }
            })
            .expect("landmark sweep worker panicked");
        }

        LandmarkTable {
            metric,
            n,
            m: g.edge_count(),
            weights_epoch: g.weights_epoch(),
            landmarks,
            from_landmark,
            to_landmark,
        }
    }

    /// The metric the vectors were computed under.
    pub fn metric(&self) -> LandmarkMetric {
        self.metric
    }

    /// Vertex count of the graph the table was built for.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Edge count of the graph the table was built for.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Weights epoch of the graph this table was built against
    /// (0 for tables loaded from disk).
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// The selected landmark vertices, in selection order.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Number of landmarks.
    pub fn k(&self) -> usize {
        self.landmarks.len()
    }

    /// `d(L_l, v)` — true distance from landmark `l` to `v`
    /// (`INFINITY` when unreachable).
    #[inline]
    pub fn from_landmark(&self, l: usize, v: VertexId) -> f64 {
        self.from_landmark[l * self.n + v.index()]
    }

    /// `d(v, L_l)` — true distance from `v` to landmark `l`.
    #[inline]
    pub fn to_landmark(&self, l: usize, v: VertexId) -> f64 {
        self.to_landmark[l * self.n + v.index()]
    }

    /// Whether queries under `cost` may use this table.
    pub fn usable_for(&self, cost: &CostModel<'_>) -> bool {
        self.k() > 0 && self.metric.matches(cost)
    }

    /// Raw distance vectors (`d(L_l, v)` then `d(v, L_l)`, each `k * n`
    /// row-major) — the serialisation payload of [`crate::io`].
    pub(crate) fn raw_vectors(&self) -> (&[f64], &[f64]) {
        (&self.from_landmark, &self.to_landmark)
    }

    /// Reassembles a table from its serialised parts (`crate::io`
    /// deserialiser; slice lengths are validated there).
    pub(crate) fn from_raw_parts(
        metric: LandmarkMetric,
        n: usize,
        m: usize,
        landmarks: Vec<VertexId>,
        from_landmark: Vec<f64>,
        to_landmark: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(from_landmark.len(), landmarks.len() * n);
        debug_assert_eq!(to_landmark.len(), landmarks.len() * n);
        LandmarkTable {
            metric,
            n,
            m,
            weights_epoch: 0,
            landmarks,
            from_landmark,
            to_landmark,
        }
    }

    /// Fills `cache` with this table's distance vectors for `node`
    /// (no-op when already cached — the per-query target caching that
    /// makes Yen's hundreds of same-target spur searches pay for the
    /// gather exactly once).
    pub fn prepare(&self, cache: &mut NodeVectors, node: VertexId) {
        if cache.node == Some(node) {
            return;
        }
        cache.from_l.clear();
        cache.to_l.clear();
        for l in 0..self.k() {
            cache.from_l.push(self.from_landmark(l, node));
            cache.to_l.push(self.to_landmark(l, node));
        }
        cache.node = Some(node);
        cache.active.clear();
    }

    /// Restricts `cache` to the [`ACTIVE_LANDMARKS`] landmarks giving the
    /// tightest bound for a search between `probe` and the cached node
    /// (`towards_node`: probe → node, else node → probe). Call after
    /// [`LandmarkTable::prepare`]; cheap enough to rerun per query.
    pub fn select_active(&self, cache: &mut NodeVectors, probe: VertexId, towards_node: bool) {
        cache.active.clear();
        if self.k() <= ACTIVE_LANDMARKS {
            cache.active.extend(0..self.k() as u32);
            return;
        }
        // Keep the top ACTIVE_LANDMARKS by single-landmark bound at the
        // probe endpoint (insertion into a fixed-size best list; ties keep
        // the lower landmark index for determinism).
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(ACTIVE_LANDMARKS + 1);
        for l in 0..self.k() {
            let b = self.bound_one(cache, l, probe, towards_node);
            let pos = best.partition_point(|&(bb, _)| bb >= b);
            if pos < ACTIVE_LANDMARKS {
                best.insert(pos, (b, l as u32));
                best.truncate(ACTIVE_LANDMARKS);
            }
        }
        cache.active.extend(best.iter().map(|&(_, l)| l));
        cache.active.sort_unstable();
    }

    /// Single-landmark triangle bound; `towards_node` picks the direction
    /// (`d(v, node)` vs `d(node, v)`). Infinite vector entries are
    /// guarded so no `inf - inf` NaN can escape; an infinite *result* is
    /// legitimate (it proves the endpoint unreachable from `v`).
    #[inline]
    fn bound_one(&self, cache: &NodeVectors, l: usize, v: VertexId, towards_node: bool) -> f64 {
        let mut b = 0.0f64;
        let from_lv = self.from_landmark(l, v);
        let to_lv = self.to_landmark(l, v);
        if towards_node {
            // d(v, node) >= d(L, node) - d(L, v)  and  >= d(v, L) - d(node, L)
            if from_lv.is_finite() {
                b = b.max(cache.from_l[l] - from_lv);
            }
            if cache.to_l[l].is_finite() {
                b = b.max(to_lv - cache.to_l[l]);
            }
        } else {
            // d(node, v) >= d(L, v) - d(L, node)  and  >= d(node, L) - d(v, L)
            if cache.from_l[l].is_finite() {
                b = b.max(from_lv - cache.from_l[l]);
            }
            if to_lv.is_finite() {
                b = b.max(cache.to_l[l] - to_lv);
            }
        }
        b
    }

    /// Lower bound on `d(v, node)` for the cached node, maximised over
    /// the cache's active landmarks.
    #[inline]
    pub fn bound_to_node(&self, cache: &NodeVectors, v: VertexId) -> f64 {
        let mut b = 0.0f64;
        for &l in &cache.active {
            b = b.max(self.bound_one(cache, l as usize, v, true));
        }
        b
    }

    /// Lower bound on `d(node, v)` for the cached node, maximised over
    /// the cache's active landmarks.
    #[inline]
    pub fn bound_from_node(&self, cache: &NodeVectors, v: VertexId) -> f64 {
        let mut b = 0.0f64;
        for &l in &cache.active {
            b = b.max(self.bound_one(cache, l as usize, v, false));
        }
        b
    }
}

/// Per-endpoint landmark distance vectors, owned by the engine and
/// refilled only when the query endpoint changes (see
/// [`LandmarkTable::prepare`]).
#[derive(Debug, Clone, Default)]
pub struct NodeVectors {
    node: Option<VertexId>,
    /// `d(L_l, node)` per landmark.
    from_l: Vec<f64>,
    /// `d(node, L_l)` per landmark.
    to_l: Vec<f64>,
    /// Landmark indices consulted by the bound evaluators.
    active: Vec<u32>,
}

impl NodeVectors {
    /// An empty cache (filled on first [`LandmarkTable::prepare`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The endpoint the vectors currently describe.
    pub fn node(&self) -> Option<VertexId> {
        self.node
    }

    /// Drops the cached endpoint (e.g. after swapping tables).
    pub fn invalidate(&mut self) {
        self.node = None;
        self.active.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path_tree;
    use crate::builder::GraphBuilder;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};

    fn region() -> Graph {
        region_network(&RegionConfig::small_test(), 11)
    }

    #[test]
    fn alt_selection_is_deterministic_per_seed() {
        let g = region();
        let cfg = LandmarkConfig {
            count: 6,
            seed: 42,
            threads: 2,
        };
        let a = LandmarkTable::build(&g, LandmarkMetric::Length, &cfg);
        let b = LandmarkTable::build(&g, LandmarkMetric::Length, &cfg);
        assert_eq!(a.landmarks(), b.landmarks(), "same seed, same landmarks");
        assert_eq!(a.from_landmark, b.from_landmark);
        assert_eq!(a.to_landmark, b.to_landmark);
        // Landmarks are distinct vertices.
        let mut ids: Vec<u32> = a.landmarks().iter().map(|l| l.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.k());
    }

    #[test]
    fn alt_parallel_build_matches_sequential_bitwise() {
        let g = region();
        let seq = LandmarkTable::build(
            &g,
            LandmarkMetric::TravelTime,
            &LandmarkConfig {
                count: 5,
                seed: 7,
                threads: 1,
            },
        );
        let par = LandmarkTable::build(
            &g,
            LandmarkMetric::TravelTime,
            &LandmarkConfig {
                count: 5,
                seed: 7,
                threads: 4,
            },
        );
        assert_eq!(seq.landmarks(), par.landmarks());
        assert_eq!(seq.from_landmark, par.from_landmark);
        assert_eq!(seq.to_landmark, par.to_landmark);
    }

    #[test]
    fn alt_triangle_inequality_admissibility() {
        // On a bidirectional grid the ISSUE's symmetric form
        // |d(L,t) - d(L,v)| <= d(v,t) must hold; on any graph the
        // directed bound must never exceed the true distance.
        let g = grid_network(&GridConfig::small_test(), 3);
        let table = LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
        let n = g.vertex_count() as u32;
        let mut cache = NodeVectors::new();
        for t in (0..n).step_by(7) {
            let t = VertexId(t);
            let tree = shortest_path_tree(&g, t, CostModel::Length);
            // tree is rooted at t; on a bidirectional grid d(v,t) = d(t,v).
            table.prepare(&mut cache, t);
            for v in (0..n).step_by(3) {
                let v = VertexId(v);
                let true_d = tree.dist[v.index()];
                for l in 0..table.k() {
                    let lhs = (table.from_landmark(l, t) - table.from_landmark(l, v)).abs();
                    assert!(
                        lhs <= true_d + 1e-9,
                        "|d(L,t)-d(L,v)| = {lhs} > d(v,t) = {true_d}"
                    );
                }
                table.select_active(&mut cache, v, true);
                let bound = table.bound_to_node(&cache, v);
                assert!(!bound.is_nan());
                assert!(
                    bound <= true_d + 1e-9,
                    "ALT bound {bound} exceeds true distance {true_d}"
                );
            }
        }
    }

    #[test]
    fn alt_directed_bounds_stay_admissible_on_region() {
        let g = region();
        let table = LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
        let n = g.vertex_count() as u32;
        let mut engine = QueryEngine::new(&g);
        let mut cache = NodeVectors::new();
        for t in [0u32, n / 3, n - 1] {
            let t = VertexId(t);
            table.prepare(&mut cache, t);
            let dists: Vec<f64> = {
                let view = engine.one_to_all_rev(t, CostModel::Length);
                (0..n).map(|v| view.dist(VertexId(v))).collect()
            };
            for v in (0..n).step_by(11) {
                let v = VertexId(v);
                table.select_active(&mut cache, v, true);
                let bound = table.bound_to_node(&cache, v);
                let true_d = dists[v.index()];
                assert!(!bound.is_nan());
                assert!(
                    bound <= true_d + 1e-9,
                    "d({v:?}->{t:?}): bound {bound} > true {true_d}"
                );
            }
        }
    }

    #[test]
    fn alt_bounds_guard_disconnected_components() {
        // Two components: bounds must never produce NaN, and an infinite
        // bound is only claimed where the target truly is unreachable.
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex(Point::new(0.0, 0.0));
        let a1 = b.add_vertex(Point::new(100.0, 0.0));
        let c0 = b.add_vertex(Point::new(0.0, 9000.0));
        let c1 = b.add_vertex(Point::new(100.0, 9000.0));
        let attrs = || EdgeAttrs::with_default_speed(100.0, RoadCategory::Residential);
        b.add_bidirectional(a0, a1, attrs()).unwrap();
        b.add_bidirectional(c0, c1, attrs()).unwrap();
        let g = b.build();
        let table = LandmarkTable::build(
            &g,
            LandmarkMetric::Length,
            &LandmarkConfig {
                count: 3,
                seed: 1,
                threads: 2,
            },
        );
        let mut cache = NodeVectors::new();
        table.prepare(&mut cache, c1);
        for v in g.vertices() {
            table.select_active(&mut cache, v, true);
            let bound = table.bound_to_node(&cache, v);
            assert!(!bound.is_nan(), "NaN bound at {v:?}");
            if bound.is_infinite() {
                assert!(
                    v == a0 || v == a1,
                    "infinite bound claimed for a connected vertex {v:?}"
                );
            }
        }
    }

    #[test]
    fn alt_metric_gate() {
        let g = region();
        let table = LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
        assert!(table.usable_for(&CostModel::Length));
        assert!(!table.usable_for(&CostModel::TravelTime));
        let custom = vec![1.0; g.edge_count()];
        assert!(!table.usable_for(&CostModel::Custom(&custom)));
        assert_eq!(table.metric(), LandmarkMetric::Length);
        assert_eq!(
            LandmarkMetric::TravelTime
                .cost_model()
                .edge_cost(&g, crate::graph::EdgeId(0)),
            CostModel::TravelTime.edge_cost(&g, crate::graph::EdgeId(0))
        );
    }

    #[test]
    fn alt_count_clamps_to_vertex_count() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(50.0, 0.0));
        b.add_bidirectional(
            v0,
            v1,
            EdgeAttrs::with_default_speed(50.0, RoadCategory::Residential),
        )
        .unwrap();
        let g = b.build();
        let table = LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
        assert_eq!(table.k(), 2);
        assert_eq!(table.vertex_count(), 2);
    }
}
