//! A* search with a straight-line-distance heuristic.
//!
//! The heuristic is `h(v) = euclid(v, target) · B` with `B` the
//! [`safe_heuristic_bound`]: the largest per-metre rate every edge's cost
//! provably covers (`min` over edges of `cost / straight-line span`).
//! That keeps A* admissible on *any* graph — including ones whose edge
//! lengths undercut their geometry — not just the generators'
//! geometry-consistent networks. For [`CostModel::Custom`] no bound is
//! known and A* degenerates to plain Dijkstra.
//!
//! [`safe_heuristic_bound`]: crate::algo::engine::safe_heuristic_bound

use crate::algo::engine::QueryEngine;
use crate::graph::{CostModel, Graph, VertexId};
use crate::path::Path;

/// Cheapest `source -> target` path via A*, or `None` if unreachable or
/// `source == target`. Produces a path with exactly the same cost as
/// [`super::dijkstra::shortest_path`] while typically settling far fewer
/// vertices.
///
/// One-shot convenience over [`QueryEngine::astar_shortest_path`]. Note
/// the heuristic bound costs a one-off `O(E)` edge scan, which a
/// transient engine pays on *every* call — for a single short query this
/// can rival the search itself. Callers issuing repeated point-to-point
/// queries should hold a [`QueryEngine`], which computes the bound once
/// and reuses it.
pub fn astar_shortest_path(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
) -> Option<Path> {
    QueryEngine::new(g).astar_shortest_path(source, target, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::generators::{grid_network, GridConfig};

    #[test]
    fn astar_cost_matches_dijkstra_on_grid() {
        let g = grid_network(&GridConfig::small_test(), 11);
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (3, n / 2), (n - 1, 0), (n / 3, 2 * n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            if s == t {
                continue;
            }
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let d = shortest_path(&g, s, t, cost);
                let a = astar_shortest_path(&g, s, t, cost);
                match (d, a) {
                    (Some(dp), Some(ap)) => {
                        ap.validate(&g).unwrap();
                        let (dc, ac) = (dp.cost(&g, cost), ap.cost(&g, cost));
                        assert!(
                            (dc - ac).abs() < 1e-6,
                            "cost mismatch {s:?}->{t:?}: dijkstra {dc} vs astar {ac}"
                        );
                    }
                    (None, None) => {}
                    (d, a) => panic!("reachability mismatch: {d:?} vs {a:?}"),
                }
            }
        }
    }

    #[test]
    fn astar_custom_model_degenerates_to_dijkstra() {
        let g = grid_network(&GridConfig::small_test(), 5);
        let costs: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 7) as f64).collect();
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let d = shortest_path(&g, s, t, CostModel::Custom(&costs)).unwrap();
        let a = astar_shortest_path(&g, s, t, CostModel::Custom(&costs)).unwrap();
        assert!(
            (d.cost(&g, CostModel::Custom(&costs)) - a.cost(&g, CostModel::Custom(&costs))).abs()
                < 1e-9
        );
    }

    #[test]
    fn same_source_target_is_none() {
        let g = grid_network(&GridConfig::small_test(), 5);
        assert!(astar_shortest_path(&g, VertexId(3), VertexId(3), CostModel::Length).is_none());
    }
}
