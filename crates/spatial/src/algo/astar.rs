//! A* search with a straight-line-distance heuristic.
//!
//! The heuristic is `h(v) = euclid(v, target) · min_cost_per_meter`, which
//! is admissible as long as every edge's cost is at least
//! `min_cost_per_meter · euclid(edge.from, edge.to)` — true for
//! [`CostModel::Length`] whenever edge lengths are at least the straight-line
//! distance between their endpoints (all generators in this crate guarantee
//! it), and for [`CostModel::TravelTime`] via the network-wide maximum speed.
//! For [`CostModel::Custom`] the bound degenerates to zero and A* becomes
//! plain Dijkstra.

use std::collections::BinaryHeap;

use crate::graph::{CostModel, EdgeId, Graph, VertexId};
use crate::path::Path;
use crate::util::{BitSet, MinCost};

/// Cheapest `source -> target` path via A*, or `None` if unreachable or
/// `source == target`. Produces a path with exactly the same cost as
/// [`super::dijkstra::shortest_path`] while typically settling far fewer
/// vertices.
pub fn astar_shortest_path(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    cost: CostModel<'_>,
) -> Option<Path> {
    if source == target {
        return None;
    }
    let n = g.vertex_count();
    let per_meter = cost.min_cost_per_meter(g);
    let tcoord = g.coord(target);
    let h = |v: VertexId| g.coord(v).distance(&tcoord) * per_meter;

    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(VertexId, EdgeId)>> = vec![None; n];
    let mut settled = BitSet::new(n);
    let mut heap: BinaryHeap<MinCost<VertexId>> = BinaryHeap::new();

    dist[source.index()] = 0.0;
    heap.push(MinCost { cost: h(source), item: source });

    while let Some(MinCost { item: u, .. }) = heap.pop() {
        if settled.contains(u.0) {
            continue;
        }
        settled.insert(u.0);
        if u == target {
            break;
        }
        let du = dist[u.index()];
        for (v, e) in g.out_edges(u) {
            if settled.contains(v.0) {
                continue;
            }
            let nd = du + cost.edge_cost(g, e);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some((u, e));
                heap.push(MinCost { cost: nd + h(v), item: v });
            }
        }
    }

    if !dist[target.index()].is_finite() {
        return None;
    }
    let mut vertices = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while let Some((prev, e)) = parent[cur.index()] {
        vertices.push(prev);
        edges.push(e);
        cur = prev;
    }
    vertices.reverse();
    edges.reverse();
    Some(Path::from_parts_unchecked(vertices, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::generators::{grid_network, GridConfig};

    #[test]
    fn astar_cost_matches_dijkstra_on_grid() {
        let g = grid_network(&GridConfig::small_test(), 11);
        let n = g.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (3, n / 2), (n - 1, 0), (n / 3, 2 * n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            if s == t {
                continue;
            }
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let d = shortest_path(&g, s, t, cost);
                let a = astar_shortest_path(&g, s, t, cost);
                match (d, a) {
                    (Some(dp), Some(ap)) => {
                        ap.validate(&g).unwrap();
                        let (dc, ac) = (dp.cost(&g, cost), ap.cost(&g, cost));
                        assert!(
                            (dc - ac).abs() < 1e-6,
                            "cost mismatch {s:?}->{t:?}: dijkstra {dc} vs astar {ac}"
                        );
                    }
                    (None, None) => {}
                    (d, a) => panic!("reachability mismatch: {d:?} vs {a:?}"),
                }
            }
        }
    }

    #[test]
    fn astar_custom_model_degenerates_to_dijkstra() {
        let g = grid_network(&GridConfig::small_test(), 5);
        let costs: Vec<f64> = (0..g.edge_count()).map(|i| 1.0 + (i % 7) as f64).collect();
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let d = shortest_path(&g, s, t, CostModel::Custom(&costs)).unwrap();
        let a = astar_shortest_path(&g, s, t, CostModel::Custom(&costs)).unwrap();
        assert!(
            (d.cost(&g, CostModel::Custom(&costs)) - a.cost(&g, CostModel::Custom(&costs))).abs()
                < 1e-9
        );
    }

    #[test]
    fn same_source_target_is_none() {
        let g = grid_network(&GridConfig::small_test(), 5);
        assert!(astar_shortest_path(&g, VertexId(3), VertexId(3), CostModel::Length).is_none());
    }
}
