//! Deterministic synthetic road-network generators.
//!
//! The paper evaluates on the North Jutland (Denmark) road network, which we
//! cannot redistribute. These generators produce networks with the
//! *structural* properties that matter to PathRank — planar-ish locality,
//! a hierarchy of road classes with different speeds, average degree ≈ 2–4,
//! and many near-optimal alternative routes between any two places:
//!
//! * [`grid_network`] — a jittered Manhattan grid (one town);
//! * [`ring_radial_network`] — a ring-and-spoke city;
//! * [`region_network`] — several grid towns scattered over a region and
//!   stitched together with multi-segment highways: the default stand-in
//!   for the paper's regional network.
//!
//! All generators take an explicit seed and are fully deterministic. Every
//! produced graph is strongly connected (generators keep the largest SCC),
//! and every edge's length is at least the straight-line distance between
//! its endpoints, keeping A*'s heuristic admissible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::geometry::Point;
use crate::graph::{EdgeAttrs, Graph, RoadCategory, VertexId};

/// Configuration of [`grid_network`].
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Number of vertex columns.
    pub nx: usize,
    /// Number of vertex rows.
    pub ny: usize,
    /// Nominal spacing between adjacent vertices, in metres.
    pub spacing_m: f64,
    /// Coordinate jitter as a fraction of the spacing (0 = perfect grid).
    pub jitter: f64,
    /// Probability of deleting each street segment (introduces dead ends
    /// and irregular blocks; the largest SCC is kept afterwards).
    pub edge_removal: f64,
    /// Extra length factor above the straight-line distance, drawn
    /// uniformly from `[0, wiggle]` per edge (roads are rarely straight).
    pub wiggle: f64,
    /// Every `arterial_every`-th row/column is an arterial road (0 =
    /// residential only).
    pub arterial_every: usize,
}

impl GridConfig {
    /// A 5×5 deterministic grid used throughout unit tests: no edge
    /// removal, so vertex ids are predictable (row-major, 25 vertices).
    pub fn small_test() -> Self {
        GridConfig {
            nx: 5,
            ny: 5,
            spacing_m: 100.0,
            jitter: 0.08,
            edge_removal: 0.0,
            wiggle: 0.15,
            arterial_every: 3,
        }
    }

    /// A mid-size town (~400 vertices) with some irregularity.
    pub fn town() -> Self {
        GridConfig {
            nx: 20,
            ny: 20,
            spacing_m: 120.0,
            jitter: 0.2,
            edge_removal: 0.08,
            wiggle: 0.2,
            arterial_every: 5,
        }
    }
}

/// Generates a jittered Manhattan grid town. See [`GridConfig`].
pub fn grid_network(cfg: &GridConfig, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(cfg.nx * cfg.ny, 4 * cfg.nx * cfg.ny);
    build_grid_into(&mut b, cfg, Point::new(0.0, 0.0), &mut rng);
    finalize_connected(b)
}

/// Adds one grid town to `b` with its lower-left corner at `origin`;
/// returns the ids of the added vertices (row-major).
fn build_grid_into(
    b: &mut GraphBuilder,
    cfg: &GridConfig,
    origin: Point,
    rng: &mut StdRng,
) -> Vec<VertexId> {
    let mut ids = Vec::with_capacity(cfg.nx * cfg.ny);
    for row in 0..cfg.ny {
        for col in 0..cfg.nx {
            let jx = (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter * cfg.spacing_m;
            let jy = (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter * cfg.spacing_m;
            ids.push(b.add_vertex(Point::new(
                origin.x + col as f64 * cfg.spacing_m + jx,
                origin.y + row as f64 * cfg.spacing_m + jy,
            )));
        }
    }
    // A street along row r (or column c) is arterial when that index is a
    // multiple of `arterial_every`.
    let is_arterial = |idx: usize| cfg.arterial_every > 0 && idx.is_multiple_of(cfg.arterial_every);
    for row in 0..cfg.ny {
        for col in 0..cfg.nx {
            let here = ids[row * cfg.nx + col];
            if col + 1 < cfg.nx {
                let right = ids[row * cfg.nx + col + 1];
                let cat = if is_arterial(row) {
                    RoadCategory::Arterial
                } else {
                    RoadCategory::Residential
                };
                connect_wiggly(b, here, right, cat, cfg.edge_removal, cfg.wiggle, rng);
            }
            if row + 1 < cfg.ny {
                let up = ids[(row + 1) * cfg.nx + col];
                let cat = if is_arterial(col) {
                    RoadCategory::Arterial
                } else {
                    RoadCategory::Residential
                };
                connect_wiggly(b, here, up, cat, cfg.edge_removal, cfg.wiggle, rng);
            }
        }
    }
    ids
}

/// Adds a bidirectional street between `u` and `v` unless removed by the
/// deletion lottery; length is the straight-line distance inflated by a
/// uniform wiggle factor.
fn connect_wiggly(
    b: &mut GraphBuilder,
    u: VertexId,
    v: VertexId,
    cat: RoadCategory,
    removal: f64,
    wiggle: f64,
    rng: &mut StdRng,
) {
    // Draw both variates unconditionally so the vertex/edge layout stays
    // deterministic regardless of which branches execute.
    let drop = rng.gen::<f64>() < removal;
    let factor = 1.0 + rng.gen::<f64>() * wiggle;
    if drop {
        return;
    }
    let dist = b.coord(u).distance(&b.coord(v));
    b.add_bidirectional(
        u,
        v,
        EdgeAttrs::with_default_speed((dist * factor).max(1.0), cat),
    )
    .expect("generated street must be valid");
}

/// Configuration of [`ring_radial_network`].
#[derive(Debug, Clone)]
pub struct RingRadialConfig {
    /// Number of concentric rings.
    pub rings: usize,
    /// Number of spokes (radial roads).
    pub spokes: usize,
    /// Radial distance between consecutive rings, in metres.
    pub ring_spacing_m: f64,
    /// Extra length factor above the straight-line distance.
    pub wiggle: f64,
}

impl RingRadialConfig {
    /// A small deterministic city used in tests (4 rings × 8 spokes).
    pub fn small_test() -> Self {
        RingRadialConfig {
            rings: 4,
            spokes: 8,
            ring_spacing_m: 150.0,
            wiggle: 0.1,
        }
    }
}

/// Generates a ring-and-spoke city: `rings × spokes` vertices plus a centre
/// vertex, rings connected circumferentially (residential), spokes radially
/// (arterial).
pub fn ring_radial_network(cfg: &RingRadialConfig, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let centre = b.add_vertex(Point::new(0.0, 0.0));
    let mut ring_ids: Vec<Vec<VertexId>> = Vec::with_capacity(cfg.rings);
    for r in 1..=cfg.rings {
        let radius = r as f64 * cfg.ring_spacing_m;
        let mut ids = Vec::with_capacity(cfg.spokes);
        for s in 0..cfg.spokes {
            let theta = s as f64 / cfg.spokes as f64 * std::f64::consts::TAU;
            ids.push(b.add_vertex(Point::new(radius * theta.cos(), radius * theta.sin())));
        }
        ring_ids.push(ids);
    }
    // Circumferential edges.
    for ids in &ring_ids {
        for s in 0..cfg.spokes {
            connect_wiggly(
                &mut b,
                ids[s],
                ids[(s + 1) % cfg.spokes],
                RoadCategory::Residential,
                0.0,
                cfg.wiggle,
                &mut rng,
            );
        }
    }
    // Radial edges; innermost ring connects to the centre. The spoke
    // index addresses several rings at once, so a range loop is clearer
    // than nested iterators here.
    #[allow(clippy::needless_range_loop)]
    for s in 0..cfg.spokes {
        connect_wiggly(
            &mut b,
            centre,
            ring_ids[0][s],
            RoadCategory::Arterial,
            0.0,
            cfg.wiggle,
            &mut rng,
        );
        for r in 0..cfg.rings - 1 {
            connect_wiggly(
                &mut b,
                ring_ids[r][s],
                ring_ids[r + 1][s],
                RoadCategory::Arterial,
                0.0,
                cfg.wiggle,
                &mut rng,
            );
        }
    }
    finalize_connected(b)
}

/// Configuration of [`region_network`], the North Jutland stand-in.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Number of grid towns.
    pub n_towns: usize,
    /// Inclusive range of town grid sizes (both axes drawn independently).
    pub town_size: (usize, usize),
    /// Street spacing inside towns, in metres.
    pub street_spacing_m: f64,
    /// Side length of the square region the towns are scattered over, in
    /// metres.
    pub region_extent_m: f64,
    /// Spacing of intermediate vertices along highways, in metres.
    pub highway_vertex_spacing_m: f64,
    /// Number of extra (non-spanning-tree) highway links to add.
    pub extra_highways: usize,
    /// Per-street deletion probability inside towns.
    pub edge_removal: f64,
}

impl RegionConfig {
    /// Tiny two-town region for tests (runs in milliseconds).
    pub fn small_test() -> Self {
        RegionConfig {
            n_towns: 2,
            town_size: (4, 5),
            street_spacing_m: 100.0,
            region_extent_m: 8_000.0,
            highway_vertex_spacing_m: 800.0,
            extra_highways: 1,
            edge_removal: 0.0,
        }
    }

    /// The default experiment scale (~2.5k vertices across 6 towns),
    /// mirroring the regional structure of the paper's road network.
    pub fn paper_scale() -> Self {
        RegionConfig {
            n_towns: 6,
            town_size: (17, 23),
            street_spacing_m: 110.0,
            region_extent_m: 40_000.0,
            highway_vertex_spacing_m: 900.0,
            extra_highways: 3,
            edge_removal: 0.06,
        }
    }
}

/// Generates the regional network: several grid towns placed apart in a
/// square region, joined by multi-segment highways along a spanning tree of
/// town centres (plus a few extra links).
pub fn region_network(cfg: &RegionConfig, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    // 1. Place town origins far enough apart.
    let mut origins: Vec<Point> = Vec::with_capacity(cfg.n_towns);
    let min_sep = cfg.region_extent_m / (cfg.n_towns as f64).sqrt() / 1.8;
    let mut attempts = 0;
    while origins.len() < cfg.n_towns && attempts < 10_000 {
        attempts += 1;
        let cand = Point::new(
            rng.gen::<f64>() * cfg.region_extent_m,
            rng.gen::<f64>() * cfg.region_extent_m,
        );
        if origins.iter().all(|p| p.distance(&cand) >= min_sep) {
            origins.push(cand);
        }
    }

    // 2. Build each town; remember per-town vertex ids and centres.
    let mut town_vertices: Vec<Vec<VertexId>> = Vec::with_capacity(origins.len());
    let mut town_centres: Vec<Point> = Vec::with_capacity(origins.len());
    for origin in &origins {
        let (lo, hi) = cfg.town_size;
        let nx = rng.gen_range(lo..=hi);
        let ny = rng.gen_range(lo..=hi);
        let town_cfg = GridConfig {
            nx,
            ny,
            spacing_m: cfg.street_spacing_m,
            jitter: 0.18,
            edge_removal: cfg.edge_removal,
            wiggle: 0.2,
            arterial_every: 4,
        };
        let ids = build_grid_into(&mut b, &town_cfg, *origin, &mut rng);
        town_centres.push(Point::new(
            origin.x + (nx - 1) as f64 * cfg.street_spacing_m / 2.0,
            origin.y + (ny - 1) as f64 * cfg.street_spacing_m / 2.0,
        ));
        town_vertices.push(ids);
    }

    // 3. Spanning tree over town centres (Prim), plus extra links.
    let n = town_centres.len();
    let mut links: Vec<(usize, usize)> = Vec::new();
    if n > 1 {
        let mut in_tree = vec![false; n];
        in_tree[0] = true;
        for _ in 1..n {
            let mut best = (f64::INFINITY, 0usize, 0usize);
            for (i, &it) in in_tree.iter().enumerate() {
                if !it {
                    continue;
                }
                for (j, &jt) in in_tree.iter().enumerate() {
                    if jt {
                        continue;
                    }
                    let d = town_centres[i].distance(&town_centres[j]);
                    if d < best.0 {
                        best = (d, i, j);
                    }
                }
            }
            in_tree[best.2] = true;
            links.push((best.1, best.2));
        }
        let mut added = 0;
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if added >= cfg.extra_highways {
                    break 'outer;
                }
                if !links.contains(&(i, j)) && !links.contains(&(j, i)) {
                    links.push((i, j));
                    added += 1;
                }
            }
        }
    }

    // 4. Lay a highway per link: the border vertex of each town closest to
    // the other town's centre, chained through intermediate vertices.
    for (i, j) in links {
        let from = closest_vertex(&b, &town_vertices[i], &town_centres[j]);
        let to = closest_vertex(&b, &town_vertices[j], &town_centres[i]);
        lay_highway(&mut b, from, to, cfg.highway_vertex_spacing_m, &mut rng);
    }

    finalize_connected(b)
}

/// The vertex of `candidates` whose coordinate is closest to `target`.
fn closest_vertex(b: &GraphBuilder, candidates: &[VertexId], target: &Point) -> VertexId {
    *candidates
        .iter()
        .min_by(|&&u, &&v| {
            b.coord(u)
                .distance_sq(target)
                .total_cmp(&b.coord(v).distance_sq(target))
        })
        .expect("towns are non-empty")
}

/// Adds a polyline of highway segments from `from` to `to`, inserting
/// intermediate vertices roughly every `spacing_m` metres with mild lateral
/// jitter.
fn lay_highway(
    b: &mut GraphBuilder,
    from: VertexId,
    to: VertexId,
    spacing_m: f64,
    rng: &mut StdRng,
) {
    let a = b.coord(from);
    let z = b.coord(to);
    let dist = a.distance(&z);
    let segments = (dist / spacing_m).ceil().max(1.0) as usize;
    let mut prev = from;
    for s in 1..segments {
        let t = s as f64 / segments as f64;
        let base = a.lerp(&z, t);
        // Lateral jitter perpendicular to the highway direction.
        let jitter = (rng.gen::<f64>() - 0.5) * 0.2 * spacing_m;
        let (dx, dy) = (z.x - a.x, z.y - a.y);
        let norm = (dx * dx + dy * dy).sqrt().max(1e-9);
        let v = b.add_vertex(Point::new(
            base.x - dy / norm * jitter,
            base.y + dx / norm * jitter,
        ));
        connect_highway(b, prev, v, rng);
        prev = v;
    }
    connect_highway(b, prev, to, rng);
}

fn connect_highway(b: &mut GraphBuilder, u: VertexId, v: VertexId, rng: &mut StdRng) {
    let dist = b.coord(u).distance(&b.coord(v));
    let len = dist * (1.0 + rng.gen::<f64>() * 0.05);
    b.add_bidirectional(
        u,
        v,
        EdgeAttrs::with_default_speed(len.max(1.0), RoadCategory::Highway),
    )
    .expect("highway edges are valid");
}

/// Keeps the largest strongly connected component so that every routing
/// query between surviving vertices has an answer.
fn finalize_connected(b: GraphBuilder) -> Graph {
    let g = b.clone().build();
    let scc = g.largest_scc();
    if scc.len() == g.vertex_count() {
        return g;
    }
    let (induced, _) = b.build_induced(&scc);
    induced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path;
    use crate::graph::CostModel;

    #[test]
    fn grid_is_deterministic() {
        let a = grid_network(&GridConfig::small_test(), 42);
        let b = grid_network(&GridConfig::small_test(), 42);
        assert_eq!(a, b);
        let c = grid_network(&GridConfig::small_test(), 43);
        assert_ne!(a, c, "different seeds give different jitter");
    }

    #[test]
    fn grid_shape_and_connectivity() {
        let g = grid_network(&GridConfig::small_test(), 7);
        assert_eq!(g.vertex_count(), 25);
        // 5x5 grid: 2 * (4*5 + 4*5) directed edges with no removal.
        assert_eq!(g.edge_count(), 80);
        assert_eq!(g.largest_scc().len(), 25);
    }

    #[test]
    fn edge_lengths_at_least_euclidean() {
        for g in [
            grid_network(&GridConfig::town(), 3),
            ring_radial_network(&RingRadialConfig::small_test(), 3),
            region_network(&RegionConfig::small_test(), 3),
        ] {
            for e in g.edges() {
                let euclid = g.euclidean(e.from, e.to);
                assert!(
                    e.attrs.length_m >= euclid - 1e-9,
                    "edge length {} below euclidean {}",
                    e.attrs.length_m,
                    euclid
                );
            }
        }
    }

    #[test]
    fn removal_still_strongly_connected() {
        let g = grid_network(&GridConfig::town(), 11);
        let n = g.vertex_count();
        assert!(n > 300, "most of the town should survive, got {n}");
        assert_eq!(g.largest_scc().len(), n);
    }

    #[test]
    fn ring_radial_shape() {
        let cfg = RingRadialConfig::small_test();
        let g = ring_radial_network(&cfg, 5);
        assert_eq!(g.vertex_count(), 1 + cfg.rings * cfg.spokes);
        assert_eq!(g.largest_scc().len(), g.vertex_count());
        // Centre has `spokes` incident roads in each direction.
        assert_eq!(g.out_degree(VertexId(0)), cfg.spokes);
    }

    #[test]
    fn region_is_connected_and_routable() {
        let g = region_network(&RegionConfig::small_test(), 9);
        assert!(g.vertex_count() > 20);
        assert_eq!(g.largest_scc().len(), g.vertex_count());
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let p = shortest_path(&g, s, t, CostModel::Length);
        assert!(p.is_some(), "strongly connected region must be routable");
    }

    #[test]
    fn region_paper_scale_properties() {
        let g = region_network(&RegionConfig::paper_scale(), 2020);
        let n = g.vertex_count();
        assert!(
            (1200..8000).contains(&n),
            "expected ~2.5k vertices, got {n}"
        );
        assert_eq!(g.largest_scc().len(), n);
        // Average out-degree in a road network sits between 1.5 and 4.5.
        let avg = g.edge_count() as f64 / n as f64;
        assert!(
            (1.5..4.5).contains(&avg),
            "unrealistic average degree {avg}"
        );
        // It contains all three main road classes.
        for cat in [
            RoadCategory::Highway,
            RoadCategory::Arterial,
            RoadCategory::Residential,
        ] {
            assert!(
                g.edges().any(|e| e.attrs.category == cat),
                "missing category {cat:?}"
            );
        }
    }

    #[test]
    fn region_is_deterministic() {
        let a = region_network(&RegionConfig::small_test(), 77);
        let b = region_network(&RegionConfig::small_test(), 77);
        assert_eq!(a, b);
    }
}
