//! Paths in a road network.
//!
//! A [`Path`] stores both its vertex sequence and the edge ids connecting
//! consecutive vertices. PathRank consumes the vertex sequence (it feeds the
//! GRU); the similarity measures consume the edge sequence (weighted Jaccard
//! is defined over edge sets).

use serde::{Deserialize, Serialize};

use crate::error::SpatialError;
use crate::graph::{CostModel, EdgeId, Graph, VertexId};

/// A simple (vertex-repetition-free unless stated otherwise) path through a
/// [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// Builds a path from a vertex sequence, resolving each consecutive pair
    /// to the cheapest connecting edge.
    pub fn from_vertices(g: &Graph, vertices: Vec<VertexId>) -> Result<Self, SpatialError> {
        if vertices.len() < 2 {
            return Err(SpatialError::TooShort);
        }
        let mut edges = Vec::with_capacity(vertices.len() - 1);
        for (i, pair) in vertices.windows(2).enumerate() {
            match g.find_edge(pair[0], pair[1]) {
                Some(e) => edges.push(e),
                None => return Err(SpatialError::DisconnectedSequence { at: i }),
            }
        }
        Ok(Path { vertices, edges })
    }

    /// Builds a path from an edge sequence; the vertex sequence is derived.
    /// Fails if consecutive edges do not share a vertex.
    pub fn from_edges(g: &Graph, edges: Vec<EdgeId>) -> Result<Self, SpatialError> {
        if edges.is_empty() {
            return Err(SpatialError::TooShort);
        }
        let mut vertices = Vec::with_capacity(edges.len() + 1);
        vertices.push(g.edge(edges[0]).from);
        for (i, &e) in edges.iter().enumerate() {
            let rec = g.edge(e);
            if rec.from != *vertices.last().expect("non-empty") {
                return Err(SpatialError::DisconnectedSequence { at: i });
            }
            vertices.push(rec.to);
        }
        Ok(Path { vertices, edges })
    }

    /// Constructs a path from parts already known to be consistent.
    ///
    /// Used by the routing algorithms which derive both sequences together.
    /// Panics (debug only) if the parts are inconsistent.
    pub(crate) fn from_parts_unchecked(vertices: Vec<VertexId>, edges: Vec<EdgeId>) -> Self {
        debug_assert_eq!(vertices.len(), edges.len() + 1);
        Path { vertices, edges }
    }

    /// The vertex sequence, source first.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The edge sequence.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Source vertex.
    #[inline]
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Destination vertex.
    #[inline]
    pub fn target(&self) -> VertexId {
        *self.vertices.last().expect("paths have >= 2 vertices")
    }

    /// Number of edges (a.k.a. hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Paths are never empty; provided for clippy-compliant symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total length in metres.
    pub fn length_m(&self, g: &Graph) -> f64 {
        self.edges.iter().map(|&e| g.edge(e).attrs.length_m).sum()
    }

    /// Total free-flow travel time in seconds.
    pub fn travel_time_s(&self, g: &Graph) -> f64 {
        self.edges
            .iter()
            .map(|&e| g.edge(e).attrs.travel_time_s())
            .sum()
    }

    /// Total cost under an arbitrary [`CostModel`].
    pub fn cost(&self, g: &Graph, model: CostModel<'_>) -> f64 {
        self.edges.iter().map(|&e| model.edge_cost(g, e)).sum()
    }

    /// Whether no vertex occurs twice (loopless / simple path).
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.vertices.len());
        self.vertices.iter().all(|v| seen.insert(*v))
    }

    /// Whether the path's edge sequence is actually connected in `g` and
    /// every edge id is in range. Routing outputs uphold this by
    /// construction; tests use it as an oracle.
    pub fn validate(&self, g: &Graph) -> Result<(), SpatialError> {
        if self.vertices.len() < 2 || self.vertices.len() != self.edges.len() + 1 {
            return Err(SpatialError::TooShort);
        }
        for (i, &e) in self.edges.iter().enumerate() {
            if e.index() >= g.edge_count() {
                return Err(SpatialError::Parse(format!("edge id {} out of range", e.0)));
            }
            let rec = g.edge(e);
            if rec.from != self.vertices[i] || rec.to != self.vertices[i + 1] {
                return Err(SpatialError::DisconnectedSequence { at: i });
            }
        }
        Ok(())
    }

    /// The prefix of this path ending at vertex position `i` (inclusive);
    /// `None` if the prefix would be a single vertex or out of range.
    pub fn prefix(&self, i: usize) -> Option<Path> {
        if i == 0 || i >= self.vertices.len() {
            return None;
        }
        Some(Path {
            vertices: self.vertices[..=i].to_vec(),
            edges: self.edges[..i].to_vec(),
        })
    }

    /// Concatenates `self` with `other`; `other` must start where `self`
    /// ends.
    pub fn concat(&self, other: &Path) -> Result<Path, SpatialError> {
        if self.target() != other.source() {
            return Err(SpatialError::DisconnectedSequence { at: self.len() });
        }
        let mut vertices = self.vertices.clone();
        vertices.extend_from_slice(&other.vertices[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Ok(Path { vertices, edges })
    }

    /// Whether `self` and `other` have the same vertex sequence.
    pub fn same_route(&self, other: &Path) -> bool {
        self.vertices == other.vertices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geometry::Point;
    use crate::graph::{EdgeAttrs, RoadCategory};

    /// A 4-cycle 0 -> 1 -> 2 -> 3 -> 0 plus chord 0 -> 2.
    fn ring() -> Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4)
            .map(|i| b.add_vertex(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        let a = |len| EdgeAttrs::with_default_speed(len, RoadCategory::Residential);
        b.add_edge(vs[0], vs[1], a(100.0)).unwrap();
        b.add_edge(vs[1], vs[2], a(110.0)).unwrap();
        b.add_edge(vs[2], vs[3], a(120.0)).unwrap();
        b.add_edge(vs[3], vs[0], a(130.0)).unwrap();
        b.add_edge(vs[0], vs[2], a(300.0)).unwrap();
        b.build()
    }

    #[test]
    fn from_vertices_resolves_edges() {
        let g = ring();
        let p = Path::from_vertices(&g, vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), VertexId(0));
        assert_eq!(p.target(), VertexId(2));
        assert!((p.length_m(&g) - 210.0).abs() < 1e-9);
        p.validate(&g).unwrap();
        assert!(p.is_simple());
    }

    #[test]
    fn from_vertices_rejects_disconnected() {
        let g = ring();
        let err = Path::from_vertices(&g, vec![VertexId(1), VertexId(0)]).unwrap_err();
        assert_eq!(err, SpatialError::DisconnectedSequence { at: 0 });
    }

    #[test]
    fn from_vertices_rejects_short() {
        let g = ring();
        assert_eq!(
            Path::from_vertices(&g, vec![VertexId(0)]).unwrap_err(),
            SpatialError::TooShort
        );
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = ring();
        let p = Path::from_vertices(&g, vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        let q = Path::from_edges(&g, p.edges().to_vec()).unwrap();
        assert!(p.same_route(&q));
    }

    #[test]
    fn from_edges_rejects_gap() {
        let g = ring();
        // Edge 0 is 0->1, edge 2 is 2->3: gap at position 1.
        let err = Path::from_edges(&g, vec![EdgeId(0), EdgeId(2)]).unwrap_err();
        assert_eq!(err, SpatialError::DisconnectedSequence { at: 1 });
    }

    #[test]
    fn prefix_and_concat() {
        let g = ring();
        let p = Path::from_vertices(&g, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)])
            .unwrap();
        assert!(p.prefix(0).is_none());
        assert!(p.prefix(4).is_none());
        let pre = p.prefix(2).unwrap();
        assert_eq!(pre.vertices(), &[VertexId(0), VertexId(1), VertexId(2)]);
        let suf = Path::from_vertices(&g, vec![VertexId(2), VertexId(3)]).unwrap();
        let whole = pre.concat(&suf).unwrap();
        assert!(whole.same_route(&p));
        // Mismatched concat fails.
        assert!(suf.concat(&pre).is_err());
    }

    #[test]
    fn non_simple_path_detected() {
        let g = ring();
        let p = Path::from_vertices(
            &g,
            vec![
                VertexId(0),
                VertexId(1),
                VertexId(2),
                VertexId(3),
                VertexId(0),
                VertexId(2),
            ],
        )
        .unwrap();
        assert!(!p.is_simple());
    }

    #[test]
    fn cost_models_agree_with_sums() {
        let g = ring();
        let p = Path::from_vertices(&g, vec![VertexId(0), VertexId(2), VertexId(3)]).unwrap();
        assert!((p.cost(&g, CostModel::Length) - p.length_m(&g)).abs() < 1e-12);
        assert!((p.cost(&g, CostModel::TravelTime) - p.travel_time_s(&g)).abs() < 1e-12);
        let unit = vec![1.0; g.edge_count()];
        assert!((p.cost(&g, CostModel::Custom(&unit)) - p.len() as f64).abs() < 1e-12);
    }
}
