//! Plain-text serialisation of road networks and their precomputed
//! search indexes.
//!
//! The format is a stable, diff-friendly line format (one vertex or edge
//! per line) so that generated networks can be checked into experiment
//! repositories and inspected by hand:
//!
//! ```text
//! pathrank-graph v1
//! vertices 3
//! v 0.0 0.0
//! v 100.0 0.0
//! v 200.0 0.0
//! edges 2
//! e 0 1 100.0 50.0 R
//! e 1 2 105.0 50.0 A
//! ```
//!
//! Edge lines are `e <from> <to> <length_m> <speed_kmh> <category-tag>`.
//!
//! The precomputed indexes the engine layer routes with round-trip the
//! same way, each under its own versioned header, so servers can persist
//! them next to the graph and skip the precompute on restart:
//!
//! * [`write_landmarks`] / [`read_landmarks`] — ALT
//!   [`LandmarkTable`]s: the metric, the graph fingerprint, the landmark
//!   ids and the forward/backward distance vectors;
//! * [`write_ch`] / [`read_ch`] — [`ContractionHierarchy`] indexes: the
//!   metric, the fingerprint, the rank permutation and the arc pool
//!   (original edges and shortcuts); the query-time CSR is rebuilt on
//!   read;
//! * [`write_cch`] / [`read_cch`] — the *metric-independent* half of a
//!   customizable hierarchy ([`CchTopology`]): the fingerprint, the
//!   contraction order and the chordal arc topology with its
//!   supporting triangles. No weights are stored — they are re-derived
//!   in milliseconds by `customize` after loading, so one persisted
//!   topology serves every metric, custom cost vector and live-traffic
//!   epoch.
//!
//! Floats are written with Rust's shortest-round-trip `Display`, so
//! distances survive the text round-trip **bit-identically** — a
//! reloaded index answers exactly like the one that was saved (asserted
//! by the round-trip tests). Readers validate headers, counts, id
//! ranges and shortcut topology, and reject corrupt input with
//! [`SpatialError::Parse`] rather than building an index that would
//! silently mis-route.
//!
//! The cache-compact serving form ([`FrozenGraph`]) is the one
//! **binary** format: [`write_frozen`] / [`read_frozen`] persist it as
//! a versioned, alignment-padded little-endian section file (24-byte
//! magic, fixed-width header, a section table of `(tag, offset, len)`
//! entries, 8-byte-aligned payloads, FNV-1a-64 trailer checksum) —
//! fixed-width records at stable offsets, so a future loader can map
//! the arc array straight off disk without a parse step. The writer is
//! deterministic, making the round trip byte-stable, and the reader
//! validates the checksum, every section bound and every record before
//! constructing the graph.

use std::io::{BufRead, Write};

use crate::algo::cch::{CchConfig, CchTopology, RawArc};
use crate::algo::ch::{ChArc, ChArcKind, ContractionHierarchy};
use crate::algo::landmarks::{LandmarkMetric, LandmarkTable};
use crate::builder::GraphBuilder;
use crate::error::SpatialError;
use crate::frozen::{FrozenArc, FrozenGraph};
use crate::geo::LocalProjection;
use crate::geometry::Point;
use crate::graph::{EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};
use crate::osm::{ImportConfig, ImportStats, ImportedGraph};

const MAGIC: &str = "pathrank-graph v1";
const LANDMARKS_MAGIC: &str = "pathrank-landmarks v1";
const CH_MAGIC: &str = "pathrank-ch v1";
const CCH_MAGIC: &str = "pathrank-cch v1";
const IMPORTED_MAGIC: &str = "pathrank-osm-graph v1";

/// Writes `g` to `out` in the v1 text format.
pub fn write_graph<W: Write>(g: &Graph, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "vertices {}", g.vertex_count())?;
    for v in g.vertices() {
        let p = g.coord(v);
        writeln!(out, "v {} {}", p.x, p.y)?;
    }
    writeln!(out, "edges {}", g.edge_count())?;
    for e in g.edges() {
        writeln!(
            out,
            "e {} {} {} {} {}",
            e.from.0,
            e.to.0,
            e.attrs.length_m,
            e.attrs.speed_kmh,
            e.attrs.category.tag() as char
        )?;
    }
    Ok(())
}

/// Serialises `g` to a `String` in the v1 text format.
pub fn graph_to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads the graph body (header line onwards) from a line iterator —
/// shared by [`read_graph`] and the imported-network format, which
/// embeds a complete plain graph section.
fn read_graph_body(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Graph, SpatialError> {
    let header = next_content_line(lines)?;
    if header != MAGIC {
        return Err(SpatialError::Parse(format!("bad header {header:?}")));
    }
    let vcount = parse_count(&next_content_line(lines)?, "vertices")?;
    let mut b = GraphBuilder::with_capacity(vcount.min(MAX_PREALLOC), 0);
    for i in 0..vcount {
        let line = next_content_line(lines)?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("v") {
            return Err(SpatialError::Parse(format!(
                "expected vertex line {i}, got {line:?}"
            )));
        }
        let x = parse_f64(it.next(), "vertex x")?;
        let y = parse_f64(it.next(), "vertex y")?;
        b.add_vertex(Point::new(x, y));
    }
    let ecount = parse_count(&next_content_line(lines)?, "edges")?;
    for i in 0..ecount {
        let line = next_content_line(lines)?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("e") {
            return Err(SpatialError::Parse(format!(
                "expected edge line {i}, got {line:?}"
            )));
        }
        let from = parse_u32(it.next(), "edge from")?;
        let to = parse_u32(it.next(), "edge to")?;
        let length_m = parse_f64(it.next(), "edge length")?;
        let speed_kmh = parse_f64(it.next(), "edge speed")?;
        let tag = it
            .next()
            .and_then(|s| s.bytes().next())
            .ok_or_else(|| SpatialError::Parse("missing category tag".into()))?;
        let category = RoadCategory::from_tag(tag).ok_or_else(|| {
            SpatialError::Parse(format!("unknown category tag {:?}", tag as char))
        })?;
        b.add_edge(
            VertexId(from),
            VertexId(to),
            EdgeAttrs {
                length_m,
                speed_kmh,
                category,
            },
        )
        .map_err(|e| SpatialError::Parse(format!("edge {i}: {e}")))?;
    }
    Ok(b.build())
}

/// Reads a graph in the v1 text format.
pub fn read_graph<R: BufRead>(input: R) -> Result<Graph, SpatialError> {
    read_graph_body(&mut input.lines())
}

/// Parses a graph from its v1 text representation.
pub fn graph_from_str(s: &str) -> Result<Graph, SpatialError> {
    read_graph(s.as_bytes())
}

fn metric_tag(metric: LandmarkMetric) -> &'static str {
    match metric {
        LandmarkMetric::Length => "length",
        LandmarkMetric::TravelTime => "travel_time",
    }
}

fn parse_metric(line: &str) -> Result<LandmarkMetric, SpatialError> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some("metric") {
        return Err(SpatialError::Parse(format!(
            "expected metric line, got {line:?}"
        )));
    }
    match it.next() {
        Some("length") => Ok(LandmarkMetric::Length),
        Some("travel_time") => Ok(LandmarkMetric::TravelTime),
        other => Err(SpatialError::Parse(format!("unknown metric {other:?}"))),
    }
}

/// `graph <n> <m>` fingerprint line.
fn parse_fingerprint(line: &str) -> Result<(usize, usize), SpatialError> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some("graph") {
        return Err(SpatialError::Parse(format!(
            "expected graph fingerprint line, got {line:?}"
        )));
    }
    let n = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse("bad vertex count in fingerprint".into()))?;
    let m = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse("bad edge count in fingerprint".into()))?;
    Ok((n, m))
}

/// Skips blank lines and yields the next trimmed content line.
fn next_content_line(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<String, SpatialError> {
    loop {
        match lines.next() {
            Some(Ok(l)) => {
                let t = l.trim().to_string();
                if !t.is_empty() {
                    return Ok(t);
                }
            }
            Some(Err(e)) => return Err(SpatialError::Parse(e.to_string())),
            None => return Err(SpatialError::Parse("unexpected end of input".into())),
        }
    }
}

/// Caps the element count fed to `Vec::with_capacity` by readers, so a
/// corrupt header claiming billions of entries cannot force a huge
/// allocation (or a capacity overflow) before per-line validation gets
/// a chance to reject the file — the vectors still grow to any honest
/// size.
const MAX_PREALLOC: usize = 1 << 20;

/// Parses a whitespace-separated vector of exactly `count` distances:
/// non-negative (possibly infinite) floats. Negative or NaN entries are
/// rejected — a tampered distance would silently break the ALT bounds'
/// admissibility, turning corruption into wrong routes instead of an
/// error.
fn parse_f64_row(line: &str, prefix: &str, count: usize) -> Result<Vec<f64>, SpatialError> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some(prefix) {
        return Err(SpatialError::Parse(format!(
            "expected {prefix:?} row, got {line:?}"
        )));
    }
    let row: Result<Vec<f64>, _> = it.map(|t| t.parse::<f64>()).collect();
    let row = row.map_err(|e| SpatialError::Parse(format!("bad float in {prefix:?} row: {e}")))?;
    if row.len() != count {
        return Err(SpatialError::Parse(format!(
            "{prefix:?} row has {} values, expected {count}",
            row.len()
        )));
    }
    if let Some(d) = row.iter().find(|d| d.is_nan() || **d < 0.0) {
        return Err(SpatialError::Parse(format!(
            "invalid distance {d} in {prefix:?} row"
        )));
    }
    Ok(row)
}

/// Writes an ALT landmark table in the v1 text format.
pub fn write_landmarks<W: Write>(table: &LandmarkTable, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{LANDMARKS_MAGIC}")?;
    writeln!(out, "metric {}", metric_tag(table.metric()))?;
    writeln!(out, "graph {} {}", table.vertex_count(), table.edge_count())?;
    write!(out, "landmarks {}", table.k())?;
    for l in table.landmarks() {
        write!(out, " {}", l.0)?;
    }
    writeln!(out)?;
    let n = table.vertex_count();
    let (from, to) = table.raw_vectors();
    for l in 0..table.k() {
        for (prefix, vec) in [("F", from), ("T", to)] {
            write!(out, "{prefix}")?;
            for d in &vec[l * n..(l + 1) * n] {
                write!(out, " {d}")?;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

/// Serialises an ALT landmark table to a `String`.
pub fn landmarks_to_string(table: &LandmarkTable) -> String {
    let mut buf = Vec::new();
    write_landmarks(table, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads an ALT landmark table in the v1 text format. The caller is
/// responsible for attaching it only to the graph it was built for — the
/// embedded fingerprint is re-checked by
/// [`crate::algo::engine::QueryEngine::with_landmarks`].
pub fn read_landmarks<R: BufRead>(input: R) -> Result<LandmarkTable, SpatialError> {
    let mut lines = input.lines();
    let header = next_content_line(&mut lines)?;
    if header != LANDMARKS_MAGIC {
        return Err(SpatialError::Parse(format!("bad header {header:?}")));
    }
    let metric = parse_metric(&next_content_line(&mut lines)?)?;
    let (n, m) = parse_fingerprint(&next_content_line(&mut lines)?)?;
    let lm_line = next_content_line(&mut lines)?;
    let mut it = lm_line.split_ascii_whitespace();
    if it.next() != Some("landmarks") {
        return Err(SpatialError::Parse(format!(
            "expected landmarks line, got {lm_line:?}"
        )));
    }
    let k: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse("bad landmark count".into()))?;
    let landmarks: Vec<VertexId> = it
        .map(|t| t.parse::<u32>().map(VertexId))
        .collect::<Result<_, _>>()
        .map_err(|e| SpatialError::Parse(format!("bad landmark id: {e}")))?;
    if landmarks.len() != k {
        return Err(SpatialError::Parse(format!(
            "landmark line has {} ids, expected {k}",
            landmarks.len()
        )));
    }
    if let Some(l) = landmarks.iter().find(|l| l.index() >= n) {
        return Err(SpatialError::VertexOutOfBounds { vertex: *l, len: n });
    }
    let mut from = Vec::with_capacity(k.saturating_mul(n).min(MAX_PREALLOC));
    let mut to = Vec::with_capacity(k.saturating_mul(n).min(MAX_PREALLOC));
    for _ in 0..k {
        from.extend(parse_f64_row(&next_content_line(&mut lines)?, "F", n)?);
        to.extend(parse_f64_row(&next_content_line(&mut lines)?, "T", n)?);
    }
    Ok(LandmarkTable::from_raw_parts(
        metric, n, m, landmarks, from, to,
    ))
}

/// Parses an ALT landmark table from its v1 text representation.
pub fn landmarks_from_str(s: &str) -> Result<LandmarkTable, SpatialError> {
    read_landmarks(s.as_bytes())
}

/// Writes a contraction hierarchy in the v1 text format: the rank
/// permutation plus the arc pool (`a <from> <to> <weight> e <edge>` for
/// original edges, `a <from> <to> <weight> s <lo> <hi>` for shortcuts).
pub fn write_ch<W: Write>(ch: &ContractionHierarchy, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{CH_MAGIC}")?;
    writeln!(out, "metric {}", metric_tag(ch.metric()))?;
    writeln!(out, "graph {} {}", ch.vertex_count(), ch.edge_count())?;
    write!(out, "ranks")?;
    for r in ch.ranks() {
        write!(out, " {r}")?;
    }
    writeln!(out)?;
    writeln!(out, "arcs {}", ch.arcs().len())?;
    for arc in ch.arcs() {
        match arc.kind {
            ChArcKind::Original(e) => writeln!(
                out,
                "a {} {} {} e {}",
                arc.from.0, arc.to.0, arc.weight, e.0
            )?,
            ChArcKind::Shortcut(lo, hi) => writeln!(
                out,
                "a {} {} {} s {lo} {hi}",
                arc.from.0, arc.to.0, arc.weight
            )?,
        }
    }
    Ok(())
}

/// Serialises a contraction hierarchy to a `String`.
pub fn ch_to_string(ch: &ContractionHierarchy) -> String {
    let mut buf = Vec::new();
    write_ch(ch, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads a contraction hierarchy in the v1 text format, rebuilding the
/// query-time search graphs. Validates the rank permutation, arc
/// endpoints and shortcut topology (children must precede their
/// shortcut, so unpacking provably terminates); corrupt input yields
/// [`SpatialError::Parse`] instead of an index that would mis-route.
pub fn read_ch<R: BufRead>(input: R) -> Result<ContractionHierarchy, SpatialError> {
    let mut lines = input.lines();
    let header = next_content_line(&mut lines)?;
    if header != CH_MAGIC {
        return Err(SpatialError::Parse(format!("bad header {header:?}")));
    }
    let metric = parse_metric(&next_content_line(&mut lines)?)?;
    let (n, m) = parse_fingerprint(&next_content_line(&mut lines)?)?;
    let rank_line = next_content_line(&mut lines)?;
    let mut it = rank_line.split_ascii_whitespace();
    if it.next() != Some("ranks") {
        return Err(SpatialError::Parse(format!(
            "expected ranks line, got {rank_line:?}"
        )));
    }
    let rank: Vec<u32> = it
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| SpatialError::Parse(format!("bad rank: {e}")))?;
    if rank.len() != n {
        return Err(SpatialError::Parse(format!(
            "rank line has {} entries, expected {n}",
            rank.len()
        )));
    }
    let mut seen = vec![false; n];
    for &r in &rank {
        if (r as usize) >= n || seen[r as usize] {
            return Err(SpatialError::Parse(format!(
                "ranks are not a permutation of 0..{n} (offending rank {r})"
            )));
        }
        seen[r as usize] = true;
    }
    let arc_count = parse_count(&next_content_line(&mut lines)?, "arcs")?;
    if arc_count < m {
        return Err(SpatialError::Parse(format!(
            "arc pool ({arc_count}) smaller than the edge count ({m})"
        )));
    }
    let mut arcs: Vec<ChArc> = Vec::with_capacity(arc_count.min(MAX_PREALLOC));
    for i in 0..arc_count {
        let line = next_content_line(&mut lines)?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("a") {
            return Err(SpatialError::Parse(format!(
                "expected arc line {i}, got {line:?}"
            )));
        }
        let from = parse_u32(it.next(), "arc from")?;
        let to = parse_u32(it.next(), "arc to")?;
        if from as usize >= n || to as usize >= n {
            return Err(SpatialError::Parse(format!(
                "arc {i} endpoint out of range ({from} -> {to}, {n} vertices)"
            )));
        }
        let weight = parse_f64(it.next(), "arc weight")?;
        if !weight.is_finite() || weight < 0.0 {
            return Err(SpatialError::Parse(format!("arc {i} has weight {weight}")));
        }
        let kind = match it.next() {
            Some("e") => {
                let e = parse_u32(it.next(), "arc edge id")?;
                if e as usize >= m {
                    return Err(SpatialError::Parse(format!(
                        "arc {i} names edge {e} outside the graph's {m} edges"
                    )));
                }
                ChArcKind::Original(EdgeId(e))
            }
            Some("s") => {
                let lo = parse_u32(it.next(), "shortcut child")?;
                let hi = parse_u32(it.next(), "shortcut child")?;
                if lo as usize >= i || hi as usize >= i {
                    return Err(SpatialError::Parse(format!(
                        "shortcut arc {i} references a non-preceding child ({lo}, {hi})"
                    )));
                }
                ChArcKind::Shortcut(lo, hi)
            }
            other => {
                return Err(SpatialError::Parse(format!(
                    "arc {i} has unknown kind {other:?}"
                )))
            }
        };
        arcs.push(ChArc {
            from: VertexId(from),
            to: VertexId(to),
            weight,
            kind,
        });
    }
    Ok(ContractionHierarchy::assemble(metric, m, rank, arcs))
}

/// Parses a contraction hierarchy from its v1 text representation.
pub fn ch_from_str(s: &str) -> Result<ContractionHierarchy, SpatialError> {
    read_ch(s.as_bytes())
}

/// Writes the metric-independent half of a customizable contraction
/// hierarchy ([`CchTopology`]) in the v1 text format: the graph
/// fingerprint, the rank permutation, and one line per chordal arc
/// (`c <from> <to> o <k> <edges…> t <j> <b c …>`) listing its merged
/// original edges and supporting lower triangles. Weights are not
/// stored; customization re-derives them after loading.
pub fn write_cch<W: Write>(topo: &CchTopology, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{CCH_MAGIC}")?;
    writeln!(out, "graph {} {}", topo.vertex_count(), topo.edge_count())?;
    write!(out, "ranks")?;
    for r in topo.ranks() {
        write!(out, " {r}")?;
    }
    writeln!(out)?;
    writeln!(out, "arcs {}", topo.arc_count())?;
    for (i, (from, to)) in topo.arc_endpoints().enumerate() {
        let originals = topo.originals_of(i);
        let triangles = topo.triangles_of(i);
        write!(out, "c {} {} o {}", from.0, to.0, originals.len())?;
        for e in originals {
            write!(out, " {}", e.0)?;
        }
        write!(out, " t {}", triangles.len())?;
        for &(b, c) in triangles {
            write!(out, " {b} {c}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Serialises a CCH topology to a `String`.
pub fn cch_to_string(topo: &CchTopology) -> String {
    let mut buf = Vec::new();
    write_cch(topo, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads a CCH topology in the v1 text format, recomputing elimination
/// levels and rebuilding the search-graph skeleton. Validates the rank
/// permutation, arc endpoints, per-pair arc uniqueness, edge references
/// and triangle structure (each triangle's legs must connect through an
/// intermediate vertex ranked below both endpoints, which is what makes
/// customization well-ordered and unpacking terminate); corrupt input
/// yields [`SpatialError::Parse`] instead of a topology that would
/// mis-route after customization.
pub fn read_cch<R: BufRead>(input: R) -> Result<CchTopology, SpatialError> {
    let mut lines = input.lines();
    let header = next_content_line(&mut lines)?;
    if header != CCH_MAGIC {
        return Err(SpatialError::Parse(format!("bad header {header:?}")));
    }
    let (n, m) = parse_fingerprint(&next_content_line(&mut lines)?)?;
    let rank_line = next_content_line(&mut lines)?;
    let mut it = rank_line.split_ascii_whitespace();
    if it.next() != Some("ranks") {
        return Err(SpatialError::Parse(format!(
            "expected ranks line, got {rank_line:?}"
        )));
    }
    let rank: Vec<u32> = it
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| SpatialError::Parse(format!("bad rank: {e}")))?;
    if rank.len() != n {
        return Err(SpatialError::Parse(format!(
            "rank line has {} entries, expected {n}",
            rank.len()
        )));
    }
    let mut seen = vec![false; n];
    for &r in &rank {
        if (r as usize) >= n || seen[r as usize] {
            return Err(SpatialError::Parse(format!(
                "ranks are not a permutation of 0..{n} (offending rank {r})"
            )));
        }
        seen[r as usize] = true;
    }
    let arc_count = parse_count(&next_content_line(&mut lines)?, "arcs")?;
    let mut raw: Vec<RawArc> = Vec::with_capacity(arc_count.min(MAX_PREALLOC));
    let mut seen_pair = std::collections::HashSet::with_capacity(arc_count.min(MAX_PREALLOC));
    let mut seen_edge = vec![false; m];
    for i in 0..arc_count {
        let line = next_content_line(&mut lines)?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("c") {
            return Err(SpatialError::Parse(format!(
                "expected cch arc line {i}, got {line:?}"
            )));
        }
        let from = parse_u32(it.next(), "arc from")?;
        let to = parse_u32(it.next(), "arc to")?;
        if from as usize >= n || to as usize >= n || from == to {
            return Err(SpatialError::Parse(format!(
                "arc {i} has invalid endpoints ({from} -> {to}, {n} vertices)"
            )));
        }
        if !seen_pair.insert((from, to)) {
            return Err(SpatialError::Parse(format!(
                "duplicate arc for vertex pair {from} -> {to}"
            )));
        }
        if it.next() != Some("o") {
            return Err(SpatialError::Parse(format!(
                "arc {i} is missing its originals section"
            )));
        }
        let k = parse_u32(it.next(), "original count")? as usize;
        let mut originals = Vec::with_capacity(k.min(MAX_PREALLOC));
        for _ in 0..k {
            let e = parse_u32(it.next(), "original edge id")?;
            if e as usize >= m {
                return Err(SpatialError::Parse(format!(
                    "arc {i} names edge {e} outside the graph's {m} edges"
                )));
            }
            if seen_edge[e as usize] {
                return Err(SpatialError::Parse(format!(
                    "edge {e} is claimed by more than one arc"
                )));
            }
            seen_edge[e as usize] = true;
            if let Some(&last) = originals.last() {
                if EdgeId(e) <= last {
                    return Err(SpatialError::Parse(format!(
                        "arc {i} original edges are not strictly ascending"
                    )));
                }
            }
            originals.push(EdgeId(e));
        }
        if it.next() != Some("t") {
            return Err(SpatialError::Parse(format!(
                "arc {i} is missing its triangles section"
            )));
        }
        let j = parse_u32(it.next(), "triangle count")? as usize;
        if k == 0 && j == 0 {
            return Err(SpatialError::Parse(format!(
                "fill-in arc {i} has no supporting triangle"
            )));
        }
        let mut triangles = Vec::with_capacity(j.min(MAX_PREALLOC));
        for _ in 0..j {
            let b = parse_u32(it.next(), "triangle arc")?;
            let c = parse_u32(it.next(), "triangle arc")?;
            // Supporting arcs live at strictly lower elimination levels,
            // and levels are stored contiguously in ascending order, so
            // in a well-formed file both legs precede this arc.
            if b as usize >= i || c as usize >= i {
                return Err(SpatialError::Parse(format!(
                    "arc {i} triangle references a non-preceding arc ({b}, {c})"
                )));
            }
            let leg_b = &raw[b as usize];
            let leg_c = &raw[c as usize];
            let via = leg_b.to;
            if leg_b.from.0 != from || leg_c.to.0 != to || leg_c.from != via {
                return Err(SpatialError::Parse(format!(
                    "arc {i} triangle ({b}, {c}) legs do not connect {from} -> {to}"
                )));
            }
            if rank[via.index()] >= rank[from as usize].min(rank[to as usize]) {
                return Err(SpatialError::Parse(format!(
                    "arc {i} triangle intermediate {} is not ranked below both endpoints",
                    via.0
                )));
            }
            triangles.push((b, c));
        }
        if it.next().is_some() {
            return Err(SpatialError::Parse(format!("arc {i} has trailing tokens")));
        }
        raw.push(RawArc {
            from: VertexId(from),
            to: VertexId(to),
            originals,
            triangles,
        });
    }
    Ok(CchTopology::from_raw(
        m,
        rank,
        raw,
        CchConfig::default().threads,
    ))
}

/// Parses a CCH topology from its v1 text representation.
pub fn cch_from_str(s: &str) -> Result<CchTopology, SpatialError> {
    read_cch(s.as_bytes())
}

/// Writes an imported road network ([`ImportedGraph`]) in the v1 text
/// format: the projection origin, a complete embedded plain-graph
/// section, then one geometry row per edge (`g <k> x1 y1 … xk yk` —
/// the interior points chain contraction folded into the edge).
pub fn write_imported_graph<W: Write>(ig: &ImportedGraph, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{IMPORTED_MAGIC}")?;
    writeln!(out, "origin {} {}", ig.projection.lat0, ig.projection.lon0)?;
    write_graph(&ig.graph, out)?;
    writeln!(out, "geometry {}", ig.edge_geometry.len())?;
    for geom in &ig.edge_geometry {
        write!(out, "g {}", geom.len())?;
        for p in geom {
            write!(out, " {} {}", p.x, p.y)?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Serialises an imported road network to a `String`.
pub fn imported_to_string(ig: &ImportedGraph) -> String {
    let mut buf = Vec::new();
    write_imported_graph(ig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads an imported road network in the v1 text format. Import-time
/// pipeline statistics are not persisted; the returned
/// [`ImportedGraph::stats`] carries only what the file itself knows
/// (final counts and total length).
pub fn read_imported_graph<R: BufRead>(input: R) -> Result<ImportedGraph, SpatialError> {
    let mut lines = input.lines();
    let header = next_content_line(&mut lines)?;
    if header != IMPORTED_MAGIC {
        return Err(SpatialError::Parse(format!("bad header {header:?}")));
    }
    let origin = next_content_line(&mut lines)?;
    let mut it = origin.split_ascii_whitespace();
    if it.next() != Some("origin") {
        return Err(SpatialError::Parse(format!(
            "expected origin line, got {origin:?}"
        )));
    }
    let lat0 = parse_f64(it.next(), "origin latitude")?;
    let lon0 = parse_f64(it.next(), "origin longitude")?;
    if !crate::geo::valid_lat_lon(lat0, lon0) {
        return Err(SpatialError::Parse(format!(
            "origin ({lat0}, {lon0}) out of range"
        )));
    }
    let graph = read_graph_body(&mut lines)?;
    let gcount = parse_count(&next_content_line(&mut lines)?, "geometry")?;
    if gcount != graph.edge_count() {
        return Err(SpatialError::Parse(format!(
            "geometry section has {gcount} rows, graph has {} edges",
            graph.edge_count()
        )));
    }
    let mut edge_geometry: Vec<Vec<Point>> = Vec::with_capacity(gcount.min(MAX_PREALLOC));
    for i in 0..gcount {
        let line = next_content_line(&mut lines)?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("g") {
            return Err(SpatialError::Parse(format!(
                "expected geometry row {i}, got {line:?}"
            )));
        }
        let k: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SpatialError::Parse(format!("bad point count in geometry row {i}")))?;
        let mut pts = Vec::with_capacity(k.min(MAX_PREALLOC));
        for _ in 0..k {
            let x = parse_f64(it.next(), "geometry x")?;
            let y = parse_f64(it.next(), "geometry y")?;
            if !x.is_finite() || !y.is_finite() {
                return Err(SpatialError::Parse(format!(
                    "non-finite geometry point in row {i}"
                )));
            }
            pts.push(Point::new(x, y));
        }
        if it.next().is_some() {
            return Err(SpatialError::Parse(format!(
                "geometry row {i} has more than {k} points"
            )));
        }
        edge_geometry.push(pts);
    }
    // The geometry section is the end of the format: trailing content
    // (a doubled file, a stale second graph) is corruption, not slack.
    if let Ok(extra) = next_content_line(&mut lines) {
        return Err(SpatialError::Parse(format!(
            "trailing content after the geometry section: {extra:?}"
        )));
    }
    let stats = ImportStats {
        final_vertices: graph.vertex_count(),
        final_edges: graph.edge_count(),
        total_km: graph.total_length_m() / 1000.0,
        ..ImportStats::default()
    };
    Ok(ImportedGraph {
        graph,
        edge_geometry,
        projection: LocalProjection::new(lat0, lon0),
        stats,
    })
}

/// Parses an imported road network from its v1 text representation.
pub fn imported_from_str(s: &str) -> Result<ImportedGraph, SpatialError> {
    read_imported_graph(s.as_bytes())
}

/// How [`load_graph_auto`] recognised a network file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFileKind {
    /// A plain `pathrank-graph v1` file (no geometry, no projection).
    PlainText,
    /// A persisted `pathrank-osm-graph v1` import.
    Imported,
    /// Raw OSM XML, imported on the fly with [`ImportConfig::default`].
    OsmXml,
}

impl GraphFileKind {
    /// Human-readable label (used by the bench binaries' JSON).
    pub fn label(self) -> &'static str {
        match self {
            GraphFileKind::PlainText => "plain",
            GraphFileKind::Imported => "imported",
            GraphFileKind::OsmXml => "osm_xml",
        }
    }
}

/// A network loaded by [`load_graph_auto`]: the graph plus, when the
/// source carried them, the imported extras (geometry, projection,
/// import stats). The graph is stored exactly once — use
/// [`LoadedGraph::into_imported`] to reassemble an [`ImportedGraph`]
/// when the extras are present.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The routable graph.
    pub graph: Graph,
    /// How the file was recognised.
    pub kind: GraphFileKind,
    /// Per-edge interior geometry, absent for plain graph files.
    pub geometry: Option<Vec<Vec<Point>>>,
    /// The lat/lon ↔ planar projection, absent for plain graph files.
    pub projection: Option<LocalProjection>,
    /// Import pipeline statistics (on-the-fly XML imports only; a
    /// persisted import records final counts, a plain file nothing).
    pub stats: Option<ImportStats>,
}

impl LoadedGraph {
    /// Reassembles the [`ImportedGraph`] when the source carried the
    /// imported extras (`None` for plain graph files). Consumes `self`
    /// so the graph is moved, never duplicated.
    pub fn into_imported(self) -> Option<ImportedGraph> {
        match (self.geometry, self.projection) {
            (Some(edge_geometry), Some(projection)) => Some(ImportedGraph {
                graph: self.graph,
                edge_geometry,
                projection,
                stats: self.stats.unwrap_or_default(),
            }),
            _ => None,
        }
    }
}

/// Loads a road network from `path`, sniffing the format off the first
/// buffered bytes: a persisted import (`pathrank-osm-graph v1`), a
/// plain graph (`pathrank-graph v1`), or raw OSM XML (anything starting
/// with `<`), which is imported on the fly with the default
/// [`ImportConfig`]. All three paths stream through the same
/// [`std::io::BufReader`] — a country-scale `.osm.xml` is never
/// materialised in memory. Every bench / CLI `--graph` flag goes
/// through here, so the three spellings of "a real network" are
/// interchangeable.
pub fn load_graph_auto(path: &std::path::Path) -> Result<LoadedGraph, SpatialError> {
    use std::io::BufRead as _;
    let file = std::fs::File::open(path)
        .map_err(|e| SpatialError::Parse(format!("cannot read {}: {e}", path.display())))?;
    let mut reader = std::io::BufReader::new(file);
    // Peek without consuming: the magic lines fit comfortably inside
    // the first buffered block.
    let head = reader
        .fill_buf()
        .map_err(|e| SpatialError::Parse(format!("cannot read {}: {e}", path.display())))?;
    let start = head
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(head.len());
    let head = &head[start..];
    if head.starts_with(IMPORTED_MAGIC.as_bytes()) {
        let ig = read_imported_graph(reader)?;
        Ok(LoadedGraph {
            graph: ig.graph,
            kind: GraphFileKind::Imported,
            geometry: Some(ig.edge_geometry),
            projection: Some(ig.projection),
            stats: Some(ig.stats),
        })
    } else if head.starts_with(MAGIC.as_bytes()) {
        Ok(LoadedGraph {
            graph: read_graph(reader)?,
            kind: GraphFileKind::PlainText,
            geometry: None,
            projection: None,
            stats: None,
        })
    } else if head.first() == Some(&b'<') {
        let data = crate::osm::parse_osm_xml(reader)?;
        let ig = crate::osm::import_osm(&data, &ImportConfig::default())?;
        Ok(LoadedGraph {
            graph: ig.graph,
            kind: GraphFileKind::OsmXml,
            geometry: Some(ig.edge_geometry),
            projection: Some(ig.projection),
            stats: Some(ig.stats),
        })
    } else {
        Err(SpatialError::Parse(format!(
            "{}: not a pathrank graph, a persisted import or OSM XML",
            path.display()
        )))
    }
}

/// 24-byte magic of the frozen binary section format: the version
/// string NUL-padded to an 8-byte-aligned width, so every payload that
/// follows the fixed-width header starts aligned.
const FROZEN_MAGIC: &[u8; 24] = b"pathrank-frozen v1\0\0\0\0\0\0";

/// Section tags of the frozen binary format, in file order.
const FROZEN_SECTION_TAGS: [u64; 4] = [1, 2, 3, 4];

/// FNV-1a 64-bit — the trailer checksum of the frozen binary format
/// (dependency-free, byte-order independent, catches the truncations
/// and bit flips a section-table parse alone would miss).
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rounds `x` up to the next multiple of 8 (section payloads are padded
/// so every section starts 8-byte aligned — the precondition for a
/// future zero-copy arc-array mapping).
fn align8(x: usize) -> usize {
    (x + 7) & !7
}

/// Serialises a [`FrozenGraph`] to the v1 binary section format.
///
/// Layout, all integers little-endian:
///
/// ```text
/// [ 0..24)  magic "pathrank-frozen v1" NUL-padded
/// [24..56)  header: vertex_count, edge_count, weights_epoch,
///           section_count (4) — four u64s
/// [56..152) section table: 4 × (tag, absolute offset, byte len) u64s
///           tag 1 coords_f32   n × (f32, f32)
///           tag 2 fwd_offsets  (n + 1) × u32
///           tag 3 bwd_offsets  (n + 1) × u32
///           tag 4 arcs         2m × (u32 target, u32 edge_id,
///                                    f64 length_m, f64 travel_time_s)
/// [152.. )  payloads in tag order, each zero-padded to 8-byte alignment
/// [-8..  )  FNV-1a-64 checksum over every preceding byte
/// ```
///
/// The writer is fully deterministic (fixed widths, fixed order), so
/// serialising a reloaded graph reproduces the input byte-for-byte.
pub fn frozen_to_bytes(fz: &FrozenGraph) -> Vec<u8> {
    let n = fz.vertex_count();
    let m = fz.edge_count();
    let coords_len = n * 8;
    let offs_len = (n + 1) * 4;
    let arcs_len = 2 * m * 24;
    let table_end = 24 + 32 + FROZEN_SECTION_TAGS.len() * 24;
    debug_assert_eq!(table_end % 8, 0);
    let coords_off = table_end;
    let fwd_off = coords_off + align8(coords_len);
    let bwd_off = fwd_off + align8(offs_len);
    let arcs_off = bwd_off + align8(offs_len);
    let total = arcs_off + align8(arcs_len) + 8;

    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(FROZEN_MAGIC);
    for v in [
        n as u64,
        m as u64,
        fz.weights_epoch(),
        FROZEN_SECTION_TAGS.len() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for (tag, off, len) in [
        (FROZEN_SECTION_TAGS[0], coords_off, coords_len),
        (FROZEN_SECTION_TAGS[1], fwd_off, offs_len),
        (FROZEN_SECTION_TAGS[2], bwd_off, offs_len),
        (FROZEN_SECTION_TAGS[3], arcs_off, arcs_len),
    ] {
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&(off as u64).to_le_bytes());
        buf.extend_from_slice(&(len as u64).to_le_bytes());
    }
    debug_assert_eq!(buf.len(), coords_off);
    for &(x, y) in fz.coords_f32() {
        buf.extend_from_slice(&x.to_le_bytes());
        buf.extend_from_slice(&y.to_le_bytes());
    }
    buf.resize(fwd_off, 0);
    for &o in &fz.fwd_offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    buf.resize(bwd_off, 0);
    for &o in &fz.bwd_offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    buf.resize(arcs_off, 0);
    for a in &fz.arcs {
        buf.extend_from_slice(&a.target.to_le_bytes());
        buf.extend_from_slice(&a.edge_id.to_le_bytes());
        buf.extend_from_slice(&a.length_m.to_le_bytes());
        buf.extend_from_slice(&a.travel_time_s.to_le_bytes());
    }
    buf.resize(total - 8, 0);
    let checksum = fnv1a64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Writes a [`FrozenGraph`] in the v1 binary section format (see
/// [`frozen_to_bytes`] for the layout).
pub fn write_frozen<W: Write>(fz: &FrozenGraph, out: &mut W) -> std::io::Result<()> {
    out.write_all(&frozen_to_bytes(fz))
}

/// Parses a [`FrozenGraph`] from its v1 binary representation,
/// validating the magic, the trailer checksum, every section bound and
/// every record; any mismatch is [`SpatialError::Parse`].
pub fn frozen_from_bytes(data: &[u8]) -> Result<FrozenGraph, SpatialError> {
    let parse = |msg: String| SpatialError::Parse(msg);
    let table_end = 24 + 32 + FROZEN_SECTION_TAGS.len() * 24;
    if data.len() < table_end + 8 {
        return Err(parse(format!(
            "frozen section too short: {} bytes",
            data.len()
        )));
    }
    if &data[..24] != FROZEN_MAGIC {
        return Err(parse("bad frozen magic".into()));
    }
    let body = &data[..data.len() - 8];
    let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(parse("frozen checksum mismatch".into()));
    }
    let rd_u64 = |off: usize| u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
    let n = usize::try_from(rd_u64(24)).map_err(|_| parse("vertex count overflow".into()))?;
    let m = usize::try_from(rd_u64(32)).map_err(|_| parse("edge count overflow".into()))?;
    let weights_epoch = rd_u64(40);
    if rd_u64(48) != FROZEN_SECTION_TAGS.len() as u64 {
        return Err(parse(format!("unexpected section count {}", rd_u64(48))));
    }
    // Expected exact payload sizes; checked arithmetic so a corrupt
    // count cannot overflow the bounds checks below.
    let coords_len = n
        .checked_mul(8)
        .ok_or_else(|| parse("coords overflow".into()))?;
    let offs_len = n
        .checked_add(1)
        .and_then(|c| c.checked_mul(4))
        .ok_or_else(|| parse("offsets overflow".into()))?;
    let arcs_len = m
        .checked_mul(48)
        .ok_or_else(|| parse("arcs overflow".into()))?;
    let expected_lens = [coords_len, offs_len, offs_len, arcs_len];

    let mut sections = [(0usize, 0usize); 4];
    let mut cursor = table_end;
    for (i, section) in sections.iter_mut().enumerate() {
        let base = 56 + i * 24;
        let tag = rd_u64(base);
        if tag != FROZEN_SECTION_TAGS[i] {
            return Err(parse(format!("section {i}: unexpected tag {tag}")));
        }
        let off = usize::try_from(rd_u64(base + 8))
            .map_err(|_| parse(format!("section {i}: offset overflow")))?;
        let len = usize::try_from(rd_u64(base + 16))
            .map_err(|_| parse(format!("section {i}: length overflow")))?;
        if off % 8 != 0 || off != cursor {
            return Err(parse(format!("section {i}: misaligned offset {off}")));
        }
        if len != expected_lens[i] {
            return Err(parse(format!(
                "section {i}: {len} bytes, expected {}",
                expected_lens[i]
            )));
        }
        if off
            .checked_add(align8(len))
            .is_none_or(|end| end > body.len())
        {
            return Err(parse(format!("section {i}: out of bounds")));
        }
        *section = (off, len);
        cursor = off + align8(len);
    }
    if cursor + 8 != data.len() {
        return Err(parse(format!(
            "trailing bytes after frozen sections: {} of {}",
            cursor + 8,
            data.len()
        )));
    }

    let (coords_off, _) = sections[0];
    let mut coords_f32 = Vec::with_capacity(n);
    for i in 0..n {
        let base = coords_off + i * 8;
        let x = f32::from_le_bytes(data[base..base + 4].try_into().expect("4 bytes"));
        let y = f32::from_le_bytes(data[base + 4..base + 8].try_into().expect("4 bytes"));
        if !x.is_finite() || !y.is_finite() {
            return Err(parse(format!("vertex {i}: non-finite coordinate")));
        }
        coords_f32.push((x, y));
    }

    let read_offsets = |off: usize, first: u32, last: u32| -> Result<Vec<u32>, SpatialError> {
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let base = off + i * 4;
            let v = u32::from_le_bytes(data[base..base + 4].try_into().expect("4 bytes"));
            if let Some(&prev) = out.last() {
                if v < prev {
                    return Err(parse(format!("offset {i}: {v} not monotone")));
                }
            }
            out.push(v);
        }
        if out[0] != first || out[n] != last {
            return Err(parse(format!(
                "offset range [{}, {}] does not span [{first}, {last}]",
                out[0], out[n]
            )));
        }
        Ok(out)
    };
    let two_m = u32::try_from(2 * m).map_err(|_| parse("arc count overflow".into()))?;
    let fwd_offsets = read_offsets(sections[1].0, 0, two_m / 2)?;
    let bwd_offsets = read_offsets(sections[2].0, two_m / 2, two_m)?;

    let (arcs_off, _) = sections[3];
    let mut arcs = Vec::with_capacity(2 * m);
    for i in 0..2 * m {
        let base = arcs_off + i * 24;
        let target = u32::from_le_bytes(data[base..base + 4].try_into().expect("4 bytes"));
        let edge_id = u32::from_le_bytes(data[base + 4..base + 8].try_into().expect("4 bytes"));
        let length_m = f64::from_le_bytes(data[base + 8..base + 16].try_into().expect("8 bytes"));
        let travel_time_s =
            f64::from_le_bytes(data[base + 16..base + 24].try_into().expect("8 bytes"));
        if target as usize >= n {
            return Err(parse(format!("arc {i}: target {target} out of range")));
        }
        if edge_id as usize >= m {
            return Err(parse(format!("arc {i}: edge id {edge_id} out of range")));
        }
        if !(length_m.is_finite() && length_m > 0.0) {
            return Err(parse(format!("arc {i}: invalid length {length_m}")));
        }
        if !(travel_time_s.is_finite() && travel_time_s > 0.0) {
            return Err(parse(format!(
                "arc {i}: invalid travel time {travel_time_s}"
            )));
        }
        arcs.push(FrozenArc {
            target,
            edge_id,
            length_m,
            travel_time_s,
        });
    }

    Ok(FrozenGraph {
        vertex_count: u32::try_from(n).map_err(|_| parse("vertex count overflow".into()))?,
        edge_count: u32::try_from(m).map_err(|_| parse("edge count overflow".into()))?,
        fwd_offsets,
        bwd_offsets,
        arcs,
        coords_f32,
        weights_epoch,
    })
}

/// Reads a [`FrozenGraph`] in the v1 binary section format.
pub fn read_frozen<R: std::io::Read>(mut input: R) -> Result<FrozenGraph, SpatialError> {
    let mut data = Vec::new();
    input
        .read_to_end(&mut data)
        .map_err(|e| SpatialError::Parse(e.to_string()))?;
    frozen_from_bytes(&data)
}

fn parse_count(line: &str, keyword: &str) -> Result<usize, SpatialError> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some(keyword) {
        return Err(SpatialError::Parse(format!(
            "expected {keyword:?} line, got {line:?}"
        )));
    }
    it.next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse(format!("bad count in {line:?}")))
}

fn parse_f64(tok: Option<&str>, what: &str) -> Result<f64, SpatialError> {
    tok.and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse(format!("missing or invalid {what}")))
}

fn parse_u32(tok: Option<&str>, what: &str) -> Result<u32, SpatialError> {
    tok.and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse(format!("missing or invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};

    #[test]
    fn roundtrip_grid() {
        let g = grid_network(&GridConfig::small_test(), 13);
        let text = graph_to_string(&g);
        let back = graph_from_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_region() {
        let g = region_network(&RegionConfig::small_test(), 13);
        let back = graph_from_str(&graph_to_string(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(graph_from_str("nonsense").is_err());
        assert!(graph_from_str("pathrank-graph v0\nvertices 0\nedges 0\n").is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let g = grid_network(&GridConfig::small_test(), 13);
        let text = graph_to_string(&g);
        let cut = &text[..text.len() / 2];
        assert!(graph_from_str(cut).is_err());
    }

    #[test]
    fn rejects_malformed_edges() {
        let bad = "pathrank-graph v1\nvertices 2\nv 0 0\nv 1 0\nedges 1\ne 0 5 10 50 R\n";
        assert!(graph_from_str(bad).is_err());
        let bad_tag = "pathrank-graph v1\nvertices 2\nv 0 0\nv 1 0\nedges 1\ne 0 1 10 50 X\n";
        assert!(graph_from_str(bad_tag).is_err());
    }

    #[test]
    fn tolerates_blank_lines() {
        let g = grid_network(&GridConfig::small_test(), 13);
        let text = graph_to_string(&g).replace('\n', "\n\n");
        assert_eq!(graph_from_str(&text).unwrap(), g);
    }

    mod frozen_bin {
        use super::*;
        use crate::frozen::FrozenGraph;

        fn frozen() -> FrozenGraph {
            FrozenGraph::freeze(&region_network(&RegionConfig::small_test(), 23))
        }

        #[test]
        fn frozen_roundtrip_is_bit_identical_and_byte_stable() {
            let fz = frozen();
            let bytes = frozen_to_bytes(&fz);
            let back = frozen_from_bytes(&bytes).unwrap();
            // PartialEq covers every field, including f64 weight bits.
            assert_eq!(back, fz);
            // Deterministic writer: the second trip reproduces the bytes.
            assert_eq!(frozen_to_bytes(&back), bytes);
            // The streaming entry points agree with the in-memory ones.
            let mut out = Vec::new();
            write_frozen(&fz, &mut out).unwrap();
            assert_eq!(out, bytes);
            assert_eq!(read_frozen(&bytes[..]).unwrap(), fz);
        }

        #[test]
        fn frozen_rejects_corrupt_input() {
            let fz = frozen();
            let bytes = frozen_to_bytes(&fz);
            // Truncations at every structural boundary.
            for cut in [0, 10, 24, 55, 151, bytes.len() / 2, bytes.len() - 1] {
                assert!(frozen_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
            }
            // Any single bit flip trips the checksum (or a field check).
            for pos in [0, 30, 60, 200, bytes.len() - 20, bytes.len() - 1] {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x40;
                assert!(frozen_from_bytes(&bad).is_err(), "flip at {pos}");
            }
            // Wrong magic version.
            let mut bad = bytes.clone();
            bad[..24].copy_from_slice(b"pathrank-frozen v9\0\0\0\0\0\0");
            assert!(frozen_from_bytes(&bad).is_err());
            // Trailing content is corruption, not slack.
            let mut doubled = bytes.clone();
            doubled.extend_from_slice(&bytes);
            assert!(frozen_from_bytes(&doubled).is_err());
            let mut padded = bytes.clone();
            padded.extend_from_slice(&[0u8; 8]);
            assert!(frozen_from_bytes(&padded).is_err());
            // The text readers refuse the binary section and vice versa.
            assert!(graph_from_str(std::str::from_utf8(&bytes[..24]).unwrap_or("x")).is_err());
        }

        #[test]
        fn frozen_empty_graph_roundtrips() {
            let fz = FrozenGraph::freeze(&GraphBuilder::new().build());
            let bytes = frozen_to_bytes(&fz);
            assert_eq!(frozen_from_bytes(&bytes).unwrap(), fz);
        }
    }

    mod imported {
        use super::*;
        use crate::osm::synth::{synthetic_city, write_osm_xml, SynthCityConfig};
        use crate::osm::{import_osm_str, ImportConfig, ImportedGraph};

        fn city() -> ImportedGraph {
            let xml = write_osm_xml(&synthetic_city(&SynthCityConfig::default(), 13));
            import_osm_str(&xml, &ImportConfig::default()).unwrap()
        }

        #[test]
        fn imported_roundtrip_is_bit_identical() {
            let ig = city();
            let text = imported_to_string(&ig);
            let back = imported_from_str(&text).unwrap();
            // Shortest-Display floats survive the text round-trip
            // bit-for-bit: graph equality is exact.
            assert_eq!(back.graph, ig.graph);
            assert_eq!(back.edge_geometry, ig.edge_geometry);
            assert_eq!(back.projection.lat0, ig.projection.lat0);
            assert_eq!(back.projection.lon0, ig.projection.lon0);
            // And a second round-trip is byte-stable.
            assert_eq!(imported_to_string(&back), text);
        }

        #[test]
        fn corrupt_imported_input_is_rejected() {
            let ig = city();
            let text = imported_to_string(&ig);
            assert!(imported_from_str(&text[..text.len() / 2]).is_err());
            assert!(imported_from_str(&text[..text.len() * 9 / 10]).is_err());
            assert!(imported_from_str("pathrank-osm-graph v0\n").is_err());
            // An out-of-range origin.
            let lat0 = ig.projection.lat0;
            let bad = text.replace(&format!("origin {lat0}"), "origin 777");
            assert!(imported_from_str(&bad).is_err());
            // A geometry count that disagrees with the edge count.
            let bad = text.replace(&format!("geometry {}", ig.graph.edge_count()), "geometry 3");
            assert!(imported_from_str(&bad).is_err());
            // A non-finite geometry point.
            let row = text
                .lines()
                .find(|l| l.starts_with("g ") && !l.ends_with("g 0"))
                .unwrap()
                .to_string();
            let mut toks: Vec<String> = row.split_ascii_whitespace().map(str::to_string).collect();
            if toks.len() > 2 {
                toks[2] = "NaN".into();
                assert!(imported_from_str(&text.replace(&row, &toks.join(" "))).is_err());
            }
            // Feeding the plain-graph reader an imported file (and vice
            // versa) fails on the header.
            assert!(graph_from_str(&text).is_err());
            assert!(imported_from_str(&graph_to_string(&ig.graph)).is_err());
            // Trailing content (an accidentally doubled file) is
            // corruption, not slack.
            let doubled = format!("{text}{text}");
            assert!(imported_from_str(&doubled).is_err());
            assert!(imported_from_str(&format!("{text}\nextra stuff\n")).is_err());
        }

        #[test]
        fn load_graph_auto_sniffs_all_three_formats() {
            let dir = std::env::temp_dir().join(format!("pathrank-io-test-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let ig = city();

            let xml_path = dir.join("city.osm.xml");
            std::fs::write(
                &xml_path,
                write_osm_xml(&synthetic_city(&SynthCityConfig::default(), 13)),
            )
            .unwrap();
            let from_xml = load_graph_auto(&xml_path).unwrap();
            assert_eq!(from_xml.kind, GraphFileKind::OsmXml);
            assert_eq!(from_xml.graph, ig.graph);
            assert!(from_xml.geometry.is_some() && from_xml.projection.is_some());
            let reassembled = from_xml.into_imported().unwrap();
            assert_eq!(reassembled.edge_geometry, ig.edge_geometry);

            let imp_path = dir.join("city.graph");
            std::fs::write(&imp_path, imported_to_string(&ig)).unwrap();
            let from_imp = load_graph_auto(&imp_path).unwrap();
            assert_eq!(from_imp.kind, GraphFileKind::Imported);
            assert_eq!(from_imp.graph, ig.graph);

            let plain_path = dir.join("city.plain");
            std::fs::write(&plain_path, graph_to_string(&ig.graph)).unwrap();
            let from_plain = load_graph_auto(&plain_path).unwrap();
            assert_eq!(from_plain.kind, GraphFileKind::PlainText);
            assert_eq!(from_plain.graph, ig.graph);
            assert!(from_plain.into_imported().is_none());

            let junk_path = dir.join("junk");
            std::fs::write(&junk_path, "not a graph at all").unwrap();
            assert!(load_graph_auto(&junk_path).is_err());
            assert!(load_graph_auto(&dir.join("missing")).is_err());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    mod indexes {
        use super::*;
        use crate::algo::cch::{CchConfig, CchTopology};
        use crate::algo::ch::{ChConfig, ChSearch, ContractionHierarchy};
        use crate::algo::engine::QueryEngine;
        use crate::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
        use crate::graph::{CostModel, VertexId};
        use std::sync::Arc;

        fn region() -> Graph {
            region_network(&RegionConfig::small_test(), 23)
        }

        #[test]
        fn landmarks_roundtrip_bit_identical() {
            let g = region();
            for metric in [LandmarkMetric::Length, LandmarkMetric::TravelTime] {
                let table = LandmarkTable::build(&g, metric, &LandmarkConfig::default());
                let text = landmarks_to_string(&table);
                let back = landmarks_from_str(&text).unwrap();
                assert_eq!(back.metric(), table.metric());
                assert_eq!(back.vertex_count(), table.vertex_count());
                assert_eq!(back.edge_count(), table.edge_count());
                assert_eq!(back.landmarks(), table.landmarks());
                for l in 0..table.k() {
                    for v in g.vertices() {
                        assert_eq!(
                            back.from_landmark(l, v).to_bits(),
                            table.from_landmark(l, v).to_bits(),
                            "forward vector diverged after round-trip"
                        );
                        assert_eq!(
                            back.to_landmark(l, v).to_bits(),
                            table.to_landmark(l, v).to_bits(),
                            "backward vector diverged after round-trip"
                        );
                    }
                }
            }
        }

        #[test]
        fn reloaded_landmarks_serve_identical_queries() {
            let g = region();
            let table =
                LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
            let reloaded = landmarks_from_str(&landmarks_to_string(&table)).unwrap();
            let mut a = QueryEngine::new(&g).with_landmarks(Arc::new(table));
            let mut b = QueryEngine::new(&g).with_landmarks(Arc::new(reloaded));
            assert!(b.uses_alt(CostModel::Length));
            let n = g.vertex_count() as u32;
            for (s, t) in [(0, n - 1), (n / 2, 1), (n / 3, 2 * n / 3)] {
                let (s, t) = (VertexId(s), VertexId(t));
                let pa = a.astar_shortest_path(s, t, CostModel::Length);
                let pb = b.astar_shortest_path(s, t, CostModel::Length);
                assert_eq!(
                    pa.map(|p| p.edges().to_vec()),
                    pb.map(|p| p.edges().to_vec()),
                    "reloaded table changed an answer"
                );
            }
        }

        #[test]
        fn ch_roundtrip_serves_identical_queries() {
            // Both build metrics — the TravelTime hierarchy (fastest-path
            // serving) persists through exactly the same format.
            let g = region();
            for metric in [LandmarkMetric::Length, LandmarkMetric::TravelTime] {
                let ch = ContractionHierarchy::build(&g, metric, &ChConfig::default());
                let text = ch_to_string(&ch);
                let back = ch_from_str(&text).unwrap();
                assert_eq!(back.metric(), ch.metric());
                assert_eq!(back.vertex_count(), ch.vertex_count());
                assert_eq!(back.edge_count(), ch.edge_count());
                assert_eq!(back.shortcut_count(), ch.shortcut_count());
                assert_eq!(back.ranks(), ch.ranks());
                let mut sa = ChSearch::new(g.vertex_count());
                let mut sb = ChSearch::new(g.vertex_count());
                let n = g.vertex_count() as u32;
                for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3), (3, n - 2)] {
                    let (s, t) = (VertexId(s), VertexId(t));
                    let ea = ch.query_edges(&mut sa, s, t).map(<[_]>::to_vec);
                    let eb = back.query_edges(&mut sb, s, t).map(<[_]>::to_vec);
                    assert_eq!(
                        ea, eb,
                        "reloaded {metric:?} CH changed an answer for {s:?}->{t:?}"
                    );
                }
            }
        }

        #[test]
        fn index_headers_are_versioned_and_checked() {
            let g = region();
            let table =
                LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
            let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
            // Wrong or missing versions are rejected outright.
            assert!(landmarks_from_str("pathrank-landmarks v0\n").is_err());
            assert!(ch_from_str("pathrank-ch v0\n").is_err());
            // Feeding one format to the other reader fails on the header.
            assert!(landmarks_from_str(&ch_to_string(&ch)).is_err());
            assert!(ch_from_str(&landmarks_to_string(&table)).is_err());
        }

        #[test]
        fn corrupt_landmark_input_is_rejected() {
            let g = region();
            let table =
                LandmarkTable::build(&g, LandmarkMetric::Length, &LandmarkConfig::default());
            let text = landmarks_to_string(&table);
            // Truncation (anywhere) must error, never mis-build.
            assert!(landmarks_from_str(&text[..text.len() / 2]).is_err());
            assert!(landmarks_from_str(&text[..text.len() * 9 / 10]).is_err());
            // A tampered metric tag.
            assert!(landmarks_from_str(&text.replace("metric length", "metric banana")).is_err());
            // A landmark id outside the graph.
            let k_line = format!("landmarks {}", table.k());
            let bad = text.replace(&k_line, &format!("landmarks {} 99999", table.k() - 1));
            assert!(landmarks_from_str(&bad).is_err());
            // A NaN or negative distance smuggled into a row: either
            // would silently break the triangle bounds' admissibility,
            // so both must be parse errors.
            for bad_value in ["NaN", "-1e9"] {
                let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
                let f_row = lines.iter().position(|l| l.starts_with('F')).unwrap();
                let mut toks: Vec<&str> = lines[f_row].split_ascii_whitespace().collect();
                toks[1] = bad_value;
                lines[f_row] = toks.join(" ");
                assert!(
                    landmarks_from_str(&lines.join("\n")).is_err(),
                    "{bad_value} distance must be rejected"
                );
            }
            // A header claiming an absurd element count must error (on
            // truncation), not abort on a huge preallocation.
            let huge = text.replace(
                &format!("graph {} {}", g.vertex_count(), g.edge_count()),
                "graph 999999999999 5",
            );
            assert!(landmarks_from_str(&huge).is_err());
        }

        #[test]
        fn corrupt_ch_input_is_rejected() {
            let g = region();
            let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
            let text = ch_to_string(&ch);
            assert!(ch_from_str(&text[..text.len() / 2]).is_err());
            // An absurd arc count errors on truncation instead of
            // aborting on a huge preallocation.
            let arcs_line = format!("arcs {}", ch.arcs().len());
            let huge = text.replace(&arcs_line, "arcs 18446744073709551615");
            assert!(ch_from_str(&huge).is_err());
            // A rank out of range / duplicated breaks the permutation.
            let ranks_line = text
                .lines()
                .find(|l| l.starts_with("ranks"))
                .unwrap()
                .to_string();
            let mut toks: Vec<&str> = ranks_line.split_ascii_whitespace().collect();
            toks[1] = "999999";
            assert!(ch_from_str(&text.replace(&ranks_line, &toks.join(" "))).is_err());
            let dup = {
                let mut t: Vec<&str> = ranks_line.split_ascii_whitespace().collect();
                t[1] = t[2];
                text.replace(&ranks_line, &t.join(" "))
            };
            assert!(ch_from_str(&dup).is_err());
            // A shortcut referencing a later arc (expansion would not
            // terminate) is rejected by the topology check.
            let shortcut_line = text
                .lines()
                .find(|l| l.starts_with('a') && l.contains(" s "))
                .expect("region CH has shortcuts")
                .to_string();
            let mut toks: Vec<String> = shortcut_line
                .split_ascii_whitespace()
                .map(str::to_string)
                .collect();
            toks[5] = format!("{}", ch.arcs().len() + 7);
            assert!(ch_from_str(&text.replace(&shortcut_line, &toks.join(" "))).is_err());
            // Negative or non-finite weights are rejected.
            let arc_line = text
                .lines()
                .find(|l| l.starts_with("a "))
                .unwrap()
                .to_string();
            let mut toks: Vec<String> = arc_line
                .split_ascii_whitespace()
                .map(str::to_string)
                .collect();
            toks[3] = "-5".into();
            assert!(ch_from_str(&text.replace(&arc_line, &toks.join(" "))).is_err());
        }

        #[test]
        fn cch_roundtrip_is_byte_stable_and_customizes_identically() {
            let g = region();
            let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
            let text = cch_to_string(&topo);
            let back = Arc::new(cch_from_str(&text).unwrap());
            // Arcs are stored level-sorted, and reloading preserves that
            // order, so re-serialising must reproduce the exact bytes.
            assert_eq!(cch_to_string(&back), text, "round-trip is not byte-stable");
            assert_eq!(back.ranks(), topo.ranks());
            assert_eq!(back.arc_count(), topo.arc_count());
            assert_eq!(back.fill_in_count(), topo.fill_in_count());
            assert_eq!(back.triangle_count(), topo.triangle_count());
            // Weights are not persisted: customization on the reloaded
            // topology must reproduce the original answers bit for bit.
            let n = g.vertex_count() as u32;
            for metric in [LandmarkMetric::Length, LandmarkMetric::TravelTime] {
                let a = topo.customize(&g, &metric.cost_model());
                let b = back.customize(&g, &metric.cost_model());
                let mut sa = ChSearch::new(g.vertex_count());
                let mut sb = ChSearch::new(g.vertex_count());
                for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3), (3, n - 2)] {
                    let (s, t) = (VertexId(s), VertexId(t));
                    assert_eq!(
                        a.query_cost(&mut sa, s, t).map(f64::to_bits),
                        b.query_cost(&mut sb, s, t).map(f64::to_bits),
                        "reloaded CCH changed a {metric:?} cost for {s:?}->{t:?}"
                    );
                    assert_eq!(
                        a.query_edges(&mut sa, s, t).map(<[_]>::to_vec),
                        b.query_edges(&mut sb, s, t).map(<[_]>::to_vec),
                        "reloaded CCH changed a {metric:?} path for {s:?}->{t:?}"
                    );
                }
            }
        }

        #[test]
        fn cch_corrupt_input_is_rejected() {
            let g = region();
            let topo = CchTopology::build(&g, &CchConfig::default());
            let text = cch_to_string(&topo);
            // Wrong version / foreign format fail on the header.
            assert!(cch_from_str("pathrank-cch v0\n").is_err());
            assert!(cch_from_str(&ch_to_string(&ContractionHierarchy::build(
                &g,
                LandmarkMetric::Length,
                &ChConfig::default()
            )))
            .is_err());
            // Truncation (anywhere) must error, never mis-build.
            assert!(cch_from_str(&text[..text.len() / 2]).is_err());
            assert!(cch_from_str(&text[..text.len() * 9 / 10]).is_err());
            // An absurd arc count errors on truncation instead of
            // aborting on a huge preallocation.
            let arcs_line = format!("arcs {}", topo.arc_count());
            assert!(cch_from_str(&text.replace(&arcs_line, "arcs 18446744073709551615")).is_err());
            // A rank out of range / duplicated breaks the permutation.
            let ranks_line = text
                .lines()
                .find(|l| l.starts_with("ranks"))
                .unwrap()
                .to_string();
            let mut toks: Vec<&str> = ranks_line.split_ascii_whitespace().collect();
            toks[1] = "999999";
            assert!(cch_from_str(&text.replace(&ranks_line, &toks.join(" "))).is_err());
            let dup = {
                let mut t: Vec<&str> = ranks_line.split_ascii_whitespace().collect();
                t[1] = t[2];
                text.replace(&ranks_line, &t.join(" "))
            };
            assert!(cch_from_str(&dup).is_err());
            // An arc claiming an edge outside the graph.
            let first_orig = text
                .lines()
                .find(|l| l.starts_with("c ") && !l.contains(" o 0 "))
                .expect("region CCH has arcs with originals")
                .to_string();
            let mut toks: Vec<String> = first_orig
                .split_ascii_whitespace()
                .map(str::to_string)
                .collect();
            let o_pos = toks.iter().position(|t| t == "o").unwrap();
            toks[o_pos + 2] = format!("{}", g.edge_count() + 3);
            assert!(cch_from_str(&text.replace(&first_orig, &toks.join(" "))).is_err());
            // Two arcs claiming the same original edge.
            let mut toks: Vec<String> = first_orig
                .split_ascii_whitespace()
                .map(str::to_string)
                .collect();
            let second_orig = text
                .lines()
                .filter(|l| l.starts_with("c ") && !l.contains(" o 0 "))
                .nth(1)
                .expect("region CCH has at least two arcs with originals")
                .to_string();
            let stolen = second_orig
                .split_ascii_whitespace()
                .nth(
                    second_orig
                        .split_ascii_whitespace()
                        .position(|t| t == "o")
                        .unwrap()
                        + 2,
                )
                .unwrap();
            toks[o_pos + 2] = stolen.to_string();
            assert!(cch_from_str(&text.replace(&first_orig, &toks.join(" "))).is_err());
            // A duplicate (from, to) vertex pair.
            let dup_pair = {
                let second = text
                    .lines()
                    .filter(|l| l.starts_with("c "))
                    .nth(1)
                    .unwrap()
                    .to_string();
                let first_toks: Vec<&str> = first_orig.split_ascii_whitespace().collect();
                let mut t: Vec<String> = second
                    .split_ascii_whitespace()
                    .map(str::to_string)
                    .collect();
                t[1] = first_toks[1].to_string();
                t[2] = first_toks[2].to_string();
                text.replace(&second, &t.join(" "))
            };
            assert!(cch_from_str(&dup_pair).is_err());
            // A triangle referencing a non-preceding arc (customization
            // would read an unsettled weight).
            let tri_line = text
                .lines()
                .find(|l| l.starts_with("c ") && !l.trim_end().ends_with(" t 0"))
                .expect("region CCH has triangles")
                .to_string();
            let mut toks: Vec<String> = tri_line
                .split_ascii_whitespace()
                .map(str::to_string)
                .collect();
            let t_pos = toks.iter().position(|t| t == "t").unwrap();
            toks[t_pos + 2] = format!("{}", topo.arc_count() + 9);
            assert!(cch_from_str(&text.replace(&tri_line, &toks.join(" "))).is_err());
            // A fill-in arc stripped of its triangles has no way to ever
            // receive a finite weight; the reader must refuse it.
            let fill_in = text
                .lines()
                .find(|l| l.starts_with("c ") && l.contains(" o 0 "))
                .expect("region CCH has fill-in arcs")
                .to_string();
            let t_pos = fill_in.find(" t ").unwrap();
            let gutted = format!("{} t 0", &fill_in[..t_pos]);
            assert!(cch_from_str(&text.replace(&fill_in, &gutted)).is_err());
            // Trailing tokens on an arc line are rejected.
            let padded = format!("{} 4", first_orig);
            assert!(cch_from_str(&text.replace(&first_orig, &padded)).is_err());
        }
    }
}
