//! Plain-text serialisation of road networks.
//!
//! The format is a stable, diff-friendly line format (one vertex or edge
//! per line) so that generated networks can be checked into experiment
//! repositories and inspected by hand:
//!
//! ```text
//! pathrank-graph v1
//! vertices 3
//! v 0.0 0.0
//! v 100.0 0.0
//! v 200.0 0.0
//! edges 2
//! e 0 1 100.0 50.0 R
//! e 1 2 105.0 50.0 A
//! ```
//!
//! Edge lines are `e <from> <to> <length_m> <speed_kmh> <category-tag>`.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::error::SpatialError;
use crate::geometry::Point;
use crate::graph::{EdgeAttrs, Graph, RoadCategory, VertexId};

const MAGIC: &str = "pathrank-graph v1";

/// Writes `g` to `out` in the v1 text format.
pub fn write_graph<W: Write>(g: &Graph, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "vertices {}", g.vertex_count())?;
    for v in g.vertices() {
        let p = g.coord(v);
        writeln!(out, "v {} {}", p.x, p.y)?;
    }
    writeln!(out, "edges {}", g.edge_count())?;
    for e in g.edges() {
        writeln!(
            out,
            "e {} {} {} {} {}",
            e.from.0,
            e.to.0,
            e.attrs.length_m,
            e.attrs.speed_kmh,
            e.attrs.category.tag() as char
        )?;
    }
    Ok(())
}

/// Serialises `g` to a `String` in the v1 text format.
pub fn graph_to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads a graph in the v1 text format.
pub fn read_graph<R: BufRead>(input: R) -> Result<Graph, SpatialError> {
    let mut lines = input.lines();
    let mut next_line = || -> Result<String, SpatialError> {
        loop {
            match lines.next() {
                Some(Ok(l)) => {
                    let t = l.trim().to_string();
                    if !t.is_empty() {
                        return Ok(t);
                    }
                }
                Some(Err(e)) => return Err(SpatialError::Parse(e.to_string())),
                None => return Err(SpatialError::Parse("unexpected end of input".into())),
            }
        }
    };

    let header = next_line()?;
    if header != MAGIC {
        return Err(SpatialError::Parse(format!("bad header {header:?}")));
    }
    let vcount = parse_count(&next_line()?, "vertices")?;
    let mut b = GraphBuilder::with_capacity(vcount, 0);
    for i in 0..vcount {
        let line = next_line()?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("v") {
            return Err(SpatialError::Parse(format!(
                "expected vertex line {i}, got {line:?}"
            )));
        }
        let x = parse_f64(it.next(), "vertex x")?;
        let y = parse_f64(it.next(), "vertex y")?;
        b.add_vertex(Point::new(x, y));
    }
    let ecount = parse_count(&next_line()?, "edges")?;
    for i in 0..ecount {
        let line = next_line()?;
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("e") {
            return Err(SpatialError::Parse(format!(
                "expected edge line {i}, got {line:?}"
            )));
        }
        let from = parse_u32(it.next(), "edge from")?;
        let to = parse_u32(it.next(), "edge to")?;
        let length_m = parse_f64(it.next(), "edge length")?;
        let speed_kmh = parse_f64(it.next(), "edge speed")?;
        let tag = it
            .next()
            .and_then(|s| s.bytes().next())
            .ok_or_else(|| SpatialError::Parse("missing category tag".into()))?;
        let category = RoadCategory::from_tag(tag).ok_or_else(|| {
            SpatialError::Parse(format!("unknown category tag {:?}", tag as char))
        })?;
        b.add_edge(
            VertexId(from),
            VertexId(to),
            EdgeAttrs {
                length_m,
                speed_kmh,
                category,
            },
        )
        .map_err(|e| SpatialError::Parse(format!("edge {i}: {e}")))?;
    }
    Ok(b.build())
}

/// Parses a graph from its v1 text representation.
pub fn graph_from_str(s: &str) -> Result<Graph, SpatialError> {
    read_graph(s.as_bytes())
}

fn parse_count(line: &str, keyword: &str) -> Result<usize, SpatialError> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some(keyword) {
        return Err(SpatialError::Parse(format!(
            "expected {keyword:?} line, got {line:?}"
        )));
    }
    it.next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse(format!("bad count in {line:?}")))
}

fn parse_f64(tok: Option<&str>, what: &str) -> Result<f64, SpatialError> {
    tok.and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse(format!("missing or invalid {what}")))
}

fn parse_u32(tok: Option<&str>, what: &str) -> Result<u32, SpatialError> {
    tok.and_then(|s| s.parse().ok())
        .ok_or_else(|| SpatialError::Parse(format!("missing or invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_network, region_network, GridConfig, RegionConfig};

    #[test]
    fn roundtrip_grid() {
        let g = grid_network(&GridConfig::small_test(), 13);
        let text = graph_to_string(&g);
        let back = graph_from_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_region() {
        let g = region_network(&RegionConfig::small_test(), 13);
        let back = graph_from_str(&graph_to_string(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(graph_from_str("nonsense").is_err());
        assert!(graph_from_str("pathrank-graph v0\nvertices 0\nedges 0\n").is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let g = grid_network(&GridConfig::small_test(), 13);
        let text = graph_to_string(&g);
        let cut = &text[..text.len() / 2];
        assert!(graph_from_str(cut).is_err());
    }

    #[test]
    fn rejects_malformed_edges() {
        let bad = "pathrank-graph v1\nvertices 2\nv 0 0\nv 1 0\nedges 1\ne 0 5 10 50 R\n";
        assert!(graph_from_str(bad).is_err());
        let bad_tag = "pathrank-graph v1\nvertices 2\nv 0 0\nv 1 0\nedges 1\ne 0 1 10 50 X\n";
        assert!(graph_from_str(bad_tag).is_err());
    }

    #[test]
    fn tolerates_blank_lines() {
        let g = grid_network(&GridConfig::small_test(), 13);
        let text = graph_to_string(&g).replace('\n', "\n\n");
        assert_eq!(graph_from_str(&text).unwrap(), g);
    }
}
