//! Small utilities shared by the routing algorithms: a fixed-capacity
//! bitset for banned vertices/edges and a min-heap entry ordered on `f64`
//! cost via `total_cmp`.

use std::cmp::Ordering;

/// A fixed-capacity bitset indexed by `u32` ids.
///
/// Yen's algorithm bans sets of vertices and edges on every spur search;
/// a bitset makes membership tests branch-cheap and allocation-free after
/// construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset able to hold ids in `0..capacity`, all clear.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0u64; capacity.div_ceil(64)],
            len: capacity,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!(
            (i as usize) < self.len,
            "bit {i} out of capacity {}",
            self.len
        );
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: u32) {
        debug_assert!((i as usize) < self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        debug_assert!((i as usize) < self.len);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Clears all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Min-heap entry: `std::collections::BinaryHeap` is a max-heap, so the
/// ordering is reversed here. `f64::total_cmp` gives a total order that is
/// safe even if a NaN slips in (it will sort last).
#[derive(Debug, Clone, Copy)]
pub struct MinCost<T> {
    /// Priority (lower pops first).
    pub cost: f64,
    /// Payload.
    pub item: T,
}

impl<T> PartialEq for MinCost<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cost.total_cmp(&other.cost) == Ordering::Equal
    }
}
impl<T> Eq for MinCost<T> {}
impl<T> PartialOrd for MinCost<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinCost<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller cost = greater priority.
        other.cost.total_cmp(&self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(65));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn min_cost_orders_heap_ascending() {
        let mut h = BinaryHeap::new();
        for (c, v) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            h.push(MinCost { cost: c, item: v });
        }
        let order: Vec<char> = std::iter::from_fn(|| h.pop().map(|e| e.item)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn min_cost_nan_sorts_last() {
        let mut h = BinaryHeap::new();
        h.push(MinCost {
            cost: f64::NAN,
            item: 'n',
        });
        h.push(MinCost {
            cost: 5.0,
            item: 'x',
        });
        assert_eq!(h.pop().unwrap().item, 'x');
        assert_eq!(h.pop().unwrap().item, 'n');
    }
}
